package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tpminer/internal/dataio"
)

const sampleCSV = `sequence_id,symbol,start,end
s1,A,0,4
s1,B,2,6
s2,A,10,14
s2,B,12,16
s3,B,0,2
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTemporalCSV(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", in, "-mincount", "2", "-stats"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	rs, err := dataio.ReadTemporalResults(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output does not parse back: %v\n%s", err, out.String())
	}
	found := false
	for _, r := range rs {
		if r.Pattern.String() == "A+ B+ A- B-" && r.Support == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected overlap pattern in output:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "mincount=2") {
		t.Errorf("stats line missing: %q", errw.String())
	}
}

func TestRunCoincidenceLines(t *testing.T) {
	in := writeTemp(t, "data.lines", "s1: A[0,4] B[2,6]\ns2: A[0,4] B[2,6]\n")
	var out, errw bytes.Buffer
	if err := run([]string{"-in", in, "-type", "coincidence", "-minsup", "0.9"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	rs, err := dataio.ReadCoincResults(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output does not parse back: %v\n%s", err, out.String())
	}
	if len(rs) == 0 {
		t.Error("no coincidence patterns")
	}
}

func TestRunAlternativeAlgorithms(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	for _, algo := range []string{"tprefixspan", "apriori"} {
		var out, errw bytes.Buffer
		if err := run([]string{"-in", in, "-algo", algo, "-mincount", "2"}, &out, &errw); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "A+ B+ A- B-") {
			t.Errorf("%s: overlap missing:\n%s", algo, out.String())
		}
	}
}

func TestRunRelationsFlag(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", in, "-mincount", "2", "-relations"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "A overlaps B") {
		t.Errorf("relations column missing:\n%s", out.String())
	}
}

func TestRunOutputFile(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	outPath := filepath.Join(t.TempDir(), "patterns.txt")
	var out, errw bytes.Buffer
	if err := run([]string{"-in", in, "-mincount", "2", "-out", outPath}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "A+ B+ A- B-") {
		t.Errorf("file output missing pattern:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	cases := [][]string{
		{"-in", in}, // no threshold
		{"-in", in, "-mincount", "2", "-type", "bogus"}, // bad type
		{"-in", in, "-mincount", "2", "-algo", "bogus"}, // bad algo
		{"-in", in, "-mincount", "2", "-format", "bogus"},
		{"-in", filepath.Join(t.TempDir(), "missing.csv"), "-mincount", "2"},
		{"-in", in, "-type", "coincidence", "-algo", "tprefixspan", "-mincount", "2"}, // tps is temporal-only
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunTopKAndFilters(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", in, "-topk", "2"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	rs, err := dataio.ReadTemporalResults(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("topk=2 returned %d patterns:\n%s", len(rs), out.String())
	}

	out.Reset()
	if err := run([]string{"-in", in, "-mincount", "2", "-maximal"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	rs, err = dataio.ReadTemporalResults(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Pattern.String() == "A+ A-" {
			t.Errorf("-maximal kept a subsumed single interval:\n%s", out.String())
		}
	}

	// Coincidence filters now work too.
	out.Reset()
	if err := run([]string{"-in", in, "-type", "coincidence", "-mincount", "2", "-maximal"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	crs, err := dataio.ReadCoincResults(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range crs {
		if r.Pattern.String() == "{A}" {
			t.Errorf("-maximal kept subsumed coincidence pattern:\n%s", out.String())
		}
	}

	// Invalid combinations.
	for _, args := range [][]string{
		{"-in", in, "-mincount", "2", "-closed", "-maximal"},
		{"-in", in, "-topk", "2", "-algo", "apriori"},
	} {
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunRenderRulesAndJSON(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)

	var out, errw bytes.Buffer
	if err := run([]string{"-in", in, "-mincount", "2", "-render"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "█") || !strings.Contains(out.String(), "support") {
		t.Errorf("render output missing bars:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-in", in, "-mincount", "2", "-rules", "0.5"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "association rules") || !strings.Contains(out.String(), "=>") {
		t.Errorf("rules output missing:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-in", in, "-mincount", "2", "-json"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	rs, err := dataio.ReadTemporalResultsJSON(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("json output not parseable: %v\n%s", err, out.String())
	}
	if len(rs) == 0 {
		t.Error("json output empty")
	}

	out.Reset()
	if err := run([]string{"-in", in, "-type", "coincidence", "-mincount", "2", "-json"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if _, err := dataio.ReadCoincResultsJSON(strings.NewReader(out.String())); err != nil {
		t.Fatalf("coincidence json not parseable: %v", err)
	}
}

func TestRunMatchMode(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", in, "-match", "A+ B+ A- B-"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "aligned:     2 of 3") ||
		!strings.Contains(out.String(), "A overlaps B") {
		t.Errorf("match output:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-in", in, "-type", "coincidence", "-match", "{A B}"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "support: 2 of 3") {
		t.Errorf("coincidence match output:\n%s", out.String())
	}

	if err := run([]string{"-in", in, "-match", "A-"}, &out, &errw); err == nil {
		t.Error("invalid pattern accepted by -match")
	}
}

// explosiveCSV: n identical sequences of k pairwise-overlapping
// intervals, so an unbounded mine at mincount=n cannot finish quickly
// and the budget flags always engage.
func explosiveCSV(n, k int) string {
	var b strings.Builder
	b.WriteString("sequence_id,symbol,start,end\n")
	for s := 0; s < n; s++ {
		for i := 0; i < k; i++ {
			fmt.Fprintf(&b, "e%d,S%02d,%d,%d\n", s, i, i, k+i)
		}
	}
	return b.String()
}

func TestRunBudgetFlags(t *testing.T) {
	in := writeTemp(t, "big.csv", explosiveCSV(3, 16))

	// -timeout aborts the run with an error.
	var out, errw bytes.Buffer
	start := time.Now()
	err := run([]string{"-in", in, "-mincount", "3", "-timeout", "50ms"}, &out, &errw)
	if err == nil {
		t.Fatal("timed-out run reported success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("50ms-timeout run took %v", elapsed)
	}

	// -max-patterns keeps partial output and warns on stderr.
	out.Reset()
	errw.Reset()
	if err := run([]string{"-in", in, "-mincount", "3", "-max-patterns", "5"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	rs, err := dataio.ReadTemporalResults(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || len(rs) > 5 {
		t.Errorf("got %d patterns, want 1..5", len(rs))
	}
	if !strings.Contains(errw.String(), "truncated by max_patterns") {
		t.Errorf("truncation warning missing: %q", errw.String())
	}

	// Budget flags are ptpminer-only.
	for _, args := range [][]string{
		{"-in", in, "-mincount", "3", "-algo", "tprefixspan", "-timeout", "1s"},
		{"-in", in, "-mincount", "3", "-algo", "apriori", "-max-patterns", "5"},
	} {
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
