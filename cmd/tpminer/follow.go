package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tpminer/internal/jobs"
)

// followJob is the -follow mode: subscribe to a tpmd job's Server-Sent
// Events stream and maintain the pattern set locally by applying each
// delta, printing one line per event. Dropped connections reconnect
// with Last-Event-ID, so the server replays exactly the missed deltas
// (or sends one fresh snapshot when too far behind) and the local set
// stays exact across network blips and server restarts.
func followJob(ctx context.Context, w, errw io.Writer, url string) error {
	var (
		lastID   uint64
		hasLast  bool
		patterns []jobs.Pattern
	)
	for {
		err := followOnce(ctx, w, url, &lastID, &hasLast, &patterns)
		if ctx.Err() != nil {
			return nil // interrupted: a clean exit, not an error
		}
		if err != nil {
			fmt.Fprintf(errw, "tpminer: follow: %v (reconnecting)\n", err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(time.Second):
		}
	}
}

// followOnce runs one connection: subscribe (resuming if we have a last
// event ID), then apply events until the stream ends.
func followOnce(ctx context.Context, w io.Writer, url string, lastID *uint64, hasLast *bool, patterns *[]jobs.Pattern) error {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *hasLast {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	// SSE framing: events are blank-line-separated blocks of
	// "field: value" lines; lines starting with ':' are comments
	// (heartbeats here).
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var id uint64
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || len(data) > 0 {
				if err := applyEvent(w, id, event, data, lastID, hasLast, patterns); err != nil {
					return err
				}
			}
			id, event, data = 0, "", nil
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id: "):
			id, _ = strconv.ParseUint(line[4:], 10, 64)
		case strings.HasPrefix(line, "event: "):
			event = line[7:]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[6:]...)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("stream ended")
}

// applyEvent folds one stream event into the local pattern set and
// prints a one-line account of it.
func applyEvent(w io.Writer, id uint64, event string, data []byte, lastID *uint64, hasLast *bool, patterns *[]jobs.Pattern) error {
	switch event {
	case jobs.EventResult:
		var res jobs.Result
		if err := json.Unmarshal(data, &res); err != nil {
			return fmt.Errorf("malformed result event: %w", err)
		}
		*patterns = res.Patterns
		fmt.Fprintf(w, "result\trun=%d version=%d patterns=%d\n",
			res.RunSeq, res.Version, len(res.Patterns))
	case jobs.EventDelta:
		var d jobs.Delta
		if err := json.Unmarshal(data, &d); err != nil {
			return fmt.Errorf("malformed delta event: %w", err)
		}
		*patterns = jobs.Apply(*patterns, d)
		if got := len(*patterns); got != d.Total {
			// Checksum mismatch: drop local state and the resume cursor so
			// the reconnect starts from a fresh snapshot.
			*patterns = nil
			*hasLast = false
			return fmt.Errorf("delta run=%d: local set has %d patterns, server says %d (resyncing)",
				d.RunSeq, got, d.Total)
		}
		fmt.Fprintf(w, "delta\trun=%d version=%d +%d -%d ~%d total=%d\n",
			d.RunSeq, d.Version, len(d.Added), len(d.Removed), len(d.Changed), d.Total)
	default:
		return nil // unknown event type: skip, stay forward-compatible
	}
	*lastID = id
	*hasLast = true
	return nil
}
