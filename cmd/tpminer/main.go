// Command tpminer mines interval-based sequential patterns from a
// dataset file.
//
// Usage:
//
//	tpminer -in data.csv -minsup 0.05
//	tpminer -in data.lines -type coincidence -minsup 0.1
//	tpminer -in data.csv -algo tprefixspan -mincount 20 -stats
//
// Input formats (chosen by -format, or by file extension): "csv" with
// records "sequence_id,symbol,start,end", or "lines" with one sequence
// per line "id: A[1,5] B[3,9]". Output is one pattern per line,
// "support<TAB>pattern", optionally followed by the recovered Allen
// relations (-relations).
//
// With -follow <url>, tpminer instead subscribes to a tpmd
// continuous-mining job's Server-Sent Events stream, prints one line
// per snapshot/delta, and maintains the pattern set locally —
// reconnecting with Last-Event-ID so the set stays exact across
// connection drops:
//
//	tpminer -follow http://localhost:8080/v1/jobs/ops/events
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"tpminer/internal/baseline"
	"tpminer/internal/core"
	"tpminer/internal/dataio"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/render"
	"tpminer/internal/rules"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tpminer:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tpminer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "input dataset file (default: stdin)")
		format    = fs.String("format", "", "input format: csv or lines (default: by extension)")
		ptype     = fs.String("type", "temporal", "pattern type: temporal or coincidence")
		algo      = fs.String("algo", "ptpminer", "algorithm: ptpminer, tprefixspan, apriori")
		minsup    = fs.Float64("minsup", 0, "relative minimum support in (0,1]")
		mincount  = fs.Int("mincount", 0, "absolute minimum support (overrides -minsup)")
		maxIvs    = fs.Int("max-intervals", 0, "max interval instances per pattern (0 = unlimited)")
		maxElems  = fs.Int("max-elements", 0, "max elements per pattern (0 = unlimited)")
		maxSpan   = fs.Int64("max-span", 0, "max embedding time span, temporal only (0 = unlimited)")
		maxGap    = fs.Int64("max-gap", 0, "max time gap between consecutive elements, temporal only (0 = unlimited)")
		parallel  = fs.Int("parallel", runtime.NumCPU(), "worker goroutines for ptpminer (default: all CPUs; 1 = serial)")
		timeout   = fs.Duration("timeout", 0, "abort mining after this duration, ptpminer only (0 = unlimited)")
		maxPats   = fs.Int("max-patterns", 0, "stop after emitting this many patterns, ptpminer only (0 = unlimited)")
		topk      = fs.Int("topk", 0, "mine only the k best-supported patterns (threshold flags become a floor)")
		closed    = fs.Bool("closed", false, "keep only closed patterns")
		maximal   = fs.Bool("maximal", false, "keep only maximal patterns")
		relations = fs.Bool("relations", false, "append the Allen-relation reading to each temporal pattern")
		renderPat = fs.Bool("render", false, "draw each temporal pattern as an ASCII timeline")
		rulesMin  = fs.Float64("rules", 0, "derive association rules at this minimum confidence (temporal only; 0 = off)")
		jsonOut   = fs.Bool("json", false, "emit JSON instead of the text format")
		match     = fs.String("match", "", "skip mining; count the support of this pattern instead")
		stats     = fs.Bool("stats", false, "print mining statistics to stderr")
		out       = fs.String("out", "", "output file (default: stdout)")
		follow    = fs.String("follow", "", "skip mining; follow a tpmd job's SSE delta stream at this URL (e.g. http://host:8080/v1/jobs/ops/events)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *follow != "" {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		return followJob(ctx, stdout, stderr, *follow)
	}

	db, err := readDatabase(*in, *format)
	if err != nil {
		return err
	}

	if (*timeout > 0 || *maxPats > 0) && *algo != "ptpminer" {
		return fmt.Errorf("-timeout and -max-patterns are only supported with -algo ptpminer")
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := core.Options{
		MinSupport:   *minsup,
		MinCount:     *mincount,
		MaxIntervals: *maxIvs,
		MaxElements:  *maxElems,
		MaxSpan:      *maxSpan,
		MaxGap:       *maxGap,
		Parallel:     *parallel,
		MaxPatterns:  *maxPats,
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *match != "" {
		return matchPattern(w, db, *ptype, *match)
	}

	if *topk > 0 && *algo != "ptpminer" {
		return fmt.Errorf("-topk is only supported with -algo ptpminer")
	}
	if *closed && *maximal {
		return fmt.Errorf("-closed and -maximal are mutually exclusive")
	}

	switch *ptype {
	case "temporal":
		miner, err := temporalMiner(ctx, *algo)
		if err != nil {
			return err
		}
		var (
			rs []pattern.TemporalResult
			st core.Stats
		)
		if *topk > 0 {
			if opt.MinCount == 0 && opt.MinSupport == 0 {
				opt.MinCount = 1
			}
			rs, st, err = core.MineTemporalTopKCtx(ctx, db, *topk, opt)
		} else {
			rs, st, err = miner(db, opt)
		}
		if err != nil {
			return err
		}
		if *closed {
			rs = core.FilterClosed(rs)
		}
		if *maximal {
			rs = core.FilterMaximal(rs)
		}
		switch {
		case *jsonOut:
			if err := dataio.WriteTemporalResultsJSON(w, rs); err != nil {
				return err
			}
		case *renderPat:
			for _, r := range rs {
				if _, err := fmt.Fprintf(w, "support %d: %s\n%s\n", r.Support,
					r.Pattern.RelationSummary(), render.Pattern(r.Pattern, render.Options{})); err != nil {
					return err
				}
			}
		case *relations:
			for _, r := range rs {
				if _, err := fmt.Fprintf(w, "%d\t%s\t%s\n", r.Support, r.Pattern, r.Pattern.RelationSummary()); err != nil {
					return err
				}
			}
		default:
			if err := dataio.WriteTemporalResults(w, rs); err != nil {
				return err
			}
		}
		if *rulesMin > 0 {
			derived, err := rules.Derive(rs, db, rules.Options{MinConfidence: *rulesMin})
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "\n# association rules (min confidence %g)\n%s",
				*rulesMin, rules.Format(derived)); err != nil {
				return err
			}
		}
		printStats(stderr, *stats, len(rs), st)
	case "coincidence":
		miner, err := coincMiner(ctx, *algo)
		if err != nil {
			return err
		}
		var (
			rs []pattern.CoincResult
			st core.Stats
		)
		if *topk > 0 {
			if opt.MinCount == 0 && opt.MinSupport == 0 {
				opt.MinCount = 1
			}
			rs, st, err = core.MineCoincidenceTopKCtx(ctx, db, *topk, opt)
		} else {
			rs, st, err = miner(db, opt)
		}
		if err != nil {
			return err
		}
		if *closed {
			rs = core.FilterClosedCoinc(rs)
		}
		if *maximal {
			rs = core.FilterMaximalCoinc(rs)
		}
		if *jsonOut {
			if err := dataio.WriteCoincResultsJSON(w, rs); err != nil {
				return err
			}
		} else if err := dataio.WriteCoincResults(w, rs); err != nil {
			return err
		}
		printStats(stderr, *stats, len(rs), st)
	default:
		return fmt.Errorf("unknown -type %q (want temporal or coincidence)", *ptype)
	}
	return nil
}

// matchPattern counts the support of one user-supplied pattern and
// prints a small report.
func matchPattern(w io.Writer, db *interval.Database, ptype, text string) error {
	switch ptype {
	case "temporal":
		p, err := pattern.ParseTemporal(text)
		if err != nil {
			return err
		}
		enc, err := pattern.EncodeDatabase(db)
		if err != nil {
			return err
		}
		aligned := pattern.SupportAligned(enc, p)
		any := pattern.SupportAny(db, p)
		_, err = fmt.Fprintf(w, "pattern:     %s\nrelations:   %s\naligned:     %d of %d sequences\nany-binding: %d of %d sequences\n",
			p, p.RelationSummary(), aligned, db.Len(), any, db.Len())
		return err
	case "coincidence":
		p, err := pattern.ParseCoinc(text)
		if err != nil {
			return err
		}
		enc, err := pattern.TransformDatabase(db)
		if err != nil {
			return err
		}
		sup := pattern.SupportCoinc(enc, p)
		_, err = fmt.Fprintf(w, "pattern: %s\nsupport: %d of %d sequences\n", p, sup, db.Len())
		return err
	default:
		return fmt.Errorf("unknown -type %q (want temporal or coincidence)", ptype)
	}
}

func readDatabase(path, format string) (*interval.Database, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if format == "" {
		switch {
		case strings.HasSuffix(path, ".csv"):
			format = "csv"
		default:
			format = "lines"
		}
	}
	switch format {
	case "csv":
		return dataio.ReadCSV(r)
	case "lines":
		return dataio.ReadLines(r)
	default:
		return nil, fmt.Errorf("unknown -format %q (want csv or lines)", format)
	}
}

func temporalMiner(ctx context.Context, algo string) (func(*interval.Database, core.Options) ([]pattern.TemporalResult, core.Stats, error), error) {
	switch algo {
	case "ptpminer":
		return func(db *interval.Database, opt core.Options) ([]pattern.TemporalResult, core.Stats, error) {
			return core.MineTemporalCtx(ctx, db, opt)
		}, nil
	case "tprefixspan":
		return baseline.TPrefixSpan, nil
	case "apriori":
		return baseline.AprioriTemporal, nil
	default:
		return nil, fmt.Errorf("unknown -algo %q for temporal mining", algo)
	}
}

func coincMiner(ctx context.Context, algo string) (func(*interval.Database, core.Options) ([]pattern.CoincResult, core.Stats, error), error) {
	switch algo {
	case "ptpminer":
		return func(db *interval.Database, opt core.Options) ([]pattern.CoincResult, core.Stats, error) {
			return core.MineCoincidenceCtx(ctx, db, opt)
		}, nil
	case "apriori":
		return baseline.AprioriCoincidence, nil
	default:
		return nil, fmt.Errorf("unknown -algo %q for coincidence mining", algo)
	}
}

func printStats(w io.Writer, enabled bool, n int, st core.Stats) {
	if st.Truncated {
		fmt.Fprintf(w, "warning: result truncated by %s; patterns beyond the budget are missing\n", st.TruncatedBy)
	}
	if !enabled {
		return
	}
	fmt.Fprintf(w, "sequences=%d mincount=%d patterns=%d emitted=%d nodes=%d scans=%d pruned(p1_items=%d p2_pair=%d p3_postfix=%d p4_size=%d) elapsed=%s\n",
		st.Sequences, st.MinCount, n, st.Emitted, st.Nodes, st.CandidateScans,
		st.ItemsRemoved, st.PairPruned, st.PostfixPruned, st.SizePruned, st.Elapsed)
	if st.JobsSpawned > 0 {
		fmt.Fprintf(w, "sched: jobs_spawned=%d steals_taken=%d max_queue_depth=%d\n",
			st.JobsSpawned, st.StealsTaken, st.MaxQueueDepth)
	}
}
