// Command benchjson runs the repository's core benchmarks and writes a
// machine-readable summary (BENCH_core.json by default).
//
//	go run ./cmd/benchjson -o BENCH_core.json -benchtime 20x
//
// Four benchmark groups are run:
//
//   - the Fig-1 paper-workload benchmarks at the repo root (Quick scale),
//     compared against the committed pre-refactor baseline in
//     bench/baseline.json to report per-point speedups. The workload is
//     captured twice — pinned at GOMAXPROCS=1 (comparable to the serial
//     baseline) and at GOMAXPROCS=NumCPU — with both sections recorded;
//     on a single-core machine one run serves as both;
//   - the Fig1aSharded benchmarks: the same temporal workload mined
//     through the shard coordinator at shards ∈ {1,2,4,8}, run at
//     GOMAXPROCS=NumCPU. shards=1 is gated against the unsharded
//     reference (-min-shard-ratio) and, on multi-core machines only,
//     shards≈NumCPU is gated against shards=1 (-min-sharded-speedup);
//   - the Fig1aRemote benchmarks: the same sharded workload mined
//     through remote HTTP worker servers over loopback at
//     workers ∈ {1,2,4}, measuring the wire tax of distribution
//     (recorded, not gated — loopback latency is not a deployment's);
//   - the internal/core micro-benchmarks (projection, counting,
//     scheduling), whose ParallelScheduling sub-benchmarks yield the
//     work-stealing-vs-serial speedup on the current machine.
//
// The tool shells out to "go test -bench" and parses the standard
// benchmark output; it needs no dependencies beyond the Go toolchain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// result is one parsed benchmark line, joined with its baseline entry
// when one exists.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	SpeedupVsBaseline   float64 `json:"speedup_vs_baseline,omitempty"`
	AllocsRatio         float64 `json:"allocs_ratio,omitempty"`
}

type baselineFile struct {
	Commit     string `json:"commit"`
	Note       string `json:"note"`
	Benchmarks map[string]struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

type report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS is this process's scheduler width; NumCPU is the
	// machine. They differ when the tool itself is pinned — the workload
	// sections record the GOMAXPROCS they ran under explicitly, so the
	// file no longer conflates "ran on one core" with "machine has one".
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Benchtime  string `json:"benchtime"`

	BaselineCommit string `json:"baseline_commit,omitempty"`
	BaselineNote   string `json:"baseline_note,omitempty"`

	// Workload holds the Fig-1 paper benchmarks pinned at GOMAXPROCS=1,
	// with speedups against the committed (serial) baseline.
	Workload           []result `json:"workload"`
	WorkloadGomaxprocs int      `json:"workload_gomaxprocs"`
	// WorkloadMulti repeats the workload at GOMAXPROCS=NumCPU. On a
	// single-core machine it is the same run recorded twice.
	WorkloadMulti           []result `json:"workload_multi"`
	WorkloadMultiGomaxprocs int      `json:"workload_multi_gomaxprocs"`

	// Sharded holds the Fig1aSharded series (unsharded reference plus
	// shards ∈ {1,2,4,8} through the coordinator) at GOMAXPROCS=NumCPU.
	Sharded []result `json:"sharded"`
	// ShardOverheadVsUnsharded is unsharded ns/op divided by shards=1
	// ns/op: 1.0 means a one-shard coordinator costs nothing.
	ShardOverheadVsUnsharded float64 `json:"shard_overhead_vs_unsharded,omitempty"`
	// ShardedSpeedupAtNumCPU is shards=1 ns/op divided by the ns/op of
	// the largest measured shard count ≤ NumCPU (≈1.0 on a single-core
	// runner, where fan-out cannot help).
	ShardedSpeedupAtNumCPU float64 `json:"sharded_speedup_at_numcpu,omitempty"`

	// Remote holds the Fig1aRemote series — the sharded workload mined
	// through remote HTTP worker servers over loopback — at
	// GOMAXPROCS=NumCPU.
	Remote []result `json:"remote"`
	// RemoteOverheadVsSharded is in-process shards=4 ns/op divided by
	// remote workers=1 ns/op: the fraction of sharded throughput left
	// after the mine round-trips go through HTTP on loopback.
	RemoteOverheadVsSharded float64 `json:"remote_overhead_vs_sharded,omitempty"`

	// Micro holds the internal/core hot-path micro-benchmarks.
	Micro []result `json:"micro"`

	// SchedulingSpeedupVsSerial is ParallelScheduling/Serial ns/op
	// divided by ParallelScheduling/WorkStealing ns/op on this machine
	// (≈1.0 on a single-core runner; the equivalence tests still
	// exercise the scheduler there).
	SchedulingSpeedupVsSerial float64 `json:"scheduling_speedup_vs_serial,omitempty"`

	// MinWorkloadSpeedup is the smallest speedup_vs_baseline across the
	// workload benchmarks — the headline "the serial hot path got at
	// least this much faster" number. MinFig1aSpeedup restricts that to
	// the Fig-1a temporal-mining points.
	MinWorkloadSpeedup float64 `json:"min_workload_speedup,omitempty"`
	MinFig1aSpeedup    float64 `json:"min_fig1a_speedup,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "BENCH_core.json", "output file")
	baselinePath := fs.String("baseline", "bench/baseline.json", "baseline numbers to compute speedups against")
	benchtime := fs.String("benchtime", "20x", "benchtime for the workload benchmarks")
	minSpeedup := fs.Float64("min-speedup", 0, "fail (exit non-zero) if min_workload_speedup drops below this; 0 disables the gate")
	minShardRatio := fs.Float64("min-shard-ratio", 0, "fail if shards=1 throughput drops below this fraction of unsharded; 0 disables the gate")
	minShardedSpeedup := fs.Float64("min-sharded-speedup", 0, "fail if shards≈NumCPU is not this much faster than shards=1; skipped on single-core machines, 0 disables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var base baselineFile
	if raw, err := os.ReadFile(*baselinePath); err == nil {
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parse %s: %w", *baselinePath, err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "benchjson: no baseline (%v); speedups omitted\n", err)
	}

	numCPU := runtime.NumCPU()
	rep := report{
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         numCPU,
		Benchtime:      *benchtime,
		BaselineCommit: base.Commit,
		BaselineNote:   base.Note,
	}

	const workloadPattern = "Fig1aRuntimeVsMinsup/P-TPMiner|Fig1bRuntimeVsMinsupCoincidence/P-TPMiner"
	workload, err := runBench(".", workloadPattern, *benchtime, 1)
	if err != nil {
		return err
	}
	for i := range workload {
		if b, ok := base.Benchmarks[workload[i].Name]; ok && workload[i].NsPerOp > 0 {
			workload[i].BaselineNsPerOp = b.NsPerOp
			workload[i].BaselineAllocsPerOp = b.AllocsPerOp
			workload[i].SpeedupVsBaseline = round2(b.NsPerOp / workload[i].NsPerOp)
			if workload[i].AllocsPerOp > 0 {
				workload[i].AllocsRatio = round2(b.AllocsPerOp / workload[i].AllocsPerOp)
			}
		}
	}
	rep.Workload = workload
	rep.WorkloadGomaxprocs = 1
	if numCPU > 1 {
		if rep.WorkloadMulti, err = runBench(".", workloadPattern, *benchtime, numCPU); err != nil {
			return err
		}
	} else {
		// One core: the pinned run is the multi run.
		rep.WorkloadMulti = workload
	}
	rep.WorkloadMultiGomaxprocs = numCPU

	sharded, err := runBench(".", "Fig1aSharded", *benchtime, numCPU)
	if err != nil {
		return err
	}
	rep.Sharded = sharded
	var unshardedNs float64
	shardNs := map[int]float64{}
	for _, r := range sharded {
		if r.Name == "Fig1aSharded/unsharded" {
			unshardedNs = r.NsPerOp
		}
		var k int
		if _, err := fmt.Sscanf(r.Name, "Fig1aSharded/shards=%d", &k); err == nil {
			shardNs[k] = r.NsPerOp
		}
	}
	if unshardedNs > 0 && shardNs[1] > 0 {
		rep.ShardOverheadVsUnsharded = round2(unshardedNs / shardNs[1])
	}
	bestK := 1
	for k := range shardNs {
		if k <= numCPU && k > bestK {
			bestK = k
		}
	}
	if shardNs[1] > 0 && shardNs[bestK] > 0 {
		rep.ShardedSpeedupAtNumCPU = round2(shardNs[1] / shardNs[bestK])
	}

	remoteRes, err := runBench(".", "Fig1aRemote", *benchtime, numCPU)
	if err != nil {
		return err
	}
	rep.Remote = remoteRes
	var remote1 float64
	for _, r := range remoteRes {
		if r.Name == "Fig1aRemote/workers=1" {
			remote1 = r.NsPerOp
		}
	}
	if shardNs[4] > 0 && remote1 > 0 {
		rep.RemoteOverheadVsSharded = round2(shardNs[4] / remote1)
	}

	micro, err := runBench("./internal/core/", "ProjectTemporal|CountTemporal|ProjectCoinc|ParallelScheduling", "", 0)
	if err != nil {
		return err
	}
	rep.Micro = micro

	var wsNs, serialNs float64
	for _, r := range micro {
		switch r.Name {
		case "ParallelScheduling/WorkStealing":
			wsNs = r.NsPerOp
		case "ParallelScheduling/Serial":
			serialNs = r.NsPerOp
		}
	}
	if wsNs > 0 && serialNs > 0 {
		rep.SchedulingSpeedupVsSerial = round2(serialNs / wsNs)
	}
	for _, r := range rep.Workload {
		if r.SpeedupVsBaseline <= 0 {
			continue
		}
		if rep.MinWorkloadSpeedup == 0 || r.SpeedupVsBaseline < rep.MinWorkloadSpeedup {
			rep.MinWorkloadSpeedup = r.SpeedupVsBaseline
		}
		if strings.HasPrefix(r.Name, "Fig1a") &&
			(rep.MinFig1aSpeedup == 0 || r.SpeedupVsBaseline < rep.MinFig1aSpeedup) {
			rep.MinFig1aSpeedup = r.SpeedupVsBaseline
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d workload, %d sharded, %d remote, %d micro benchmarks",
		*out, len(rep.Workload), len(rep.Sharded), len(rep.Remote), len(rep.Micro))
	if rep.MinWorkloadSpeedup > 0 {
		fmt.Printf("; min speedup vs %s: %.2fx overall, %.2fx on Fig-1a",
			rep.BaselineCommit, rep.MinWorkloadSpeedup, rep.MinFig1aSpeedup)
	}
	if rep.ShardOverheadVsUnsharded > 0 {
		fmt.Printf("; shards=1 at %.2fx of unsharded, %.2fx sharded speedup at %d cores",
			rep.ShardOverheadVsUnsharded, rep.ShardedSpeedupAtNumCPU, numCPU)
	}
	if rep.RemoteOverheadVsSharded > 0 {
		fmt.Printf("; remote workers=1 at %.2fx of in-process sharded", rep.RemoteOverheadVsSharded)
	}
	fmt.Println(")")

	// The regression gate only fires when a baseline supplied speedups:
	// on a tree without bench/baseline.json there is nothing to compare.
	if *minSpeedup > 0 && rep.MinWorkloadSpeedup > 0 && rep.MinWorkloadSpeedup < *minSpeedup {
		return fmt.Errorf("min workload speedup %.2fx below required %.2fx (benchmark regression vs %s)",
			rep.MinWorkloadSpeedup, *minSpeedup, rep.BaselineCommit)
	}
	if *minShardRatio > 0 && rep.ShardOverheadVsUnsharded > 0 && rep.ShardOverheadVsUnsharded < *minShardRatio {
		return fmt.Errorf("shards=1 at %.2fx of unsharded throughput, below required %.2fx (coordinator overhead regression)",
			rep.ShardOverheadVsUnsharded, *minShardRatio)
	}
	// The multi-core scaling gate is meaningless on one core: fan-out
	// cannot beat serial there, only the overhead gate applies.
	if *minShardedSpeedup > 0 && numCPU > 1 && rep.ShardedSpeedupAtNumCPU > 0 && rep.ShardedSpeedupAtNumCPU < *minShardedSpeedup {
		return fmt.Errorf("sharded speedup %.2fx at %d cores, below required %.2fx",
			rep.ShardedSpeedupAtNumCPU, numCPU, *minShardedSpeedup)
	}
	return nil
}

// runBench executes "go test -bench" in pkg and parses its output.
// benchtime may be empty to use the default; gomaxprocs > 0 pins the
// benchmark process via the environment.
func runBench(pkg, pattern, benchtime string, gomaxprocs int) ([]result, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	if gomaxprocs > 0 {
		cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", gomaxprocs))
	}
	cmd.Stderr = os.Stderr
	outRaw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	var rs []result
	for _, line := range strings.Split(string(outRaw), "\n") {
		if r, ok := parseBenchLine(line); ok {
			rs = append(rs, r)
		}
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q in %s", pattern, pkg)
	}
	return rs, nil
}

// parseBenchLine parses one standard benchmark output line:
//
//	BenchmarkName/sub-8   100   12345 ns/op   67 B/op   8 allocs/op
//
// The trailing "-8" GOMAXPROCS suffix is stripped from the name. Extra
// custom metrics (e.g. "39.00 patterns") are ignored.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return result{}, false
	}
	return r, true
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
