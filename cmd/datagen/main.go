// Command datagen generates the synthetic and simulated-real datasets of
// the evaluation.
//
// Usage:
//
//	datagen -dataset quest -d 10000 -c 10 -n 100 -out d10k.csv
//	datagen -dataset asl -size 400 -format lines -out asl.lines
//
// Datasets: quest (Quest-style synthetic), asl, stock, patient, library
// (the simulated real-world workloads). All generators are deterministic
// per -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tpminer/internal/dataio"
	"tpminer/internal/gen"
	"tpminer/internal/interval"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset = fs.String("dataset", "quest", "quest, asl, stock, patient, or library")
		d       = fs.Int("d", 1000, "quest: number of sequences |D|")
		c       = fs.Int("c", 10, "quest: average intervals per sequence |C|")
		n       = fs.Int("n", 100, "quest: alphabet size |N|")
		size    = fs.Int("size", 400, "asl/stock/patient/library: number of sequences")
		seed    = fs.Int64("seed", 42, "random seed")
		format  = fs.String("format", "", "output format: csv or lines (default: by extension, else csv)")
		out     = fs.String("out", "", "output file (default: stdout)")
		quiet   = fs.Bool("q", false, "suppress the summary line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		db   *interval.Database
		note string
	)
	switch *dataset {
	case "quest":
		cfg := gen.QuestConfig{NumSequences: *d, AvgIntervals: *c, NumSymbols: *n, Seed: *seed}
		qdb, planted, err := gen.Quest(cfg)
		if err != nil {
			return err
		}
		db = qdb
		note = fmt.Sprintf("%s, %d planted arrangements", cfg.Name(), len(planted))
	case "asl":
		adb, wh, neg, topic := gen.ASL(gen.ASLConfig{NumUtterances: *size, Seed: *seed})
		db = adb
		note = fmt.Sprintf("wh=%d neg=%d topic=%d", wh, neg, topic)
	case "stock":
		sdb, rallies, selloffs := gen.Stock(gen.StockConfig{NumWindows: *size, Seed: *seed})
		db = sdb
		note = fmt.Sprintf("rallies=%d selloffs=%d", rallies, selloffs)
	case "patient":
		pdb, episodes := gen.Patients(gen.PatientConfig{NumPatients: *size, Seed: *seed})
		db = pdb
		var parts []string
		for _, e := range episodes {
			parts = append(parts, fmt.Sprintf("%s x%d", e.Pattern, e.Embeddings))
		}
		note = "episodes: " + strings.Join(parts, "; ")
	case "library":
		ldb, students, series := gen.Library(gen.LibraryConfig{NumBorrowers: *size, Seed: *seed})
		db = ldb
		note = fmt.Sprintf("students=%d series-readers=%d", students, series)
	default:
		return fmt.Errorf("unknown -dataset %q", *dataset)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "" {
		if strings.HasSuffix(*out, ".lines") {
			*format = "lines"
		} else {
			*format = "csv"
		}
	}
	switch *format {
	case "csv":
		if err := dataio.WriteCSV(w, db); err != nil {
			return err
		}
	case "lines":
		if err := dataio.WriteLines(w, db); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q (want csv or lines)", *format)
	}

	if !*quiet {
		st := db.Summarize()
		fmt.Fprintf(stderr, "datagen: %s: %d sequences, %d intervals, %d symbols (%s)\n",
			*dataset, st.Sequences, st.Intervals, st.Symbols, note)
	}
	return nil
}
