package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tpminer/internal/dataio"
)

func TestDatagenQuestCSV(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-dataset", "quest", "-d", "30", "-c", "5", "-n", "10"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	db, err := dataio.ReadCSV(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if db.Len() != 30 {
		t.Errorf("sequences = %d", db.Len())
	}
	if !strings.Contains(errw.String(), "30 sequences") {
		t.Errorf("summary missing: %q", errw.String())
	}
}

func TestDatagenAllDatasetsAndFormats(t *testing.T) {
	for _, ds := range []string{"asl", "stock", "patient", "library"} {
		for _, format := range []string{"csv", "lines"} {
			var out, errw bytes.Buffer
			args := []string{"-dataset", ds, "-size", "20", "-format", format, "-q"}
			if err := run(args, &out, &errw); err != nil {
				t.Fatalf("%s/%s: %v", ds, format, err)
			}
			var err error
			if format == "csv" {
				_, err = dataio.ReadCSV(strings.NewReader(out.String()))
			} else {
				_, err = dataio.ReadLines(strings.NewReader(out.String()))
			}
			if err != nil {
				t.Errorf("%s/%s output not parseable: %v", ds, format, err)
			}
			if errw.Len() != 0 {
				t.Errorf("%s/%s: -q still printed %q", ds, format, errw.String())
			}
		}
	}
}

func TestDatagenToFileWithExtensionDetection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.lines")
	var out, errw bytes.Buffer
	if err := run([]string{"-dataset", "quest", "-d", "5", "-out", path, "-q"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dataio.ReadLines(bytes.NewReader(data)); err != nil {
		t.Errorf("extension-detected lines format not parseable: %v", err)
	}
}

func TestDatagenDeterministic(t *testing.T) {
	gen := func() string {
		var out, errw bytes.Buffer
		if err := run([]string{"-dataset", "asl", "-size", "10", "-seed", "3", "-q"}, &out, &errw); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Error("same seed produced different output")
	}
}

func TestDatagenErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-dataset", "bogus"},
		{"-dataset", "quest", "-format", "bogus"},
	} {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
