// Command experiments runs the evaluation suite and prints every table
// and figure series of the reproduction (see DESIGN.md, "Evaluation
// plan", and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments                   # full suite at paper scale
//	experiments -quick            # scaled-down suite (seconds)
//	experiments -exp fig1a,fig3   # selected experiments
//	experiments -csv              # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tpminer/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exps  = fs.String("exp", "all", "comma-separated experiment ids: fig1a,fig1b,fig2a,fig2b,fig3,tab1,tab2,tab3,ext1 or all")
		quick = fs.Bool("quick", false, "run at quick scale (seconds instead of minutes)")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		seed  = fs.Int64("seed", 42, "random seed for all workloads")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc := experiment.Paper
	if *quick {
		sc = experiment.Quick
	}
	sc.Seed = *seed

	type runner func() (*experiment.Table, error)
	all := map[string]runner{
		"fig1a": func() (*experiment.Table, error) { return experiment.Fig1a(sc) },
		"fig1b": func() (*experiment.Table, error) { return experiment.Fig1b(sc) },
		"fig2a": func() (*experiment.Table, error) { return experiment.Fig2a(sc) },
		"fig2b": func() (*experiment.Table, error) { return experiment.Fig2b(sc) },
		"fig3":  func() (*experiment.Table, error) { return experiment.Fig3(sc) },
		"tab1":  func() (*experiment.Table, error) { return experiment.Tab1(sc) },
		"tab2":  func() (*experiment.Table, error) { return experiment.Tab2(sc.Seed, *quick) },
		"tab3":  func() (*experiment.Table, error) { return experiment.Tab3(sc.Seed, *quick, 5) },
		"ext1":  func() (*experiment.Table, error) { return experiment.Ext1(sc) },
	}
	order := []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig3", "tab1", "tab2", "tab3", "ext1"}

	var selected []string
	if *exps == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			if _, ok := all[id]; !ok {
				return fmt.Errorf("unknown experiment %q (want one of %s)", id, strings.Join(order, ", "))
			}
			selected = append(selected, id)
		}
	}

	fmt.Fprintf(stderr, "experiments: scale=%s seed=%d\n", sc.Name, sc.Seed)
	for _, id := range selected {
		tbl, err := all[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *csv {
			fmt.Fprintf(stdout, "# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Fprintf(stdout, "%s\n", tbl.Format())
		}
	}
	return nil
}
