package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExperimentsSelected(t *testing.T) {
	var out, errw bytes.Buffer
	// fig2b at quick scale is the cheapest single experiment.
	if err := run([]string{"-quick", "-exp", "fig2b"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 2b") {
		t.Errorf("missing table title:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "scale=quick") {
		t.Errorf("missing scale banner: %q", errw.String())
	}
}

func TestExperimentsCSVOutput(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-quick", "-exp", "fig2b", "-csv"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "|C|,P-TPMiner(ms)") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-exp", "bogus"}, &out, &errw); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentsMultipleIDs(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-quick", "-exp", "fig2b,tab2"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 2b", "Tab 2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in output", want)
		}
	}
}
