// Command errlint is a small errcheck-style linter: it reports call
// statements that discard an error result. The durability layers
// (internal/persist, internal/blob) are exactly the code where a
// silently dropped error becomes data loss — the Inspect size bug and
// the ignored directory-fsync result both shipped that way — so `make
// verify` runs this over them and fails on any finding.
//
//	go run ./cmd/errlint ./internal/persist ./internal/blob
//
// Each argument is a directory; its package and every nested package
// are type-checked (tests excluded) and scanned. A finding is an
// expression statement whose call returns an error (alone or in a
// tuple) that nothing consumes. Assigning to _ is deliberate and not
// flagged; functions whose contract is best-effort should take that
// route with a comment.
//
// The linter is self-contained on purpose — go/types plus the source
// importer, no module downloads — so it runs in the same sandbox as the
// build.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: errlint <package-dir> [<package-dir> ...]")
		os.Exit(2)
	}
	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "errlint:", err)
		os.Exit(2)
	}
	l := &linter{
		fset:   token.NewFileSet(),
		root:   root,
		module: module,
		cache:  map[string]*types.Package{},
	}
	l.fallback = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)

	var dirs []string
	for _, arg := range os.Args[1:] {
		sub, err := packageDirs(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "errlint:", err)
			os.Exit(2)
		}
		dirs = append(dirs, sub...)
	}
	findings := 0
	for _, dir := range dirs {
		n, err := l.lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "errlint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "errlint: %d unchecked error(s)\n", findings)
		os.Exit(1)
	}
}

// findModule locates go.mod upward from the working directory and
// returns the module root and path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// packageDirs expands one argument into every directory under it that
// holds non-test Go files.
func packageDirs(arg string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

type linter struct {
	fset     *token.FileSet
	root     string // module root directory
	module   string // module path
	cache    map[string]*types.Package
	fallback types.ImporterFrom
}

// Import / ImportFrom make the linter its own importer: module-local
// packages are type-checked from source in the repo, everything else
// (the stdlib) goes through the compiler's source importer.
func (l *linter) Import(path string) (*types.Package, error) { return l.ImportFrom(path, "", 0) }

func (l *linter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if rel, ok := strings.CutPrefix(path, l.module+"/"); ok {
		pkg, _, err := l.check(filepath.Join(l.root, rel), path, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.fallback.ImportFrom(path, dir, mode)
}

// check parses and type-checks the non-test files of one directory. If
// info is non-nil it is filled for the lint pass.
func (l *linter) check(dir, importPath string, info *types.Info) (*types.Package, []*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	return pkg, files, err
}

// lintDir type-checks one directory and reports unchecked errors.
func (l *linter) lintDir(dir string) (int, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return 0, err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil {
		return 0, err
	}
	importPath := l.module + "/" + filepath.ToSlash(rel)
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	pkg, files, err := l.check(abs, importPath, info)
	if err != nil {
		return 0, err
	}
	l.cache[importPath] = pkg

	findings := 0
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if returnsError(info.Types[call].Type) {
				pos := l.fset.Position(call.Pos())
				fmt.Printf("%s: result of %s is never checked (returns error)\n",
					pos, calleeName(call))
				findings++
			}
			return true
		})
	}
	return findings, nil
}

// returnsError reports whether a call's result type is, or contains, an
// error.
func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// calleeName renders the called expression for the report.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	default:
		return "call"
	}
}
