// Command tpmd runs the mining HTTP service.
//
//	tpmd -addr :8080 -max-mines 8 -mine-timeout 30s
//
// Endpoints, all under /v1 (see internal/server for the full API; the
// unversioned paths remain as deprecated aliases):
//
//	PUT    /v1/datasets/{name}         upload a dataset (csv/lines/json body)
//	POST   /v1/datasets/{name}/events  stream NDJSON event intervals (batched appends)
//	POST   /v1/datasets/{name}/mine    mine patterns; mode temporal, coincidence, or rules
//	POST   /v1/jobs                    create a continuous-mining job
//	GET    /v1/jobs/{id}/events        job delta stream (Server-Sent Events)
//	GET    /v1/routes                  the machine-readable route table
//
// Streaming: -ingest-flush-count and -ingest-flush-age bound how many
// events (and how long) the ingest route buffers before flushing a
// versioned append. Continuous-mining jobs re-mine a dataset when it
// changes (debounced by -job-debounce or the job's debounce_ms) and
// publish pattern deltas over SSE; -sse-queue bounds each subscriber's
// event queue (slow consumers are dropped, not allowed to stall the
// job) and -sse-heartbeat paces keep-alive comments. Jobs and their
// latest results are journaled with the datasets, so with persistence
// on they survive restarts.
//
// The server is resource-bounded: -max-mines caps concurrent mining
// jobs (excess requests get 429), -mine-timeout is the hard per-job
// deadline (requests may lower it via timeout_ms), -max-parallel caps
// the per-request worker count (requests ask via "parallel"), and
// -max-body caps request bodies. On SIGINT or SIGTERM the server stops
// accepting connections and drains in-flight requests — mining jobs
// finish within their deadline — for up to -grace before exiting.
//
// Sharded mining: -shards partitions each dataset into that many
// size-balanced sequence shards (0 = GOMAXPROCS, 1 = unsharded) and
// mines them scatter-gather with an exact merge, so responses, cache
// keys, and ETags are byte-identical to unsharded mining.
// -shard-min-seqs keeps small datasets on fewer shards (no fan-out
// overhead below ~16 sequences per shard by default). Per-shard
// timings, fan-out counts, and partition skew appear as tpmd_shard_*
// metrics.
//
// Distributed mining: -role=worker turns the process into a mining
// worker — it serves only /v1/worker/* (shard push, mine, count,
// health) and holds no datasets of its own. A -role=server process
// given -workers=http://w1:9090,http://w2:9090 scatters the shards of
// whole-dataset mines across those workers: each shard's sub-database
// is pushed once per dataset version (content-addressed, gzip wire
// encoding), mined remotely, and merged exactly as in-process sharding
// would — an unreachable worker's shard is transparently re-mined
// locally, so results, ETags, and cache keys never change. Worker
// health is probed every -worker-probe-interval and reported on
// GET /v1/readyz; per-dataset placement appears on
// GET /v1/datasets/{name}/shards and traffic as tpmd_remote_* metrics.
//
// Complete mine/rules results are memoized in a byte-budgeted LRU and
// concurrent identical requests collapse into one miner run
// (single-flight); -cache-budget sizes the cache and -no-cache disables
// both. Responses carry strong ETags and honor If-None-Match with 304.
//
// Durability: with -data-dir (or -store-url) the datasets survive
// restarts. Every mutation (PUT, append, DELETE) commits to a
// CRC32C-checksummed write-ahead log before it is acknowledged; once
// the log passes -wal-max-bytes the server cuts a snapshot and
// compacts. On boot the newest valid snapshot is loaded and the WAL
// tail replayed (a torn final record — the signature of a crash
// mid-write — is truncated away), restoring dataset contents, versions,
// and ETag continuity. -fsync picks the durability/latency trade-off:
// always (fsync per record), interval (background flush every 100ms),
// never (OS decides). Without either flag the server is purely
// in-memory, as before.
//
// Storage backends: persistence does all its I/O through a pluggable
// blob store (internal/blob). -store-url selects the backend by URL —
// file:///var/lib/tpmd for the classic directory layout (-data-dir X is
// shorthand for -store-url file://X), mem://name for ephemeral
// process-shared storage (durability semantics without disk; data dies
// with the process no matter what -fsync says). When both flags are
// set, -store-url wins. -inspect-wal <dir-or-url> dumps a store's
// record headers and flags the first corrupt frame, then exits.
//
// Fault tolerance: transient journal I/O errors are retried with
// jittered backoff; repeated or permanent failures (disk full,
// read-only filesystem) trip a circuit breaker and the server degrades
// to read-only — mutations get 503 "degraded" with Retry-After while
// reads and mining keep serving — until a background probe (every
// -probe-interval) proves the disk healthy again and restores
// read-write automatically. -breaker-threshold tunes the trip point.
// GET /v1/healthz stays 200 and reports the mode; GET /v1/readyz
// returns 503 while degraded so load balancers can drain writes.
// -fault-profile (with -fault-seed) injects persistence faults for
// chaos drills; never use it in production.
//
// Observability: GET /v1/metrics serves Prometheus text exposition
// (request, cache, mining-job, miner-search, and persistence counters;
// see internal/server). Logs are structured via log/slog; -log-format
// selects text or json and -log-level sets the minimum level.
//
// For live profiling, -pprof-addr starts a second listener serving
// net/http/pprof (e.g. -pprof-addr localhost:6060). It is off by
// default and should never be exposed publicly.
//
// Example session:
//
//	go run ./cmd/datagen -dataset patient -size 200 -q | \
//	    curl -sS -X PUT --data-binary @- -H 'Content-Type: text/csv' \
//	         localhost:8080/v1/datasets/patients
//	curl -sS localhost:8080/v1/datasets/patients/mine \
//	     -d '{"min_support":0.15,"max_intervals":3}' | jq .
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux, served only by -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tpminer/internal/blob"
	"tpminer/internal/obs"
	"tpminer/internal/persist"
	"tpminer/internal/remote"
	"tpminer/internal/resilience"
	"tpminer/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tpmd:", err)
		os.Exit(1)
	}
}

// runWorker serves the worker role: the /v1/worker/* surface (shard
// push, mine, count, health, metrics) with the same graceful drain as
// the server role. Workers hold only pushed shard payloads — all state
// is re-pushable — so a worker restart costs one re-push per shard,
// never data.
func runWorker(addr string, mineTimeout, grace time.Duration, logger *slog.Logger) error {
	ws := remote.NewWorkerServer(remote.WorkerConfig{Logger: logger, MineTimeout: mineTimeout})
	srv := &http.Server{
		Addr:              addr,
		Handler:           ws.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("worker listening", "addr", addr)
		errc <- srv.ListenAndServe()
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Info("signal received, draining worker requests", "grace", grace.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Info("worker drained, exiting")
		return nil
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpmd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxMines := fs.Int("max-mines", 0, "max concurrent mining jobs (0 = GOMAXPROCS); excess requests get 429")
	mineTimeout := fs.Duration("mine-timeout", server.DefaultMaxMineDuration, "hard per-job mining deadline")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes")
	maxParallel := fs.Int("max-parallel", 0, "ceiling on per-request mining parallelism (0 = GOMAXPROCS)")
	cacheBudget := fs.Int64("cache-budget", server.DefaultCacheBudgetBytes, "byte budget for the mine-result cache")
	noCache := fs.Bool("no-cache", false, "disable result caching and single-flight request coalescing")
	grace := fs.Duration("grace", 30*time.Second, "shutdown grace period for draining in-flight requests")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; keep it loopback-only)")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	dataDir := fs.String("data-dir", "", "directory for the dataset WAL and snapshots (empty = in-memory only); shorthand for -store-url file://<dir>")
	storeURL := fs.String("store-url", "", "blob-store URL for persistence, e.g. file:///var/lib/tpmd or mem://scratch (overrides -data-dir)")
	fsyncMode := fs.String("fsync", persist.FsyncAlways, "WAL fsync policy with persistence: always, interval, or never")
	walMaxBytes := fs.Int64("wal-max-bytes", persist.DefaultWALMaxBytes, "WAL size that triggers snapshot + compaction")
	inspectWAL := fs.String("inspect-wal", "", "dump the WAL/snapshot record headers in this data dir (or store URL) and exit")
	probeInterval := fs.Duration("probe-interval", time.Second, "how often a degraded server probes persistence for recovery")
	breakerThreshold := fs.Int("breaker-threshold", 0, "weighted persistence-failure score that trips the breaker into read-only mode (0 = default)")
	faultProfile := fs.String("fault-profile", "", "DEV ONLY: inject persistence faults, e.g. 'wal_write:eio:0.1,snapshot_sync:latency:0.5:20ms'")
	faultSeed := fs.Int64("fault-seed", 1, "seed for the -fault-profile randomness (deterministic per seed)")
	role := fs.String("role", "server", "process role: server (the full API) or worker (a mining worker serving /v1/worker/*)")
	workers := fs.String("workers", "", "comma-separated worker base URLs to distribute shard mining across, e.g. http://w1:9090,http://w2:9090 (server role only)")
	workerProbe := fs.Duration("worker-probe-interval", 0, "worker health-probe cadence (0 = built-in default)")
	shards := fs.Int("shards", 0, "mining shards per dataset (0 = GOMAXPROCS, 1 = unsharded); results are identical either way")
	shardMinSeqs := fs.Int("shard-min-seqs", server.DefaultShardMinSeqs, "minimum average sequences per shard; caps the shard count on small datasets")
	ingestFlushCount := fs.Int("ingest-flush-count", server.DefaultIngestFlushCount, "buffered ingest events that trigger an inline flush into a versioned append")
	ingestFlushAge := fs.Duration("ingest-flush-age", server.DefaultIngestFlushAge, "max age of a buffered ingest event before a timer flush")
	jobDebounce := fs.Duration("job-debounce", 0, "default debounce between a dataset change and a job re-mine (0 = built-in default; jobs may override per-spec)")
	sseQueue := fs.Int("sse-queue", 0, "per-subscriber SSE event queue; a subscriber that falls this far behind is dropped (0 = built-in default)")
	sseHeartbeat := fs.Duration("sse-heartbeat", server.DefaultSSEHeartbeat, "interval between SSE heartbeat comments on idle job streams")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspectWAL != "" {
		if strings.Contains(*inspectWAL, "://") {
			bs, err := blob.NewStore(*inspectWAL)
			if err != nil {
				return err
			}
			defer bs.Close()
			return persist.InspectStore(bs, *inspectWAL, os.Stdout)
		}
		return persist.Inspect(*inspectWAL, os.Stdout)
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	switch *role {
	case "server":
	case "worker":
		return runWorker(*addr, *mineTimeout, *grace, logger)
	default:
		return fmt.Errorf("-role: unknown role %q (want server or worker)", *role)
	}
	var workerList []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workerList = append(workerList, w)
		}
	}
	budget := *cacheBudget
	if *noCache || budget <= 0 {
		budget = -1
	}
	var injector resilience.Injector
	if *faultProfile != "" {
		prof, err := resilience.ParseProfile(*faultProfile, *faultSeed)
		if err != nil {
			return fmt.Errorf("-fault-profile: %w", err)
		}
		injector = prof
		logger.Warn("FAULT INJECTION ACTIVE: persistence I/O will fail on purpose; never use -fault-profile in production",
			"profile", *faultProfile, "seed", *faultSeed)
	}
	// -store-url names the persistence backend directly; -data-dir is
	// shorthand for file://<dir>. Explicit URL wins when both are set.
	url := *storeURL
	if url == "" && *dataDir != "" {
		url = "file://" + *dataDir
	}
	if *storeURL != "" && *dataDir != "" {
		logger.Warn("both -store-url and -data-dir set; using -store-url", "store_url", *storeURL, "data_dir", *dataDir)
	}
	var pstore *persist.Store
	if url != "" {
		pstore, err = persist.OpenURL(url, persist.Options{
			FsyncMode:   *fsyncMode,
			WALMaxBytes: *walMaxBytes,
			Logger:      logger,
			Injector:    injector,
		})
		if err != nil {
			return err
		}
	}
	// closePersist flushes and fsyncs the WAL and cuts a final snapshot;
	// it must run after the HTTP drain so every acknowledged mutation is
	// on disk before the process exits.
	closePersist := func() {
		if pstore == nil {
			return
		}
		if err := pstore.Close(); err != nil {
			logger.Error("persist close failed", "error", err)
			return
		}
		logger.Info("persist flushed and snapshotted", "store", url)
	}
	svc := server.NewWithConfig(logger, server.Config{
		MaxConcurrentMines:      *maxMines,
		MaxMineDuration:         *mineTimeout,
		MaxBodyBytes:            *maxBody,
		MaxParallel:             *maxParallel,
		CacheBudgetBytes:        budget,
		Persist:                 pstore,
		BreakerFailureThreshold: *breakerThreshold,
		RecoveryProbeInterval:   *probeInterval,
		Shards:                  *shards,
		ShardMinSeqs:            *shardMinSeqs,
		IngestFlushCount:        *ingestFlushCount,
		IngestFlushAge:          *ingestFlushAge,
		JobDebounce:             *jobDebounce,
		SSESubscriberQueue:      *sseQueue,
		SSEHeartbeat:            *sseHeartbeat,
		Workers:                 workerList,
		WorkerProbeInterval:     *workerProbe,
	})
	// Stop the background recovery prober before the persist store is
	// closed underneath it.
	defer svc.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	// The pprof listener is separate from the API listener so the
	// profiling surface is never reachable through the public address.
	// It dies with the process; no graceful drain needed.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "error", err)
			}
		}()
	}

	// SIGTERM is what container orchestrators send; treat it exactly
	// like Ctrl-C so both get a graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		closePersist()
		return err
	case <-ctx.Done():
		logger.Info("signal received, draining in-flight requests", "grace", grace.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// Even a botched drain must not lose acknowledged
			// mutations: flush the WAL before reporting the failure.
			closePersist()
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			closePersist()
			return err
		}
		closePersist()
		logger.Info("drained, exiting")
		return nil
	}
}
