// Command tpmd runs the mining HTTP service.
//
//	tpmd -addr :8080
//
// Endpoints (see internal/server for the full API):
//
//	PUT    /datasets/{name}        upload a dataset (csv/lines/json body)
//	POST   /datasets/{name}/mine   mine patterns, JSON request/response
//	POST   /datasets/{name}/rules  derive temporal association rules
//
// Example session:
//
//	go run ./cmd/datagen -dataset patient -size 200 -q | \
//	    curl -sS -X PUT --data-binary @- -H 'Content-Type: text/csv' \
//	         localhost:8080/datasets/patients
//	curl -sS localhost:8080/datasets/patients/mine \
//	     -d '{"min_support":0.15,"max_intervals":3}' | jq .
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"tpminer/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tpmd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpmd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "tpmd: ", log.LstdFlags)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(logger).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
