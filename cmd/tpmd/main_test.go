package main

import (
	"net"
	"strings"
	"testing"
)

func TestRunFlagError(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunListenError(t *testing.T) {
	// Occupy a port so ListenAndServe fails immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = run([]string{"-addr", ln.Addr().String()})
	if err == nil || !strings.Contains(err.Error(), "address already in use") {
		t.Errorf("expected bind failure, got %v", err)
	}
}
