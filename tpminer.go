// Package tpminer is a Go implementation of P-TPMiner ("Mining temporal
// patterns in interval-based data", Chen, Peng & Lee, ICDE 2016): a
// projection-based miner that discovers two types of interval-based
// sequential patterns from databases of event-interval sequences.
//
// # Data model
//
// An event interval is a symbol active over a closed time span
// [Start, End]. A Sequence is one entity's intervals (a patient's active
// diagnoses, one utterance's gestures, ...), a Database a set of
// sequences. Pattern support counts supporting sequences.
//
// # The two pattern types
//
// A TemporalPattern captures the exact arrangement of a set of
// intervals — equivalent to all pairwise Allen relations — as an ordered
// sequence of endpoint sets ("A+ (A- B+) B-" reads: A starts; A ends
// exactly when B starts; B ends — i.e. A meets B). A CoincidencePattern
// is the coarser view: an ordered sequence of symbol sets that are
// simultaneously active ("{A} {A B} {B}").
//
// # Quick start
//
//	db := tpminer.NewDatabase(
//	    []tpminer.Interval{{Symbol: "fever", Start: 2, End: 9},
//	                       {Symbol: "infection", Start: 0, End: 14}},
//	    ...,
//	)
//	results, stats, err := tpminer.MineTemporalPatterns(db, tpminer.Options{MinSupport: 0.1})
//	for _, r := range results {
//	    fmt.Printf("%d  %s   (%s)\n", r.Support, r.Pattern, r.Pattern.RelationSummary())
//	}
//
// See the examples/ directory for complete programs and DESIGN.md for
// the algorithm, its pruning techniques, and the containment semantics.
package tpminer

import (
	"context"

	"tpminer/internal/core"
	"tpminer/internal/dataio"
	"tpminer/internal/endpoint"
	"tpminer/internal/incremental"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/render"
	"tpminer/internal/rules"
	"tpminer/internal/window"
)

// Re-exported data-model types. See the respective internal packages for
// full method documentation; all methods are available on the aliases.
type (
	// Time is the discrete timestamp type of interval endpoints.
	Time = interval.Time
	// Interval is one event interval: Symbol active over [Start, End].
	Interval = interval.Interval
	// Sequence is one entity's ordered list of event intervals.
	Sequence = interval.Sequence
	// Database is a set of sequences; support is counted per sequence.
	Database = interval.Database
	// Relation is one of Allen's thirteen interval relations.
	Relation = interval.Relation

	// Endpoint is one end of an occurrence-indexed interval ("A+", "A-").
	Endpoint = endpoint.Endpoint

	// TemporalPattern is an arrangement pattern in endpoint
	// representation.
	TemporalPattern = pattern.Temporal
	// CoincidencePattern is an ordered sequence of co-active symbol sets.
	CoincidencePattern = pattern.Coinc
	// TemporalResult pairs a temporal pattern with its support.
	TemporalResult = pattern.TemporalResult
	// CoincidenceResult pairs a coincidence pattern with its support.
	CoincidenceResult = pattern.CoincResult

	// Options configures a mining run; set MinSupport or MinCount.
	Options = core.Options
	// Stats reports search-tree and pruning counters of a run.
	Stats = core.Stats
)

// Allen's thirteen relations, re-exported for pattern interpretation.
const (
	Before       = interval.Before
	Meets        = interval.Meets
	Overlaps     = interval.Overlaps
	Starts       = interval.Starts
	During       = interval.During
	Finishes     = interval.Finishes
	Equals       = interval.Equals
	After        = interval.After
	MetBy        = interval.MetBy
	OverlappedBy = interval.OverlappedBy
	StartedBy    = interval.StartedBy
	Contains     = interval.Contains
	FinishedBy   = interval.FinishedBy
)

// NewDatabase builds a database from bare interval slices, assigning
// sequence IDs "s0", "s1", ....
func NewDatabase(seqs ...[]Interval) *Database { return interval.NewDatabase(seqs...) }

// Relate computes the Allen relation of a with respect to b.
func Relate(a, b Interval) Relation { return interval.Relate(a, b) }

// MineTemporalPatterns discovers all frequent complete temporal patterns
// of the database with P-TPMiner. Results are normalized and sorted by
// descending support.
func MineTemporalPatterns(db *Database, opt Options) ([]TemporalResult, Stats, error) {
	return core.MineTemporal(db, opt)
}

// MineCoincidencePatterns discovers all frequent coincidence patterns of
// the database with P-TPMiner.
func MineCoincidencePatterns(db *Database, opt Options) ([]CoincidenceResult, Stats, error) {
	return core.MineCoincidence(db, opt)
}

// MineTemporalPatternsCtx is MineTemporalPatterns with cooperative
// cancellation: the search polls ctx and aborts promptly with ctx.Err()
// when it is cancelled or its deadline passes. Budget stops
// (Options.MaxPatterns, Options.TimeBudget) are not errors — they return
// the patterns found so far with Stats.Truncated set.
func MineTemporalPatternsCtx(ctx context.Context, db *Database, opt Options) ([]TemporalResult, Stats, error) {
	return core.MineTemporalCtx(ctx, db, opt)
}

// MineCoincidencePatternsCtx is the coincidence analogue of
// MineTemporalPatternsCtx.
func MineCoincidencePatternsCtx(ctx context.Context, db *Database, opt Options) ([]CoincidenceResult, Stats, error) {
	return core.MineCoincidenceCtx(ctx, db, opt)
}

// MineTopKTemporalPatterns returns the k best-supported temporal
// patterns, raising the support threshold dynamically during the search.
// opt.MinCount/MinSupport, when set, act as a floor.
func MineTopKTemporalPatterns(db *Database, k int, opt Options) ([]TemporalResult, Stats, error) {
	return core.MineTemporalTopK(db, k, opt)
}

// MineTopKCoincidencePatterns is the coincidence analogue of
// MineTopKTemporalPatterns.
func MineTopKCoincidencePatterns(db *Database, k int, opt Options) ([]CoincidenceResult, Stats, error) {
	return core.MineCoincidenceTopK(db, k, opt)
}

// ClosedPatterns keeps only the closed temporal patterns of a result
// set: those with no proper super-pattern of equal support.
func ClosedPatterns(rs []TemporalResult) []TemporalResult {
	return core.FilterClosed(rs)
}

// MaximalPatterns keeps only the maximal temporal patterns: those with
// no proper frequent super-pattern at all.
func MaximalPatterns(rs []TemporalResult) []TemporalResult {
	return core.FilterMaximal(rs)
}

// ClosedCoincidencePatterns keeps only the closed coincidence patterns.
func ClosedCoincidencePatterns(rs []CoincidenceResult) []CoincidenceResult {
	return core.FilterClosedCoinc(rs)
}

// MaximalCoincidencePatterns keeps only the maximal coincidence
// patterns.
func MaximalCoincidencePatterns(rs []CoincidenceResult) []CoincidenceResult {
	return core.FilterMaximalCoinc(rs)
}

// ParseTemporalPattern parses the textual pattern form, e.g.
// "A+ (A- B+) B-".
func ParseTemporalPattern(s string) (TemporalPattern, error) {
	return pattern.ParseTemporal(s)
}

// ParseCoincidencePattern parses the textual form, e.g. "{A B} {C}".
func ParseCoincidencePattern(s string) (CoincidencePattern, error) {
	return pattern.ParseCoinc(s)
}

// Support counts the sequences of db that contain the temporal pattern
// under the miner's occurrence-aligned semantics.
func Support(db *Database, p TemporalPattern) (int, error) {
	enc, err := pattern.EncodeDatabase(db)
	if err != nil {
		return 0, err
	}
	return pattern.SupportAligned(enc, p), nil
}

// SupportAnyBinding counts supporting sequences under the permissive
// any-binding semantics (each pattern interval may map to any
// same-symbol interval); see DESIGN.md "Duplicate-symbol semantics".
func SupportAnyBinding(db *Database, p TemporalPattern) int {
	return pattern.SupportAny(db, p)
}

// Incremental mining: maintain frequent temporal patterns over a
// growing database (see internal/incremental for the buffer technique).
type (
	// IncrementalMiner maintains frequent temporal patterns across
	// appends; create with NewIncrementalMiner.
	IncrementalMiner = incremental.Miner
	// IncrementalStats reports append/re-mine counters.
	IncrementalStats = incremental.IncStats
)

// NewIncrementalMiner creates an incremental miner with the given
// support options and buffer ratio µ in (0, 1]; smaller µ buffers more
// semi-frequent patterns and re-mines less often.
func NewIncrementalMiner(opt Options, bufferRatio float64) (*IncrementalMiner, error) {
	return incremental.NewMiner(opt, bufferRatio)
}

// Windowing: mine a single long sequence by slicing it into windows;
// support then counts windows.
type (
	// WindowConfig sizes the sliding windows (Width, Stride, Policy).
	WindowConfig = window.Config
	// WindowPolicy decides how border-crossing intervals enter windows.
	WindowPolicy = window.Policy
)

// Window border policies.
const (
	// WindowClip trims border-crossing intervals to the window.
	WindowClip = window.Clip
	// WindowWholeIfStarts keeps intervals whole iff they start inside.
	WindowWholeIfStarts = window.WholeIfStarts
	// WindowContainedOnly keeps only fully contained intervals.
	WindowContainedOnly = window.ContainedOnly
)

// SlideWindows cuts one long sequence into a database of windows.
func SlideWindows(seq Sequence, cfg WindowConfig) (*Database, error) {
	return window.Slide(seq, cfg)
}

// Temporal association rules (extension): P ⇒ Q scored by confidence
// and lift; see internal/rules.
type (
	// Rule is one derived temporal association rule.
	Rule = rules.Rule
	// RuleOptions filters derived rules (MinConfidence, MinLift,
	// MaxInstances).
	RuleOptions = rules.Options
)

// DeriveRules derives association rules from mined temporal patterns.
func DeriveRules(rs []TemporalResult, db *Database, opt RuleOptions) ([]Rule, error) {
	return rules.Derive(rs, db, opt)
}

// RenderOptions controls ASCII timeline rendering.
type RenderOptions = render.Options

// RenderSequence draws an interval sequence as an ASCII timeline.
func RenderSequence(seq Sequence, opt RenderOptions) string {
	return render.Sequence(seq, opt)
}

// RenderPattern draws a temporal pattern as an ASCII timeline over its
// element positions.
func RenderPattern(p TemporalPattern, opt RenderOptions) string {
	return render.Pattern(p, opt)
}

// ReadCSV parses the CSV interval format
// ("sequence_id,symbol,start,end", optional header).
var ReadCSV = dataio.ReadCSV

// WriteCSV writes a database in CSV interval format.
var WriteCSV = dataio.WriteCSV

// ReadLines parses the line format ("id: A[1,5] B[3,9]").
var ReadLines = dataio.ReadLines

// WriteLines writes a database in line format.
var WriteLines = dataio.WriteLines

// ReadJSON parses the JSON database format.
var ReadJSON = dataio.ReadJSON

// WriteJSON writes a database as JSON.
var WriteJSON = dataio.WriteJSON
