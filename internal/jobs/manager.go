package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tpminer/internal/api"
	"tpminer/internal/obs"
)

// Errors of the job resource.
var (
	// ErrNotFound is returned for an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrExists is returned when creating a job whose id is taken.
	ErrExists = errors.New("jobs: job id already exists")
	// ErrClosed is returned by mutations on a closed manager.
	ErrClosed = errors.New("jobs: manager is closed")
	// ErrDatasetMissing is returned by a Runner when the watched dataset
	// does not exist (yet). The run is a silent no-op: the job stays
	// armed and the dataset's first mutation triggers the first real run.
	ErrDatasetMissing = errors.New("jobs: dataset does not exist")
)

// Runner executes one mining run for a job. The server implements it on
// top of its cached/sharded mine path, so a job run is
// result-identical to the batch endpoint with the same spec.
type Runner interface {
	// RunJob mines spec's dataset (window applied) and returns the
	// pattern set plus the dataset version it mined. ErrDatasetMissing
	// (possibly wrapped) marks the watched dataset as absent.
	RunJob(ctx context.Context, spec api.JobSpec) (RunOutput, error)
}

// RunOutput is one run's product.
type RunOutput struct {
	// Version is the dataset version the run observed.
	Version uint64
	// Patterns is the mined set in the miner's deterministic order.
	Patterns []Pattern
}

// Journal persists job state. The server implements it on the WAL, so
// specs and latest results survive restarts. JobPut/JobDelete failures
// fail the API call (a job that cannot be journaled must not exist);
// JobResult failures are logged and tolerated — the run's delta is
// still published, and the next successful journal write supersedes.
type Journal interface {
	JobPut(id string, spec []byte) error
	JobDelete(id string) error
	JobResult(id string, result []byte) error
}

// Metrics receives the subsystem's counters; implementations must be
// safe for concurrent use. Labels deliberately exclude the job id —
// ids are client-chosen and would be unbounded label cardinality.
type Metrics interface {
	// JobCount reports the current number of jobs.
	JobCount(n int)
	// RunDone counts one run with outcome "ok", "noop" (version
	// unchanged or dataset missing), or "error".
	RunDone(outcome string, d time.Duration)
	// EventPublished counts one event fanned out to n subscribers.
	EventPublished(n int)
	// SubscriberChange reports a subscriber arriving (+1) or leaving
	// (-1).
	SubscriberChange(delta int)
	// SubscriberDropped counts one subscriber disconnected for not
	// draining its queue.
	SubscriberDropped()
}

// nopMetrics is the default sink.
type nopMetrics struct{}

func (nopMetrics) JobCount(int)                  {}
func (nopMetrics) RunDone(string, time.Duration) {}
func (nopMetrics) EventPublished(int)            {}
func (nopMetrics) SubscriberChange(int)          {}
func (nopMetrics) SubscriberDropped()            {}

// Config configures a Manager. Runner and Journal are required.
type Config struct {
	Runner  Runner
	Journal Journal
	// Logger receives run/lifecycle records; nil disables.
	Logger *slog.Logger
	// Metrics receives counters; nil disables.
	Metrics Metrics
	// Debounce is the quiet period a job waits after a change
	// notification before re-mining, for jobs that don't set their own
	// DebounceMillis. 0 means DefaultDebounce.
	Debounce time.Duration
	// QueueSize is each subscriber's queue capacity. 0 means
	// DefaultQueueSize.
	QueueSize int
	// RingSize is the per-job replay ring capacity (how far back
	// Last-Event-ID resume can reach without a snapshot). 0 means
	// DefaultRingSize.
	RingSize int
}

// Defaults for Config zero values.
const (
	DefaultDebounce  = 100 * time.Millisecond
	DefaultQueueSize = 64
	DefaultRingSize  = 64
)

// Status is the API view of one job.
type Status struct {
	ID   string      `json:"id"`
	Spec api.JobSpec `json:"spec"`
	// RunSeq is the sequence number of the latest published run (0
	// before the first).
	RunSeq uint64 `json:"run_seq"`
	// Version is the dataset version last mined.
	Version uint64 `json:"version,omitempty"`
	// LastError is the most recent failed run's error, cleared by the
	// next success.
	LastError string `json:"last_error,omitempty"`
	// Subscribers is the current stream subscriber count.
	Subscribers int `json:"subscribers"`
	// Dropped counts subscribers disconnected for not draining.
	Dropped uint64 `json:"dropped_subscribers,omitempty"`
}

// StoredJob is one job as recovered from the journal: the opaque spec
// and (possibly nil) latest-result blobs the persist layer carried.
type StoredJob struct {
	ID     string
	Spec   []byte
	Result []byte
}

// Manager owns every continuous-mining job: creation, recovery,
// change notification, the per-job run loops, and the subscriber hubs.
type Manager struct {
	cfg    Config
	logger *slog.Logger
	met    Metrics

	ctx    context.Context // canceled on Close; parents every run
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	idSeq  uint64
	closed bool
}

// job is one continuous-mining job. A single mutex guards both the
// mined state and the subscriber hub, so a new subscriber's snapshot
// and its position in the event stream are always consistent.
type job struct {
	spec     api.JobSpec
	debounce time.Duration

	// pending is the latest notified dataset version (0 = none yet);
	// written by Notify, consumed by the run loop.
	pending atomic.Uint64

	trigger chan struct{} // capacity 1: notifications coalesce
	stop    chan struct{}
	done    chan struct{}

	mu       sync.Mutex
	runSeq   uint64
	version  uint64 // dataset version last mined
	last     *Result
	lastErr  string
	ring     []Event
	subs     map[*subscriber]struct{}
	dropped  uint64
	stopping bool
}

type subscriber struct {
	ch chan Event
}

// Subscription is one live event stream. Receive from C; a closed C
// means the subscriber was dropped (slow consumer) or the job was
// deleted. Close releases the subscription.
type Subscription struct {
	C <-chan Event

	m   *Manager
	j   *job
	sub *subscriber
}

// Close unregisters the subscription. Safe to call after the channel
// was closed by a drop or job deletion.
func (s *Subscription) Close() {
	s.j.mu.Lock()
	_, live := s.j.subs[s.sub]
	if live {
		delete(s.j.subs, s.sub)
		close(s.sub.ch)
	}
	s.j.mu.Unlock()
	if live {
		s.m.met.SubscriberChange(-1)
	}
}

// New builds a Manager. Call Restore before serving if the journal
// holds recovered jobs, and Close on shutdown.
func New(cfg Config) (*Manager, error) {
	if cfg.Runner == nil || cfg.Journal == nil {
		return nil, errors.New("jobs: Config.Runner and Config.Journal are required")
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = nopMetrics{}
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = DefaultDebounce
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:    cfg,
		logger: cfg.Logger,
		met:    cfg.Metrics,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
	}, nil
}

// Restore installs journal-recovered jobs and starts their run loops,
// seeded with their last results so the first post-restart run diffs
// against pre-restart state instead of re-announcing everything. An
// undecodable spec is logged and skipped — one corrupt job must not
// take down boot. Call once, before the first Create/Notify.
func (m *Manager) Restore(stored []StoredJob) {
	for _, sj := range stored {
		var spec api.JobSpec
		if err := json.Unmarshal(sj.Spec, &spec); err != nil {
			m.logger.Warn("jobs: skipping job with undecodable journaled spec", "job", sj.ID, "error", err)
			continue
		}
		var last *Result
		if len(sj.Result) > 0 {
			var res Result
			if err := json.Unmarshal(sj.Result, &res); err != nil {
				m.logger.Warn("jobs: ignoring undecodable journaled result", "job", sj.ID, "error", err)
			} else {
				last = &res
			}
		}
		spec.ID = sj.ID
		m.mu.Lock()
		if _, dup := m.jobs[sj.ID]; dup {
			m.mu.Unlock()
			m.logger.Warn("jobs: duplicate job id in journal; keeping first", "job", sj.ID)
			continue
		}
		j := m.newJobLocked(spec)
		if last != nil {
			j.runSeq, j.version, j.last = last.RunSeq, last.Version, last
		}
		m.jobs[sj.ID] = j
		m.mu.Unlock()
		go m.runLoop(j)
		// Arm an immediate run: if the dataset moved (or first appeared)
		// while the server was down, the job catches up now; if not, the
		// version check makes this a no-op.
		j.notify(0)
	}
	m.met.JobCount(m.Count())
}

// newJobLocked builds the in-memory job for spec. Caller holds m.mu.
func (m *Manager) newJobLocked(spec api.JobSpec) *job {
	debounce := m.cfg.Debounce
	if spec.DebounceMillis > 0 {
		debounce = time.Duration(spec.DebounceMillis) * time.Millisecond
	}
	return &job{
		spec:     spec,
		debounce: debounce,
		trigger:  make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		subs:     make(map[*subscriber]struct{}),
	}
}

// Create validates, journals, and starts a new job, returning its
// status (with the generated id when the spec left it empty).
func (m *Manager) Create(spec api.JobSpec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrClosed
	}
	if spec.ID == "" {
		for {
			m.idSeq++
			id := fmt.Sprintf("job-%d", m.idSeq)
			if _, taken := m.jobs[id]; !taken {
				spec.ID = id
				break
			}
		}
	} else if _, taken := m.jobs[spec.ID]; taken {
		m.mu.Unlock()
		return Status{}, ErrExists
	}
	blob, err := json.Marshal(spec)
	if err != nil { // unreachable: specs are plain data
		m.mu.Unlock()
		return Status{}, fmt.Errorf("jobs: encode spec: %w", err)
	}
	// Commit-before-visible: the job exists only if the journal took it.
	if err := m.cfg.Journal.JobPut(spec.ID, blob); err != nil {
		m.mu.Unlock()
		return Status{}, err
	}
	j := m.newJobLocked(spec)
	m.jobs[spec.ID] = j
	n := len(m.jobs)
	m.mu.Unlock()
	m.met.JobCount(n)
	m.logger.Info("job created", "job", spec.ID, "dataset", spec.Dataset,
		"mode", spec.Mine.ResolvedMode(), "window", spec.Mine.Window.Kind)
	go m.runLoop(j)
	j.notify(0) // first run: mine whatever is there now
	return j.status(), nil
}

// Get returns one job's status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.status(), nil
}

// List returns every job's status, ordered by id.
func (m *Manager) List() []Status {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(js))
	for _, j := range js {
		out = append(out, j.status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Result returns the latest journaled-equivalent result of a job, or
// ok=false before the first completed run.
func (m *Manager) Result(id string) (Result, bool, error) {
	m.mu.Lock()
	j, exists := m.jobs[id]
	m.mu.Unlock()
	if !exists {
		return Result{}, false, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.last == nil {
		return Result{}, false, nil
	}
	return *j.last, true, nil
}

// Delete journals the removal, stops the run loop, and disconnects
// every subscriber.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	if err := m.cfg.Journal.JobDelete(id); err != nil {
		m.mu.Unlock()
		return err
	}
	delete(m.jobs, id)
	n := len(m.jobs)
	m.mu.Unlock()
	m.met.JobCount(n)
	m.stopJob(j)
	m.logger.Info("job deleted", "job", id)
	return nil
}

// stopJob halts a job's run loop and closes its subscribers.
func (m *Manager) stopJob(j *job) {
	j.mu.Lock()
	already := j.stopping
	j.stopping = true
	j.mu.Unlock()
	if !already {
		close(j.stop)
	}
	<-j.done
	j.mu.Lock()
	subs := make([]*subscriber, 0, len(j.subs))
	for sub := range j.subs {
		subs = append(subs, sub)
	}
	for _, sub := range subs {
		delete(j.subs, sub)
		close(sub.ch)
	}
	j.mu.Unlock()
	for range subs {
		m.met.SubscriberChange(-1)
	}
}

// Count returns the number of live jobs.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Notify tells the manager a dataset changed. Every job watching it is
// armed with the new version; bursts coalesce in the trigger channel
// and the per-job debounce. Safe to call from any goroutine and cheap
// enough for the mutation hot path (a map scan and an atomic store).
func (m *Manager) Notify(dataset string, version uint64) {
	m.mu.Lock()
	var armed []*job
	for _, j := range m.jobs {
		if j.spec.Dataset == dataset {
			armed = append(armed, j)
		}
	}
	m.mu.Unlock()
	for _, j := range armed {
		j.notify(version)
	}
}

// Close stops every run loop and closes every subscriber. Jobs remain
// journaled; the next boot restores them.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	m.cancel()
	for _, j := range js {
		m.stopJob(j)
	}
}

// notify arms the job with a (possibly unknown = 0) new version.
func (j *job) notify(version uint64) {
	if version != 0 {
		j.pending.Store(version)
	}
	select {
	case j.trigger <- struct{}{}:
	default: // already armed; versions coalesce via j.pending
	}
}

// status snapshots the job for the API.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:          j.spec.ID,
		Spec:        j.spec,
		RunSeq:      j.runSeq,
		Version:     j.version,
		LastError:   j.lastErr,
		Subscribers: len(j.subs),
		Dropped:     j.dropped,
	}
}

// runLoop is the job's goroutine: wait for a trigger, debounce the
// burst, run once, repeat. One loop per job means runs never overlap.
func (m *Manager) runLoop(j *job) {
	defer close(j.done)
	for {
		select {
		case <-j.stop:
			return
		case <-j.trigger:
		}
		// Debounce: restart the quiet-period timer on every further
		// notification, so an ingest burst becomes one run.
		timer := time.NewTimer(j.debounce)
	quiet:
		for {
			select {
			case <-j.stop:
				timer.Stop()
				return
			case <-j.trigger:
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(j.debounce)
			case <-timer.C:
				break quiet
			}
		}
		m.runOnce(j)
	}
}

// runOnce executes one mining run and publishes its delta. Runs where
// the dataset version has not moved — including the armed run a
// restart schedules — are no-ops.
func (m *Manager) runOnce(j *job) {
	j.mu.Lock()
	lastVersion := j.version
	j.mu.Unlock()
	if pending := j.pending.Load(); pending != 0 && pending == lastVersion {
		m.met.RunDone("noop", 0)
		return
	}

	start := time.Now()
	out, err := m.cfg.Runner.RunJob(m.ctx, j.spec)
	switch {
	case errors.Is(err, ErrDatasetMissing):
		// Not an error state: the job waits for the dataset to appear.
		m.met.RunDone("noop", time.Since(start))
		return
	case err != nil:
		if m.ctx.Err() != nil {
			return // shutdown canceled the run; not a job failure
		}
		j.mu.Lock()
		j.lastErr = err.Error()
		j.mu.Unlock()
		m.met.RunDone("error", time.Since(start))
		m.logger.Warn("job run failed", "job", j.spec.ID, "error", err)
		return
	case out.Version == lastVersion:
		// Redundant trigger (or post-restart catch-up with nothing to
		// catch up on): same version ⇒ same patterns; publish nothing.
		m.met.RunDone("noop", time.Since(start))
		return
	}

	j.mu.Lock()
	prev := j.last
	runSeq := j.runSeq + 1
	j.mu.Unlock()

	var prevPatterns []Pattern
	if prev != nil {
		prevPatterns = prev.Patterns
	}
	added, removed, changed := Diff(prevPatterns, out.Patterns)
	delta := Delta{
		JobID:   j.spec.ID,
		RunSeq:  runSeq,
		Dataset: j.spec.Dataset,
		Version: out.Version,
		Added:   added,
		Removed: removed,
		Changed: changed,
		Total:   len(out.Patterns),
	}
	result := &Result{
		JobID:    j.spec.ID,
		RunSeq:   runSeq,
		Dataset:  j.spec.Dataset,
		Version:  out.Version,
		Patterns: out.Patterns,
	}
	deltaJSON, err := json.Marshal(delta)
	if err != nil { // unreachable: deltas are plain data
		m.logger.Warn("job delta encode failed", "job", j.spec.ID, "error", err)
		return
	}
	resultJSON, err := json.Marshal(result)
	if err != nil {
		m.logger.Warn("job result encode failed", "job", j.spec.ID, "error", err)
		return
	}
	// Journal the full result before publishing (best effort: a journal
	// outage must not stop the stream — the next successful write
	// supersedes, and subscribers resume from the ring).
	if err := m.cfg.Journal.JobResult(j.spec.ID, resultJSON); err != nil {
		m.logger.Warn("job result journaling failed; continuing", "job", j.spec.ID, "error", err)
	}

	ev := Event{ID: runSeq, Type: EventDelta, Data: deltaJSON}
	j.mu.Lock()
	j.runSeq = runSeq
	j.version = out.Version
	j.last = result
	j.lastErr = ""
	fanout, droppedNow := j.publishLocked(ev, m.cfg.RingSize)
	j.mu.Unlock()
	m.met.RunDone("ok", time.Since(start))
	m.met.EventPublished(fanout)
	for range droppedNow {
		m.met.SubscriberDropped()
		m.met.SubscriberChange(-1)
	}
	m.logger.Info("job run published", "job", j.spec.ID, "run", runSeq,
		"version", out.Version, "patterns", len(out.Patterns),
		"added", len(added), "removed", len(removed), "changed", len(changed),
		"duration_ms", time.Since(start).Milliseconds())
}

// publishLocked appends ev to the replay ring and fans it out to every
// subscriber. A subscriber whose queue is full is dropped: its channel
// closes mid-stream and the client reconnects with Last-Event-ID.
// Returns the number of subscribers reached and those dropped. Caller
// holds j.mu.
func (j *job) publishLocked(ev Event, ringSize int) (fanout int, dropped []*subscriber) {
	j.ring = append(j.ring, ev)
	if len(j.ring) > ringSize {
		j.ring = j.ring[len(j.ring)-ringSize:]
	}
	for sub := range j.subs {
		select {
		case sub.ch <- ev:
			fanout++
		default:
			delete(j.subs, sub)
			close(sub.ch)
			j.dropped++
			dropped = append(dropped, sub)
		}
	}
	return fanout, dropped
}

// Subscribe opens an event stream on a job. lastEventID is the
// client's Last-Event-ID (nil for a fresh subscriber). The returned
// backlog must be delivered before reading from the subscription: it
// is either the replayed deltas the client missed (when the ring still
// covers its position), a full "result" snapshot (fresh subscriber, or
// resume position fallen out of the ring — e.g. after a restart), or
// empty (client already current, or no run has completed yet). Events
// published after Subscribe returns arrive on the channel; the split
// is race-free because backlog and registration are decided under one
// lock.
func (m *Manager) Subscribe(id string, lastEventID *uint64) (*Subscription, []Event, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, ErrNotFound
	}
	sub := &subscriber{ch: make(chan Event, m.cfg.QueueSize)}
	j.mu.Lock()
	if j.stopping {
		j.mu.Unlock()
		return nil, nil, ErrNotFound
	}
	backlog := j.backlogLocked(lastEventID)
	j.subs[sub] = struct{}{}
	j.mu.Unlock()
	m.met.SubscriberChange(+1)
	return &Subscription{C: sub.ch, m: m, j: j, sub: sub}, backlog, nil
}

// backlogLocked decides what a new subscriber must be sent first.
// Caller holds j.mu.
func (j *job) backlogLocked(lastEventID *uint64) []Event {
	if lastEventID != nil {
		last := *lastEventID
		if last >= j.runSeq {
			return nil // already current (or ahead — a restart reset runSeq is impossible; it is journaled)
		}
		// Replay from the ring when it still covers last+1.
		if len(j.ring) > 0 && j.ring[0].ID <= last+1 {
			var out []Event
			for _, ev := range j.ring {
				if ev.ID > last {
					out = append(out, ev)
				}
			}
			return out
		}
		// Gap (ring trimmed, or emptied by a restart): fall through to a
		// snapshot.
	}
	if j.last == nil {
		return nil // no run yet; the first delta will arrive live
	}
	data, err := json.Marshal(j.last)
	if err != nil { // unreachable: results are plain data
		return nil
	}
	return []Event{{ID: j.runSeq, Type: EventResult, Data: data}}
}
