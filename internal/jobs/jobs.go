// Package jobs implements continuous mining: persistent jobs that
// watch a dataset, re-mine it whenever the dataset's version changes,
// and publish the difference between consecutive results as a stream of
// pattern deltas.
//
// The package owns the job lifecycle and the delta/streaming machinery;
// it deliberately owns nothing else. Mining goes through a Runner
// (implemented by the server on top of its cached, sharded,
// admission-controlled mine path, so a job run and a batch request with
// the same spec produce byte-identical patterns — usually the very same
// cache entry). Durability goes through a Journal (implemented by the
// server on top of the persist WAL, so jobs and their latest results
// survive restarts). Transport is left to the caller: subscribers get a
// bounded channel of pre-marshaled events, which the server frames as
// Server-Sent Events.
//
// # Run protocol
//
// Each job runs in its own goroutine. Mutations notify the manager
// (dataset name + new version); the job debounces bursts, then re-mines
// and diffs the new pattern set against the previous run. A run whose
// dataset version equals the last mined version is skipped — restarts
// and redundant notifications cost nothing. Every non-skipped run
// increments the job's RunSeq, journals the full result
// (commit-before-visible, like every other mutation in tpmd), and
// publishes one delta event whose ID is the RunSeq — which is what
// makes Last-Event-ID resume exact: a client that saw run N needs
// precisely the deltas of runs N+1..now, and a cumulative application
// of deltas equals the latest full result.
//
// # Backpressure
//
// Subscriber queues are bounded. A subscriber that cannot drain its
// queue by the time the next event is published is dropped (its channel
// closed, the drop counted) rather than allowed to stall the job or
// grow the queue without bound; the client reconnects with
// Last-Event-ID and the ring replays what it missed.
package jobs

import (
	"encoding/json"
	"sort"
)

// Pattern is one mined pattern as jobs track it: a stable identity key,
// the support count the deltas diff on, and the full wire object (the
// server's pattern JSON) carried opaquely so deltas are self-contained.
type Pattern struct {
	Key     string          `json:"key"`
	Support int             `json:"support"`
	Body    json.RawMessage `json:"body"`
}

// SupportChange records a pattern present in consecutive runs with a
// different support. Body is the pattern's new wire object: for mined
// patterns the body embeds the support count, so a support change is
// also a body change, and carrying it keeps cumulative Apply
// byte-identical to a fresh mine.
type SupportChange struct {
	Key  string          `json:"key"`
	From int             `json:"from"`
	To   int             `json:"to"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Delta is the difference between two consecutive runs of a job — the
// payload of one "delta" stream event. Applying Added/Removed/Changed
// to the previous run's pattern set yields the new run's set exactly.
type Delta struct {
	JobID   string `json:"job_id"`
	RunSeq  uint64 `json:"run_seq"`
	Dataset string `json:"dataset"`
	// Version is the dataset version this run mined.
	Version uint64          `json:"version"`
	Added   []Pattern       `json:"added,omitempty"`
	Removed []string        `json:"removed,omitempty"`
	Changed []SupportChange `json:"changed,omitempty"`
	// Total is the pattern count after this run — a checksum for
	// clients applying deltas cumulatively.
	Total int `json:"total"`
}

// Result is the full pattern set of a job's latest run — the payload of
// a "result" stream event and of GET /v1/jobs/{id}/result, and the blob
// journaled after every run.
type Result struct {
	JobID    string    `json:"job_id"`
	RunSeq   uint64    `json:"run_seq"`
	Dataset  string    `json:"dataset"`
	Version  uint64    `json:"version"`
	Patterns []Pattern `json:"patterns"`
}

// Event stream types.
const (
	// EventDelta carries a Delta; its ID is the run's RunSeq.
	EventDelta = "delta"
	// EventResult carries a full Result snapshot — sent to new
	// subscribers and to resumers whose Last-Event-ID has fallen out of
	// the replay ring; its ID is the latest RunSeq.
	EventResult = "result"
)

// Event is one message on a subscriber's queue, pre-marshaled so every
// subscriber shares the same bytes.
type Event struct {
	ID   uint64
	Type string // EventDelta or EventResult
	Data []byte // JSON payload (Delta or Result)
}

// Diff computes the delta from prev to next. Patterns are matched by
// Key; Added keeps next's (deterministic miner) order, Removed and
// Changed follow prev's order, so the same transition always produces
// the same delta bytes.
func Diff(prev, next []Pattern) (added []Pattern, removed []string, changed []SupportChange) {
	prevByKey := make(map[string]Pattern, len(prev))
	for _, p := range prev {
		prevByKey[p.Key] = p
	}
	nextKeys := make(map[string]struct{}, len(next))
	for _, p := range next {
		nextKeys[p.Key] = struct{}{}
		old, ok := prevByKey[p.Key]
		switch {
		case !ok:
			added = append(added, p)
		case old.Support != p.Support:
			changed = append(changed, SupportChange{Key: p.Key, From: old.Support, To: p.Support, Body: p.Body})
		}
	}
	for _, p := range prev {
		if _, ok := nextKeys[p.Key]; !ok {
			removed = append(removed, p.Key)
		}
	}
	return added, removed, changed
}

// Apply folds a delta into a pattern set, returning the next run's set
// in the miner's canonical order (sorted by Key after modification —
// callers comparing against a fresh mine should sort both sides, or
// compare as sets). It is the client-side inverse of Diff, used by the
// CLI follower and the end-to-end tests to verify that cumulative
// deltas reconstruct the latest result exactly.
func Apply(prev []Pattern, d Delta) []Pattern {
	out := make([]Pattern, 0, len(prev)+len(d.Added))
	removed := make(map[string]struct{}, len(d.Removed))
	for _, k := range d.Removed {
		removed[k] = struct{}{}
	}
	changed := make(map[string]SupportChange, len(d.Changed))
	for _, c := range d.Changed {
		changed[c.Key] = c
	}
	for _, p := range prev {
		if _, ok := removed[p.Key]; ok {
			continue
		}
		if c, ok := changed[p.Key]; ok {
			p.Support = c.To
			if c.Body != nil {
				p.Body = c.Body
			}
		}
		out = append(out, p)
	}
	out = append(out, d.Added...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// SortPatterns orders a pattern set canonically (by Key) for set
// comparison against an Apply result.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
}
