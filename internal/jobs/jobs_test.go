package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"tpminer/internal/api"
)

// fakeRunner serves a settable pattern set + version per dataset.
type fakeRunner struct {
	mu    sync.Mutex
	state map[string]RunOutput // dataset → current output
	runs  int
}

func (r *fakeRunner) set(dataset string, version uint64, patterns ...Pattern) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == nil {
		r.state = make(map[string]RunOutput)
	}
	r.state[dataset] = RunOutput{Version: version, Patterns: patterns}
}

func (r *fakeRunner) RunJob(_ context.Context, spec api.JobSpec) (RunOutput, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out, ok := r.state[spec.Dataset]
	if !ok {
		return RunOutput{}, ErrDatasetMissing
	}
	r.runs++
	return out, nil
}

func (r *fakeRunner) runCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// memJournal records journal calls in memory.
type memJournal struct {
	mu      sync.Mutex
	specs   map[string][]byte
	results map[string][]byte
	fail    error
}

func newMemJournal() *memJournal {
	return &memJournal{specs: make(map[string][]byte), results: make(map[string][]byte)}
}

func (jn *memJournal) JobPut(id string, spec []byte) error {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.fail != nil {
		return jn.fail
	}
	jn.specs[id] = spec
	return nil
}

func (jn *memJournal) JobDelete(id string) error {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.fail != nil {
		return jn.fail
	}
	delete(jn.specs, id)
	delete(jn.results, id)
	return nil
}

func (jn *memJournal) JobResult(id string, result []byte) error {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.fail != nil {
		return jn.fail
	}
	jn.results[id] = result
	return nil
}

func (jn *memJournal) result(id string) []byte {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	return jn.results[id]
}

func pat(key string, support int) Pattern {
	return Pattern{Key: key, Support: support, Body: json.RawMessage(fmt.Sprintf(`{"k":%q,"s":%d}`, key, support))}
}

func newTestManager(t *testing.T, r *fakeRunner, jn *memJournal, tweak func(*Config)) *Manager {
	t.Helper()
	cfg := Config{Runner: r, Journal: jn, Debounce: time.Millisecond}
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitEvent receives one event or fails the test.
func waitEvent(t *testing.T, c <-chan Event) Event {
	t.Helper()
	select {
	case ev, ok := <-c:
		if !ok {
			t.Fatal("event channel closed while waiting for an event")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an event")
	}
	return Event{}
}

func TestDiff(t *testing.T) {
	prev := []Pattern{pat("a", 2), pat("b", 3), pat("c", 1)}
	next := []Pattern{pat("a", 2), pat("b", 5), pat("d", 4)}
	added, removed, changed := Diff(prev, next)
	if len(added) != 1 || added[0].Key != "d" {
		t.Errorf("added = %+v, want [d]", added)
	}
	if len(removed) != 1 || removed[0] != "c" {
		t.Errorf("removed = %v, want [c]", removed)
	}
	if len(changed) != 1 || changed[0].Key != "b" || changed[0].From != 3 || changed[0].To != 5 ||
		string(changed[0].Body) != string(pat("b", 5).Body) {
		t.Errorf("changed = %+v, want [b 3→5 with new body]", changed)
	}
	// Diff against nil announces everything.
	added, removed, changed = Diff(nil, next)
	if len(added) != 3 || len(removed) != 0 || len(changed) != 0 {
		t.Errorf("diff from nil = %d added %d removed %d changed", len(added), len(removed), len(changed))
	}
}

func TestApplyReconstructsNext(t *testing.T) {
	prev := []Pattern{pat("a", 2), pat("b", 3), pat("c", 1)}
	next := []Pattern{pat("a", 2), pat("b", 5), pat("d", 4)}
	added, removed, changed := Diff(prev, next)
	got := Apply(prev, Delta{Added: added, Removed: removed, Changed: changed})
	want := append([]Pattern(nil), next...)
	SortPatterns(want)
	// Changed entries carry the new body, so Apply reconstructs next
	// exactly — identity, support, and bytes.
	if len(got) != len(want) {
		t.Fatalf("apply produced %d patterns, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Support != want[i].Support ||
			string(got[i].Body) != string(want[i].Body) {
			t.Errorf("pattern %d = %s/%d %s, want %s/%d %s", i,
				got[i].Key, got[i].Support, got[i].Body,
				want[i].Key, want[i].Support, want[i].Body)
		}
	}
}

func TestJobLifecycleAndDeltas(t *testing.T) {
	r := &fakeRunner{}
	jn := newMemJournal()
	m := newTestManager(t, r, jn, nil)

	r.set("d", 1, pat("a", 2), pat("b", 3))
	st, err := m.Create(api.JobSpec{Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("expected a generated job id")
	}
	sub, backlog, err := m.Subscribe(st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// First run announces everything as added.
	var first Event
	if len(backlog) > 0 {
		first = backlog[0]
	} else {
		first = waitEvent(t, sub.C)
	}
	var d Delta
	if first.Type == EventResult {
		// Subscribe raced after the first run: snapshot instead.
		var res Result
		if err := json.Unmarshal(first.Data, &res); err != nil {
			t.Fatal(err)
		}
		if len(res.Patterns) != 2 || res.RunSeq != 1 {
			t.Fatalf("snapshot = %+v", res)
		}
	} else {
		if err := json.Unmarshal(first.Data, &d); err != nil {
			t.Fatal(err)
		}
		if d.RunSeq != 1 || len(d.Added) != 2 || len(d.Removed) != 0 || d.Total != 2 {
			t.Fatalf("first delta = %+v", d)
		}
	}

	// Mutate: b's support changes, c appears, a disappears.
	r.set("d", 2, pat("b", 5), pat("c", 1))
	m.Notify("d", 2)
	ev := waitEvent(t, sub.C)
	if ev.Type != EventDelta || ev.ID != 2 {
		t.Fatalf("event = %+v, want delta run 2", ev)
	}
	if err := json.Unmarshal(ev.Data, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0].Key != "c" || len(d.Removed) != 1 || d.Removed[0] != "a" ||
		len(d.Changed) != 1 || d.Changed[0].To != 5 {
		t.Fatalf("delta = %+v", d)
	}

	// The latest result is journaled and retrievable.
	res, ok, err := m.Result(st.ID)
	if err != nil || !ok {
		t.Fatalf("Result: ok=%v err=%v", ok, err)
	}
	if res.RunSeq != 2 || res.Version != 2 || len(res.Patterns) != 2 {
		t.Fatalf("result = %+v", res)
	}
	var journaled Result
	if err := json.Unmarshal(jn.result(st.ID), &journaled); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(journaled, res) {
		t.Errorf("journaled result differs from served result")
	}

	// Redundant notification for the same version: no run, no event.
	m.Notify("d", 2)
	select {
	case ev := <-sub.C:
		t.Fatalf("unexpected event after no-op notify: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	if err := m.Delete(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(st.ID); err != ErrNotFound {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	// Deletion closes the stream.
	select {
	case _, open := <-sub.C:
		if open {
			// drain the in-flight event, then expect close
			if _, open = <-sub.C; open {
				t.Fatal("subscriber channel still open after job deletion")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber channel not closed after job deletion")
	}
}

func TestDebounceCoalescesBursts(t *testing.T) {
	r := &fakeRunner{}
	jn := newMemJournal()
	m := newTestManager(t, r, jn, func(c *Config) { c.Debounce = 30 * time.Millisecond })

	r.set("d", 1, pat("a", 1))
	st, err := m.Create(api.JobSpec{Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitEvent(t, sub.C) // first run

	// A burst of 20 rapid-fire versions must fold into one re-mine.
	before := r.runCount()
	for v := uint64(2); v <= 21; v++ {
		r.set("d", v, pat("a", int(v)))
		m.Notify("d", v)
		time.Sleep(time.Millisecond)
	}
	ev := waitEvent(t, sub.C)
	var d Delta
	if err := json.Unmarshal(ev.Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Version != 21 {
		t.Errorf("coalesced run mined version %d, want 21 (the newest)", d.Version)
	}
	// Allow stragglers to settle, then count runs: far fewer than 20.
	time.Sleep(100 * time.Millisecond)
	if got := r.runCount() - before; got > 3 {
		t.Errorf("burst of 20 notifications caused %d runs, want ≤ 3", got)
	}
}

func TestSlowConsumerDropped(t *testing.T) {
	r := &fakeRunner{}
	jn := newMemJournal()
	m := newTestManager(t, r, jn, func(c *Config) { c.QueueSize = 2 })

	r.set("d", 1, pat("a", 1))
	st, err := m.Create(api.JobSpec{Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Never read from sub.C; publish until the queue overflows.
	deadline := time.After(5 * time.Second)
	for v := uint64(2); ; v++ {
		r.set("d", v, pat("a", int(v)))
		m.Notify("d", v)
		status, err := m.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if status.Dropped >= 1 {
			if status.Subscribers != 0 {
				t.Errorf("dropped subscriber still counted: %d", status.Subscribers)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("slow consumer never dropped")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// The channel must be closed so the transport goroutine unblocks.
	deadline = time.After(5 * time.Second)
	for {
		select {
		case _, open := <-sub.C:
			if !open {
				return
			}
		case <-deadline:
			t.Fatal("dropped subscriber's channel never closed")
		}
	}
}

func TestLastEventIDResume(t *testing.T) {
	r := &fakeRunner{}
	jn := newMemJournal()
	m := newTestManager(t, r, jn, nil)

	r.set("d", 1, pat("a", 1))
	st, err := m.Create(api.JobSpec{Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	// Drive three runs with no subscriber attached.
	probe, _, err := m.Subscribe(st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 3; v++ {
		if v > 1 {
			r.set("d", v, pat("a", int(v)))
			m.Notify("d", v)
		}
		ev := waitEvent(t, probe.C)
		if ev.ID != v {
			t.Fatalf("run %d published id %d", v, ev.ID)
		}
	}
	probe.Close()

	// Resume from run 1: the ring replays runs 2 and 3.
	last := uint64(1)
	sub, backlog, err := m.Subscribe(st.ID, &last)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if len(backlog) != 2 || backlog[0].ID != 2 || backlog[1].ID != 3 ||
		backlog[0].Type != EventDelta || backlog[1].Type != EventDelta {
		t.Fatalf("backlog = %+v, want deltas 2,3", backlog)
	}

	// Resume from run 3: already current, nothing to replay.
	last = 3
	sub2, backlog2, err := m.Subscribe(st.ID, &last)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if len(backlog2) != 0 {
		t.Fatalf("current subscriber got backlog %+v", backlog2)
	}

	// A position older than the ring can reach falls back to a full
	// snapshot (the post-restart path, simulated by a tiny ring).
	m2 := newTestManager(t, r, jn, func(c *Config) { c.RingSize = 1 })
	st2, err := m2.Create(api.JobSpec{ID: "ringy", Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	probe2, _, err := m2.Subscribe(st2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitEvent(t, probe2.C)
	r.set("d", 4, pat("a", 4))
	m2.Notify("d", 4)
	waitEvent(t, probe2.C)
	probe2.Close()
	last = 0 // run 1 fell out of the 1-slot ring; 0+1=1 < ring[0].ID=2
	_, backlog3, err := m2.Subscribe(st2.ID, &last)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog3) != 1 || backlog3[0].Type != EventResult || backlog3[0].ID != 2 {
		t.Fatalf("gap backlog = %+v, want one result snapshot at run 2", backlog3)
	}
}

func TestRestoreSeedsStateAndSkipsStaleRun(t *testing.T) {
	r := &fakeRunner{}
	jn := newMemJournal()
	r.set("d", 7, pat("a", 3), pat("b", 2))

	spec := api.JobSpec{ID: "restored", Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	prior := Result{JobID: "restored", RunSeq: 5, Dataset: "d", Version: 7,
		Patterns: []Pattern{pat("a", 3), pat("b", 2)}}
	priorJSON, err := json.Marshal(prior)
	if err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, r, jn, nil)
	m.Restore([]StoredJob{{ID: "restored", Spec: specJSON, Result: priorJSON}})

	st, err := m.Get("restored")
	if err != nil {
		t.Fatal(err)
	}
	if st.RunSeq != 5 || st.Version != 7 {
		t.Fatalf("restored status = %+v, want run 5 at version 7", st)
	}
	// The armed catch-up run sees the same version: no new event.
	sub, backlog, err := m.Subscribe("restored", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if len(backlog) != 1 || backlog[0].Type != EventResult || backlog[0].ID != 5 {
		t.Fatalf("backlog = %+v, want the restored snapshot at run 5", backlog)
	}
	select {
	case ev := <-sub.C:
		t.Fatalf("unexpected event after same-version restore: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	// The dataset moved while we were down: restore catches up and the
	// delta diffs against the pre-restart result.
	m2 := newTestManager(t, r, jn, nil)
	r.set("d", 9, pat("a", 3), pat("c", 1))
	m2.Restore([]StoredJob{{ID: "restored", Spec: specJSON, Result: priorJSON}})
	sub2, _, err := m2.Subscribe("restored", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	// Backlog holds the old snapshot; the catch-up delta follows live.
	ev := waitEvent(t, sub2.C)
	var d Delta
	if err := json.Unmarshal(ev.Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.RunSeq != 6 || d.Version != 9 ||
		len(d.Added) != 1 || d.Added[0].Key != "c" ||
		len(d.Removed) != 1 || d.Removed[0] != "b" {
		t.Fatalf("catch-up delta = %+v, want run 6 diffing against the restored result", d)
	}
}

func TestCreateValidatesAndJournals(t *testing.T) {
	r := &fakeRunner{}
	jn := newMemJournal()
	m := newTestManager(t, r, jn, nil)

	// Rules mode is rejected for jobs.
	_, err := m.Create(api.JobSpec{Dataset: "d", Mine: api.MineSpec{Mode: api.ModeRules, MiningOptions: api.MiningOptions{MinCount: 1}}})
	var fe *api.FieldError
	if !errors.As(err, &fe) || fe.Field != "mine.mode" {
		t.Fatalf("rules-mode job error = %v, want FieldError on mine.mode", err)
	}

	// A journal refusal means the job must not exist.
	jn.fail = fmt.Errorf("disk on fire")
	if _, err := m.Create(api.JobSpec{Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}}); err == nil {
		t.Fatal("expected journal failure to fail Create")
	}
	if m.Count() != 0 {
		t.Fatalf("job exists after failed journal write")
	}
	jn.fail = nil

	// Duplicate ids are rejected.
	if _, err := m.Create(api.JobSpec{ID: "dup", Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(api.JobSpec{ID: "dup", Dataset: "d", Mine: api.MineSpec{MiningOptions: api.MiningOptions{MinCount: 1}}}); err != ErrExists {
		t.Fatalf("duplicate create = %v, want ErrExists", err)
	}
}
