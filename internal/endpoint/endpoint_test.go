package endpoint

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tpminer/internal/interval"
)

func TestEndpointString(t *testing.T) {
	cases := []struct {
		e    Endpoint
		want string
	}{
		{Endpoint{"A", 1, Start}, "A+"},
		{Endpoint{"A", 1, Finish}, "A-"},
		{Endpoint{"A", 2, Start}, "A.2+"},
		{Endpoint{"fever", 3, Finish}, "fever.3-"},
		{Endpoint{"A", 0, Start}, "A+"}, // occ 0 renders like occ 1
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, e := range []Endpoint{
		{"A", 1, Start}, {"A", 1, Finish}, {"A", 7, Start},
		{"sign.w3", 1, Finish}, {"sign.w3", 2, Finish},
		{"T0.up", 1, Start},
	} {
		got, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.String(), err)
		}
		if got != e {
			t.Errorf("Parse(%q) = %v, want %v", e.String(), got, e)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "A", "+", "-", "A*", ".2+"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", s)
		}
	}
}

func TestParseDottedSymbolWithoutOcc(t *testing.T) {
	// "foo.bar+" has a dotted symbol but no numeric occurrence suffix.
	e, err := Parse("foo.bar+")
	if err != nil {
		t.Fatal(err)
	}
	if e.Symbol != "foo.bar" || e.Occ != 1 || e.Kind != Start {
		t.Errorf("got %+v", e)
	}
}

func TestPair(t *testing.T) {
	s := Endpoint{"A", 2, Start}
	f := s.Pair()
	if f.Kind != Finish || f.Symbol != "A" || f.Occ != 2 {
		t.Errorf("Pair = %v", f)
	}
	if f.Pair() != s {
		t.Error("Pair not an involution")
	}
}

func TestLessTotalOrder(t *testing.T) {
	es := []Endpoint{
		{"A", 1, Start}, {"A", 1, Finish}, {"A", 2, Start}, {"B", 1, Start},
	}
	for i := range es {
		for j := range es {
			li, lj := es[i].Less(es[j]), es[j].Less(es[i])
			if i == j && (li || lj) {
				t.Errorf("Less not irreflexive at %v", es[i])
			}
			if i != j && li == lj {
				t.Errorf("Less not total between %v and %v", es[i], es[j])
			}
		}
	}
	if !es[0].Less(es[1]) || !es[1].Less(es[2]) || !es[2].Less(es[3]) {
		t.Error("Less order wrong: want sym, occ, kind precedence")
	}
}

func TestEncodeBasic(t *testing.T) {
	// A meets B: A[1,3] B[3,6] — A- and B+ share a slice.
	seq := interval.Sequence{Intervals: []interval.Interval{
		{Symbol: "A", Start: 1, End: 3},
		{Symbol: "B", Start: 3, End: 6},
	}}
	slices, err := Encode(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSlices(slices); got != "A+ (A- B+) B-" {
		t.Errorf("FormatSlices = %q", got)
	}
	if slices[0].Time != 1 || slices[1].Time != 3 || slices[2].Time != 6 {
		t.Errorf("times: %v", slices)
	}
}

func TestEncodeOccurrenceIndexing(t *testing.T) {
	// Two overlapping As: occurrence order follows canonical interval
	// order (start, end, symbol).
	seq := interval.Sequence{Intervals: []interval.Interval{
		{Symbol: "A", Start: 5, End: 9},
		{Symbol: "A", Start: 1, End: 7},
	}}
	slices, err := Encode(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSlices(slices); got != "A+ A.2+ A- A.2-" {
		t.Errorf("FormatSlices = %q", got)
	}
}

func TestEncodePointEvent(t *testing.T) {
	seq := interval.Sequence{Intervals: []interval.Interval{
		{Symbol: "A", Start: 4, End: 4},
	}}
	slices, err := Encode(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 1 || len(slices[0].Points) != 2 {
		t.Fatalf("point event slices: %v", slices)
	}
	if got := FormatSlices(slices); got != "(A+ A-)" {
		t.Errorf("FormatSlices = %q", got)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	seq := interval.Sequence{Intervals: []interval.Interval{
		{Symbol: "A", Start: 5, End: 1},
	}}
	if _, err := Encode(seq); err == nil {
		t.Error("Encode accepted a reversed interval")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name   string
		slices []Slice
	}{
		{"finish without start", []Slice{
			{Time: 1, Points: []Endpoint{{"A", 1, Finish}}},
		}},
		{"unfinished start", []Slice{
			{Time: 1, Points: []Endpoint{{"A", 1, Start}}},
		}},
		{"duplicate start", []Slice{
			{Time: 1, Points: []Endpoint{{"A", 1, Start}}},
			{Time: 2, Points: []Endpoint{{"A", 1, Start}}},
		}},
	}
	for _, c := range cases {
		if _, err := Decode(c.slices); err == nil {
			t.Errorf("%s: Decode accepted invalid input", c.name)
		}
	}
}

// TestEncodeDecodeRoundTrip is the central property test: Decode∘Encode
// is the identity on normalized sequences.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(starts []int16, durs []uint8, syms []uint8) bool {
		n := len(starts)
		if len(durs) < n {
			n = len(durs)
		}
		if len(syms) < n {
			n = len(syms)
		}
		seq := interval.Sequence{}
		for i := 0; i < n; i++ {
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: string(rune('A' + int(syms[i])%4)),
				Start:  int64(starts[i]),
				End:    int64(starts[i]) + int64(durs[i]%50),
			})
		}
		seq.Normalize()
		slices, err := Encode(seq)
		if err != nil {
			return false
		}
		back, err := Decode(slices)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(seq.Intervals, back.Intervals) ||
			(len(seq.Intervals) == 0 && len(back.Intervals) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// TestEncodeSliceInvariants checks structural invariants of the
// encoding: slice times strictly increase, points are canonically
// ordered within slices, and every endpoint appears exactly once.
func TestEncodeSliceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		seq := interval.Sequence{}
		for i := 0; i < rng.Intn(12); i++ {
			start := rng.Int63n(40)
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: string(rune('A' + rng.Intn(3))),
				Start:  start,
				End:    start + rng.Int63n(20),
			})
		}
		slices, err := Encode(seq)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[Endpoint]bool)
		for i, sl := range slices {
			if i > 0 && slices[i-1].Time >= sl.Time {
				t.Fatalf("slice times not increasing: %v", slices)
			}
			if len(sl.Points) == 0 {
				t.Fatal("empty slice")
			}
			for j, p := range sl.Points {
				if j > 0 && !sl.Points[j-1].Less(p) {
					t.Fatalf("points not canonically ordered in slice %d: %v", i, sl)
				}
				if seen[p] {
					t.Fatalf("endpoint %v appears twice", p)
				}
				seen[p] = true
			}
		}
		if len(seen) != 2*len(seq.Intervals) {
			t.Fatalf("endpoint count %d != 2×%d intervals", len(seen), len(seq.Intervals))
		}
	}
}
