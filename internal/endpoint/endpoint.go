// Package endpoint implements the endpoint representation of interval
// sequences used by P-TPMiner's temporal-pattern mining.
//
// Each event interval (S, start, end) is split into a start endpoint S+
// emitted at time start and a finish endpoint S- emitted at time end.
// Endpoints sharing a timestamp are grouped into one slice, so a sequence
// of intervals becomes an ordered sequence of endpoint sets. The
// transformation is lossless and — crucially — turns the thirteen-way
// ambiguity of pairwise Allen relations into plain subsequence structure.
//
// Duplicate symbols are disambiguated with occurrence indices assigned in
// canonical interval order (start, end, symbol): the k-th interval of
// symbol A in a sequence produces endpoints A.k+ and A.k-. Every endpoint
// therefore appears at most once per sequence, which makes pattern
// embeddings positionally unique and keeps the projection-based miner
// simple and fast (see DESIGN.md, "Duplicate-symbol semantics").
package endpoint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tpminer/internal/interval"
)

// Kind distinguishes start endpoints from finish endpoints.
type Kind uint8

const (
	// Start marks the beginning of an interval (rendered "+").
	Start Kind = iota
	// Finish marks the end of an interval (rendered "-").
	Finish
)

// String returns "+" for Start and "-" for Finish.
func (k Kind) String() string {
	if k == Start {
		return "+"
	}
	return "-"
}

// Endpoint is one end of an occurrence-indexed event interval.
// Occ is 1-based: the first interval of a symbol in a sequence is
// occurrence 1.
type Endpoint struct {
	Symbol string
	Occ    int
	Kind   Kind
}

// String renders the endpoint as "A+" / "A-" for occurrence 1 and
// "A.2+" / "A.2-" for later occurrences. Parse inverts this rendering.
func (e Endpoint) String() string {
	if e.Occ <= 1 {
		return e.Symbol + e.Kind.String()
	}
	return e.Symbol + "." + strconv.Itoa(e.Occ) + e.Kind.String()
}

// Pair returns the endpoint at the other end of the same interval.
func (e Endpoint) Pair() Endpoint {
	out := e
	if e.Kind == Start {
		out.Kind = Finish
	} else {
		out.Kind = Start
	}
	return out
}

// Less imposes the canonical ordering on endpoints: by symbol, then
// occurrence, then kind (Start before Finish). Slices are kept in this
// order so that equal slices compare element-wise.
func (e Endpoint) Less(other Endpoint) bool {
	if e.Symbol != other.Symbol {
		return e.Symbol < other.Symbol
	}
	if e.Occ != other.Occ {
		return e.Occ < other.Occ
	}
	return e.Kind < other.Kind
}

// Parse inverts Endpoint.String. It accepts "A+", "A-", "A.3+", "A.3-".
// The symbol may itself contain dots as long as the final ".<n>" segment,
// if present, is a positive integer (so "foo.bar+" parses as symbol
// "foo.bar", occurrence 1). Symbols containing the textual-format
// delimiters — parentheses, braces, or whitespace — are rejected: they
// would render ambiguously in pattern syntax.
func Parse(s string) (Endpoint, error) {
	if len(s) < 2 {
		return Endpoint{}, fmt.Errorf("endpoint: %q too short", s)
	}
	if strings.ContainsAny(s, "(){} \t\n\r") {
		return Endpoint{}, fmt.Errorf("endpoint: %q contains format delimiter characters", s)
	}
	var kind Kind
	switch s[len(s)-1] {
	case '+':
		kind = Start
	case '-':
		kind = Finish
	default:
		return Endpoint{}, fmt.Errorf("endpoint: %q must end in '+' or '-'", s)
	}
	body := s[:len(s)-1]
	occ := 1
	if i := strings.LastIndexByte(body, '.'); i >= 0 && i < len(body)-1 {
		if n, err := strconv.Atoi(body[i+1:]); err == nil && n >= 1 {
			occ = n
			body = body[:i]
		}
	}
	if body == "" {
		return Endpoint{}, fmt.Errorf("endpoint: %q has empty symbol", s)
	}
	return Endpoint{Symbol: body, Occ: occ, Kind: kind}, nil
}

// Slice is the set of endpoints that occur at one timestamp, kept in
// canonical endpoint order.
type Slice struct {
	Time   interval.Time
	Points []Endpoint
}

// String renders the slice as "(A+ B-)" or a bare endpoint when the slice
// holds a single point.
func (sl Slice) String() string {
	if len(sl.Points) == 1 {
		return sl.Points[0].String()
	}
	parts := make([]string, len(sl.Points))
	for i, p := range sl.Points {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// timed is an endpoint tagged with its emission time, the intermediate
// form Encode sorts before grouping endpoints into slices.
type timed struct {
	t interval.Time
	e Endpoint
}

type timedSorter []timed

func (s timedSorter) Len() int { return len(s) }
func (s timedSorter) Less(i, j int) bool {
	if s[i].t != s[j].t {
		return s[i].t < s[j].t
	}
	return s[i].e.Less(s[j].e)
}
func (s timedSorter) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Encoder encodes interval sequences into endpoint representation while
// reusing scratch buffers across calls. A database encode runs it once
// per sequence, so the per-call allocations are only the two arrays that
// escape into the result (the slice headers and one shared endpoint
// backing array). The zero value is ready to use; an Encoder must not be
// shared between goroutines.
type Encoder struct {
	ivs    []interval.Interval
	points []timed
}

// smallSeqScan is the sequence length below which occurrence indices are
// assigned with a quadratic backwards scan instead of a symbol map. Most
// sequences are short, and for those the scan avoids hashing every
// symbol twice per interval.
const smallSeqScan = 32

// Encode transforms an interval sequence into its endpoint
// representation. The input is canonicalized (sorted) first; the
// original sequence is not modified. Invalid intervals yield an error.
// The result does not alias the Encoder's scratch and stays valid across
// subsequent calls.
func (enc *Encoder) Encode(s interval.Sequence) ([]Slice, error) {
	if err := s.Valid(); err != nil {
		return nil, err
	}
	ivs := append(enc.ivs[:0], s.Intervals...)
	enc.ivs = ivs
	interval.SortIntervals(ivs)

	points := enc.points[:0]
	if len(ivs) <= smallSeqScan {
		for i, iv := range ivs {
			k := 1
			for j := 0; j < i; j++ {
				if ivs[j].Symbol == iv.Symbol {
					k++
				}
			}
			points = append(points,
				timed{iv.Start, Endpoint{Symbol: iv.Symbol, Occ: k, Kind: Start}},
				timed{iv.End, Endpoint{Symbol: iv.Symbol, Occ: k, Kind: Finish}},
			)
		}
	} else {
		occ := make(map[string]int, len(ivs))
		for _, iv := range ivs {
			occ[iv.Symbol]++
			k := occ[iv.Symbol]
			points = append(points,
				timed{iv.Start, Endpoint{Symbol: iv.Symbol, Occ: k, Kind: Start}},
				timed{iv.End, Endpoint{Symbol: iv.Symbol, Occ: k, Kind: Finish}},
			)
		}
	}
	enc.points = points
	sort.Sort(timedSorter(points))

	nSlices := 0
	for i := range points {
		if i == 0 || points[i].t != points[i-1].t {
			nSlices++
		}
	}
	out := make([]Slice, 0, nSlices)
	backing := make([]Endpoint, len(points))
	for i, p := range points {
		backing[i] = p.e
		if i == 0 || p.t != points[i-1].t {
			out = append(out, Slice{Time: p.t, Points: backing[i:i:len(backing)]})
		}
		last := len(out) - 1
		out[last].Points = out[last].Points[:len(out[last].Points)+1]
	}
	return out, nil
}

// Encode transforms an interval sequence into its endpoint representation
// using a throwaway Encoder. Batch callers should hold an Encoder and
// call its Encode method instead to amortize scratch allocations.
func Encode(s interval.Sequence) ([]Slice, error) {
	var enc Encoder
	return enc.Encode(s)
}

// Decode reconstructs the interval sequence from its endpoint
// representation. It is the inverse of Encode up to canonical interval
// order. Decode fails if any endpoint is unpaired or a finish precedes
// its start.
func Decode(slices []Slice) (interval.Sequence, error) {
	type key struct {
		sym string
		occ int
	}
	open := make(map[key]interval.Time)
	var seq interval.Sequence
	for _, sl := range slices {
		for _, p := range sl.Points {
			k := key{p.Symbol, p.Occ}
			switch p.Kind {
			case Start:
				if _, dup := open[k]; dup {
					return interval.Sequence{}, fmt.Errorf("endpoint: duplicate start %s at time %d", p, sl.Time)
				}
				open[k] = sl.Time
			case Finish:
				start, ok := open[k]
				if !ok {
					return interval.Sequence{}, fmt.Errorf("endpoint: finish %s at time %d without open start", p, sl.Time)
				}
				delete(open, k)
				seq.Intervals = append(seq.Intervals, interval.Interval{Symbol: p.Symbol, Start: start, End: sl.Time})
			}
		}
	}
	if len(open) > 0 {
		for k := range open {
			return interval.Sequence{}, fmt.Errorf("endpoint: start %s.%d never finished", k.sym, k.occ)
		}
	}
	seq.Normalize()
	return seq, nil
}

// FormatSlices renders an endpoint sequence as "A+ (A- B+) B-".
func FormatSlices(slices []Slice) string {
	parts := make([]string, len(slices))
	for i, sl := range slices {
		parts[i] = sl.String()
	}
	return strings.Join(parts, " ")
}
