package endpoint

import "testing"

// FuzzParse: the endpoint parser must never panic; accepted inputs must
// round-trip through String up to the default-occurrence rendering.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"A+", "A-", "A.2+", "foo.bar-", "", "+", "x", "A.0+", "A.99999999999999999999+"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("accepted %q but %q does not re-parse: %v", s, e.String(), err)
		}
		if back != e {
			t.Fatalf("round trip %q -> %v -> %v", s, e, back)
		}
	})
}
