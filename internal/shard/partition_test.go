package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tpminer/internal/interval"
	"tpminer/internal/shard"
)

// dbWithSizes builds a database whose sequence i holds sizes[i]
// one-interval-per-unit intervals, so interval counts are exactly
// controllable.
func dbWithSizes(sizes ...int) *interval.Database {
	db := &interval.Database{}
	for s, n := range sizes {
		seq := interval.Sequence{ID: fmt.Sprintf("s%d", s)}
		for i := 0; i < n; i++ {
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: "A",
				Start:  int64(i),
				End:    int64(i + 1),
			})
		}
		db.Sequences = append(db.Sequences, seq)
	}
	return db
}

// coverage asserts the partition is a disjoint cover of the database.
func coverage(t *testing.T, p *shard.Partition, n int) {
	t.Helper()
	seen := make(map[int32]int)
	for i := 0; i < p.NumShards(); i++ {
		prev := int32(-1)
		for _, s := range p.Seqs(i) {
			if s <= prev {
				t.Fatalf("shard %d indices not ascending: %v", i, p.Seqs(i))
			}
			prev = s
			seen[s]++
		}
	}
	if len(seen) != n {
		t.Fatalf("partition covers %d of %d sequences", len(seen), n)
	}
	for s, c := range seen {
		if c != 1 {
			t.Fatalf("sequence %d assigned to %d shards", s, c)
		}
	}
}

// TestPartitionBalance: LPT keeps uniform-ish loads tight.
func TestPartitionBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sizes := make([]int, 64)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(20)
	}
	db := dbWithSizes(sizes...)
	p := shard.New(db, 4, 1)
	coverage(t, p, 64)
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards())
	}
	if s := p.Skew(); s > 1.5 {
		t.Fatalf("skew %.2f > 1.5 on a 64-sequence uniform load", s)
	}
}

// TestPartitionMinSeqs: tiny datasets stay unsharded and mid-size
// datasets cap the shard count so no shard averages below minSeqs.
func TestPartitionMinSeqs(t *testing.T) {
	small := dbWithSizes(1, 2, 3)
	if got := shard.New(small, 8, 16).NumShards(); got != 1 {
		t.Fatalf("3 sequences with minSeqs 16: NumShards = %d, want 1", got)
	}
	mid := dbWithSizes(make([]int, 40)...)
	for i := range mid.Sequences {
		mid.Sequences[i].Intervals = []interval.Interval{{Symbol: "A", Start: 0, End: 1}}
	}
	if got := shard.New(mid, 8, 16).NumShards(); got != 2 {
		t.Fatalf("40 sequences with minSeqs 16: NumShards = %d, want 2", got)
	}
}

// TestSkewedPartitionGuard is the degenerate-shard guard from the issue:
// one sequence holding ~90% of all intervals must not produce a 1-hot
// partition — LPT isolates the giant on one shard and spreads the rest,
// so every other shard still gets work.
func TestSkewedPartitionGuard(t *testing.T) {
	sizes := make([]int, 33)
	sizes[0] = 288 // ~90% of 320 total intervals
	for i := 1; i < len(sizes); i++ {
		sizes[i] = 1
	}
	db := dbWithSizes(sizes...)
	p := shard.New(db, 4, 1)
	coverage(t, p, 33)
	for i := 0; i < p.NumShards(); i++ {
		if p.Load(i) == 0 {
			t.Fatalf("shard %d has zero load: loads=%v", i, loads(p))
		}
	}
	// The giant sequence must sit alone; the 32 unit sequences split
	// across the other three shards.
	for i := 0; i < p.NumShards(); i++ {
		if p.Load(i) == 288 && len(p.Seqs(i)) != 1 {
			t.Fatalf("giant sequence shares shard %d with %d others", i, len(p.Seqs(i))-1)
		}
	}
}

// TestExtendKeepsShardIDsStable: appending a few sequences must not move
// existing ones between shards (projection caches and metrics keyed by
// shard id stay valid).
func TestExtendKeepsShardIDsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	sizes := make([]int, 48)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(10)
	}
	db := dbWithSizes(sizes...)
	p := shard.New(db, 4, 1)

	shardOf := assignment(p)
	grown := dbWithSizes(append(append([]int(nil), sizes...), 5, 7, 3)...)
	next := p.Extend(grown, 4, 1, shard.DefaultSkewThreshold)
	coverage(t, next, 51)
	nextOf := assignment(next)
	for s, sh := range shardOf {
		if nextOf[s] != sh {
			t.Fatalf("sequence %d moved from shard %d to %d on append", s, sh, nextOf[s])
		}
	}
}

// TestAppendRepartitionBoundsSkew is the rebalance gate from the issue:
// an append that the stable-ID greedy extension cannot balance (it blows
// the skew threshold) must trigger a full repartition that brings the
// max/min shard interval-count ratio to ≤ 2.
func TestAppendRepartitionBoundsSkew(t *testing.T) {
	// 80 medium sequences, perfectly balanced: 4 shards × 300 intervals.
	sizes := make([]int, 80)
	for i := range sizes {
		sizes[i] = 15
	}
	db := dbWithSizes(sizes...)
	p := shard.New(db, 4, 1)
	if s := p.Skew(); s != 1 {
		t.Fatalf("base skew %.2f, want 1", s)
	}

	// Append one giant plus many small sequences. The greedy extension
	// must drop the giant on an already-loaded shard (it cannot move the
	// shard's existing sequences away), leaving loads {1700, 800, 800,
	// 800} — skew 2.125, past the threshold — so Extend must fall back to
	// a fresh LPT, which isolates the giant (1400) and spreads the rest
	// (900 per shard): ratio 1.56 ≤ 2.
	sizes = append(sizes, 1400)
	for i := 0; i < 300; i++ {
		sizes = append(sizes, 5)
	}
	grown := dbWithSizes(sizes...)
	next := p.Extend(grown, 4, 1, shard.DefaultSkewThreshold)
	coverage(t, next, len(sizes))
	if s := next.Skew(); s > 2 {
		t.Fatalf("post-append skew %.2f > 2 (loads %v)", s, loads(next))
	}
	// The giant alone on its shard proves the repartition really ran:
	// the greedy extension would have left the shard's 20 old sequences
	// next to it.
	giantShard := assignment(next)[80]
	if got := len(next.Seqs(giantShard)); got != 1 {
		t.Fatalf("giant shares its shard with %d sequences; repartition did not run", got-1)
	}
}

// TestExtendRepartitionsOnShardCountChange: growing past the minSeqs
// cap must repartition to the larger shard count.
func TestExtendRepartitionsOnShardCountChange(t *testing.T) {
	sizes := make([]int, 20)
	for i := range sizes {
		sizes[i] = 2
	}
	db := dbWithSizes(sizes...)
	p := shard.New(db, 4, 16) // 20/16 -> 1 shard
	if p.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", p.NumShards())
	}
	grown := dbWithSizes(append(append([]int(nil), sizes...), make([]int, 44)...)...)
	for i := 20; i < 64; i++ {
		grown.Sequences[i].Intervals = []interval.Interval{{Symbol: "A", Start: 0, End: 1}}
	}
	next := p.Extend(grown, 4, 16, shard.DefaultSkewThreshold)
	if next.NumShards() != 4 {
		t.Fatalf("post-growth NumShards = %d, want 4", next.NumShards())
	}
	coverage(t, next, 64)
}

func assignment(p *shard.Partition) map[int32]int {
	m := make(map[int32]int)
	for i := 0; i < p.NumShards(); i++ {
		for _, s := range p.Seqs(i) {
			m[s] = i
		}
	}
	return m
}

func loads(p *shard.Partition) []int64 {
	out := make([]int64, p.NumShards())
	for i := range out {
		out[i] = p.Load(i)
	}
	return out
}
