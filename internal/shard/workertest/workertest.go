// Package workertest is the shared conformance suite every shard.Worker
// implementation must pass. It pins the contract the coordinator's
// exactness proof leans on — determinism across repeated calls, exact
// local counting consistent with mining, prompt context-cancellation
// propagation, stats that survive the transport — so a new transport
// (the remote HTTP client, a decorator) proves itself by running one
// function against a known database instead of re-deriving the contract
// from the merge algebra.
package workertest

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/shard"
)

// Factory builds workers for one implementation under test.
type Factory struct {
	// New returns a worker mining exactly db. Called once per subtest;
	// cleanup belongs on t.Cleanup.
	New func(t *testing.T, db *interval.Database) shard.Worker
}

// DB builds the deterministic 12-sequence database the suite mines.
// Exported so transport tests can assert against the same data.
func DB() *interval.Database {
	db := &interval.Database{}
	for s := 0; s < 12; s++ {
		seq := interval.Sequence{ID: fmt.Sprintf("s%02d", s)}
		// Every sequence holds A and B overlapping; even sequences add
		// a C after them, and every third sequence doubles up A — so
		// the database yields patterns at several supports, with
		// repeated-symbol occurrences exercising the raw/normalized
		// distinction.
		seq.Intervals = append(seq.Intervals,
			interval.Interval{Symbol: "A", Start: 0, End: 10},
			interval.Interval{Symbol: "B", Start: 5, End: 15},
		)
		if s%2 == 0 {
			seq.Intervals = append(seq.Intervals, interval.Interval{Symbol: "C", Start: 20, End: 30})
		}
		if s%3 == 0 {
			seq.Intervals = append(seq.Intervals, interval.Interval{Symbol: "A", Start: 40, End: 50})
		}
		db.Sequences = append(db.Sequences, seq)
	}
	return db
}

// Run executes the full conformance suite against the factory.
func Run(t *testing.T, f Factory) {
	t.Run("MineTemporalDeterministic", func(t *testing.T) { testMineDeterministic(t, f, shard.KindTemporal) })
	t.Run("MineCoincidenceDeterministic", func(t *testing.T) { testMineDeterministic(t, f, shard.KindCoincidence) })
	t.Run("MineMatchesLocal", func(t *testing.T) { testMineMatchesLocal(t, f) })
	t.Run("MineTopK", func(t *testing.T) { testMineTopK(t, f) })
	t.Run("MineUnknownKind", func(t *testing.T) { testUnknownKind(t, f) })
	t.Run("CountMatchesMine", func(t *testing.T) { testCountMatchesMine(t, f) })
	t.Run("CountParallelToRequest", func(t *testing.T) { testCountShape(t, f) })
	t.Run("StatsFold", func(t *testing.T) { testStatsFold(t, f) })
	t.Run("MineCancellation", func(t *testing.T) { testCancellation(t, f, false) })
	t.Run("CountCancellation", func(t *testing.T) { testCancellation(t, f, true) })
}

func mineReq(kind shard.Kind) *shard.MineShardRequest {
	return &shard.MineShardRequest{
		Shard: 0,
		Kind:  kind,
		Opt:   core.Options{MinCount: 2, KeepOccurrences: kind == shard.KindTemporal},
	}
}

// testMineDeterministic: two identical calls return identical patterns,
// supports, and search counters. Elapsed is wall time and exempt.
func testMineDeterministic(t *testing.T, f Factory, kind shard.Kind) {
	w := f.New(t, DB())
	ctx := context.Background()
	a, err := w.Mine(ctx, mineReq(kind))
	if err != nil {
		t.Fatalf("mine #1: %v", err)
	}
	b, err := w.Mine(ctx, mineReq(kind))
	if err != nil {
		t.Fatalf("mine #2: %v", err)
	}
	a.Stats.Elapsed, b.Stats.Elapsed = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated mine differs:\n#1: %+v\n#2: %+v", a, b)
	}
	if kind == shard.KindTemporal && len(a.Temporal) == 0 {
		t.Fatal("temporal mine found nothing; suite database is broken")
	}
	if kind == shard.KindCoincidence && len(a.Coinc) == 0 {
		t.Fatal("coincidence mine found nothing; suite database is broken")
	}
}

// testMineMatchesLocal: whatever the transport, the response must be
// exactly the LocalWorker's over the same database — the property the
// coordinator's merge correctness rests on.
func testMineMatchesLocal(t *testing.T, f Factory) {
	db := DB()
	w := f.New(t, db)
	ref := shard.NewLocalWorker(db)
	ctx := context.Background()
	for _, kind := range []shard.Kind{shard.KindTemporal, shard.KindCoincidence} {
		got, err := w.Mine(ctx, mineReq(kind))
		if err != nil {
			t.Fatalf("%s: mine: %v", kind, err)
		}
		want, err := ref.Mine(ctx, mineReq(kind))
		if err != nil {
			t.Fatalf("%s: reference mine: %v", kind, err)
		}
		got.Stats.Elapsed, want.Stats.Elapsed = 0, 0
		if len(got.Temporal) != len(want.Temporal) || len(got.Coinc) != len(want.Coinc) {
			t.Fatalf("%s: %d temporal / %d coinc results, want %d / %d",
				kind, len(got.Temporal), len(got.Coinc), len(want.Temporal), len(want.Coinc))
		}
		for i := range want.Temporal {
			if got.Temporal[i].Support != want.Temporal[i].Support ||
				got.Temporal[i].Pattern.Key() != want.Temporal[i].Pattern.Key() {
				t.Errorf("%s: temporal result %d differs: got %v(%d), want %v(%d)", kind, i,
					got.Temporal[i].Pattern, got.Temporal[i].Support,
					want.Temporal[i].Pattern, want.Temporal[i].Support)
			}
		}
		for i := range want.Coinc {
			if got.Coinc[i].Support != want.Coinc[i].Support ||
				got.Coinc[i].Pattern.Key() != want.Coinc[i].Pattern.Key() {
				t.Errorf("%s: coincidence result %d differs", kind, i)
			}
		}
	}
}

// testMineTopK: the top-k path works and honors k.
func testMineTopK(t *testing.T, f Factory) {
	w := f.New(t, DB())
	req := mineReq(shard.KindTemporal)
	req.TopK = 2
	resp, err := w.Mine(context.Background(), req)
	if err != nil {
		t.Fatalf("top-k mine: %v", err)
	}
	if len(resp.Temporal) == 0 || len(resp.Temporal) > 2 {
		t.Errorf("top-2 mine returned %d results", len(resp.Temporal))
	}
}

// testUnknownKind: a bogus kind is an error, not silence.
func testUnknownKind(t *testing.T, f Factory) {
	w := f.New(t, DB())
	req := mineReq(shard.Kind("nonsense"))
	if _, err := w.Mine(context.Background(), req); err == nil {
		t.Error("mine with unknown kind succeeded")
	}
	creq := &shard.CountRequest{Shard: 0, Kind: shard.Kind("nonsense")}
	if _, err := w.Count(context.Background(), creq); err == nil {
		t.Error("count with unknown kind succeeded")
	}
}

// testCountMatchesMine: counting a mined pattern must report the same
// support mining did — the identity support completion depends on.
func testCountMatchesMine(t *testing.T, f Factory) {
	w := f.New(t, DB())
	ctx := context.Background()
	mined, err := w.Mine(ctx, mineReq(shard.KindTemporal))
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	creq := &shard.CountRequest{Shard: 0, Kind: shard.KindTemporal}
	for _, r := range mined.Temporal {
		creq.Temporal = append(creq.Temporal, r.Pattern)
	}
	counted, err := w.Count(ctx, creq)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if len(counted.Supports) != len(mined.Temporal) {
		t.Fatalf("count returned %d supports for %d patterns", len(counted.Supports), len(mined.Temporal))
	}
	for i, r := range mined.Temporal {
		if counted.Supports[i] != r.Support {
			t.Errorf("pattern %d (%v): counted %d, mined %d", i, r.Pattern, counted.Supports[i], r.Support)
		}
	}

	cm, err := w.Mine(ctx, mineReq(shard.KindCoincidence))
	if err != nil {
		t.Fatalf("coincidence mine: %v", err)
	}
	ccreq := &shard.CountRequest{Shard: 0, Kind: shard.KindCoincidence}
	for _, r := range cm.Coinc {
		ccreq.Coinc = append(ccreq.Coinc, r.Pattern)
	}
	ccounted, err := w.Count(ctx, ccreq)
	if err != nil {
		t.Fatalf("coincidence count: %v", err)
	}
	for i, r := range cm.Coinc {
		if ccounted.Supports[i] != r.Support {
			t.Errorf("coincidence pattern %d: counted %d, mined %d", i, ccounted.Supports[i], r.Support)
		}
	}
}

// testCountShape: an empty request counts nothing, and supports stay
// parallel to the request slice.
func testCountShape(t *testing.T, f Factory) {
	w := f.New(t, DB())
	resp, err := w.Count(context.Background(), &shard.CountRequest{Shard: 0, Kind: shard.KindTemporal})
	if err != nil {
		t.Fatalf("empty count: %v", err)
	}
	if len(resp.Supports) != 0 {
		t.Errorf("empty count returned %d supports", len(resp.Supports))
	}
}

// testStatsFold: the stats the coordinator folds must survive the
// transport — a remote worker that drops Nodes or Truncated would
// silently corrupt aggregate stats and completeness decisions.
func testStatsFold(t *testing.T, f Factory) {
	w := f.New(t, DB())
	resp, err := w.Mine(context.Background(), mineReq(shard.KindTemporal))
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if resp.Stats.Nodes == 0 {
		t.Error("Stats.Nodes is 0 after a non-trivial mine")
	}
	if resp.Stats.Emitted == 0 {
		t.Error("Stats.Emitted is 0 with results present")
	}
	if resp.Stats.Truncated {
		t.Error("Stats.Truncated set without any budget in the request")
	}
}

// testCancellation: a canceled context aborts the call with an error
// that unwraps to context.Canceled — the coordinator's first-error-
// cancels fan-out depends on workers honoring it promptly.
func testCancellation(t *testing.T, f Factory, count bool) {
	w := f.New(t, DB())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var err error
	if count {
		_, err = w.Count(ctx, &shard.CountRequest{
			Shard: 0, Kind: shard.KindTemporal,
			Temporal: []pattern.Temporal{mustMine(t, f).Temporal[0].Pattern},
		})
	} else {
		_, err = w.Mine(ctx, mineReq(shard.KindTemporal))
	}
	if err == nil {
		t.Fatal("call with canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not unwrap to context.Canceled: %v", err)
	}
}

// mustMine grabs patterns to feed cancellation counts.
func mustMine(t *testing.T, f Factory) *shard.MineShardResponse {
	t.Helper()
	w := f.New(t, DB())
	resp, err := w.Mine(context.Background(), mineReq(shard.KindTemporal))
	if err != nil || len(resp.Temporal) == 0 {
		t.Fatalf("seed mine: %v (%d results)", err, len(resp.Temporal))
	}
	return resp
}
