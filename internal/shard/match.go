package shard

import (
	"tpminer/internal/coincidence"
	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// The matchers below answer "would the miner have counted this sequence
// for this pattern?" without re-running a projection. They must agree
// exactly with the miner's emission semantics, constraints included,
// because the coordinator adds their answers to mined supports.

// seqIndex is one sequence's endpoint database prepared for constrained
// matching: the slice position of every occurrence-labeled endpoint
// (each appears at most once per sequence) plus per-slice times for the
// span/gap checks that pattern.SupportAligned does not perform.
type seqIndex struct {
	pos   map[endpoint.Endpoint]int32
	times []interval.Time
}

func buildSeqIndex(slices []endpoint.Slice) seqIndex {
	ix := seqIndex{
		pos:   make(map[endpoint.Endpoint]int32),
		times: make([]interval.Time, len(slices)),
	}
	for i, sl := range slices {
		ix.times[i] = sl.Time
		for _, e := range sl.Points {
			ix.pos[e] = int32(i)
		}
	}
	return ix
}

// supports reports whether the sequence contains an aligned embedding of
// the raw pattern p under the miner's constraints: all endpoints of one
// element share a slice, element slices strictly increase, the first→last
// element time span is at most maxSpan, and each consecutive-element time
// gap is at most maxGap (0 disables either check). Because endpoints are
// occurrence-labeled, the embedding is unique, so there is nothing to
// search — just verify.
func (ix seqIndex) supports(p pattern.Temporal, maxSpan, maxGap interval.Time) bool {
	if len(p.Elements) == 0 {
		return false
	}
	prev := int32(-1)
	var first interval.Time
	for ei, el := range p.Elements {
		at := int32(-1)
		for j, e := range el {
			i, ok := ix.pos[e]
			if !ok {
				return false
			}
			if j == 0 {
				at = i
			} else if at != i {
				return false
			}
		}
		if at <= prev {
			return false
		}
		t := ix.times[at]
		if ei == 0 {
			first = t
		} else if maxGap > 0 && t-ix.times[prev] > maxGap {
			return false
		}
		if maxSpan > 0 && t-first > maxSpan {
			return false
		}
		prev = at
	}
	return true
}

// coincSegment is one coincidence segment's sorted symbol set.
type coincSegment []string

// transformForCount converts a shard database into per-sequence sorted
// symbol sets for coincidence containment checks.
func transformForCount(db *interval.Database) ([][]coincSegment, error) {
	out := make([][]coincSegment, db.Len())
	for i, s := range db.Sequences {
		segs, err := coincidence.Transform(s)
		if err != nil {
			return nil, err
		}
		out[i] = make([]coincSegment, len(segs))
		for j, seg := range segs {
			out[i][j] = coincSegment(seg.Symbols)
		}
	}
	return out, nil
}

// containsCoinc reports whether the sequence's segments contain p as a
// subsequence, each pattern element a subset of the matched segment.
// Greedy earliest-match is complete for subsequence containment, and it
// is exactly the projection rule the coincidence miner uses, so the
// counted support matches mined support.
func containsCoinc(segs []coincSegment, p pattern.Coinc) bool {
	if len(p.Elements) == 0 {
		return false
	}
	next := 0
	for _, el := range p.Elements {
		found := false
		for ; next < len(segs); next++ {
			if containsSorted(segs[next], el) {
				found = true
				next++
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// containsSorted reports whether sorted needle ⊆ sorted haystack via a
// single merge walk.
func containsSorted(haystack coincSegment, needle []string) bool {
	if len(needle) > len(haystack) {
		return false
	}
	i := 0
	for _, want := range needle {
		for i < len(haystack) && haystack[i] < want {
			i++
		}
		if i >= len(haystack) || haystack[i] != want {
			return false
		}
		i++
	}
	return true
}
