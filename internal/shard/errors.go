package shard

import "fmt"

// Addressed is implemented by workers that can name where they run, so
// fan-out failures identify the machine at fault. LocalWorker reports
// "local"; the remote client reports its base URL.
type Addressed interface {
	WorkerAddr() string
}

// WorkerAddr returns w's address, or "unknown" for workers that do not
// implement Addressed.
func WorkerAddr(w Worker) string {
	if a, ok := w.(Addressed); ok {
		return a.WorkerAddr()
	}
	return "unknown"
}

// WorkerAddr identifies the in-process worker in wrapped fan-out errors.
func (w *LocalWorker) WorkerAddr() string { return "local" }

// ShardError attributes a fan-out failure to the shard and worker that
// produced it, so a distributed failure is diagnosable from the log line
// or error envelope alone. Unwrap preserves errors.Is/As matching on the
// underlying cause (context.DeadlineExceeded, *remote.RPCError, ...).
type ShardError struct {
	Shard  int
	Worker string
	Err    error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d (worker %s): %v", e.Shard, e.Worker, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }
