package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/shard"
)

// randomDB builds a small random interval database (same construction as
// the core equivalence suite, so the two suites stress comparable data).
func randomDB(rng *rand.Rand, nSeq, maxIvs, nSyms int, horizon int64) *interval.Database {
	db := &interval.Database{}
	for s := 0; s < nSeq; s++ {
		n := 1 + rng.Intn(maxIvs)
		seq := interval.Sequence{ID: fmt.Sprintf("s%d", s)}
		for i := 0; i < n; i++ {
			start := rng.Int63n(horizon)
			dur := rng.Int63n(horizon / 2)
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: string(rune('A' + rng.Intn(nSyms))),
				Start:  start,
				End:    start + dur,
			})
		}
		db.Sequences = append(db.Sequences, seq)
	}
	return db
}

func coordinatorFor(db *interval.Database, shards int) *shard.Coordinator {
	return shard.NewLocal(db, shard.New(db, shards, 1))
}

// shardCounts is the equivalence matrix from the issue: 1 (degenerate),
// 2, 3 (odd, uneven splits), 8 (more shards than some tests have
// heavily-loaded sequences).
var shardCounts = []int{1, 2, 3, 8}

// sameTemporal asserts exact equality including ordering — the issue
// requires the sharded output to be byte-identical to the serial miner,
// not merely set-equal.
func sameTemporal(t *testing.T, label string, got, want []pattern.TemporalResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Pattern.Key() != want[i].Pattern.Key() || got[i].Support != want[i].Support {
			t.Fatalf("%s: result %d is %s/%d, want %s/%d",
				label, i, got[i].Pattern.Key(), got[i].Support, want[i].Pattern.Key(), want[i].Support)
		}
	}
}

func sameCoinc(t *testing.T, label string, got, want []pattern.CoincResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Pattern.Key() != want[i].Pattern.Key() || got[i].Support != want[i].Support {
			t.Fatalf("%s: result %d is %s/%d, want %s/%d",
				label, i, got[i].Pattern.Key(), got[i].Support, want[i].Pattern.Key(), want[i].Support)
		}
	}
}

// TestShardedMatchesSerial mirrors TestParallelMatchesSerial: for every
// shard count the coordinator's output must be identical — patterns,
// supports, and ordering — to the serial miner, in both raw and
// normalized semantics and across threshold styles and span/gap/shape
// constraints (the constraints exercise the support-completion matcher).
func TestShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	optionSets := []core.Options{
		{MinCount: 3},
		{MinSupport: 0.15},
		{MinCount: 2, MaxSpan: 15, MaxGap: 8},
		{MinCount: 2, MaxIntervals: 3, MaxElements: 4, MaxItemsPerElement: 2},
	}
	for trial := 0; trial < 4; trial++ {
		db := randomDB(rng, 20, 6, 4, 30)
		for oi, base := range optionSets {
			for _, keepOcc := range []bool{true, false} {
				serial := base
				serial.KeepOccurrences = keepOcc
				wantT, _, err := core.MineTemporal(db, serial)
				if err != nil {
					t.Fatal(err)
				}
				wantC, _, err := core.MineCoincidence(db, serial)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range shardCounts {
					co := coordinatorFor(db, shards)
					label := fmt.Sprintf("trial %d opts %d keepOcc=%v shards=%d", trial, oi, keepOcc, shards)

					gotT, _, err := co.MineTemporal(context.Background(), serial)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					sameTemporal(t, label+" temporal", gotT, wantT)

					gotC, _, err := co.MineCoincidence(context.Background(), serial)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					sameCoinc(t, label+" coincidence", gotC, wantC)
				}
			}
		}
	}
}

// TestShardedClosedMaximal: the closed/maximal post-filters are
// downstream of mining, so running them on sharded results must match
// the serial pipeline for every shard count.
func TestShardedClosedMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 3; trial++ {
		db := randomDB(rng, 20, 6, 4, 30)
		serial := core.Options{MinCount: 3}
		rsSerial, _, err := core.MineTemporal(db, serial)
		if err != nil {
			t.Fatal(err)
		}
		wantClosed := core.FilterClosed(rsSerial)
		wantMaximal := core.FilterMaximal(rsSerial)

		for _, shards := range shardCounts {
			co := coordinatorFor(db, shards)
			rs, _, err := co.MineTemporal(context.Background(), serial)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("trial %d shards=%d", trial, shards)
			sameTemporal(t, label+" closed", core.FilterClosed(rs), wantClosed)
			sameTemporal(t, label+" maximal", core.FilterMaximal(rs), wantMaximal)
		}
	}
}

// TestShardedTopKMatchesSerial: the two-phase sharded top-k must return
// exactly the serial top-k result for every shard count and k.
func TestShardedTopKMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3; trial++ {
		db := randomDB(rng, 20, 6, 4, 30)
		for _, k := range []int{1, 5, 25} {
			for _, keepOcc := range []bool{true, false} {
				serial := core.Options{MinCount: 2, KeepOccurrences: keepOcc}
				wantT, _, err := core.MineTemporalTopK(db, k, serial)
				if err != nil {
					t.Fatal(err)
				}
				wantC, _, err := core.MineCoincidenceTopK(db, k, serial)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range shardCounts {
					co := coordinatorFor(db, shards)
					label := fmt.Sprintf("trial %d k=%d keepOcc=%v shards=%d", trial, k, keepOcc, shards)

					gotT, _, err := co.MineTemporalTopK(context.Background(), k, serial)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					sameTemporal(t, label+" temporal", gotT, wantT)

					gotC, _, err := co.MineCoincidenceTopK(context.Background(), k, serial)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					sameCoinc(t, label+" coincidence", gotC, wantC)
				}
			}
		}
	}
}

// TestShardedParallelWorkers: sharding composes with the per-shard
// work-stealing parallel DFS (the coordinator splits the request's
// Parallel budget across shards).
func TestShardedParallelWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	db := randomDB(rng, 24, 6, 4, 30)
	serial := core.Options{MinCount: 3}
	want, _, err := core.MineTemporal(db, serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		for _, workers := range []int{2, 8} {
			opt := serial
			opt.Parallel = workers
			co := coordinatorFor(db, shards)
			got, _, err := co.MineTemporal(context.Background(), opt)
			if err != nil {
				t.Fatal(err)
			}
			sameTemporal(t, fmt.Sprintf("shards=%d parallel=%d", shards, workers), got, want)
		}
	}
}

// blockingWorker blocks in Mine until its context is canceled, proving
// the coordinator both propagates cancellation and joins every fan-out
// goroutine before returning.
type blockingWorker struct {
	entered chan struct{}
}

func (w *blockingWorker) Mine(ctx context.Context, req *shard.MineShardRequest) (*shard.MineShardResponse, error) {
	w.entered <- struct{}{}
	<-ctx.Done()
	return nil, ctx.Err()
}

func (w *blockingWorker) Count(ctx context.Context, req *shard.CountRequest) (*shard.CountResponse, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCancelMidFanOutLeaksNoGoroutines cancels a mine while every shard
// is mid-flight and asserts the call returns the cancellation error with
// all fan-out goroutines gone. Run under -race this also proves the
// response/error slices are safely published across the join.
func TestCancelMidFanOutLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	bw := &blockingWorker{entered: make(chan struct{}, 4)}
	co := &shard.Coordinator{
		Workers: []shard.Worker{bw, bw, bw, bw},
		Sizes:   []int{5, 5, 5, 5},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := co.MineTemporal(ctx, core.Options{MinCount: 2})
		done <- err
	}()
	for i := 0; i < 4; i++ {
		<-bw.entered
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mine did not return after cancellation")
	}

	// Goroutine counts settle asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelRealMinersNoLeak repeats the cancellation drill against real
// shard miners on a non-trivial database.
func TestCancelRealMinersNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	db := randomDB(rng, 40, 8, 3, 40)
	co := coordinatorFor(db, 4)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := co.MineTemporal(ctx, core.Options{MinCount: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLocalBoundSoundness checks the pigeonhole property the pruning
// soundness rests on: if a pattern's support is below the local bound on
// every shard, the supports cannot sum to minCount.
func TestLocalBoundSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(100)
		minCount := 1 + rng.Intn(n)
		k := 1 + rng.Intn(8)
		sizes := make([]int, k)
		left := n
		for i := 0; i < k-1; i++ {
			sizes[i] = rng.Intn(left + 1)
			left -= sizes[i]
		}
		sizes[k-1] = left

		worst := 0
		for _, ni := range sizes {
			b := shard.LocalBound(minCount, ni, n)
			if b < 1 {
				t.Fatalf("bound %d < 1", b)
			}
			worst += b - 1 // max support a silent shard can hide
		}
		if worst >= minCount {
			t.Fatalf("n=%d k=%d minCount=%d sizes=%v: silent shards could hide support %d >= minCount",
				n, k, minCount, sizes, worst)
		}
	}
}
