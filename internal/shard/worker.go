package shard

import (
	"context"
	"fmt"
	"sync"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// Kind selects which pattern family a shard request mines or counts.
type Kind string

const (
	KindTemporal    Kind = "temporal"
	KindCoincidence Kind = "coincidence"
)

// MineShardRequest asks a worker to mine its shard completely at the
// coordinator-supplied local bound (carried in Opt.MinCount). TopK > 0
// selects the top-k miner with Opt.MinCount as the support floor.
type MineShardRequest struct {
	Shard int
	Kind  Kind
	TopK  int
	Opt   core.Options
}

// MineShardResponse carries one shard's results. Temporal results are
// raw (occurrence-labeled) so their supports are additive across
// shards; normalization happens once, at the coordinator.
type MineShardResponse struct {
	Temporal []pattern.TemporalResult
	Coinc    []pattern.CoincResult
	Stats    core.Stats
}

// CountRequest asks a worker for the exact local support of patterns it
// did not report (they fell below its relaxed local bound). MaxSpan and
// MaxGap replicate the mining constraints so the counted support equals
// what the miner would have emitted.
type CountRequest struct {
	Shard    int
	Kind     Kind
	Temporal []pattern.Temporal
	Coinc    []pattern.Coinc
	MaxSpan  interval.Time
	MaxGap   interval.Time
}

// CountResponse holds per-pattern local supports, parallel to the
// request's pattern slice.
type CountResponse struct {
	Supports []int
}

// Worker mines or counts over one shard. The interface is deliberately
// RPC-shaped — context plus plain request/response structs, no shared
// memory beyond the shard handed to the worker at construction — so a
// remote (HTTP/gRPC) implementation can replace LocalWorker without
// touching the Coordinator.
type Worker interface {
	Mine(ctx context.Context, req *MineShardRequest) (*MineShardResponse, error)
	Count(ctx context.Context, req *CountRequest) (*CountResponse, error)
}

// LocalWorker runs the existing dense-index miner in-process over one
// shard database. Count encodings are built lazily on first use and
// cached for the worker's lifetime (the shard database is immutable).
type LocalWorker struct {
	db *interval.Database

	tempOnce sync.Once
	tempErr  error
	tempIdx  []seqIndex

	coOnce sync.Once
	coErr  error
	coDB   [][]coincSegment
}

// NewLocalWorker wraps db, which the worker treats as immutable.
func NewLocalWorker(db *interval.Database) *LocalWorker {
	return &LocalWorker{db: db}
}

// Mine runs the shard's miner per the request.
func (w *LocalWorker) Mine(ctx context.Context, req *MineShardRequest) (*MineShardResponse, error) {
	switch req.Kind {
	case KindTemporal:
		var (
			rs  []pattern.TemporalResult
			st  core.Stats
			err error
		)
		if req.TopK > 0 {
			rs, st, err = core.MineTemporalTopKCtx(ctx, w.db, req.TopK, req.Opt)
		} else {
			rs, st, err = core.MineTemporalCtx(ctx, w.db, req.Opt)
		}
		if err != nil {
			return nil, err
		}
		return &MineShardResponse{Temporal: rs, Stats: st}, nil
	case KindCoincidence:
		var (
			rs  []pattern.CoincResult
			st  core.Stats
			err error
		)
		if req.TopK > 0 {
			rs, st, err = core.MineCoincidenceTopKCtx(ctx, w.db, req.TopK, req.Opt)
		} else {
			rs, st, err = core.MineCoincidenceCtx(ctx, w.db, req.Opt)
		}
		if err != nil {
			return nil, err
		}
		return &MineShardResponse{Coinc: rs, Stats: st}, nil
	default:
		return nil, fmt.Errorf("shard: unknown kind %q", req.Kind)
	}
}

// countPollEvery bounds how many sequences a Count scans between
// context checks, so cancellation propagates promptly on large shards.
const countPollEvery = 64

// Count computes exact local supports for the requested patterns using
// the constrained matchers in match.go.
func (w *LocalWorker) Count(ctx context.Context, req *CountRequest) (*CountResponse, error) {
	switch req.Kind {
	case KindTemporal:
		w.tempOnce.Do(func() {
			slices, err := pattern.EncodeDatabase(w.db)
			if err != nil {
				w.tempErr = err
				return
			}
			w.tempIdx = make([]seqIndex, len(slices))
			for i, s := range slices {
				w.tempIdx[i] = buildSeqIndex(s)
			}
		})
		if w.tempErr != nil {
			return nil, w.tempErr
		}
		sup := make([]int, len(req.Temporal))
		for si, ix := range w.tempIdx {
			if si%countPollEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			for pi := range req.Temporal {
				if ix.supports(req.Temporal[pi], req.MaxSpan, req.MaxGap) {
					sup[pi]++
				}
			}
		}
		return &CountResponse{Supports: sup}, nil
	case KindCoincidence:
		w.coOnce.Do(func() {
			w.coDB, w.coErr = transformForCount(w.db)
		})
		if w.coErr != nil {
			return nil, w.coErr
		}
		sup := make([]int, len(req.Coinc))
		for si, segs := range w.coDB {
			if si%countPollEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			for pi := range req.Coinc {
				if containsCoinc(segs, req.Coinc[pi]) {
					sup[pi]++
				}
			}
		}
		return &CountResponse{Supports: sup}, nil
	default:
		return nil, fmt.Errorf("shard: unknown kind %q", req.Kind)
	}
}
