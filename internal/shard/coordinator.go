package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// Metrics receives coordinator events. Implementations must be safe for
// concurrent use; a nil Metrics disables instrumentation.
type Metrics interface {
	// FanOut is called once per mine request with the shard count.
	FanOut(shards int)
	// ShardDone is called when one shard's mine call returns.
	ShardDone(shard int, d time.Duration)
	// Merged is called after the global merge with the number of merged
	// result patterns and the number of support-completion counts issued.
	Merged(patterns, counted int)
}

// Coordinator fans a mine request out to shard workers and merges the
// per-shard supports into the exact global result. Results — patterns,
// supports, and ordering — are identical to running the serial miner on
// the unpartitioned database.
type Coordinator struct {
	// Workers mine the shards; Sizes holds each shard's sequence count
	// (the partition-aware local bound depends on it).
	Workers []Worker
	Sizes   []int
	// Met receives instrumentation events; nil disables them.
	Met Metrics
}

// NewLocal builds a coordinator with one in-process worker per shard of
// the partition. db must be treated as immutable for the coordinator's
// lifetime (the store's copy-on-write contract guarantees this).
func NewLocal(db *interval.Database, p *Partition) *Coordinator {
	c := &Coordinator{
		Workers: make([]Worker, p.NumShards()),
		Sizes:   make([]int, p.NumShards()),
	}
	for i := range c.Workers {
		c.Workers[i] = NewLocalWorker(p.SubDatabase(db, i))
		c.Sizes[i] = len(p.Seqs(i))
	}
	return c
}

// NewWithWorkers builds a coordinator over explicit workers — the hook
// for registry-aware construction, where a pool picks a remote or local
// worker per shard. sizes must hold each worker's shard sequence count;
// the slices are adopted, not copied.
func NewWithWorkers(workers []Worker, sizes []int) *Coordinator {
	if len(workers) != len(sizes) {
		panic("shard: NewWithWorkers: workers and sizes length mismatch")
	}
	return &Coordinator{Workers: workers, Sizes: sizes}
}

// LocalBound is the partition-aware local support bound: shard i of
// shardSeqs sequences (out of totalSeqs) mines completely at
// max(1, ceil(minCount·shardSeqs/totalSeqs)). Soundness: if a pattern
// misses this bound on every shard, each local support is strictly below
// minCount·nᵢ/N (an integer below a ceiling is below the ratio), so the
// per-shard supports sum to strictly less than minCount — a globally
// frequent pattern is therefore reported by at least one shard, and the
// coordinator recovers its exact global support by counting it on the
// shards that stayed silent.
func LocalBound(minCount, shardSeqs, totalSeqs int) int {
	if totalSeqs <= 0 {
		return 1
	}
	b := (minCount*shardSeqs + totalSeqs - 1) / totalSeqs
	if b < 1 {
		b = 1
	}
	return b
}

// totalSeqs is the partitioned database's sequence count.
func (c *Coordinator) totalSeqs() int {
	n := 0
	for _, s := range c.Sizes {
		n += s
	}
	return n
}

// shardOpt derives the options one shard mines with: the local bound
// replaces the global threshold, result caps move to the coordinator
// (shards must report everything above their bound or the merge loses
// patterns), temporal results stay raw so supports are additive, and the
// per-request parallelism budget is split across shards (the fan-out
// itself already provides K-way concurrency).
func (c *Coordinator) shardOpt(opt core.Options, kind Kind, bound int) core.Options {
	local := opt
	local.MinSupport = 0
	local.MinCount = bound
	local.MaxPatterns = 0
	if kind == KindTemporal {
		local.KeepOccurrences = true
	}
	if opt.Parallel > 1 {
		local.Parallel = opt.Parallel / len(c.Workers)
		if local.Parallel < 1 {
			local.Parallel = 1
		}
	}
	return local
}

// fanOut runs f once per shard concurrently and waits for every
// goroutine to finish before returning — also on error and on context
// cancellation, so no goroutine outlives the call. The first failure
// cancels the shared context; a real error is preferred over the
// resulting cancellations when reporting. Failures are wrapped with the
// shard index and worker address so a distributed mine names which
// machine broke; Unwrap keeps errors.Is/As matching on the cause.
func (c *Coordinator) fanOut(ctx context.Context, f func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(c.Workers))
	var wg sync.WaitGroup
	for i := range c.Workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := f(ctx, i); err != nil {
				errs[i] = &ShardError{Shard: i, Worker: WorkerAddr(c.Workers[i]), Err: err}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// mineAll fans one mine request out to every shard at the given local
// bounds and folds the per-shard stats into agg.
func (c *Coordinator) mineAll(ctx context.Context, kind Kind, topK, minCount int, opt core.Options, agg *core.Stats) ([]*MineShardResponse, error) {
	if c.Met != nil {
		c.Met.FanOut(len(c.Workers))
	}
	resps := make([]*MineShardResponse, len(c.Workers))
	err := c.fanOut(ctx, func(ctx context.Context, i int) error {
		t0 := time.Now()
		resp, err := c.Workers[i].Mine(ctx, &MineShardRequest{
			Shard: i,
			Kind:  kind,
			TopK:  topK,
			Opt:   c.shardOpt(opt, kind, LocalBound(minCount, c.Sizes[i], c.totalSeqs())),
		})
		if c.Met != nil {
			c.Met.ShardDone(i, time.Since(t0))
		}
		if err != nil {
			return err
		}
		resps[i] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range resps {
		foldStats(agg, r.Stats)
	}
	return resps, nil
}

// foldStats accumulates one shard's search counters into the aggregate.
// Sequences and MinCount stay global (set by the caller); Truncated
// propagates because a truncated shard makes the merged result
// incomplete too.
func foldStats(agg *core.Stats, s core.Stats) {
	agg.ItemsRemoved += s.ItemsRemoved
	agg.Nodes += s.Nodes
	agg.Emitted += s.Emitted
	agg.CandidateScans += s.CandidateScans
	agg.PairPruned += s.PairPruned
	agg.PostfixPruned += s.PostfixPruned
	agg.SizePruned += s.SizePruned
	agg.JobsSpawned += s.JobsSpawned
	agg.StealsTaken += s.StealsTaken
	if s.MaxQueueDepth > agg.MaxQueueDepth {
		agg.MaxQueueDepth = s.MaxQueueDepth
	}
	if s.Truncated && !agg.Truncated {
		agg.Truncated = true
		agg.TruncatedBy = s.TruncatedBy
	}
}

// tAcc accumulates one raw temporal pattern's global support.
type tAcc struct {
	pat   pattern.Temporal
	total int
	seen  []bool // which shards reported it
}

// mergeTemporal merges per-shard raw results: sum reported supports,
// fetch exact supports from the shards that stayed below their local
// bound (support completion), and keep patterns whose global support
// reaches minCount. Returned results are raw and unsorted; counted is
// the number of completion counts issued.
func (c *Coordinator) mergeTemporal(ctx context.Context, resps []*MineShardResponse, opt core.Options, minCount int) ([]pattern.TemporalResult, int, error) {
	k := len(c.Workers)
	accs := make(map[string]*tAcc)
	var order []string
	for i, resp := range resps {
		for _, r := range resp.Temporal {
			key := r.Pattern.Key()
			a := accs[key]
			if a == nil {
				a = &tAcc{pat: r.Pattern, seen: make([]bool, k)}
				accs[key] = a
				order = append(order, key)
			}
			a.total += r.Support
			a.seen[i] = true
		}
	}

	missing := make([][]pattern.Temporal, k)
	missingAcc := make([][]*tAcc, k)
	counted := 0
	for _, key := range order {
		a := accs[key]
		for i := 0; i < k; i++ {
			if !a.seen[i] {
				missing[i] = append(missing[i], a.pat)
				missingAcc[i] = append(missingAcc[i], a)
				counted++
			}
		}
	}
	counts := make([][]int, k)
	err := c.fanOut(ctx, func(ctx context.Context, i int) error {
		if len(missing[i]) == 0 {
			return nil
		}
		resp, err := c.Workers[i].Count(ctx, &CountRequest{
			Shard:    i,
			Kind:     KindTemporal,
			Temporal: missing[i],
			MaxSpan:  opt.MaxSpan,
			MaxGap:   opt.MaxGap,
		})
		if err != nil {
			return err
		}
		if len(resp.Supports) != len(missing[i]) {
			return fmt.Errorf("count returned %d supports for %d patterns", len(resp.Supports), len(missing[i]))
		}
		counts[i] = resp.Supports
		return nil
	})
	if err != nil {
		return nil, counted, err
	}
	for i := 0; i < k; i++ {
		for j, s := range counts[i] {
			missingAcc[i][j].total += s
		}
	}

	out := make([]pattern.TemporalResult, 0, len(order))
	for _, key := range order {
		if a := accs[key]; a.total >= minCount {
			out = append(out, pattern.TemporalResult{Pattern: a.pat, Support: a.total})
		}
	}
	return out, counted, nil
}

// cAcc accumulates one coincidence pattern's global support.
type cAcc struct {
	pat   pattern.Coinc
	total int
	seen  []bool
}

// mergeCoinc is the coincidence analogue of mergeTemporal.
func (c *Coordinator) mergeCoinc(ctx context.Context, resps []*MineShardResponse, minCount int) ([]pattern.CoincResult, int, error) {
	k := len(c.Workers)
	accs := make(map[string]*cAcc)
	var order []string
	for i, resp := range resps {
		for _, r := range resp.Coinc {
			key := r.Pattern.Key()
			a := accs[key]
			if a == nil {
				a = &cAcc{pat: r.Pattern, seen: make([]bool, k)}
				accs[key] = a
				order = append(order, key)
			}
			a.total += r.Support
			a.seen[i] = true
		}
	}

	missing := make([][]pattern.Coinc, k)
	missingAcc := make([][]*cAcc, k)
	counted := 0
	for _, key := range order {
		a := accs[key]
		for i := 0; i < k; i++ {
			if !a.seen[i] {
				missing[i] = append(missing[i], a.pat)
				missingAcc[i] = append(missingAcc[i], a)
				counted++
			}
		}
	}
	counts := make([][]int, k)
	err := c.fanOut(ctx, func(ctx context.Context, i int) error {
		if len(missing[i]) == 0 {
			return nil
		}
		resp, err := c.Workers[i].Count(ctx, &CountRequest{
			Shard: i,
			Kind:  KindCoincidence,
			Coinc: missing[i],
		})
		if err != nil {
			return err
		}
		if len(resp.Supports) != len(missing[i]) {
			return fmt.Errorf("count returned %d supports for %d patterns", len(resp.Supports), len(missing[i]))
		}
		counts[i] = resp.Supports
		return nil
	})
	if err != nil {
		return nil, counted, err
	}
	for i := 0; i < k; i++ {
		for j, s := range counts[i] {
			missingAcc[i][j].total += s
		}
	}

	out := make([]pattern.CoincResult, 0, len(order))
	for _, key := range order {
		if a := accs[key]; a.total >= minCount {
			out = append(out, pattern.CoincResult{Pattern: a.pat, Support: a.total})
		}
	}
	return out, counted, nil
}

// capPatterns applies the global MaxPatterns cap to a sorted result
// slice, mirroring the serial miner's truncation marker.
func capPatterns(n int, max int, stats *core.Stats) int {
	if max > 0 && n > max {
		stats.Truncated = true
		if stats.TruncatedBy == "" {
			stats.TruncatedBy = core.TruncatedMaxPatterns
		}
		return max
	}
	return n
}

// soloMine short-circuits a one-shard coordinator: its single worker
// holds the whole database, so the miner's own answer under the
// caller's unmodified options — full bound, requested distinctness, no
// merge — already is the exact serial result. This keeps a shards=1
// deployment within measurement noise of unsharded mining.
func (c *Coordinator) soloMine(ctx context.Context, kind Kind, topK int, opt core.Options) (*MineShardResponse, error) {
	start := time.Now()
	if c.Met != nil {
		c.Met.FanOut(1)
	}
	resp, err := c.Workers[0].Mine(ctx, &MineShardRequest{Shard: 0, Kind: kind, TopK: topK, Opt: opt})
	if err != nil {
		return nil, err
	}
	if c.Met != nil {
		c.Met.ShardDone(0, time.Since(start))
		if kind == KindTemporal {
			c.Met.Merged(len(resp.Temporal), 0)
		} else {
			c.Met.Merged(len(resp.Coinc), 0)
		}
	}
	return resp, nil
}

// MineTemporal mines temporal patterns across all shards. Output —
// patterns, supports, ordering — is identical to core.MineTemporalCtx on
// the unpartitioned database, unless a shard's TimeBudget ran out
// (Stats.Truncated then reports the incomplete result, as serially).
func (c *Coordinator) MineTemporal(ctx context.Context, opt core.Options) ([]pattern.TemporalResult, core.Stats, error) {
	if len(c.Workers) == 1 {
		resp, err := c.soloMine(ctx, KindTemporal, 0, opt)
		if err != nil {
			return nil, core.Stats{}, err
		}
		return resp.Temporal, resp.Stats, nil
	}
	start := time.Now()
	n := c.totalSeqs()
	minCount, err := core.ResolveMinCount(opt, n)
	if err != nil {
		return nil, core.Stats{}, err
	}
	stats := core.Stats{Sequences: n, MinCount: minCount}
	resps, err := c.mineAll(ctx, KindTemporal, 0, minCount, opt, &stats)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	merged, counted, err := c.mergeTemporal(ctx, resps, opt, minCount)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	if !opt.KeepOccurrences {
		merged = pattern.NormalizeTemporalResults(merged)
	} else {
		pattern.SortTemporalResults(merged)
	}
	merged = merged[:capPatterns(len(merged), opt.MaxPatterns, &stats)]
	if c.Met != nil {
		c.Met.Merged(len(merged), counted)
	}
	stats.Elapsed = time.Since(start)
	return merged, stats, nil
}

// MineCoincidence mines coincidence patterns across all shards with the
// same exactness contract as MineTemporal.
func (c *Coordinator) MineCoincidence(ctx context.Context, opt core.Options) ([]pattern.CoincResult, core.Stats, error) {
	if len(c.Workers) == 1 {
		resp, err := c.soloMine(ctx, KindCoincidence, 0, opt)
		if err != nil {
			return nil, core.Stats{}, err
		}
		return resp.Coinc, resp.Stats, nil
	}
	start := time.Now()
	n := c.totalSeqs()
	minCount, err := core.ResolveMinCount(opt, n)
	if err != nil {
		return nil, core.Stats{}, err
	}
	stats := core.Stats{Sequences: n, MinCount: minCount}
	resps, err := c.mineAll(ctx, KindCoincidence, 0, minCount, opt, &stats)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	merged, counted, err := c.mergeCoinc(ctx, resps, minCount)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	pattern.SortCoincResults(merged)
	merged = merged[:capPatterns(len(merged), opt.MaxPatterns, &stats)]
	if c.Met != nil {
		c.Met.Merged(len(merged), counted)
	}
	stats.Elapsed = time.Since(start)
	return merged, stats, nil
}

// MineTemporalTopK mines the k best-supported temporal patterns across
// all shards, identical to core.MineTemporalTopKCtx. Two phases, in the
// spirit of the TPUT threshold algorithm: phase one takes each shard's
// local top-k (at the floor's local bound), completes the candidates'
// exact global supports, and derives a sound global threshold τ — the
// candidate kth-best is a lower bound on the true kth-best because every
// one of the true top-k patterns is some shard's local top-k candidate
// or beaten by k candidates. Phase two is a complete mine at
// max(τ, floor), which the merge filters exactly; the first k of the
// deterministic order is then the serial answer.
func (c *Coordinator) MineTemporalTopK(ctx context.Context, k int, opt core.Options) ([]pattern.TemporalResult, core.Stats, error) {
	start := time.Now()
	if k <= 0 {
		return nil, core.Stats{}, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	if len(c.Workers) == 1 {
		resp, err := c.soloMine(ctx, KindTemporal, k, opt)
		if err != nil {
			return nil, core.Stats{}, err
		}
		return resp.Temporal, resp.Stats, nil
	}
	if opt.MinCount == 0 && opt.MinSupport == 0 {
		opt.MinCount = 1
	}
	n := c.totalSeqs()
	floor, err := core.ResolveMinCount(opt, n)
	if err != nil {
		return nil, core.Stats{}, err
	}
	stats := core.Stats{Sequences: n, MinCount: floor}

	respA, err := c.mineAll(ctx, KindTemporal, k, floor, opt, &stats)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	candidates, countedA, err := c.mergeTemporal(ctx, respA, opt, 1)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	threshold := floor
	if t := kthBestTemporal(candidates, k, opt.KeepOccurrences); t > threshold {
		threshold = t
	}

	respB, err := c.mineAll(ctx, KindTemporal, 0, threshold, opt, &stats)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	merged, countedB, err := c.mergeTemporal(ctx, respB, opt, threshold)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	if !opt.KeepOccurrences {
		merged = pattern.NormalizeTemporalResults(merged)
	} else {
		pattern.SortTemporalResults(merged)
	}
	if len(merged) > k {
		merged = merged[:k]
	}
	merged = merged[:capPatterns(len(merged), opt.MaxPatterns, &stats)]
	if c.Met != nil {
		c.Met.Merged(len(merged), countedA+countedB)
	}
	stats.Elapsed = time.Since(start)
	return merged, stats, nil
}

// kthBestTemporal returns the kth-best exact support among the phase-one
// candidates under the request's distinctness mode, or 0 when fewer than
// k distinct candidates exist. Normalized supports are max-merged like
// the final result, so the value stays a lower bound on the true
// kth-best.
func kthBestTemporal(candidates []pattern.TemporalResult, k int, keepOccurrences bool) int {
	var rs []pattern.TemporalResult
	if !keepOccurrences {
		rs = pattern.NormalizeTemporalResults(candidates)
	} else {
		rs = append([]pattern.TemporalResult(nil), candidates...)
		pattern.SortTemporalResults(rs)
	}
	if len(rs) < k {
		return 0
	}
	return rs[k-1].Support
}

// MineCoincidenceTopK is the coincidence analogue of MineTemporalTopK.
func (c *Coordinator) MineCoincidenceTopK(ctx context.Context, k int, opt core.Options) ([]pattern.CoincResult, core.Stats, error) {
	start := time.Now()
	if k <= 0 {
		return nil, core.Stats{}, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	if len(c.Workers) == 1 {
		resp, err := c.soloMine(ctx, KindCoincidence, k, opt)
		if err != nil {
			return nil, core.Stats{}, err
		}
		return resp.Coinc, resp.Stats, nil
	}
	if opt.MinCount == 0 && opt.MinSupport == 0 {
		opt.MinCount = 1
	}
	n := c.totalSeqs()
	floor, err := core.ResolveMinCount(opt, n)
	if err != nil {
		return nil, core.Stats{}, err
	}
	stats := core.Stats{Sequences: n, MinCount: floor}

	respA, err := c.mineAll(ctx, KindCoincidence, k, floor, opt, &stats)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	candidates, countedA, err := c.mergeCoinc(ctx, respA, 1)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	threshold := floor
	if len(candidates) >= k {
		sorted := append([]pattern.CoincResult(nil), candidates...)
		pattern.SortCoincResults(sorted)
		if t := sorted[k-1].Support; t > threshold {
			threshold = t
		}
	}

	respB, err := c.mineAll(ctx, KindCoincidence, 0, threshold, opt, &stats)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	merged, countedB, err := c.mergeCoinc(ctx, respB, threshold)
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}
	pattern.SortCoincResults(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	merged = merged[:capPatterns(len(merged), opt.MaxPatterns, &stats)]
	if c.Met != nil {
		c.Met.Merged(len(merged), countedA+countedB)
	}
	stats.Elapsed = time.Since(start)
	return merged, stats, nil
}
