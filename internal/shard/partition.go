// Package shard implements sharded scatter-gather mining: a dataset is
// split into disjoint sequence shards, each shard is mined by a Worker
// behind an RPC-shaped interface, and a Coordinator merges the per-shard
// supports into a result byte-identical to the serial miner's.
//
// The split is sound because support counting is additive over disjoint
// sequence partitions: a pattern's global support is the sum of its
// per-shard supports. Shards mine at a relaxed partition-aware bound (a
// globally frequent pattern can be locally infrequent), and the
// coordinator restores exactness with a support-completion pass plus the
// exact global filter at merge; see DESIGN.md "Sharded mining".
package shard

import (
	"sort"

	"tpminer/internal/interval"
)

// DefaultSkewThreshold is the max/min shard-load ratio past which an
// append triggers a full repartition instead of a greedy extension.
const DefaultSkewThreshold = 2.0

// Partition is a disjoint assignment of a database's sequences to K
// shards, size-balanced by interval count. A Partition is immutable once
// built; Extend returns a new one, so a partition stored alongside an
// immutable database snapshot stays consistent under copy-on-write
// appends.
type Partition struct {
	shards [][]int32 // shard -> ascending sequence indices
	loads  []int64   // shard -> total interval count
	nSeqs  int       // sequences covered (== the database length at build time)
}

// effectiveK caps the shard count so that no shard would hold fewer
// than minSeqs sequences on average; tiny datasets stay unsharded.
func effectiveK(nSeqs, k, minSeqs int) int {
	if k < 1 {
		k = 1
	}
	if minSeqs < 1 {
		minSeqs = 1
	}
	if cap := nSeqs / minSeqs; k > cap {
		k = cap
	}
	if k < 1 {
		k = 1
	}
	return k
}

// New partitions db into at most k shards, requiring at least minSeqs
// sequences per shard (the effective shard count shrinks for small
// databases, down to 1). Balancing is greedy LPT by interval count:
// sequences are placed heaviest-first onto the least-loaded shard, which
// keeps the max/min load ratio low even when one sequence dominates the
// dataset — the dominant sequence takes one shard and the remainder
// spreads over the others.
func New(db *interval.Database, k, minSeqs int) *Partition {
	n := db.Len()
	k = effectiveK(n, k, minSeqs)
	p := &Partition{
		shards: make([][]int32, k),
		loads:  make([]int64, k),
		nSeqs:  n,
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	weight := func(s int32) int64 { return int64(len(db.Sequences[s].Intervals)) }
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := weight(order[a]), weight(order[b])
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	for _, s := range order {
		p.assign(s, weight(s))
	}
	for i := range p.shards {
		sortInt32s(p.shards[i])
	}
	return p
}

// assign places sequence s (of the given weight) on the least-loaded
// shard, lowest shard id on ties — deterministic for a given input.
func (p *Partition) assign(s int32, w int64) {
	best := 0
	for i := 1; i < len(p.loads); i++ {
		if p.loads[i] < p.loads[best] {
			best = i
		}
	}
	p.shards[best] = append(p.shards[best], s)
	p.loads[best] += w
}

// Extend derives the partition for db grown by appended sequences
// (indices p.NumSeqs()..db.Len()-1). Existing assignments keep their
// shard IDs — only the new sequences are placed, heaviest-first onto the
// least-loaded shards — unless the grown database wants a different
// effective shard count or the extension leaves the load skew above
// skewThreshold, in which case the whole database is repartitioned from
// scratch. A skewThreshold <= 0 selects DefaultSkewThreshold.
func (p *Partition) Extend(db *interval.Database, k, minSeqs int, skewThreshold float64) *Partition {
	if skewThreshold <= 0 {
		skewThreshold = DefaultSkewThreshold
	}
	n := db.Len()
	if effectiveK(n, k, minSeqs) != len(p.shards) || n < p.nSeqs {
		return New(db, k, minSeqs)
	}
	next := &Partition{
		shards: make([][]int32, len(p.shards)),
		loads:  append([]int64(nil), p.loads...),
		nSeqs:  n,
	}
	for i := range p.shards {
		next.shards[i] = append([]int32(nil), p.shards[i]...)
	}
	added := make([]int32, 0, n-p.nSeqs)
	for s := p.nSeqs; s < n; s++ {
		added = append(added, int32(s))
	}
	weight := func(s int32) int64 { return int64(len(db.Sequences[s].Intervals)) }
	sort.SliceStable(added, func(a, b int) bool {
		wa, wb := weight(added[a]), weight(added[b])
		if wa != wb {
			return wa > wb
		}
		return added[a] < added[b]
	})
	for _, s := range added {
		next.assign(s, weight(s))
	}
	if next.Skew() > skewThreshold {
		return New(db, k, minSeqs)
	}
	for i := range next.shards {
		sortInt32s(next.shards[i])
	}
	return next
}

// NumShards returns the number of shards.
func (p *Partition) NumShards() int { return len(p.shards) }

// NumSeqs returns the number of sequences the partition covers.
func (p *Partition) NumSeqs() int { return p.nSeqs }

// Seqs returns shard i's ascending sequence indices. The returned slice
// aliases the partition; callers must not modify it.
func (p *Partition) Seqs(i int) []int32 { return p.shards[i] }

// Load returns shard i's total interval count.
func (p *Partition) Load(i int) int64 { return p.loads[i] }

// Skew is the max/min shard-load ratio (min clamped to 1 so an empty
// shard reads as maximally skewed rather than dividing by zero).
func (p *Partition) Skew() float64 {
	if len(p.loads) == 0 {
		return 1
	}
	min, max := p.loads[0], p.loads[0]
	for _, l := range p.loads[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min < 1 {
		min = 1
	}
	return float64(max) / float64(min)
}

// SubDatabase returns shard i's sequences as a database. Sequence
// headers are copied; the interval arrays are shared with db, which must
// be treated as immutable (the store's copy-on-write contract).
func (p *Partition) SubDatabase(db *interval.Database, i int) *interval.Database {
	idx := p.shards[i]
	out := &interval.Database{Sequences: make([]interval.Sequence, len(idx))}
	for j, s := range idx {
		out.Sequences[j] = db.Sequences[s]
	}
	return out
}

func sortInt32s(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
