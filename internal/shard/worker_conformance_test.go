package shard_test

import (
	"testing"

	"tpminer/internal/interval"
	"tpminer/internal/shard"
	"tpminer/internal/shard/workertest"
)

// TestLocalWorkerConformance pins LocalWorker — the reference
// implementation every transport is measured against — to the Worker
// contract itself.
func TestLocalWorkerConformance(t *testing.T) {
	workertest.Run(t, workertest.Factory{
		New: func(t *testing.T, db *interval.Database) shard.Worker {
			return shard.NewLocalWorker(db)
		},
	})
}
