package shard_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/shard"
	"tpminer/internal/shard/workertest"
)

// failingWorker errors on every call and names itself.
type failingWorker struct{ err error }

func (w *failingWorker) Mine(context.Context, *shard.MineShardRequest) (*shard.MineShardResponse, error) {
	return nil, w.err
}
func (w *failingWorker) Count(context.Context, *shard.CountRequest) (*shard.CountResponse, error) {
	return nil, w.err
}
func (w *failingWorker) WorkerAddr() string { return "http://worker-7:9090" }

// TestFanOutErrorAttribution: a fan-out failure names the shard and the
// worker, and still unwraps to the root cause.
func TestFanOutErrorAttribution(t *testing.T) {
	db := workertest.DB()
	part := shard.New(db, 2, 1)
	cause := errors.New("connection refused")
	co := shard.NewWithWorkers([]shard.Worker{
		shard.NewLocalWorker(part.SubDatabase(db, 0)),
		&failingWorker{err: cause},
	}, []int{len(part.Seqs(0)), len(part.Seqs(1))})

	_, _, err := co.MineTemporal(context.Background(), core.Options{MinCount: 2})
	if err == nil {
		t.Fatal("fan-out with a failing worker succeeded")
	}
	var se *shard.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a ShardError: %v", err)
	}
	if se.Shard != 1 || se.Worker != "http://worker-7:9090" {
		t.Errorf("attributed to shard %d worker %q, want shard 1 worker http://worker-7:9090", se.Shard, se.Worker)
	}
	if !errors.Is(err, cause) {
		t.Errorf("wrapped error lost the root cause: %v", err)
	}
	if want := "shard 1 (worker http://worker-7:9090): connection refused"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

// TestWorkerAddrFallback: non-Addressed workers report "unknown",
// LocalWorker reports "local".
func TestWorkerAddrFallback(t *testing.T) {
	if got := shard.WorkerAddr(shard.NewLocalWorker(workertest.DB())); got != "local" {
		t.Errorf("LocalWorker addr = %q, want local", got)
	}
	if got := shard.WorkerAddr(anonymousWorker{}); got != "unknown" {
		t.Errorf("anonymous worker addr = %q, want unknown", got)
	}
}

type anonymousWorker struct{}

func (anonymousWorker) Mine(context.Context, *shard.MineShardRequest) (*shard.MineShardResponse, error) {
	return nil, errors.New("unused")
}
func (anonymousWorker) Count(context.Context, *shard.CountRequest) (*shard.CountResponse, error) {
	return nil, errors.New("unused")
}
