package interval

import "testing"

// FuzzParse: the interval parser must never panic; accepted inputs must
// be valid and round-trip through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"A[1,5]", "A[5,1]", "x[", "[1,2]", "A[-3,0]", "A[1,5", "s.y[3,3]"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		iv, err := Parse(s)
		if err != nil {
			return
		}
		if vErr := iv.Valid(); vErr != nil {
			t.Fatalf("accepted %q but invalid: %v", s, vErr)
		}
		back, err := Parse(iv.String())
		if err != nil || back != iv {
			t.Fatalf("round trip %q -> %v -> %v (%v)", s, iv, back, err)
		}
	})
}
