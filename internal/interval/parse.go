package interval

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse inverts Interval.String: "Symbol[Start,End]". The symbol may
// contain any characters except '['.
func Parse(s string) (Interval, error) {
	open := strings.IndexByte(s, '[')
	if open <= 0 || !strings.HasSuffix(s, "]") {
		return Interval{}, fmt.Errorf("interval: %q is not of the form Symbol[start,end]", s)
	}
	body := s[open+1 : len(s)-1]
	comma := strings.IndexByte(body, ',')
	if comma < 0 {
		return Interval{}, fmt.Errorf("interval: %q is missing ',' between start and end", s)
	}
	start, err := strconv.ParseInt(strings.TrimSpace(body[:comma]), 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("interval: %q has invalid start: %v", s, err)
	}
	end, err := strconv.ParseInt(strings.TrimSpace(body[comma+1:]), 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("interval: %q has invalid end: %v", s, err)
	}
	iv := Interval{Symbol: s[:open], Start: start, End: end}
	if err := iv.Valid(); err != nil {
		return Interval{}, err
	}
	return iv, nil
}
