package interval

import "fmt"

// Relation is one of Allen's thirteen qualitative relations between two
// intervals A and B. The zero value is invalid; use Relate to compute the
// relation that holds between two concrete intervals.
type Relation uint8

// Allen's thirteen interval relations. The first seven are the "forward"
// relations; the remaining six are their inverses (Equals is its own
// inverse).
const (
	RelInvalid Relation = iota

	Before   // A.End < B.Start
	Meets    // A.End == B.Start
	Overlaps // A.Start < B.Start < A.End < B.End
	Starts   // A.Start == B.Start && A.End < B.End
	During   // B.Start < A.Start && A.End < B.End
	Finishes // B.Start < A.Start && A.End == B.End
	Equals   // identical spans

	After        // inverse of Before
	MetBy        // inverse of Meets
	OverlappedBy // inverse of Overlaps
	StartedBy    // inverse of Starts
	Contains     // inverse of During
	FinishedBy   // inverse of Finishes

	numRelations
)

var relationNames = [numRelations]string{
	RelInvalid:   "invalid",
	Before:       "before",
	Meets:        "meets",
	Overlaps:     "overlaps",
	Starts:       "starts",
	During:       "during",
	Finishes:     "finishes",
	Equals:       "equals",
	After:        "after",
	MetBy:        "met-by",
	OverlappedBy: "overlapped-by",
	StartedBy:    "started-by",
	Contains:     "contains",
	FinishedBy:   "finished-by",
}

// String returns the conventional lowercase name of the relation.
func (r Relation) String() string {
	if r >= numRelations {
		return fmt.Sprintf("Relation(%d)", uint8(r))
	}
	return relationNames[r]
}

var relationInverses = [numRelations]Relation{
	RelInvalid:   RelInvalid,
	Before:       After,
	Meets:        MetBy,
	Overlaps:     OverlappedBy,
	Starts:       StartedBy,
	During:       Contains,
	Finishes:     FinishedBy,
	Equals:       Equals,
	After:        Before,
	MetBy:        Meets,
	OverlappedBy: Overlaps,
	StartedBy:    Starts,
	Contains:     During,
	FinishedBy:   Finishes,
}

// Inverse returns the relation that holds between (B, A) when r holds
// between (A, B).
func (r Relation) Inverse() Relation {
	if r >= numRelations {
		return RelInvalid
	}
	return relationInverses[r]
}

// Forward reports whether r is one of the seven canonical forward
// relations (Before, Meets, Overlaps, Starts, During, Finishes, Equals).
// Every pair of intervals stands in exactly one forward relation once the
// pair is ordered canonically.
func (r Relation) Forward() bool { return r >= Before && r <= Equals }

// Relate computes the Allen relation that interval a stands in with
// respect to interval b. Exactly one of the thirteen relations holds for
// any pair of well-formed intervals.
func Relate(a, b Interval) Relation {
	switch {
	case a.Start == b.Start && a.End == b.End:
		return Equals
	case a.End < b.Start:
		return Before
	case b.End < a.Start:
		return After
	case a.End == b.Start:
		return Meets
	case b.End == a.Start:
		return MetBy
	case a.Start == b.Start:
		if a.End < b.End {
			return Starts
		}
		return StartedBy
	case a.End == b.End:
		if a.Start > b.Start {
			return Finishes
		}
		return FinishedBy
	case a.Start < b.Start && b.Start < a.End && a.End < b.End:
		return Overlaps
	case b.Start < a.Start && a.Start < b.End && b.End < a.End:
		return OverlappedBy
	case a.Start > b.Start && a.End < b.End:
		return During
	default: // b.Start > a.Start && b.End < a.End
		return Contains
	}
}

// RelateEndpoints computes the Allen relation from endpoint *positions*
// rather than raw times. as, ae are the positions (element indices) of
// A's start and finish; bs, be those of B. Equal positions mean the
// endpoints coincide. This is how relations are recovered from temporal
// patterns, where only the relative arrangement of endpoints is known.
func RelateEndpoints(as, ae, bs, be int) Relation {
	return Relate(
		Interval{Symbol: "a", Start: Time(as), End: Time(ae)},
		Interval{Symbol: "b", Start: Time(bs), End: Time(be)},
	)
}
