// Package interval defines the event-interval data model used throughout
// the miner: event intervals, interval sequences, temporal databases, and
// Allen's thirteen temporal relations.
//
// An event interval is a symbol together with a closed time span
// [Start, End]. A sequence is an ordered collection of intervals observed
// for one entity (a patient, a ticker, an utterance, ...). A database is a
// set of such sequences; pattern support is counted per sequence.
package interval

import (
	"fmt"
	"sort"
	"strings"
)

// Time is the discrete timestamp type used for interval endpoints.
// All algorithms only compare and subtract times, so any consistent
// integer granularity (seconds, days, ticks) works.
type Time = int64

// Interval is a single event interval: Symbol is active during the closed
// span [Start, End]. Start must be <= End; point events (Start == End) are
// permitted.
type Interval struct {
	Symbol string
	Start  Time
	End    Time
}

// Duration returns the length of the interval span. A point event has
// duration zero.
func (iv Interval) Duration() Time { return iv.End - iv.Start }

// IsPoint reports whether the interval is an instantaneous (point) event.
func (iv Interval) IsPoint() bool { return iv.Start == iv.End }

// Valid reports whether the interval is well formed: a non-empty symbol
// and Start <= End.
func (iv Interval) Valid() error {
	if iv.Symbol == "" {
		return fmt.Errorf("interval: empty symbol in [%d,%d]", iv.Start, iv.End)
	}
	if iv.Start > iv.End {
		return fmt.Errorf("interval: %s has start %d after end %d", iv.Symbol, iv.Start, iv.End)
	}
	return nil
}

// String renders the interval as "Symbol[Start,End]".
func (iv Interval) String() string {
	return fmt.Sprintf("%s[%d,%d]", iv.Symbol, iv.Start, iv.End)
}

// Less imposes the canonical ordering on intervals: by start time, then
// end time, then symbol. Sequences are normalized into this order before
// encoding so that occurrence indices are deterministic.
func (iv Interval) Less(other Interval) bool {
	if iv.Start != other.Start {
		return iv.Start < other.Start
	}
	if iv.End != other.End {
		return iv.End < other.End
	}
	return iv.Symbol < other.Symbol
}

// Sequence is one entity's ordered list of event intervals. The ID is
// carried through from input data for reporting; algorithms identify
// sequences by position in the database.
type Sequence struct {
	ID        string
	Intervals []Interval
}

// SortIntervals sorts intervals into canonical order (start, end, symbol)
// in place. It is the sorting primitive behind Sequence.Normalize, exposed
// so encoders can canonicalize a scratch copy without allocating a
// Sequence or a sort closure.
func SortIntervals(ivs []Interval) {
	sort.Sort(intervalSorter(ivs))
}

type intervalSorter []Interval

func (s intervalSorter) Len() int           { return len(s) }
func (s intervalSorter) Less(i, j int) bool { return s[i].Less(s[j]) }
func (s intervalSorter) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Normalize sorts the intervals into canonical order (start, end, symbol)
// in place and returns the sequence for chaining.
func (s *Sequence) Normalize() *Sequence {
	SortIntervals(s.Intervals)
	return s
}

// Normalized reports whether the intervals are already in canonical order.
func (s *Sequence) Normalized() bool {
	return sort.IsSorted(intervalSorter(s.Intervals))
}

// Valid checks every interval in the sequence.
func (s *Sequence) Valid() error {
	for i, iv := range s.Intervals {
		if err := iv.Valid(); err != nil {
			return fmt.Errorf("sequence %q, interval %d: %w", s.ID, i, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the sequence.
func (s *Sequence) Clone() Sequence {
	out := Sequence{ID: s.ID, Intervals: make([]Interval, len(s.Intervals))}
	copy(out.Intervals, s.Intervals)
	return out
}

// Span returns the earliest start and latest end over all intervals.
// ok is false for an empty sequence.
func (s *Sequence) Span() (start, end Time, ok bool) {
	if len(s.Intervals) == 0 {
		return 0, 0, false
	}
	start, end = s.Intervals[0].Start, s.Intervals[0].End
	for _, iv := range s.Intervals[1:] {
		if iv.Start < start {
			start = iv.Start
		}
		if iv.End > end {
			end = iv.End
		}
	}
	return start, end, true
}

// Symbols returns the distinct symbols in the sequence, sorted.
func (s *Sequence) Symbols() []string {
	set := make(map[string]struct{}, len(s.Intervals))
	for _, iv := range s.Intervals {
		set[iv.Symbol] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for sym := range set {
		out = append(out, sym)
	}
	sort.Strings(out)
	return out
}

// String renders the sequence as "id: A[1,3] B[2,5] ...".
func (s *Sequence) String() string {
	var b strings.Builder
	if s.ID != "" {
		b.WriteString(s.ID)
		b.WriteString(": ")
	}
	for i, iv := range s.Intervals {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(iv.String())
	}
	return b.String()
}

// Database is a collection of interval sequences. Pattern support is the
// number of sequences that contain the pattern.
type Database struct {
	Sequences []Sequence
}

// NewDatabase builds a database from bare interval slices, assigning
// sequence IDs "s0", "s1", ... . Convenient for tests and examples.
func NewDatabase(seqs ...[]Interval) *Database {
	db := &Database{Sequences: make([]Sequence, len(seqs))}
	for i, ivs := range seqs {
		db.Sequences[i] = Sequence{ID: fmt.Sprintf("s%d", i), Intervals: ivs}
	}
	return db
}

// Len returns the number of sequences.
func (db *Database) Len() int { return len(db.Sequences) }

// NumIntervals returns the total interval count across all sequences.
func (db *Database) NumIntervals() int {
	n := 0
	for i := range db.Sequences {
		n += len(db.Sequences[i].Intervals)
	}
	return n
}

// Normalize canonicalizes every sequence in place and returns db.
func (db *Database) Normalize() *Database {
	for i := range db.Sequences {
		db.Sequences[i].Normalize()
	}
	return db
}

// Valid checks every sequence in the database.
func (db *Database) Valid() error {
	for i := range db.Sequences {
		if err := db.Sequences[i].Valid(); err != nil {
			return fmt.Errorf("database sequence %d: %w", i, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	out := &Database{Sequences: make([]Sequence, len(db.Sequences))}
	for i := range db.Sequences {
		out.Sequences[i] = db.Sequences[i].Clone()
	}
	return out
}

// Symbols returns the distinct symbols across the database, sorted.
func (db *Database) Symbols() []string {
	set := make(map[string]struct{})
	for i := range db.Sequences {
		for _, iv := range db.Sequences[i].Intervals {
			set[iv.Symbol] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for sym := range set {
		out = append(out, sym)
	}
	sort.Strings(out)
	return out
}

// SymbolSupport returns, for every symbol, the number of sequences in
// which it occurs at least once.
func (db *Database) SymbolSupport() map[string]int {
	out := make(map[string]int)
	for i := range db.Sequences {
		seen := make(map[string]struct{})
		for _, iv := range db.Sequences[i].Intervals {
			if _, ok := seen[iv.Symbol]; ok {
				continue
			}
			seen[iv.Symbol] = struct{}{}
			out[iv.Symbol]++
		}
	}
	return out
}

// Stats summarizes a database for reporting.
type Stats struct {
	Sequences   int
	Intervals   int
	Symbols     int
	MinSeqLen   int
	MaxSeqLen   int
	AvgSeqLen   float64
	AvgDuration float64
	SpanStart   Time
	SpanEnd     Time
}

// Summarize computes database statistics.
func (db *Database) Summarize() Stats {
	st := Stats{Sequences: db.Len()}
	if st.Sequences == 0 {
		return st
	}
	st.MinSeqLen = len(db.Sequences[0].Intervals)
	first := true
	var durSum float64
	for i := range db.Sequences {
		n := len(db.Sequences[i].Intervals)
		st.Intervals += n
		if n < st.MinSeqLen {
			st.MinSeqLen = n
		}
		if n > st.MaxSeqLen {
			st.MaxSeqLen = n
		}
		for _, iv := range db.Sequences[i].Intervals {
			durSum += float64(iv.Duration())
			if first {
				st.SpanStart, st.SpanEnd = iv.Start, iv.End
				first = false
			}
			if iv.Start < st.SpanStart {
				st.SpanStart = iv.Start
			}
			if iv.End > st.SpanEnd {
				st.SpanEnd = iv.End
			}
		}
	}
	st.Symbols = len(db.Symbols())
	st.AvgSeqLen = float64(st.Intervals) / float64(st.Sequences)
	if st.Intervals > 0 {
		st.AvgDuration = durSum / float64(st.Intervals)
	}
	return st
}
