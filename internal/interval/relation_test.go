package interval

import (
	"math/rand"
	"testing"
)

func TestRelateAllThirteen(t *testing.T) {
	a := Interval{Symbol: "a"}
	b := Interval{Symbol: "b"}
	cases := []struct {
		as, ae, bs, be Time
		want           Relation
	}{
		{0, 2, 5, 9, Before},
		{5, 9, 0, 2, After},
		{0, 5, 5, 9, Meets},
		{5, 9, 0, 5, MetBy},
		{0, 6, 4, 9, Overlaps},
		{4, 9, 0, 6, OverlappedBy},
		{0, 4, 0, 9, Starts},
		{0, 9, 0, 4, StartedBy},
		{3, 6, 0, 9, During},
		{0, 9, 3, 6, Contains},
		{5, 9, 0, 9, Finishes},
		{0, 9, 5, 9, FinishedBy},
		{2, 7, 2, 7, Equals},
	}
	for _, c := range cases {
		a.Start, a.End = c.as, c.ae
		b.Start, b.End = c.bs, c.be
		if got := Relate(a, b); got != c.want {
			t.Errorf("Relate(%v,%v) = %v, want %v", a, b, got, c.want)
		}
	}
}

// TestRelateInverseProperty: Relate(a,b) is always the inverse of
// Relate(b,a), and exactly one of them is a forward relation (or both,
// when Equals).
func TestRelateInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a := Interval{Symbol: "a", Start: rng.Int63n(10)}
		b := Interval{Symbol: "b", Start: rng.Int63n(10)}
		a.End = a.Start + rng.Int63n(10)
		b.End = b.Start + rng.Int63n(10)
		ra, rb := Relate(a, b), Relate(b, a)
		if ra.Inverse() != rb {
			t.Fatalf("Relate(%v,%v)=%v but Relate(%v,%v)=%v (inverse %v)",
				a, b, ra, b, a, rb, ra.Inverse())
		}
		if ra == RelInvalid || rb == RelInvalid {
			t.Fatalf("invalid relation for %v,%v", a, b)
		}
		if ra == Equals && rb != Equals {
			t.Fatalf("Equals not symmetric for %v,%v", a, b)
		}
	}
}

func TestInverseInvolution(t *testing.T) {
	for r := Before; r < numRelations; r++ {
		if r.Inverse().Inverse() != r {
			t.Errorf("Inverse not an involution for %v", r)
		}
	}
	if RelInvalid.Inverse() != RelInvalid {
		t.Error("invalid relation inverse")
	}
	if Relation(200).Inverse() != RelInvalid {
		t.Error("out-of-range inverse")
	}
}

func TestRelationString(t *testing.T) {
	if Before.String() != "before" || OverlappedBy.String() != "overlapped-by" {
		t.Error("relation names wrong")
	}
	if Relation(200).String() == "" {
		t.Error("out-of-range String empty")
	}
}

func TestForward(t *testing.T) {
	forwards := []Relation{Before, Meets, Overlaps, Starts, During, Finishes, Equals}
	for _, r := range forwards {
		if !r.Forward() {
			t.Errorf("%v should be forward", r)
		}
	}
	for _, r := range []Relation{After, MetBy, OverlappedBy, StartedBy, Contains, FinishedBy, RelInvalid} {
		if r.Forward() {
			t.Errorf("%v should not be forward", r)
		}
	}
}

func TestRelateEndpoints(t *testing.T) {
	// A+ at 0, A- at 2, B+ at 1, B- at 3 → A overlaps B.
	if got := RelateEndpoints(0, 2, 1, 3); got != Overlaps {
		t.Errorf("RelateEndpoints = %v, want overlaps", got)
	}
	// Shared positions mean coincident endpoints: A meets B.
	if got := RelateEndpoints(0, 1, 1, 2); got != Meets {
		t.Errorf("RelateEndpoints = %v, want meets", got)
	}
}

func TestParseInterval(t *testing.T) {
	good := map[string]Interval{
		"A[1,5]":       {"A", 1, 5},
		"T0.up[0,3]":   {"T0.up", 0, 3},
		"A[-4,-1]":     {"A", -4, -1},
		"A[ 1 , 5 ]":   {"A", 1, 5},
		"sign.w2[3,3]": {"sign.w2", 3, 3},
	}
	for in, want := range good {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "A", "A[1]", "A[1,2", "[1,2]", "A[x,2]", "A[2,x]", "A[5,1]"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", bad)
		}
	}
}

// TestParseStringRoundTrip: Parse inverts String for random intervals.
func TestParseStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 500; i++ {
		iv := Interval{Symbol: "sym", Start: rng.Int63n(1000) - 500}
		iv.End = iv.Start + rng.Int63n(100)
		got, err := Parse(iv.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", iv.String(), err)
		}
		if got != iv {
			t.Fatalf("round trip %v -> %v", iv, got)
		}
	}
}
