package interval

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntervalValid(t *testing.T) {
	cases := []struct {
		iv   Interval
		ok   bool
		name string
	}{
		{Interval{"A", 1, 5}, true, "normal"},
		{Interval{"A", 3, 3}, true, "point"},
		{Interval{"", 1, 5}, false, "empty symbol"},
		{Interval{"A", 5, 1}, false, "reversed"},
		{Interval{"A", -10, -2}, true, "negative times"},
	}
	for _, c := range cases {
		err := c.iv.Valid()
		if (err == nil) != c.ok {
			t.Errorf("%s: Valid() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestIntervalAccessors(t *testing.T) {
	iv := Interval{"A", 2, 7}
	if got := iv.Duration(); got != 5 {
		t.Errorf("Duration = %d, want 5", got)
	}
	if iv.IsPoint() {
		t.Error("IsPoint true for non-point")
	}
	if !(Interval{"A", 3, 3}).IsPoint() {
		t.Error("IsPoint false for point")
	}
	if got := iv.String(); got != "A[2,7]" {
		t.Errorf("String = %q", got)
	}
}

func TestIntervalLessOrdering(t *testing.T) {
	a := Interval{"A", 1, 5}
	b := Interval{"A", 1, 6}
	c := Interval{"B", 1, 5}
	d := Interval{"A", 2, 3}
	if !a.Less(b) || !a.Less(c) || !a.Less(d) {
		t.Error("Less violates (start, end, symbol) order")
	}
	if a.Less(a) {
		t.Error("Less not irreflexive")
	}
	if b.Less(a) || c.Less(a) || d.Less(a) {
		t.Error("Less not antisymmetric")
	}
}

func TestSequenceNormalize(t *testing.T) {
	s := Sequence{ID: "x", Intervals: []Interval{
		{"B", 3, 9}, {"A", 1, 5}, {"A", 1, 3},
	}}
	if s.Normalized() {
		t.Error("unexpectedly normalized")
	}
	s.Normalize()
	if !s.Normalized() {
		t.Error("Normalize did not normalize")
	}
	want := []Interval{{"A", 1, 3}, {"A", 1, 5}, {"B", 3, 9}}
	for i, iv := range want {
		if s.Intervals[i] != iv {
			t.Fatalf("interval %d = %v, want %v", i, s.Intervals[i], iv)
		}
	}
}

func TestSequenceSpanAndSymbols(t *testing.T) {
	var empty Sequence
	if _, _, ok := empty.Span(); ok {
		t.Error("Span ok on empty sequence")
	}
	s := Sequence{Intervals: []Interval{{"B", 3, 9}, {"A", 1, 5}}}
	start, end, ok := s.Span()
	if !ok || start != 1 || end != 9 {
		t.Errorf("Span = %d,%d,%v; want 1,9,true", start, end, ok)
	}
	syms := s.Symbols()
	if len(syms) != 2 || syms[0] != "A" || syms[1] != "B" {
		t.Errorf("Symbols = %v", syms)
	}
}

func TestSequenceCloneIsDeep(t *testing.T) {
	s := Sequence{ID: "x", Intervals: []Interval{{"A", 1, 5}}}
	c := s.Clone()
	c.Intervals[0].Symbol = "Z"
	if s.Intervals[0].Symbol != "A" {
		t.Error("Clone shares backing array")
	}
}

func TestSequenceString(t *testing.T) {
	s := Sequence{ID: "s1", Intervals: []Interval{{"A", 1, 5}, {"B", 3, 9}}}
	if got := s.String(); got != "s1: A[1,5] B[3,9]" {
		t.Errorf("String = %q", got)
	}
	anon := Sequence{Intervals: []Interval{{"A", 1, 5}}}
	if got := anon.String(); got != "A[1,5]" {
		t.Errorf("String = %q", got)
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase(
		[]Interval{{"A", 1, 5}, {"B", 3, 9}},
		[]Interval{{"A", 2, 4}},
		nil,
	)
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.NumIntervals() != 3 {
		t.Errorf("NumIntervals = %d", db.NumIntervals())
	}
	if got := db.Symbols(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Symbols = %v", got)
	}
	sup := db.SymbolSupport()
	if sup["A"] != 2 || sup["B"] != 1 {
		t.Errorf("SymbolSupport = %v", sup)
	}
	if err := db.Valid(); err != nil {
		t.Errorf("Valid: %v", err)
	}
	if db.Sequences[0].ID != "s0" || db.Sequences[2].ID != "s2" {
		t.Errorf("auto IDs wrong: %q %q", db.Sequences[0].ID, db.Sequences[2].ID)
	}
}

func TestDatabaseValidPropagatesError(t *testing.T) {
	db := NewDatabase([]Interval{{"A", 5, 1}})
	err := db.Valid()
	if err == nil {
		t.Fatal("Valid accepted reversed interval")
	}
	if !strings.Contains(err.Error(), "A") {
		t.Errorf("error %q does not mention the symbol", err)
	}
}

func TestDatabaseCloneIsDeep(t *testing.T) {
	db := NewDatabase([]Interval{{"A", 1, 5}})
	c := db.Clone()
	c.Sequences[0].Intervals[0].Symbol = "Z"
	if db.Sequences[0].Intervals[0].Symbol != "A" {
		t.Error("Clone shares interval storage")
	}
}

func TestSummarize(t *testing.T) {
	db := NewDatabase(
		[]Interval{{"A", 0, 10}, {"B", 5, 15}},
		[]Interval{{"C", -5, 0}},
	)
	st := db.Summarize()
	if st.Sequences != 2 || st.Intervals != 3 || st.Symbols != 3 {
		t.Errorf("counts: %+v", st)
	}
	if st.MinSeqLen != 1 || st.MaxSeqLen != 2 {
		t.Errorf("lens: %+v", st)
	}
	if st.SpanStart != -5 || st.SpanEnd != 15 {
		t.Errorf("span: %+v", st)
	}
	if st.AvgSeqLen != 1.5 {
		t.Errorf("AvgSeqLen = %v", st.AvgSeqLen)
	}
	if empty := (&Database{}).Summarize(); empty.Sequences != 0 {
		t.Errorf("empty Summarize: %+v", empty)
	}
}

// TestNormalizeIdempotent is a property test: Normalize twice equals
// Normalize once, and Normalize never changes the multiset of intervals.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(starts []int8, durs []uint8) bool {
		n := len(starts)
		if len(durs) < n {
			n = len(durs)
		}
		s := Sequence{}
		for i := 0; i < n; i++ {
			s.Intervals = append(s.Intervals, Interval{
				Symbol: string(rune('A' + i%3)),
				Start:  int64(starts[i]),
				End:    int64(starts[i]) + int64(durs[i]),
			})
		}
		count := make(map[Interval]int)
		for _, iv := range s.Intervals {
			count[iv]++
		}
		s.Normalize()
		once := s.Clone()
		s.Normalize()
		if len(once.Intervals) != len(s.Intervals) {
			return false
		}
		for i := range s.Intervals {
			if once.Intervals[i] != s.Intervals[i] {
				return false
			}
			count[s.Intervals[i]]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return s.Normalized()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
