package blob

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// fileStore keeps every object as one file directly under dir. Put
// commits through a temp file (key + tmpSuffix) so a crash at any point
// leaves either the old object or a *.tmp the caller's recovery scan
// can discard; Sync fsyncs the directory so creates, deletes, and Put
// renames survive power loss.
type fileStore struct {
	dir string

	// appendMu serializes Appender opens per key; the interface promises
	// single-writer appenders and this catches violations early instead
	// of corrupting a log.
	appendMu sync.Mutex
	open     map[string]bool
}

// tmpSuffix marks in-flight Put temp files. Exposed to List so crash
// recovery can find and remove orphans, exactly as the persist layer's
// boot scan always has.
const tmpSuffix = ".tmp"

func newFileStore(dir string) (*fileStore, error) {
	if dir == "" {
		return nil, errors.New("blob: file store needs a directory path (file:///path/to/dir)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: file store: %w", err)
	}
	return &fileStore{dir: dir, open: make(map[string]bool)}, nil
}

func (s *fileStore) Backend() string { return "file" }

func (s *fileStore) path(key string) string { return filepath.Join(s.dir, key) }

func (s *fileStore) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	final := s.path(key)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("blob: put %s: %w", key, err)
	}
	if _, err := f.Write(data); err != nil {
		s.discardTemp(f, tmp)
		return fmt.Errorf("blob: put %s: %w", key, err)
	}
	if err := f.Sync(); err != nil {
		s.discardTemp(f, tmp)
		return fmt.Errorf("blob: put %s: fsync: %w", key, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("blob: put %s: close: %w", key, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("blob: put %s: commit: %w", key, err)
	}
	return nil
}

// discardTemp closes and removes a failed Put's temp file; the put
// already failed, so these errors add nothing actionable.
func (s *fileStore) discardTemp(f *os.File, tmp string) {
	_ = f.Close()
	_ = os.Remove(tmp)
}

func (s *fileStore) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, wrapNotFound("get", key, err)
	}
	return data, nil
}

func (s *fileStore) Open(key string) (io.ReadCloser, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		return nil, wrapNotFound("open", key, err)
	}
	return f, nil
}

// wrapNotFound maps the OS's not-exist error onto the interface's
// ErrNotFound so callers can test portably across backends.
func wrapNotFound(op, key string, err error) error {
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("blob: %s %s: %w", op, key, ErrNotFound)
	}
	return fmt.Errorf("blob: %s %s: %w", op, key, err)
}

func (s *fileStore) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("blob: list: %w", err)
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if name := e.Name(); strings.HasPrefix(name, prefix) {
			keys = append(keys, name)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *fileStore) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := os.Remove(s.path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("blob: delete %s: %w", key, err)
	}
	return nil
}

func (s *fileStore) Sync() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("blob: sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse directory fsync; the caller decides
		// whether that is warn-worthy or fatal.
		return fmt.Errorf("blob: sync %s: %w", s.dir, err)
	}
	return nil
}

func (s *fileStore) Append(key string) (Appender, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	s.appendMu.Lock()
	if s.open[key] {
		s.appendMu.Unlock()
		return nil, fmt.Errorf("blob: append %s: an appender is already open (single-writer)", key)
	}
	s.open[key] = true
	s.appendMu.Unlock()
	// O_APPEND keeps every write at the current end of file, including
	// after a Truncate — exactly the WAL's write-rollback-rewrite cycle.
	f, err := os.OpenFile(s.path(key), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		s.releaseAppender(key)
		return nil, fmt.Errorf("blob: append %s: %w", key, err)
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		s.releaseAppender(key)
		return nil, fmt.Errorf("blob: append %s: %w", key, err)
	}
	return &fileAppender{store: s, key: key, f: f, size: fi.Size()}, nil
}

func (s *fileStore) releaseAppender(key string) {
	s.appendMu.Lock()
	delete(s.open, key)
	s.appendMu.Unlock()
}

func (s *fileStore) Close() error { return nil }

// fileAppender tracks the object size itself (one Stat at open, then
// arithmetic) so the WAL hot path never issues size syscalls.
type fileAppender struct {
	store *fileStore
	key   string
	f     *os.File
	size  int64
}

func (a *fileAppender) Write(b []byte) (int, error) {
	n, err := a.f.Write(b)
	a.size += int64(n)
	return n, err
}

func (a *fileAppender) Sync() error { return a.f.Sync() }

func (a *fileAppender) Truncate(size int64) error {
	if err := a.f.Truncate(size); err != nil {
		return err
	}
	a.size = size
	return nil
}

func (a *fileAppender) Size() int64 { return a.size }

func (a *fileAppender) Close() error {
	a.store.releaseAppender(a.key)
	return a.f.Close()
}
