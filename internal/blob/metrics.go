package blob

import (
	"io"
	"sync/atomic"
)

// Metrics receives one call per store operation. Implementations must
// be safe for concurrent use; internal/server adapts this onto the
// tpmd_blob_{ops,bytes,errors}_total{backend,op} Prometheus families.
type Metrics interface {
	// Op records one completed operation: the backend kind, the
	// operation name ("put", "get", "open", "list", "delete", "sync",
	// "append_open", "append_write", "append_sync", "append_truncate"),
	// the payload bytes moved (0 when the op moves none), and the error
	// outcome (nil on success).
	Op(backend, op string, n int, err error)
}

// Instrumented wraps a Store and reports every operation to a sink that
// can be attached after construction — the server wires its registry in
// once metrics exist, the way persist.SetMetrics always has. A nil sink
// costs one atomic load per operation.
type Instrumented struct {
	inner Store
	sink  atomic.Pointer[Metrics]
}

// Instrument wraps s; attach a sink with SetMetrics.
func Instrument(s Store) *Instrumented { return &Instrumented{inner: s} }

// SetMetrics attaches (or replaces) the metrics sink.
func (s *Instrumented) SetMetrics(m Metrics) {
	if m == nil {
		s.sink.Store(nil)
		return
	}
	s.sink.Store(&m)
}

func (s *Instrumented) record(op string, n int, err error) {
	if m := s.sink.Load(); m != nil {
		(*m).Op(s.inner.Backend(), op, n, err)
	}
}

func (s *Instrumented) Put(key string, data []byte) error {
	err := s.inner.Put(key, data)
	s.record("put", len(data), err)
	return err
}

func (s *Instrumented) Get(key string) ([]byte, error) {
	data, err := s.inner.Get(key)
	s.record("get", len(data), err)
	return data, err
}

func (s *Instrumented) Open(key string) (io.ReadCloser, error) {
	rc, err := s.inner.Open(key)
	s.record("open", 0, err)
	return rc, err
}

func (s *Instrumented) List(prefix string) ([]string, error) {
	keys, err := s.inner.List(prefix)
	s.record("list", 0, err)
	return keys, err
}

func (s *Instrumented) Delete(key string) error {
	err := s.inner.Delete(key)
	s.record("delete", 0, err)
	return err
}

func (s *Instrumented) Sync() error {
	err := s.inner.Sync()
	s.record("sync", 0, err)
	return err
}

func (s *Instrumented) Append(key string) (Appender, error) {
	a, err := s.inner.Append(key)
	s.record("append_open", 0, err)
	if err != nil {
		return nil, err
	}
	return &instrumentedAppender{inner: a, store: s}, nil
}

func (s *Instrumented) Backend() string { return s.inner.Backend() }

func (s *Instrumented) Close() error { return s.inner.Close() }

type instrumentedAppender struct {
	inner Appender
	store *Instrumented
}

func (a *instrumentedAppender) Write(b []byte) (int, error) {
	n, err := a.inner.Write(b)
	a.store.record("append_write", n, err)
	return n, err
}

func (a *instrumentedAppender) Sync() error {
	err := a.inner.Sync()
	a.store.record("append_sync", 0, err)
	return err
}

func (a *instrumentedAppender) Truncate(size int64) error {
	err := a.inner.Truncate(size)
	a.store.record("append_truncate", 0, err)
	return err
}

func (a *instrumentedAppender) Size() int64 { return a.inner.Size() }

func (a *instrumentedAppender) Close() error { return a.inner.Close() }
