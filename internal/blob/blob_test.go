package blob_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tpminer/internal/blob"
	"tpminer/internal/blob/blobtest"
)

// trackingFactory builds a blobtest.Factory whose Reopen re-resolves
// the URL the store was first opened with — the conformance suite's
// stand-in for a process restart.
func trackingFactory(t *testing.T, urlFor func(t *testing.T) string) blobtest.Factory {
	var mu sync.Mutex
	urls := map[blob.Store]string{}
	open := func(t *testing.T, url string) blob.Store {
		t.Helper()
		s, err := blob.NewStore(url)
		if err != nil {
			t.Fatalf("NewStore(%s): %v", url, err)
		}
		mu.Lock()
		urls[s] = url
		mu.Unlock()
		return s
	}
	return blobtest.Factory{
		New: func(t *testing.T) blob.Store { return open(t, urlFor(t)) },
		Reopen: func(t *testing.T, old blob.Store) blob.Store {
			mu.Lock()
			url := urls[old]
			mu.Unlock()
			if url == "" {
				t.Fatal("reopen of a store this factory did not create")
			}
			return open(t, url)
		},
	}
}

var memNameSeq atomic.Int64

// memURL mints a fresh process-shared mem:// name per subtest.
func memURL(t *testing.T) string {
	return fmt.Sprintf("mem://conformance-%s-%d",
		strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()), memNameSeq.Add(1))
}

func TestConformanceMem(t *testing.T) {
	blobtest.Run(t, trackingFactory(t, memURL))
}

func TestConformanceFile(t *testing.T) {
	blobtest.Run(t, trackingFactory(t, func(t *testing.T) string {
		return "file://" + t.TempDir()
	}))
}

// TestConformanceInstrumented proves the metrics decorator is
// semantics-preserving by running the full suite through it.
func TestConformanceInstrumented(t *testing.T) {
	var mu sync.Mutex
	dirs := map[blob.Store]string{}
	open := func(t *testing.T, dir string) blob.Store {
		t.Helper()
		inner, err := blob.NewStore("file://" + dir)
		if err != nil {
			t.Fatal(err)
		}
		s := blob.Instrument(inner)
		mu.Lock()
		dirs[s] = dir
		mu.Unlock()
		return s
	}
	blobtest.Run(t, blobtest.Factory{
		New: func(t *testing.T) blob.Store { return open(t, t.TempDir()) },
		Reopen: func(t *testing.T, old blob.Store) blob.Store {
			mu.Lock()
			dir := dirs[old]
			mu.Unlock()
			return open(t, dir)
		},
	})
}

func TestNewStoreURLs(t *testing.T) {
	for _, bad := range []string{"", "nourl", "ftp://x", "s3://bucket", "file://"} {
		if s, err := blob.NewStore(bad); err == nil {
			s.Close()
			t.Errorf("NewStore(%q) succeeded, want error", bad)
		}
	}
	s, err := blob.NewStore("file://" + t.TempDir())
	if err != nil {
		t.Fatalf("file store: %v", err)
	}
	if s.Backend() != "file" {
		t.Errorf("Backend = %q, want file", s.Backend())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMemSharing: unnamed mem stores are private; named ones are
// process-shared, which is how a "restart" against mem:// finds its
// data again.
func TestMemSharing(t *testing.T) {
	a, _ := blob.NewStore("mem://")
	b, _ := blob.NewStore("mem://")
	if err := a.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("k"); !errors.Is(err, blob.ErrNotFound) {
		t.Errorf("unnamed mem stores share data: %v", err)
	}

	n1, _ := blob.NewStore("mem://shared-test")
	n2, _ := blob.NewStore("mem://shared-test")
	if err := n1.Put("k", []byte("y")); err != nil {
		t.Fatal(err)
	}
	got, err := n2.Get("k")
	if err != nil || string(got) != "y" {
		t.Errorf("named mem stores not shared: %q, %v", got, err)
	}
}

// opCount is a Metrics sink recording per-op counts, bytes, and errors.
type opCount struct {
	mu      sync.Mutex
	ops     map[string]int
	bytes   map[string]int
	errs    map[string]int
	backend string
}

func (c *opCount) Op(backend, op string, n int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backend = backend
	c.ops[op]++
	c.bytes[op] += n
	if err != nil {
		c.errs[op]++
	}
}

func TestInstrumentedRecordsOps(t *testing.T) {
	inner, err := blob.NewStore("mem://")
	if err != nil {
		t.Fatal(err)
	}
	s := blob.Instrument(inner)
	sink := &opCount{ops: map[string]int{}, bytes: map[string]int{}, errs: map[string]int{}}

	// Before a sink is attached, operations must still work.
	if err := s.Put("pre", []byte("xx")); err != nil {
		t.Fatal(err)
	}
	s.SetMetrics(sink)

	if err := s.Put("k", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := s.List(""); err != nil {
		t.Fatal(err)
	}
	a, err := s.Append("log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.backend != "mem" {
		t.Errorf("backend label = %q", sink.backend)
	}
	for op, want := range map[string]int{"put": 1, "get": 2, "list": 1, "append_open": 1, "append_write": 1, "append_sync": 1} {
		if sink.ops[op] != want {
			t.Errorf("ops[%s] = %d, want %d", op, sink.ops[op], want)
		}
	}
	if sink.bytes["put"] != 5 || sink.bytes["append_write"] != 3 {
		t.Errorf("byte counts: put=%d append_write=%d", sink.bytes["put"], sink.bytes["append_write"])
	}
	if sink.errs["get"] != 1 {
		t.Errorf("errs[get] = %d, want 1 (the missing key)", sink.errs["get"])
	}
	if sink.ops["put"] != 1 {
		t.Errorf("pre-sink put leaked into the counts: %d", sink.ops["put"])
	}
}
