// Package blobtest is the shared conformance suite every blob.Store
// backend must pass. It pins down the semantics internal/persist's
// durability invariants lean on — atomic Put, ErrNotFound mapping,
// sorted List, idempotent Delete, append/truncate/reopen behavior —
// so a new backend (an S3-style store, a tiering cache) proves itself
// by running one function, not by re-deriving the contract from the
// WAL's failure modes.
package blobtest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"

	"tpminer/internal/blob"
)

// Factory builds stores for one backend under test.
type Factory struct {
	// New returns a fresh, empty store. Called once per subtest.
	New func(t *testing.T) blob.Store
	// Reopen returns a second handle on the same backing data as store,
	// simulating a process restart. nil skips the persistence subtests
	// (for backends with no cross-handle durability).
	Reopen func(t *testing.T, store blob.Store) blob.Store
}

// Run executes the full conformance suite against the factory.
func Run(t *testing.T, f Factory) {
	t.Run("PutGetRoundTrip", func(t *testing.T) { testPutGet(t, f.New(t)) })
	t.Run("NotFound", func(t *testing.T) { testNotFound(t, f.New(t)) })
	t.Run("OpenStreams", func(t *testing.T) { testOpen(t, f.New(t)) })
	t.Run("ListPrefixSorted", func(t *testing.T) { testList(t, f.New(t)) })
	t.Run("DeleteIdempotent", func(t *testing.T) { testDelete(t, f.New(t)) })
	t.Run("KeyValidation", func(t *testing.T) { testKeys(t, f.New(t)) })
	t.Run("AppendTruncate", func(t *testing.T) { testAppend(t, f.New(t)) })
	t.Run("AppendSingleWriter", func(t *testing.T) { testSingleWriter(t, f.New(t)) })
	t.Run("GetIsolation", func(t *testing.T) { testIsolation(t, f.New(t)) })
	t.Run("ConcurrentDistinctKeys", func(t *testing.T) { testConcurrent(t, f.New(t)) })
	t.Run("SyncAfterMutations", func(t *testing.T) { testSync(t, f.New(t)) })
	if f.Reopen != nil {
		t.Run("ReopenSeesData", func(t *testing.T) { testReopen(t, f) })
	}
}

func testPutGet(t *testing.T, s blob.Store) {
	defer s.Close()
	if s.Backend() == "" {
		t.Error("Backend() is empty")
	}
	want := []byte("hello blob")
	if err := s.Put("k", want); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("get = %q, want %q", got, want)
	}
	// Overwrite fully replaces, including with shorter data.
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if got, _ := s.Get("k"); !bytes.Equal(got, []byte("v2")) {
		t.Errorf("after overwrite: %q, want %q", got, "v2")
	}
	// Empty objects are legal.
	if err := s.Put("empty", nil); err != nil {
		t.Fatalf("put empty: %v", err)
	}
	if got, err := s.Get("empty"); err != nil || len(got) != 0 {
		t.Errorf("get empty = %q, %v; want zero bytes, nil", got, err)
	}
}

func testNotFound(t *testing.T, s blob.Store) {
	defer s.Close()
	if _, err := s.Get("missing"); !errors.Is(err, blob.ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Open("missing"); !errors.Is(err, blob.ErrNotFound) {
		t.Errorf("Open(missing) = %v, want ErrNotFound", err)
	}
}

func testOpen(t *testing.T, s blob.Store) {
	defer s.Close()
	want := bytes.Repeat([]byte("stream me "), 1000)
	if err := s.Put("big", want); err != nil {
		t.Fatal(err)
	}
	rc, err := s.Open("big")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	got, err := io.ReadAll(rc)
	if cerr := rc.Close(); cerr != nil {
		t.Errorf("close reader: %v", cerr)
	}
	if err != nil || !bytes.Equal(got, want) {
		t.Errorf("streamed %d bytes (err %v), want %d identical bytes", len(got), err, len(want))
	}
}

func testList(t *testing.T, s blob.Store) {
	defer s.Close()
	for _, k := range []string{"wal-2", "snap-1", "wal-1", "other"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.List("wal-")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if want := []string{"wal-1", "wal-2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("List(wal-) = %v, want %v", got, want)
	}
	all, err := s.List("")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"other", "snap-1", "wal-1", "wal-2"}; !reflect.DeepEqual(all, want) {
		t.Errorf("List() = %v, want %v", all, want)
	}
	if err := s.Delete("wal-2"); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.List("wal-"); !reflect.DeepEqual(got, []string{"wal-1"}) {
		t.Errorf("List after delete = %v, want [wal-1]", got)
	}
}

func testDelete(t *testing.T, s blob.Store) {
	defer s.Close()
	if err := s.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, blob.ErrNotFound) {
		t.Errorf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete("k"); err != nil {
		t.Errorf("second delete = %v, want nil (idempotent)", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Errorf("delete of absent key = %v, want nil", err)
	}
}

func testKeys(t *testing.T, s blob.Store) {
	defer s.Close()
	for _, bad := range []string{"", "a/b", `a\b`, "..", "."} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", bad)
		}
		if _, err := s.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted an invalid key", bad)
		}
	}
}

func testAppend(t *testing.T, s blob.Store) {
	defer s.Close()
	a, err := s.Append("log")
	if err != nil {
		t.Fatalf("append open: %v", err)
	}
	if a.Size() != 0 {
		t.Errorf("fresh appender Size = %d, want 0", a.Size())
	}
	mustWrite(t, a, "aaaa")
	mustWrite(t, a, "bbbb")
	if a.Size() != 8 {
		t.Errorf("Size after 8 bytes = %d", a.Size())
	}
	// Appended bytes are visible to readers before Sync or Close.
	if got, err := s.Get("log"); err != nil || string(got) != "aaaabbbb" {
		t.Errorf("Get mid-append = %q, %v", got, err)
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// Truncate cuts an exact suffix; writes continue from the cut.
	if err := a.Truncate(6); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if a.Size() != 6 {
		t.Errorf("Size after truncate = %d, want 6", a.Size())
	}
	mustWrite(t, a, "CC")
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got, _ := s.Get("log"); string(got) != "aaaabbCC" {
		t.Errorf("after truncate+write: %q, want aaaabbCC", got)
	}
	// Reopening appends at the existing end.
	a2, err := s.Append("log")
	if err != nil {
		t.Fatalf("reopen appender: %v", err)
	}
	if a2.Size() != 8 {
		t.Errorf("reopened Size = %d, want 8", a2.Size())
	}
	mustWrite(t, a2, "!")
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("log"); string(got) != "aaaabbCC!" {
		t.Errorf("after reopen append: %q", got)
	}
}

func testSingleWriter(t *testing.T, s blob.Store) {
	defer s.Close()
	a, err := s.Append("log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("log"); err == nil {
		t.Error("second concurrent appender on one key was allowed")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a2, err := s.Append("log")
	if err != nil {
		t.Fatalf("append after close: %v", err)
	}
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
}

func testIsolation(t *testing.T, s blob.Store) {
	defer s.Close()
	buf := []byte("original")
	if err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // caller scribbles on its slice after Put
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Errorf("Put aliased the caller's buffer: stored %q", got)
	}
	got[0] = 'Y' // caller scribbles on Get's result
	if again, _ := s.Get("k"); string(again) != "original" {
		t.Errorf("Get aliased store memory: second read %q", again)
	}
}

func testConcurrent(t *testing.T, s blob.Store) {
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("obj-%d", i)
			want := bytes.Repeat([]byte{byte('a' + i)}, 512)
			if err := s.Put(key, want); err != nil {
				errs <- err
				return
			}
			got, err := s.Get(key)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("%s: round trip mismatch", key)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if keys, _ := s.List("obj-"); len(keys) != 8 {
		t.Errorf("List found %d objects, want 8", len(keys))
	}
}

func testSync(t *testing.T, s blob.Store) {
	defer s.Close()
	if err := s.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync after put: %v", err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync after delete: %v", err)
	}
}

func testReopen(t *testing.T, f Factory) {
	s := f.New(t)
	if err := s.Put("persisted", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	a, err := s.Append("log")
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, a, "entry")
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := f.Reopen(t, s)
	defer s2.Close()
	if got, err := s2.Get("persisted"); err != nil || string(got) != "survives" {
		t.Errorf("reopen Get = %q, %v", got, err)
	}
	if got, err := s2.Get("log"); err != nil || string(got) != "entry" {
		t.Errorf("reopen Get(log) = %q, %v", got, err)
	}
	keys, err := s2.List("")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"log", "persisted"}; !reflect.DeepEqual(keys, want) {
		t.Errorf("reopen List = %v, want %v", keys, want)
	}
}

func mustWrite(t *testing.T, a blob.Appender, s string) {
	t.Helper()
	n, err := a.Write([]byte(s))
	if err != nil || n != len(s) {
		t.Fatalf("write %q: n=%d err=%v", s, n, err)
	}
}
