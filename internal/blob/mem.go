package blob

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// memRegistry maps shared mem:// store names to their live instances,
// so NewStore("mem://x") returns the same backing objects every time
// within a process — the property that lets recovery tests "restart"
// against a memory backend.
var (
	memRegMu sync.Mutex
	memReg   = make(map[string]*memStore)
)

// openMemStore returns the shared store registered under name, creating
// it on first use; an empty name is a private store that dies with the
// last reference.
func openMemStore(name string) *memStore {
	if name == "" {
		return newMemStore("")
	}
	memRegMu.Lock()
	defer memRegMu.Unlock()
	s, ok := memReg[name]
	if !ok {
		s = newMemStore(name)
		memReg[name] = s
	}
	return s
}

// memStore holds every object as a byte slice. Objects are stored by
// value semantics: Put copies in, Get copies out, so no caller aliasing
// can corrupt the store.
type memStore struct {
	name string
	mu   sync.RWMutex
	objs map[string][]byte
	open map[string]bool // keys with a live appender (single-writer)
}

func newMemStore(name string) *memStore {
	return &memStore{name: name, objs: make(map[string][]byte), open: make(map[string]bool)}
}

func (s *memStore) Backend() string { return "mem" }

func (s *memStore) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[key] = append([]byte(nil), data...)
	return nil
}

func (s *memStore) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objs[key]
	if !ok {
		return nil, fmt.Errorf("blob: get %s: %w", key, ErrNotFound)
	}
	return append([]byte(nil), data...), nil
}

func (s *memStore) Open(key string) (io.ReadCloser, error) {
	data, err := s.Get(key)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

func (s *memStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.objs {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *memStore) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objs, key)
	return nil
}

// Sync is a no-op: memory has no stronger durability level to flush to.
func (s *memStore) Sync() error { return nil }

func (s *memStore) Append(key string) (Appender, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open[key] {
		return nil, fmt.Errorf("blob: append %s: an appender is already open (single-writer)", key)
	}
	if _, ok := s.objs[key]; !ok {
		s.objs[key] = []byte{}
	}
	s.open[key] = true
	return &memAppender{store: s, key: key}, nil
}

// Close keeps the objects: a shared (named) store lives in the registry
// for the life of the process, mirroring how file:// data outlives its
// handle.
func (s *memStore) Close() error { return nil }

type memAppender struct {
	store *memStore
	key   string
}

func (a *memAppender) Write(b []byte) (int, error) {
	a.store.mu.Lock()
	defer a.store.mu.Unlock()
	a.store.objs[a.key] = append(a.store.objs[a.key], b...)
	return len(b), nil
}

func (a *memAppender) Sync() error { return nil }

func (a *memAppender) Truncate(size int64) error {
	a.store.mu.Lock()
	defer a.store.mu.Unlock()
	cur := a.store.objs[a.key]
	if size < 0 || size > int64(len(cur)) {
		return fmt.Errorf("blob: truncate %s to %d: object holds %d bytes", a.key, size, len(cur))
	}
	// Re-slice on a copy so bytes handed out by earlier Gets can never
	// be clobbered by post-truncate appends.
	a.store.objs[a.key] = append([]byte(nil), cur[:size]...)
	return nil
}

func (a *memAppender) Size() int64 {
	a.store.mu.RLock()
	defer a.store.mu.RUnlock()
	return int64(len(a.store.objs[a.key]))
}

func (a *memAppender) Close() error {
	a.store.mu.Lock()
	defer a.store.mu.Unlock()
	delete(a.store.open, a.key)
	return nil
}
