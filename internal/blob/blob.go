// Package blob is a narrow blob-store abstraction for the persistence
// layer: named byte objects behind a URL-driven factory, so WAL
// segments and snapshots can live on any backend that offers
// atomic-commit puts and append-only writes. Two backends ship today —
// mem:// (process memory, optionally shared by name) and file:// (one
// local directory) — and the interface is deliberately small enough
// that an S3-style backend (atomic Put via multipart upload + rename
// semantics, Append via staged parts) drops in without touching
// internal/persist.
//
// # Commit semantics
//
// The interface encodes the two durability contracts internal/persist
// relies on:
//
//   - Put is atomic: a reader (including a crash-recovery scan) sees
//     either the complete object or no object — never a prefix. The
//     file backend implements this with the classic temp-file, write,
//     fsync, rename dance; the memory backend swaps a pointer.
//   - Append is ordered and truncatable: an Appender writes at the end
//     of the object, Sync makes acknowledged bytes durable, and
//     Truncate cuts an exact suffix off (the WAL's rollback primitive
//     after a failed write or fsync).
//
// Store.Sync is the namespace barrier: after it returns, object
// creations, deletions, and Put renames that happened before the call
// survive power loss (a directory fsync for file://). Backends whose
// namespace mutations are inherently durable implement it as a no-op.
//
// Every backend must pass the shared conformance suite in
// internal/blob/blobtest; see blob_test.go for the mem:// and file://
// runs.
package blob

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrNotFound is wrapped by Get and Open when the key has no object.
var ErrNotFound = errors.New("blob: object not found")

// Store is one flat namespace of byte objects. Implementations must be
// safe for concurrent use by multiple goroutines, with one exception:
// at most one Appender per key may be open at a time (the WAL is
// single-writer by design).
type Store interface {
	// Put atomically installs data under key, replacing any existing
	// object. Readers never observe a partial object: on return with a
	// nil error the object is complete and durable to the backend's
	// media-failure level; on error the previous object (or absence) is
	// intact and no partial artifact outlives the call.
	Put(key string, data []byte) error

	// Get reads the complete object at key. A missing key reports an
	// error wrapping ErrNotFound. The returned slice is the caller's to
	// keep.
	Get(key string) ([]byte, error)

	// Open streams the object at key. A missing key reports an error
	// wrapping ErrNotFound. The caller must Close the reader.
	Open(key string) (io.ReadCloser, error)

	// List returns the keys that start with prefix, sorted ascending.
	// An empty prefix lists everything.
	List(prefix string) ([]string, error)

	// Delete removes the object at key. Deleting a missing key is not
	// an error (idempotent).
	Delete(key string) error

	// Sync is the namespace durability barrier: object creations,
	// deletions, and Put commits issued before the call survive power
	// loss once it returns.
	Sync() error

	// Append opens key for appending, creating an empty object if none
	// exists. Bytes written become visible to Get/Open immediately and
	// durable after Appender.Sync.
	Append(key string) (Appender, error)

	// Backend names the backend kind ("mem", "file") for logs and
	// metric labels.
	Backend() string

	// Close releases the store's resources. Objects in durable backends
	// outlive it; mem:// objects outlive it only when the store was
	// opened with a shared name.
	Close() error
}

// Appender is an open append-only handle on one object.
type Appender interface {
	// Write appends b at the current end of the object. A short or
	// failed write may leave a prefix of b appended (a torn write);
	// Truncate is the recovery primitive.
	Write(b []byte) (n int, err error)

	// Sync makes every byte written so far durable.
	Sync() error

	// Truncate cuts the object to exactly size bytes. Subsequent
	// writes continue from the new end.
	Truncate(size int64) error

	// Size returns the object's current length in bytes.
	Size() int64

	// Close releases the handle without an implicit Sync.
	Close() error
}

// NewStore builds a store from a URL:
//
//	mem://            private in-memory store, dies with the value
//	mem://name        process-shared in-memory store: every NewStore
//	                  with the same name sees the same objects (how
//	                  tests simulate a restart against mem://)
//	file:///var/data  one local directory, created if needed
//
// Unknown schemes are rejected; this is the seam where an s3:// style
// backend registers next.
func NewStore(rawURL string) (Store, error) {
	scheme, rest, ok := strings.Cut(rawURL, "://")
	if !ok {
		return nil, fmt.Errorf("blob: store URL %q has no scheme (want scheme://...)", rawURL)
	}
	switch scheme {
	case "mem":
		return openMemStore(rest), nil
	case "file":
		return newFileStore(rest)
	default:
		return nil, fmt.Errorf("blob: unsupported store scheme %q in %q (supported: mem, file)", scheme, rawURL)
	}
}

// validKey rejects keys that could escape a flat namespace: empty keys
// and path separators have no meaning in any backend, and allowing them
// on file:// would turn keys into relative paths.
func validKey(key string) error {
	if key == "" {
		return errors.New("blob: empty key")
	}
	if strings.ContainsAny(key, "/\\") || key == "." || key == ".." {
		return fmt.Errorf("blob: key %q must be a flat name without path separators", key)
	}
	return nil
}
