// Package render draws interval sequences and temporal patterns as
// ASCII timelines for terminals and logs. Visual inspection is how
// interval arrangements are actually debugged — "B+ (A- C+)" takes a
// moment to read; a timeline does not:
//
//	A      ▐██████▌
//	B          ▐████████▌
//	C                  ▐███▌
//	       0         10        20
package render

import (
	"fmt"
	"sort"
	"strings"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// Options controls timeline rendering. The zero value renders with
// sensible defaults.
type Options struct {
	// Width is the number of columns for the time axis (default 60).
	Width int
	// ASCII forces pure-ASCII bars ("[====]") instead of block glyphs.
	ASCII bool
	// HideAxis suppresses the bottom tick line.
	HideAxis bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 60
	}
	if o.Width < 10 {
		o.Width = 10
	}
	return o
}

// Sequence renders an interval sequence as one labelled row per
// interval, ordered canonically, over a shared time axis.
func Sequence(seq interval.Sequence, opt Options) string {
	opt = opt.withDefaults()
	s := seq.Clone()
	s.Normalize()
	lo, hi, ok := s.Span()
	if !ok {
		return "(empty sequence)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	labelW := 0
	for _, iv := range s.Intervals {
		if len(iv.Symbol) > labelW {
			labelW = len(iv.Symbol)
		}
	}

	var b strings.Builder
	for _, iv := range s.Intervals {
		fmt.Fprintf(&b, "%-*s %s\n", labelW, iv.Symbol, bar(iv.Start, iv.End, lo, hi, opt))
	}
	if !opt.HideAxis {
		b.WriteString(strings.Repeat(" ", labelW+1))
		b.WriteString(axis(lo, hi, opt.Width))
		b.WriteByte('\n')
	}
	return b.String()
}

// Pattern renders a complete temporal pattern as a timeline over its
// element positions (element index serves as abstract time), one row
// per interval instance. Incomplete instances render as a lone start
// marker.
func Pattern(p pattern.Temporal, opt Options) string {
	opt = opt.withDefaults()
	type inst struct {
		name       string
		start, end int
	}
	byKey := make(map[string]*inst)
	var order []*inst
	for i, el := range p.Elements {
		for _, e := range el {
			name := e.Symbol
			if e.Occ > 1 {
				name = fmt.Sprintf("%s.%d", e.Symbol, e.Occ)
			}
			in, ok := byKey[name]
			if !ok {
				in = &inst{name: name, start: -1, end: -1}
				byKey[name] = in
				order = append(order, in)
			}
			if e.Kind == endpoint.Start {
				in.start = i
			} else {
				in.end = i
			}
		}
	}
	if len(order) == 0 {
		return "(empty pattern)\n"
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := order[i].start, order[j].start
		if si != sj {
			return si < sj
		}
		return order[i].name < order[j].name
	})

	labelW := 0
	for _, in := range order {
		if len(in.name) > labelW {
			labelW = len(in.name)
		}
	}
	hi := int64(p.Len()) // element positions 0..Len()-1, pad by one
	var b strings.Builder
	for _, in := range order {
		if in.start < 0 || in.end < 0 {
			at := in.start
			if at < 0 {
				at = in.end
			}
			fmt.Fprintf(&b, "%-*s %s\n", labelW, in.name,
				point(int64(at), 0, hi, opt))
			continue
		}
		fmt.Fprintf(&b, "%-*s %s\n", labelW, in.name,
			bar(int64(in.start), int64(in.end), 0, hi, opt))
	}
	return b.String()
}

// bar draws one interval as a horizontal bar scaled into [lo, hi].
func bar(start, end, lo, hi interval.Time, opt Options) string {
	cells := make([]rune, opt.Width)
	for i := range cells {
		cells[i] = ' '
	}
	a := scale(start, lo, hi, opt.Width)
	z := scale(end, lo, hi, opt.Width)
	if z >= opt.Width {
		z = opt.Width - 1
	}
	open, fill, close := '▐', '█', '▌'
	if opt.ASCII {
		open, fill, close = '[', '=', ']'
	}
	if a == z {
		cells[a] = close // point event: single marker
		if opt.ASCII {
			cells[a] = '|'
		}
		return string(cells)
	}
	cells[a] = open
	for i := a + 1; i < z; i++ {
		cells[i] = fill
	}
	cells[z] = close
	return string(cells)
}

// point draws a single marker at a position (used for unpaired
// endpoints of incomplete patterns).
func point(at, lo, hi interval.Time, opt Options) string {
	cells := make([]rune, opt.Width)
	for i := range cells {
		cells[i] = ' '
	}
	mark := '▌'
	if opt.ASCII {
		mark = '|'
	}
	p := scale(at, lo, hi, opt.Width)
	if p >= opt.Width {
		p = opt.Width - 1
	}
	cells[p] = mark
	return string(cells)
}

// scale maps time t in [lo, hi] to a column in [0, width-1].
func scale(t, lo, hi interval.Time, width int) int {
	if hi <= lo {
		return 0
	}
	c := int(int64(width-1) * (t - lo) / (hi - lo))
	if c < 0 {
		c = 0
	}
	if c >= width {
		c = width - 1
	}
	return c
}

// axis renders a tick line with the range endpoints and midpoint.
func axis(lo, hi interval.Time, width int) string {
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = ' '
	}
	place := func(t interval.Time) {
		s := fmt.Sprintf("%d", t)
		at := scale(t, lo, hi, width)
		if at+len(s) > width {
			at = width - len(s)
		}
		if at < 0 {
			at = 0
		}
		copy(cells[at:], s)
	}
	place(lo)
	place(lo + (hi-lo)/2)
	place(hi)
	return string(cells)
}
