package render

import (
	"strings"
	"testing"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

func TestSequenceRendering(t *testing.T) {
	seq := interval.Sequence{ID: "x", Intervals: []interval.Interval{
		{Symbol: "A", Start: 0, End: 10},
		{Symbol: "BB", Start: 5, End: 15},
	}}
	out := Sequence(seq, Options{Width: 20, ASCII: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two rows + axis
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A ") || !strings.HasPrefix(lines[1], "BB") {
		t.Errorf("labels wrong:\n%s", out)
	}
	if !strings.Contains(lines[0], "[") || !strings.Contains(lines[0], "]") {
		t.Errorf("no bar in row:\n%s", out)
	}
	// A starts at column 0 of the plot area; B starts later.
	aCol := strings.IndexByte(lines[0], '[')
	bCol := strings.IndexByte(lines[1], '[')
	if aCol >= bCol {
		t.Errorf("bar positions not ordered: A at %d, B at %d\n%s", aCol, bCol, out)
	}
	// Axis shows the range endpoints.
	if !strings.Contains(lines[2], "0") || !strings.Contains(lines[2], "15") {
		t.Errorf("axis labels missing: %q", lines[2])
	}
}

func TestSequenceEdgeCases(t *testing.T) {
	if got := Sequence(interval.Sequence{}, Options{}); !strings.Contains(got, "empty") {
		t.Errorf("empty sequence: %q", got)
	}
	// Point-only sequence must not divide by zero.
	seq := interval.Sequence{Intervals: []interval.Interval{{Symbol: "P", Start: 3, End: 3}}}
	out := Sequence(seq, Options{Width: 20, ASCII: true})
	if !strings.Contains(out, "|") {
		t.Errorf("point marker missing:\n%s", out)
	}
	// HideAxis drops the tick line.
	out = Sequence(seq, Options{Width: 20, ASCII: true, HideAxis: true})
	if strings.Count(out, "\n") != 1 {
		t.Errorf("axis not hidden:\n%q", out)
	}
}

func TestPatternRendering(t *testing.T) {
	p, err := pattern.ParseTemporal("A+ B+ A- B-")
	if err != nil {
		t.Fatal(err)
	}
	out := Pattern(p, Options{Width: 24, ASCII: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Overlap: A's bar starts before B's and ends before B's.
	aOpen := strings.IndexByte(lines[0], '[')
	aClose := strings.IndexByte(lines[0], ']')
	bOpen := strings.IndexByte(lines[1], '[')
	bClose := strings.IndexByte(lines[1], ']')
	if !(aOpen < bOpen && bOpen < aClose && aClose < bClose) {
		t.Errorf("overlap shape wrong (a:[%d,%d] b:[%d,%d]):\n%s", aOpen, aClose, bOpen, bClose, out)
	}
}

func TestPatternOccurrenceLabels(t *testing.T) {
	p, err := pattern.ParseTemporal("A+ A- A.2+ A.2-")
	if err != nil {
		t.Fatal(err)
	}
	out := Pattern(p, Options{Width: 24, ASCII: true})
	if !strings.Contains(out, "A.2") {
		t.Errorf("occurrence label missing:\n%s", out)
	}
}

func TestPatternIncomplete(t *testing.T) {
	// An open prefix renders the unpaired start as a point marker.
	p := pattern.NewTemporal(
		[]endpoint.Endpoint{{Symbol: "A", Occ: 1, Kind: endpoint.Start}},
	)
	out := Pattern(p, Options{Width: 16, ASCII: true})
	if !strings.Contains(out, "|") {
		t.Errorf("unpaired start not marked:\n%s", out)
	}
	if got := Pattern(pattern.Temporal{}, Options{}); !strings.Contains(got, "empty") {
		t.Errorf("empty pattern: %q", got)
	}
}

func TestUnicodeDefault(t *testing.T) {
	seq := interval.Sequence{Intervals: []interval.Interval{{Symbol: "A", Start: 0, End: 9}}}
	out := Sequence(seq, Options{Width: 20})
	if !strings.ContainsRune(out, '█') {
		t.Errorf("unicode bars expected by default:\n%s", out)
	}
}
