package baseline

import (
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

func tinyDB() *interval.Database {
	return interval.NewDatabase(
		[]interval.Interval{{Symbol: "A", Start: 0, End: 4}, {Symbol: "B", Start: 2, End: 6}},
		[]interval.Interval{{Symbol: "A", Start: 0, End: 4}, {Symbol: "B", Start: 2, End: 6}},
		[]interval.Interval{{Symbol: "B", Start: 0, End: 4}},
	)
}

func TestBruteForceTemporalTiny(t *testing.T) {
	rs, st, err := BruteForceTemporal(tinyDB(), core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, r := range rs {
		got[r.Pattern.String()] = r.Support
	}
	if got["A+ A-"] != 2 || got["B+ B-"] != 3 || got["A+ B+ A- B-"] != 2 {
		t.Errorf("results: %v", got)
	}
	if len(rs) != 3 {
		t.Errorf("pattern count = %d: %v", len(rs), rs)
	}
	if st.Nodes == 0 || st.CandidateScans == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestTPrefixSpanTiny(t *testing.T) {
	rs, _, err := TPrefixSpan(tinyDB(), core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, r := range rs {
		got[r.Pattern.String()] = r.Support
	}
	if got["A+ B+ A- B-"] != 2 {
		t.Errorf("overlap missing: %v", got)
	}
}

func TestAllMinersRejectBadOptions(t *testing.T) {
	db := tinyDB()
	bad := core.Options{} // no threshold at all
	if _, _, err := BruteForceTemporal(db, bad); err == nil {
		t.Error("brute force accepted empty options")
	}
	if _, _, err := BruteForceCoincidence(db, bad); err == nil {
		t.Error("brute force coincidence accepted empty options")
	}
	if _, _, err := TPrefixSpan(db, bad); err == nil {
		t.Error("tprefixspan accepted empty options")
	}
	if _, _, err := AprioriTemporal(db, bad); err == nil {
		t.Error("apriori accepted empty options")
	}
	if _, _, err := AprioriCoincidence(db, bad); err == nil {
		t.Error("apriori coincidence accepted empty options")
	}
}

func TestLatestStart(t *testing.T) {
	p, err := pattern.ParseTemporal("A+ (A- B+) B-")
	if err != nil {
		t.Fatal(err)
	}
	elem, best := latestStart(p)
	if elem != 1 || best.Symbol != "B" || best.Kind != endpoint.Start {
		t.Errorf("latestStart = %d, %v", elem, best)
	}
	elem, _ = latestStart(pattern.Temporal{})
	if elem != -1 {
		t.Errorf("latestStart(empty) = %d", elem)
	}
}

func TestPlacementsCountTwoIntervals(t *testing.T) {
	// Inserting the second interval into a one-interval pattern must
	// enumerate exactly the 13 Allen arrangements.
	base, err := pattern.ParseTemporal("A+ A-")
	if err != nil {
		t.Fatal(err)
	}
	s := endpoint.Endpoint{Symbol: "B", Occ: 1, Kind: endpoint.Start}
	lastElem, lastStart := latestStart(base)
	cands := placements(base, s, s.Pair(), lastElem, lastStart, core.Options{MinCount: 1})
	seen := make(map[string]bool)
	for _, c := range cands {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid placement %v: %v", c, err)
		}
		if !c.Complete() {
			t.Fatalf("incomplete placement %v", c)
		}
		if seen[c.Key()] {
			t.Fatalf("duplicate placement %v", c)
		}
		seen[c.Key()] = true
	}
	// Canonical generation places B's start at or after A's start, so
	// the arrangements where B starts strictly first (B before/meets/
	// overlaps/contains/finished-by A) are generated from the other
	// insertion order instead. That leaves 8 proper arrangements here
	// (equals, B starts A, A started-by B via distinct finishes, A meets
	// B, B finishes A, B during A, A overlaps B, A before B) plus 4
	// degenerate ones where B is a point event (at A's start, inside A,
	// at A's end, after A): 12 in total.
	if len(cands) != 12 {
		keys := make([]string, 0, len(cands))
		for _, c := range cands {
			keys = append(keys, c.String()+" ["+c.RelationSummary()+"]")
		}
		t.Errorf("placements = %d, want 12:\n%s", len(cands), keys)
	}
}

func TestBaselinesHonourMaxIntervals(t *testing.T) {
	db := tinyDB()
	opt := core.Options{MinCount: 2, MaxIntervals: 1}
	for name, mine := range map[string]func(*interval.Database, core.Options) ([]pattern.TemporalResult, core.Stats, error){
		"brute":       BruteForceTemporal,
		"tprefixspan": TPrefixSpan,
		"apriori":     AprioriTemporal,
	} {
		rs, _, err := mine(db, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rs {
			if r.Pattern.NumIntervals() > 1 {
				t.Errorf("%s: %v exceeds MaxIntervals", name, r.Pattern)
			}
		}
	}
}

func TestBruteForceCoincidenceTiny(t *testing.T) {
	rs, st, err := BruteForceCoincidence(tinyDB(), core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, r := range rs {
		got[r.Pattern.String()] = r.Support
	}
	if got["{A}"] != 2 || got["{B}"] != 3 || got["{A B}"] != 2 {
		t.Errorf("results: %v", got)
	}
	if st.Nodes == 0 || st.Emitted == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestAprioriCoincidenceTiny(t *testing.T) {
	want, _, err := BruteForceCoincidence(tinyDB(), core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := AprioriCoincidence(tinyDB(), core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !pattern.CoincResultsEqual(got, want) {
		t.Errorf("apriori %v != oracle %v", got, want)
	}
}

func TestCoincidenceBaselinesHonourMaxElements(t *testing.T) {
	opt := core.Options{MinCount: 2, MaxElements: 1}
	for name, mine := range map[string]func(*interval.Database, core.Options) ([]pattern.CoincResult, core.Stats, error){
		"brute":   BruteForceCoincidence,
		"apriori": AprioriCoincidence,
	} {
		rs, _, err := mine(tinyDB(), opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rs) == 0 {
			t.Fatalf("%s: empty", name)
		}
		for _, r := range rs {
			if r.Pattern.Len() > 1 {
				t.Errorf("%s: %v exceeds MaxElements", name, r.Pattern)
			}
		}
	}
}

func TestBaselinesRejectInvalidDatabase(t *testing.T) {
	bad := interval.NewDatabase([]interval.Interval{{Symbol: "A", Start: 5, End: 1}})
	opt := core.Options{MinCount: 1}
	if _, _, err := BruteForceTemporal(bad, opt); err == nil {
		t.Error("brute temporal accepted invalid db")
	}
	if _, _, err := BruteForceCoincidence(bad, opt); err == nil {
		t.Error("brute coincidence accepted invalid db")
	}
	if _, _, err := TPrefixSpan(bad, opt); err == nil {
		t.Error("tprefixspan accepted invalid db")
	}
	if _, _, err := AprioriTemporal(bad, opt); err == nil {
		t.Error("apriori temporal accepted invalid db")
	}
	if _, _, err := AprioriCoincidence(bad, opt); err == nil {
		t.Error("apriori coincidence accepted invalid db")
	}
}
