// Package baseline implements the comparison algorithms of the
// evaluation and the brute-force reference miner used as a test oracle.
//
// Three families are provided:
//
//   - BruteForce* — direct enumeration of the canonical pattern space
//     with support counted by scanning raw representations. Slow and
//     obviously correct; the oracle the test-suite checks every other
//     miner against.
//   - TPrefixSpan — the classical interval-by-interval growth strategy
//     (after Wu & Chen's TPrefixSpan): patterns grow one whole interval
//     at a time, every endpoint placement of the new interval is
//     generated and then verified against the supporting sequences. No
//     endpoint projection, no pair pruning — the comparator the paper's
//     efficiency claims are made against.
//   - Apriori* — level-wise generate-and-test with full database scans
//     and subset-based candidate pruning, the AprioriAll-era strategy.
//
// All miners use the same occurrence-aligned containment semantics as
// the core miner (see DESIGN.md), so their result sets are comparable
// element-wise.
package baseline

import (
	"sort"
	"time"

	"tpminer/internal/coincidence"
	"tpminer/internal/core"
	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// BruteForceTemporal enumerates every frequent complete temporal pattern
// by canonical depth-first extension, counting support with full scans
// of the endpoint-encoded database. Pruning options in opt are ignored;
// size constraints (MaxElements, MaxIntervals, MaxItemsPerElement) and
// KeepOccurrences are honoured. Intended as a test oracle on small
// inputs.
func BruteForceTemporal(db *interval.Database, opt core.Options) ([]pattern.TemporalResult, core.Stats, error) {
	start := time.Now()
	minCount, err := resolveMinCount(opt, db.Len())
	if err != nil {
		return nil, core.Stats{}, err
	}
	enc, err := pattern.EncodeDatabase(db)
	if err != nil {
		return nil, core.Stats{}, err
	}
	universe := endpointUniverse(enc)

	st := core.Stats{Sequences: db.Len(), MinCount: minCount}
	e := &bruteEnum{
		ixs:      pattern.BuildIndexes(enc),
		opt:      opt,
		minCount: minCount,
		universe: universe,
		stats:    &st,
	}
	e.recurse(pattern.Temporal{})

	results := e.results
	if !opt.KeepOccurrences {
		results = pattern.NormalizeTemporalResults(results)
	} else {
		pattern.SortTemporalResults(results)
	}
	st.Elapsed = time.Since(start)
	return results, st, nil
}

// endpointUniverse collects the distinct occurrence-indexed endpoints of
// the database in canonical order.
func endpointUniverse(enc [][]endpoint.Slice) []endpoint.Endpoint {
	set := make(map[endpoint.Endpoint]struct{})
	for _, seq := range enc {
		for _, sl := range seq {
			for _, p := range sl.Points {
				set[p] = struct{}{}
			}
		}
	}
	out := make([]endpoint.Endpoint, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

type bruteEnum struct {
	ixs      []pattern.Index
	opt      core.Options
	minCount int
	universe []endpoint.Endpoint
	stats    *core.Stats
	results  []pattern.TemporalResult
}

// recurse explores all canonical single-endpoint extensions of p.
// Canonical generation: the elements are extended only at the end —
// either a new element (S) or a strictly greater endpoint appended to
// the last element (I) — which produces every valid pattern exactly
// once.
func (e *bruteEnum) recurse(p pattern.Temporal) {
	e.stats.Nodes++
	used := make(map[endpoint.Endpoint]struct{}, p.Size())
	open := make(map[endpoint.Endpoint]struct{})
	for _, el := range p.Elements {
		for _, pt := range el {
			used[pt] = struct{}{}
			if pt.Kind == endpoint.Start {
				open[pt] = struct{}{}
			} else {
				delete(open, pt.Pair())
			}
		}
	}

	canS := e.opt.MaxElements == 0 || p.Len() < e.opt.MaxElements
	canI := p.Len() > 0 &&
		(e.opt.MaxItemsPerElement == 0 || len(p.Elements[p.Len()-1]) < e.opt.MaxItemsPerElement)
	canStart := e.opt.MaxIntervals == 0 || p.NumIntervals() < e.opt.MaxIntervals

	for _, cand := range e.universe {
		if _, dup := used[cand]; dup {
			continue
		}
		if cand.Kind == endpoint.Start && !canStart {
			continue
		}
		if cand.Kind == endpoint.Finish {
			if _, ok := open[cand.Pair()]; !ok {
				continue
			}
		}
		// S-extension.
		if canS {
			e.try(appendElement(p, cand))
		}
		// I-extension: canonical order requires cand greater than the
		// last endpoint of the last element.
		if canI {
			last := p.Elements[p.Len()-1]
			if last[len(last)-1].Less(cand) {
				e.try(growLast(p, cand))
			}
		}
	}
}

func (e *bruteEnum) try(q pattern.Temporal) {
	sup := pattern.SupportIndexed(e.ixs, q)
	e.stats.CandidateScans += int64(len(e.ixs))
	if sup < e.minCount {
		return
	}
	if q.Complete() {
		e.stats.Emitted++
		e.results = append(e.results, pattern.TemporalResult{Pattern: q, Support: sup})
	}
	e.recurse(q)
}

// appendElement returns p with a new single-endpoint element appended.
// The receiver is not modified.
func appendElement(p pattern.Temporal, cand endpoint.Endpoint) pattern.Temporal {
	q := p.Clone()
	q.Elements = append(q.Elements, []endpoint.Endpoint{cand})
	return q
}

// growLast returns p with cand appended to the last element.
func growLast(p pattern.Temporal, cand endpoint.Endpoint) pattern.Temporal {
	q := p.Clone()
	last := len(q.Elements) - 1
	q.Elements[last] = append(q.Elements[last], cand)
	return q
}

func resolveMinCount(opt core.Options, n int) (int, error) {
	// Delegate threshold semantics to the core package so every miner
	// agrees on the absolute count.
	return core.ResolveMinCount(opt, n)
}

// BruteForceCoincidence is the coincidence-pattern oracle: canonical
// depth-first extension with support counted by scanning the coincidence
// representation.
func BruteForceCoincidence(db *interval.Database, opt core.Options) ([]pattern.CoincResult, core.Stats, error) {
	start := time.Now()
	minCount, err := resolveMinCount(opt, db.Len())
	if err != nil {
		return nil, core.Stats{}, err
	}
	enc, err := pattern.TransformDatabase(db)
	if err != nil {
		return nil, core.Stats{}, err
	}
	universe := symbolUniverse(enc)

	st := core.Stats{Sequences: db.Len(), MinCount: minCount}
	var results []pattern.CoincResult
	var recurse func(p pattern.Coinc)
	recurse = func(p pattern.Coinc) {
		st.Nodes++
		canS := opt.MaxElements == 0 || p.Len() < opt.MaxElements
		canI := p.Len() > 0 &&
			(opt.MaxItemsPerElement == 0 || len(p.Elements[p.Len()-1]) < opt.MaxItemsPerElement)
		for _, sym := range universe {
			if canS {
				q := p.Clone()
				q.Elements = append(q.Elements, []string{sym})
				if sup := pattern.SupportCoinc(enc, q); sup >= minCount {
					st.Emitted++
					results = append(results, pattern.CoincResult{Pattern: q, Support: sup})
					recurse(q)
				}
				st.CandidateScans += int64(len(enc))
			}
			if canI {
				last := p.Elements[p.Len()-1]
				if last[len(last)-1] < sym {
					q := p.Clone()
					li := len(q.Elements) - 1
					q.Elements[li] = append(q.Elements[li], sym)
					if sup := pattern.SupportCoinc(enc, q); sup >= minCount {
						st.Emitted++
						results = append(results, pattern.CoincResult{Pattern: q, Support: sup})
						recurse(q)
					}
					st.CandidateScans += int64(len(enc))
				}
			}
		}
	}
	recurse(pattern.Coinc{})

	pattern.SortCoincResults(results)
	st.Elapsed = time.Since(start)
	return results, st, nil
}

func symbolUniverse(enc [][]coincidence.Coincidence) []string {
	set := make(map[string]struct{})
	for _, seq := range enc {
		for _, c := range seq {
			for _, s := range c.Symbols {
				set[s] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
