package baseline

import (
	"sort"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// TPrefixSpan mines frequent complete temporal patterns by growing one
// whole interval at a time, in the style of Wu & Chen's TPrefixSpan.
//
// Where P-TPMiner grows a prefix endpoint by endpoint and keeps a
// pseudo-projection, TPrefixSpan extends a k-interval arrangement to a
// (k+1)-interval arrangement by generating *every placement* of the new
// interval's two endpoints relative to the existing arrangement and then
// verifying each generated candidate against the parent's supporting
// sequences with a full containment check. The placement enumeration and
// re-verification are exactly the costs the endpoint representation
// avoids, which is why this is the headline comparator of the
// evaluation.
//
// Supported options: MinSupport/MinCount, MaxElements, MaxIntervals,
// MaxItemsPerElement, KeepOccurrences. Pruning switches are ignored
// (this algorithm has none of P1–P4 beyond its support threshold).
func TPrefixSpan(db *interval.Database, opt core.Options) ([]pattern.TemporalResult, core.Stats, error) {
	startT := time.Now()
	minCount, err := resolveMinCount(opt, db.Len())
	if err != nil {
		return nil, core.Stats{}, err
	}
	enc, err := pattern.EncodeDatabase(db)
	if err != nil {
		return nil, core.Stats{}, err
	}
	universe := endpointUniverse(enc)
	// Interval instances are identified by their start endpoints.
	var starts []endpoint.Endpoint
	for _, e := range universe {
		if e.Kind == endpoint.Start {
			starts = append(starts, e)
		}
	}

	st := core.Stats{Sequences: db.Len(), MinCount: minCount}
	m := &tpsMiner{
		ixs:      pattern.BuildIndexes(enc),
		opt:      opt,
		minCount: minCount,
		starts:   starts,
		stats:    &st,
	}
	allTIDs := make([]int, len(enc))
	for i := range allTIDs {
		allTIDs[i] = i
	}
	m.recurse(pattern.Temporal{}, allTIDs)

	results := m.results
	if !opt.KeepOccurrences {
		results = pattern.NormalizeTemporalResults(results)
	} else {
		pattern.SortTemporalResults(results)
	}
	st.Elapsed = time.Since(startT)
	return results, st, nil
}

type tpsMiner struct {
	ixs      []pattern.Index
	opt      core.Options
	minCount int
	starts   []endpoint.Endpoint
	stats    *core.Stats
	results  []pattern.TemporalResult
}

// recurse extends the complete arrangement p (supported by the sequences
// in tids) by one more interval in every canonical placement.
//
// Canonical generation: the new interval's start endpoint must be placed
// at or after the element holding the pattern's currently-latest start —
// and, when placed in that same element, must be greater in endpoint
// order than that start. Removing the greatest-positioned start (ties
// broken by endpoint order) of any arrangement inverts the construction,
// so every arrangement is generated exactly once.
func (m *tpsMiner) recurse(p pattern.Temporal, tids []int) {
	m.stats.Nodes++
	if m.opt.MaxIntervals != 0 && p.NumIntervals() >= m.opt.MaxIntervals {
		return
	}
	lastElem, lastStart := latestStart(p)

	for _, s := range m.starts {
		if usedIn(p, s) {
			continue
		}
		f := s.Pair()
		for _, cand := range placements(p, s, f, lastElem, lastStart, m.opt) {
			m.stats.CandidateScans += int64(len(tids))
			var sup []int
			for _, t := range tids {
				if m.ixs[t].Contains(cand) {
					sup = append(sup, t)
				}
			}
			if len(sup) < m.minCount {
				continue
			}
			m.stats.Emitted++
			m.results = append(m.results, pattern.TemporalResult{Pattern: cand, Support: len(sup)})
			m.recurse(cand, sup)
		}
	}
}

// latestStart returns the element index of the pattern's latest start
// endpoint and the greatest start endpoint within that element.
// (-1, zero) for the empty pattern.
func latestStart(p pattern.Temporal) (int, endpoint.Endpoint) {
	elem := -1
	var best endpoint.Endpoint
	for i, el := range p.Elements {
		for _, e := range el {
			if e.Kind != endpoint.Start {
				continue
			}
			if i > elem {
				elem, best = i, e
			} else if i == elem && best.Less(e) {
				best = e
			}
		}
	}
	return elem, best
}

func usedIn(p pattern.Temporal, e endpoint.Endpoint) bool {
	for _, el := range p.Elements {
		for _, x := range el {
			if x.Symbol == e.Symbol && x.Occ == e.Occ {
				return true
			}
		}
	}
	return false
}

// placements generates every canonical arrangement obtained by inserting
// the interval (s, f) into p. Positions are expressed over "slots": an
// endpoint can join an existing element or open a new element between
// two existing ones (or at either end), subject to the canonical-order
// constraint described at recurse.
func placements(p pattern.Temporal, s, f endpoint.Endpoint, lastElem int, lastStart endpoint.Endpoint, opt core.Options) []pattern.Temporal {
	n := p.Len()
	var out []pattern.Temporal

	// Start placements: inside element i (i >= max(lastElem,0)) or as a
	// new element after position i (i from lastElem to n). Encode
	// positions as: join=true, elem=i  |  join=false, gapAfter=i
	// (new element inserted after element i; i == -1 inserts at front).
	type place struct {
		join bool
		at   int // element index (join) or gap position (insert after at)
	}
	var startPlaces []place
	minJoin := lastElem
	if minJoin < 0 {
		minJoin = 0
	}
	for i := minJoin; i < n; i++ {
		if i == lastElem && !lastStart.Less(s) {
			continue // canonical order violated within the tie element
		}
		startPlaces = append(startPlaces, place{join: true, at: i})
	}
	// New elements must open strictly after the element holding the
	// latest start: insert before element i for i in lastElem+1..n
	// (i == n appends at the end; the empty pattern inserts at 0).
	for i := lastElem + 1; i <= n; i++ {
		startPlaces = append(startPlaces, place{join: false, at: i})
	}

	for _, sp := range startPlaces {
		base, sElem := insertEndpoint(p, s, sp.join, sp.at, opt)
		if sElem < 0 {
			continue
		}
		// Finish placements: join the start's element or any later one,
		// or open a new element strictly after the start's element.
		for i := sElem; i < base.Len(); i++ {
			q, _ := insertEndpoint(base, f, true, i, opt)
			if q.Len() > 0 {
				out = append(out, q)
			}
		}
		for i := sElem + 1; i <= base.Len(); i++ {
			q, _ := insertEndpoint(base, f, false, i, opt)
			if q.Len() > 0 {
				out = append(out, q)
			}
		}
	}

	// Filter by element-count constraint.
	if opt.MaxElements != 0 {
		kept := out[:0]
		for _, q := range out {
			if q.Len() <= opt.MaxElements {
				kept = append(kept, q)
			}
		}
		out = kept
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// insertEndpoint returns a copy of p with e joined into element `at`
// (join) or inserted as a new element after gap position `at` (!join,
// where at == k inserts before current element k). It returns the element
// index e ended up at, or -1 when the insertion violates
// MaxItemsPerElement.
func insertEndpoint(p pattern.Temporal, e endpoint.Endpoint, join bool, at int, opt core.Options) (pattern.Temporal, int) {
	q := p.Clone()
	if join {
		if opt.MaxItemsPerElement != 0 && len(q.Elements[at])+1 > opt.MaxItemsPerElement {
			return pattern.Temporal{}, -1
		}
		el := append(q.Elements[at], e)
		sort.Slice(el, func(i, j int) bool { return el[i].Less(el[j]) })
		q.Elements[at] = el
		return q, at
	}
	q.Elements = append(q.Elements, nil)
	copy(q.Elements[at+1:], q.Elements[at:])
	q.Elements[at] = []endpoint.Endpoint{e}
	return q, at
}
