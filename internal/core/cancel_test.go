package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"tpminer/internal/interval"
)

// explosiveDB builds a database whose search space explodes: every
// sequence holds nSym pairwise-overlapping intervals with distinct
// symbols (s_0 < s_1 < ... < e_0 < e_1 < ...), so at minCount == nSeq
// the miner faces a combinatorial number of frequent arrangements. At
// nSym >= 16 an unbounded run takes far longer than any test budget;
// these tests rely on cancellation/budgets to return early.
func explosiveDB(nSeq, nSym int) *interval.Database {
	seqs := make([][]interval.Interval, nSeq)
	for s := 0; s < nSeq; s++ {
		ivs := make([]interval.Interval, nSym)
		for i := 0; i < nSym; i++ {
			ivs[i] = interval.Interval{
				Symbol: fmt.Sprintf("S%02d", i),
				Start:  interval.Time(i),
				End:    interval.Time(nSym + i),
			}
		}
		seqs[s] = ivs
	}
	return interval.NewDatabase(seqs...)
}

// miners used by the table-driven cancellation tests: each returns the
// result count so both pattern types share one test body.
var ctxMiners = []struct {
	name string
	mine func(ctx context.Context, db *interval.Database, opt Options) (int, Stats, error)
}{
	{"temporal", func(ctx context.Context, db *interval.Database, opt Options) (int, Stats, error) {
		rs, st, err := MineTemporalCtx(ctx, db, opt)
		return len(rs), st, err
	}},
	{"coincidence", func(ctx context.Context, db *interval.Database, opt Options) (int, Stats, error) {
		rs, st, err := MineCoincidenceCtx(ctx, db, opt)
		return len(rs), st, err
	}},
	{"temporal-parallel", func(ctx context.Context, db *interval.Database, opt Options) (int, Stats, error) {
		opt.Parallel = 4
		rs, st, err := MineTemporalCtx(ctx, db, opt)
		return len(rs), st, err
	}},
	{"coincidence-parallel", func(ctx context.Context, db *interval.Database, opt Options) (int, Stats, error) {
		opt.Parallel = 4
		rs, st, err := MineCoincidenceCtx(ctx, db, opt)
		return len(rs), st, err
	}},
	{"temporal-topk", func(ctx context.Context, db *interval.Database, opt Options) (int, Stats, error) {
		rs, st, err := MineTemporalTopKCtx(ctx, db, 1000, opt)
		return len(rs), st, err
	}},
	{"coincidence-topk", func(ctx context.Context, db *interval.Database, opt Options) (int, Stats, error) {
		rs, st, err := MineCoincidenceTopKCtx(ctx, db, 1000, opt)
		return len(rs), st, err
	}},
}

// TestCancelMidMine cancels an in-flight mine on an explosive dataset
// and requires a prompt context.Canceled return with no results.
func TestCancelMidMine(t *testing.T) {
	db := explosiveDB(3, 16)
	for _, tc := range ctxMiners {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			n, _, err := tc.mine(ctx, db, Options{MinCount: db.Len()})
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if n != 0 {
				t.Errorf("cancelled mine returned %d results, want 0", n)
			}
			if elapsed > time.Second {
				t.Errorf("cancelled mine took %v, want prompt return", elapsed)
			}
		})
	}
}

// TestDeadlineExceeded runs a mine with a 50ms deadline on a dataset an
// unbounded run could not finish in seconds, and requires the error in
// well under 200ms (the documented ~10ms cancellation granularity plus
// margin).
func TestDeadlineExceeded(t *testing.T) {
	db := explosiveDB(3, 16)
	for _, tc := range ctxMiners {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			n, _, err := tc.mine(ctx, db, Options{MinCount: db.Len()})
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if n != 0 {
				t.Errorf("deadline-hit mine returned %d results, want 0", n)
			}
			if elapsed > 200*time.Millisecond {
				t.Errorf("50ms-deadline mine took %v, want < 200ms", elapsed)
			}
		})
	}
}

// TestMaxPatternsTruncates caps emission on a dataset with ~2^10
// frequent patterns and checks the truncation report, for both pattern
// types and both execution modes.
func TestMaxPatternsTruncates(t *testing.T) {
	db := explosiveDB(3, 10)
	const maxPats = 25
	for _, tc := range ctxMiners {
		t.Run(tc.name, func(t *testing.T) {
			n, st, err := tc.mine(context.Background(), db, Options{MinCount: db.Len(), MaxPatterns: maxPats})
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 || n > maxPats {
				t.Errorf("got %d results, want 1..%d", n, maxPats)
			}
			if !st.Truncated || st.TruncatedBy != TruncatedMaxPatterns {
				t.Errorf("Stats truncation = (%v, %q), want (true, %q)",
					st.Truncated, st.TruncatedBy, TruncatedMaxPatterns)
			}
		})
	}
}

// TestMaxPatternsNotTruncatedWhenUnderCap: a cap above the full result
// count must not flag truncation.
func TestMaxPatternsNotTruncatedWhenUnderCap(t *testing.T) {
	db := explosiveDB(3, 5)
	full, st0, err := MineTemporalCtx(context.Background(), db, Options{MinCount: db.Len()})
	if err != nil {
		t.Fatal(err)
	}
	if st0.Truncated {
		t.Fatalf("unbounded run flagged truncated: %+v", st0)
	}
	rs, st, err := MineTemporalCtx(context.Background(), db,
		Options{MinCount: db.Len(), MaxPatterns: len(full) + 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Errorf("under-cap run flagged truncated: %+v", st)
	}
	if len(rs) != len(full) {
		t.Errorf("under-cap run returned %d results, want %d", len(rs), len(full))
	}
}

// TestTimeBudgetTruncates: a soft time budget returns partial results
// without error, flagged as truncated.
func TestTimeBudgetTruncates(t *testing.T) {
	db := explosiveDB(3, 16)
	for _, tc := range ctxMiners {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			_, st, err := tc.mine(context.Background(), db,
				Options{MinCount: db.Len(), TimeBudget: 50 * time.Millisecond})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("time-budget run errored: %v", err)
			}
			if !st.Truncated || st.TruncatedBy != TruncatedTimeBudget {
				t.Errorf("Stats truncation = (%v, %q), want (true, %q)",
					st.Truncated, st.TruncatedBy, TruncatedTimeBudget)
			}
			if elapsed > time.Second {
				t.Errorf("50ms-budget mine took %v", elapsed)
			}
		})
	}
}

// TestCancelledFilters: the closed/maximal post-filters abort on a
// cancelled context.
func TestCancelledFilters(t *testing.T) {
	db := explosiveDB(3, 8)
	rs, _, err := MineTemporal(db, Options{MinCount: db.Len()})
	if err != nil {
		t.Fatal(err)
	}
	crs, _, err := MineCoincidence(db, Options{MinCount: db.Len(), MaxElements: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FilterClosedCtx(ctx, rs); !errors.Is(err, context.Canceled) {
		t.Errorf("FilterClosedCtx err = %v, want context.Canceled", err)
	}
	if _, err := FilterMaximalCtx(ctx, rs); !errors.Is(err, context.Canceled) {
		t.Errorf("FilterMaximalCtx err = %v, want context.Canceled", err)
	}
	if _, err := FilterClosedCoincCtx(ctx, crs); !errors.Is(err, context.Canceled) {
		t.Errorf("FilterClosedCoincCtx err = %v, want context.Canceled", err)
	}
	if _, err := FilterMaximalCoincCtx(ctx, crs); !errors.Is(err, context.Canceled) {
		t.Errorf("FilterMaximalCoincCtx err = %v, want context.Canceled", err)
	}
}

// TestBudgetOptionValidation rejects negative budgets.
func TestBudgetOptionValidation(t *testing.T) {
	db := explosiveDB(2, 3)
	if _, _, err := MineTemporal(db, Options{MinCount: 1, MaxPatterns: -1}); err == nil {
		t.Error("negative MaxPatterns accepted")
	}
	if _, _, err := MineTemporal(db, Options{MinCount: 1, TimeBudget: -time.Second}); err == nil {
		t.Error("negative TimeBudget accepted")
	}
}
