package core

import (
	"context"

	"tpminer/internal/coincidence"
	"tpminer/internal/pattern"
)

// Closed/maximal filters for coincidence patterns, mirroring the
// temporal ones. Subsumption is sequence-of-sets containment: p ⊑ q
// when p's elements map order-preservingly onto q's elements with
// set inclusion.

// SubCoincPattern reports whether p is contained in q. Every pattern
// subsumes itself.
func SubCoincPattern(p, q pattern.Coinc) bool {
	if p.Size() > q.Size() || p.Len() > q.Len() {
		return false
	}
	return pattern.ContainsCoinc(coincElements(q), p)
}

// coincElements views a coincidence pattern's elements as a coincidence
// sequence so the standard matcher applies.
func coincElements(q pattern.Coinc) []coincidence.Coincidence {
	out := make([]coincidence.Coincidence, len(q.Elements))
	for i, el := range q.Elements {
		out[i] = coincidence.Coincidence{Symbols: el}
	}
	return out
}

// FilterClosedCoinc keeps only closed coincidence patterns: those with
// no proper super-pattern of equal support in rs.
func FilterClosedCoinc(rs []pattern.CoincResult) []pattern.CoincResult {
	out, _ := FilterClosedCoincCtx(context.Background(), rs)
	return out
}

// FilterClosedCoincCtx is FilterClosedCoinc with cooperative
// cancellation; see FilterClosedCtx.
func FilterClosedCoincCtx(ctx context.Context, rs []pattern.CoincResult) ([]pattern.CoincResult, error) {
	return filterCoincSubsumed(ctx, rs, func(sub, super pattern.CoincResult) bool {
		return sub.Support == super.Support
	})
}

// FilterMaximalCoinc keeps only maximal coincidence patterns: those
// with no proper frequent super-pattern in rs at all.
func FilterMaximalCoinc(rs []pattern.CoincResult) []pattern.CoincResult {
	out, _ := FilterMaximalCoincCtx(context.Background(), rs)
	return out
}

// FilterMaximalCoincCtx is FilterMaximalCoinc with cooperative
// cancellation; see FilterClosedCtx.
func FilterMaximalCoincCtx(ctx context.Context, rs []pattern.CoincResult) ([]pattern.CoincResult, error) {
	return filterCoincSubsumed(ctx, rs, func(sub, super pattern.CoincResult) bool {
		return true
	})
}

func filterCoincSubsumed(ctx context.Context, rs []pattern.CoincResult, admits func(sub, super pattern.CoincResult) bool) ([]pattern.CoincResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seqs := make([][]coincidence.Coincidence, len(rs))
	for i := range rs {
		seqs[i] = coincElements(rs[i].Pattern)
	}
	var ops int64
	out := make([]pattern.CoincResult, 0, len(rs))
	for i := range rs {
		subsumed := false
		for j := range rs {
			if ops++; ops&(pollInterval-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if i == j || rs[j].Pattern.Size() <= rs[i].Pattern.Size() {
				continue
			}
			if !admits(rs[i], rs[j]) {
				continue
			}
			if pattern.ContainsCoinc(seqs[j], rs[i].Pattern) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, rs[i])
		}
	}
	pattern.SortCoincResults(out)
	return out, nil
}
