package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tpminer/internal/baseline"
	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// randomDB builds a small random interval database. Symbols are drawn
// from a small alphabet so that overlaps and repeats are common.
func randomDB(rng *rand.Rand, nSeq, maxIvs, nSyms int, horizon int64) *interval.Database {
	db := &interval.Database{}
	for s := 0; s < nSeq; s++ {
		n := 1 + rng.Intn(maxIvs)
		seq := interval.Sequence{ID: fmt.Sprintf("s%d", s)}
		for i := 0; i < n; i++ {
			start := rng.Int63n(horizon)
			dur := rng.Int63n(horizon / 2)
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: string(rune('A' + rng.Intn(nSyms))),
				Start:  start,
				End:    start + dur,
			})
		}
		db.Sequences = append(db.Sequences, seq)
	}
	return db
}

// pruningConfigs enumerates every combination of the four ablation
// switches.
func pruningConfigs(base core.Options) []core.Options {
	var out []core.Options
	for mask := 0; mask < 16; mask++ {
		o := base
		o.DisableGlobalPruning = mask&1 != 0
		o.DisablePairPruning = mask&2 != 0
		o.DisablePostfixPruning = mask&4 != 0
		o.DisableSizePruning = mask&8 != 0
		out = append(out, o)
	}
	return out
}

// TestTemporalMinerMatchesOracle cross-checks P-TPMiner against the
// brute-force oracle on randomized databases, for every combination of
// pruning switches, under raw occurrence-labelled semantics.
func TestTemporalMinerMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 4+rng.Intn(5), 5, 3, 20)
		minCount := 2
		base := core.Options{MinCount: minCount, KeepOccurrences: true}

		want, _, err := baseline.BruteForceTemporal(db, base)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		for _, opt := range pruningConfigs(base) {
			got, _, err := core.MineTemporal(db, opt)
			if err != nil {
				t.Fatalf("trial %d: miner: %v", trial, err)
			}
			if !pattern.TemporalResultsEqual(got, want) {
				t.Fatalf("trial %d (opts %+v): miner and oracle disagree:\nminer: %d patterns %v\noracle: %d patterns %v\ndb: %v",
					trial, opt, len(got), got, len(want), want, db.Sequences)
			}
		}
	}
}

// TestCoincidenceMinerMatchesOracle cross-checks coincidence mining
// against the brute-force oracle.
func TestCoincidenceMinerMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 4+rng.Intn(5), 5, 3, 20)
		base := core.Options{MinCount: 2}

		want, _, err := baseline.BruteForceCoincidence(db, base)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		for _, opt := range pruningConfigs(base) {
			got, _, err := core.MineCoincidence(db, opt)
			if err != nil {
				t.Fatalf("trial %d: miner: %v", trial, err)
			}
			if !pattern.CoincResultsEqual(got, want) {
				t.Fatalf("trial %d (opts %+v): miner and oracle disagree:\nminer: %d %v\noracle: %d %v\ndb: %v",
					trial, opt, len(got), got, len(want), want, db.Sequences)
			}
		}
	}
}

// TestTPrefixSpanMatchesOracle cross-checks the placement-enumeration
// baseline against the oracle (normalized results, since both merge
// occurrence labelings identically).
func TestTPrefixSpanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		db := randomDB(rng, 4+rng.Intn(4), 4, 3, 16)
		opt := core.Options{MinCount: 2, KeepOccurrences: true}

		want, _, err := baseline.BruteForceTemporal(db, opt)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		got, _, err := baseline.TPrefixSpan(db, opt)
		if err != nil {
			t.Fatalf("trial %d: tprefixspan: %v", trial, err)
		}
		if !pattern.TemporalResultsEqual(got, want) {
			t.Fatalf("trial %d: tprefixspan and oracle disagree:\ntps: %d %v\noracle: %d %v\ndb: %v",
				trial, len(got), got, len(want), want, db.Sequences)
		}
	}
}

// TestAprioriMatchesOracle cross-checks both Apriori baselines.
func TestAprioriMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		db := randomDB(rng, 4+rng.Intn(4), 4, 3, 16)
		opt := core.Options{MinCount: 2, KeepOccurrences: true}

		wantT, _, err := baseline.BruteForceTemporal(db, opt)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		gotT, _, err := baseline.AprioriTemporal(db, opt)
		if err != nil {
			t.Fatalf("trial %d: apriori temporal: %v", trial, err)
		}
		if !pattern.TemporalResultsEqual(gotT, wantT) {
			t.Fatalf("trial %d: apriori temporal disagrees:\napriori: %d %v\noracle: %d %v\ndb: %v",
				trial, len(gotT), gotT, len(wantT), wantT, db.Sequences)
		}

		wantC, _, err := baseline.BruteForceCoincidence(db, opt)
		if err != nil {
			t.Fatalf("trial %d: coinc oracle: %v", trial, err)
		}
		gotC, _, err := baseline.AprioriCoincidence(db, opt)
		if err != nil {
			t.Fatalf("trial %d: apriori coincidence: %v", trial, err)
		}
		if !pattern.CoincResultsEqual(gotC, wantC) {
			t.Fatalf("trial %d: apriori coincidence disagrees:\napriori: %d %v\noracle: %d %v\ndb: %v",
				trial, len(gotC), gotC, len(wantC), wantC, db.Sequences)
		}
	}
}

// TestParallelMatchesSerial checks that the parallel miners return the
// same results as their serial counterparts on larger random inputs,
// across worker counts and both raw and normalized semantics.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		db := randomDB(rng, 20, 6, 4, 30)
		for _, keepOcc := range []bool{true, false} {
			serial := core.Options{MinCount: 3, KeepOccurrences: keepOcc}
			wantT, _, err := core.MineTemporal(db, serial)
			if err != nil {
				t.Fatal(err)
			}
			wantC, _, err := core.MineCoincidence(db, serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				par := serial
				par.Parallel = workers

				gotT, _, err := core.MineTemporal(db, par)
				if err != nil {
					t.Fatal(err)
				}
				if !pattern.TemporalResultsEqual(gotT, wantT) {
					t.Fatalf("trial %d (parallel=%d keepOcc=%v): parallel temporal differs: %d vs %d patterns",
						trial, workers, keepOcc, len(gotT), len(wantT))
				}

				gotC, _, err := core.MineCoincidence(db, par)
				if err != nil {
					t.Fatal(err)
				}
				if !pattern.CoincResultsEqual(gotC, wantC) {
					t.Fatalf("trial %d (parallel=%d keepOcc=%v): parallel coincidence differs: %d vs %d patterns",
						trial, workers, keepOcc, len(gotC), len(wantC))
				}
			}
		}
	}
}

// TestParallelClosedMaximal: the closed/maximal post-filters run on
// parallel-mined results must match the serial pipeline exactly — the
// filters are downstream of mining, so any divergence would mean the
// parallel result sets differ.
func TestParallelClosedMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 3; trial++ {
		db := randomDB(rng, 20, 6, 4, 30)
		serial := core.Options{MinCount: 3}
		rsSerial, _, err := core.MineTemporal(db, serial)
		if err != nil {
			t.Fatal(err)
		}
		wantClosed := core.FilterClosed(rsSerial)
		wantMaximal := core.FilterMaximal(rsSerial)

		for _, workers := range []int{2, 4, 8} {
			par := serial
			par.Parallel = workers
			rsPar, _, err := core.MineTemporal(db, par)
			if err != nil {
				t.Fatal(err)
			}
			if got := core.FilterClosed(rsPar); !pattern.TemporalResultsEqual(got, wantClosed) {
				t.Fatalf("trial %d (parallel=%d): closed filter differs: %d vs %d", trial, workers, len(got), len(wantClosed))
			}
			if got := core.FilterMaximal(rsPar); !pattern.TemporalResultsEqual(got, wantMaximal) {
				t.Fatalf("trial %d (parallel=%d): maximal filter differs: %d vs %d", trial, workers, len(got), len(wantMaximal))
			}
		}
	}
}

// TestParallelTopKMatchesSerial: top-k mining honors Options.Parallel
// and returns exactly the serial top-k result for every worker count.
func TestParallelTopKMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		db := randomDB(rng, 20, 6, 4, 30)
		for _, k := range []int{1, 5, 25} {
			serial := core.Options{MinCount: 2}
			wantT, _, err := core.MineTemporalTopK(db, k, serial)
			if err != nil {
				t.Fatal(err)
			}
			wantC, _, err := core.MineCoincidenceTopK(db, k, serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				par := serial
				par.Parallel = workers
				gotT, _, err := core.MineTemporalTopK(db, k, par)
				if err != nil {
					t.Fatal(err)
				}
				if !pattern.TemporalResultsEqual(gotT, wantT) {
					t.Fatalf("trial %d k=%d parallel=%d: temporal top-k differs: %d vs %d",
						trial, k, workers, len(gotT), len(wantT))
				}
				gotC, _, err := core.MineCoincidenceTopK(db, k, par)
				if err != nil {
					t.Fatal(err)
				}
				if !pattern.CoincResultsEqual(gotC, wantC) {
					t.Fatalf("trial %d k=%d parallel=%d: coincidence top-k differs: %d vs %d",
						trial, k, workers, len(gotC), len(wantC))
				}
			}
		}
	}
}
