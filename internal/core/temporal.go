package core

import (
	"context"
	"sort"
	"time"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/seqdb"
)

// MineTemporal discovers all frequent complete temporal patterns of the
// database under occurrence-aligned semantics (see DESIGN.md). Results
// are normalized and sorted unless Options.KeepOccurrences is set, in
// which case the raw occurrence-labelled pattern set is returned.
func MineTemporal(db *interval.Database, opt Options) ([]pattern.TemporalResult, Stats, error) {
	return MineTemporalCtx(context.Background(), db, opt)
}

// MineTemporalCtx is MineTemporal with cooperative cancellation: the
// search polls ctx every pollInterval units of work and aborts with
// ctx.Err() (and nil results) when it is cancelled or its deadline
// passes. Budget stops (Options.MaxPatterns, Options.TimeBudget) are not
// errors — they return the patterns found so far with Stats.Truncated
// set.
func MineTemporalCtx(ctx context.Context, db *interval.Database, opt Options) ([]pattern.TemporalResult, Stats, error) {
	start := time.Now()
	if err := opt.validate(); err != nil {
		return nil, Stats{}, err
	}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		return nil, Stats{}, err
	}
	enc, err := seqdb.EncodeEndpointDB(db)
	if err != nil {
		return nil, Stats{}, err
	}

	ctl := newRunControl(ctx, opt, start)
	stats := Stats{Sequences: db.Len(), MinCount: minCount}
	if !opt.DisableGlobalPruning {
		stats.ItemsRemoved = enc.FilterInfrequent(minCount) // P1
	}

	var results []pattern.TemporalResult
	if opt.Parallel > 1 {
		results = mineTemporalParallel(enc, opt, minCount, &stats, ctl, nil)
	} else {
		m := newTemporalMiner(enc, opt, minCount, ctl)
		m.mine(initialTemporalProjection(enc), 0)
		stats.add(m.stats)
		results = m.results
	}

	err, stats.Truncated, stats.TruncatedBy = ctl.finish()
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}

	if !opt.KeepOccurrences {
		results = pattern.NormalizeTemporalResults(results)
	} else {
		pattern.SortTemporalResults(results)
	}
	if opt.MaxPatterns > 0 && len(results) > opt.MaxPatterns {
		results = results[:opt.MaxPatterns]
	}
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}

// projEntry is one sequence of a pseudo-projected database: the location
// where the prefix's last item matched (Slice == -1 for the empty
// prefix) and the time of the first matched endpoint, used by the
// MaxSpan constraint.
type projEntry struct {
	seq       int32
	loc       seqdb.Loc
	firstTime interval.Time
}

func initialTemporalProjection(db *seqdb.EndpointDB) []projEntry {
	proj := make([]projEntry, len(db.Seqs))
	for i := range proj {
		proj[i] = projEntry{seq: int32(i), loc: seqdb.Loc{Slice: -1, Idx: -1}}
	}
	return proj
}

// openInterval is one entry of the prefix's open set: the start endpoint
// of an interval the prefix has opened but not yet closed, paired with
// the finish endpoint that would close it. Keeping the finish id here
// lets the P3 postfix loop iterate a contiguous buffer with no map or
// pair-table hops.
type openInterval struct {
	start, finish seqdb.Item
}

// temporalMiner holds the depth-first search state for one worker.
type temporalMiner struct {
	db       *seqdb.EndpointDB
	opt      Options
	minCount int
	stats    Stats
	results  []pattern.TemporalResult

	// ctl is the run-wide cancellation/budget state; ops counts local
	// work units between polls.
	ctl *runControl
	ops int64

	// Current prefix: elements of item ids, the open interval instances
	// (small slice, iterated by P3 on the hot path), and the number of
	// interval instances opened so far.
	elems      [][]seqdb.Item
	open       []openInterval
	nIntervals int

	// Candidate counting scratch, reused across the whole search.
	countsS, countsI   []int32
	touchedS, touchedI []seqdb.Item

	// projPool holds one reusable projection buffer per search depth, so
	// project() allocates only when a depth is first reached (or a buffer
	// must grow). Buffers are used strictly stack-like: at most one live
	// projection per depth.
	projPool [][]projEntry

	// sched and stealCutoff are set on parallel runs: subtrees whose
	// projected database reaches the cutoff are offered to the shared
	// queue instead of being recursed into. worker is this miner's index
	// in the pool, recorded on spawned jobs so the scheduler can count
	// steals.
	sched       *sched[temporalJob]
	stealCutoff int
	worker      int32

	// topk, when non-nil, raises minCount dynamically (top-k mining).
	topk *topKState
}

func newTemporalMiner(db *seqdb.EndpointDB, opt Options, minCount int, ctl *runControl) *temporalMiner {
	n := db.Table.Len()
	return &temporalMiner{
		db:       db,
		opt:      opt,
		minCount: minCount,
		ctl:      ctl,
		countsS:  make([]int32, n),
		countsI:  make([]int32, n),
	}
}

// isOpen reports whether the interval started by item s is open.
func (m *temporalMiner) isOpen(s seqdb.Item) bool {
	for i := range m.open {
		if m.open[i].start == s {
			return true
		}
	}
	return false
}

// tick counts one unit of search work, polls the run control every
// pollInterval units, and reports whether the search must stop. It sits
// on the hot path: between polls it costs one increment and one relaxed
// atomic load.
func (m *temporalMiner) tick() bool {
	m.ops++
	if m.ops&(pollInterval-1) == 0 {
		m.ctl.poll()
	}
	return m.ctl.stop.Load()
}

// candidate is one frequent extension discovered at a node.
type candidate struct {
	item  seqdb.Item
	isI   bool
	count int32
}

// mine explores the search tree rooted at the current prefix, whose
// projected database is proj. depth is the number of extensions applied
// to reach the node; it indexes the projection pool for child nodes.
func (m *temporalMiner) mine(proj []projEntry, depth int) {
	if m.tick() {
		return
	}
	if m.topk != nil {
		if f := m.topk.threshold(); f > m.minCount {
			m.minCount = f
		}
	}
	m.stats.Nodes++
	if len(m.elems) > 0 && len(m.open) == 0 && len(proj) >= m.minCount {
		m.emit(proj)
	}
	if !m.opt.DisableSizePruning && len(proj) < m.minCount { // P4
		m.stats.SizePruned++
		return
	}

	canS := m.opt.MaxElements == 0 || len(m.elems) < m.opt.MaxElements
	canI := len(m.elems) > 0 &&
		(m.opt.MaxItemsPerElement == 0 || len(m.elems[len(m.elems)-1]) < m.opt.MaxItemsPerElement)
	canStart := m.opt.MaxIntervals == 0 || m.nIntervals < m.opt.MaxIntervals
	if !canS && !canI {
		return
	}

	cands := m.countCandidates(proj, canS, canI, canStart)
	for _, c := range cands {
		if m.ctl.stop.Load() {
			return
		}
		m.extend(proj, c, depth)
	}
	// Return scratch: countCandidates already reset the touched counters.
}

// countCandidates scans the projected database once and returns the
// frequent, admissible extensions, deterministically ordered (S before I,
// then by item id).
func (m *temporalMiner) countCandidates(proj []projEntry, canS, canI, canStart bool) []candidate {
	pairPruning := !m.opt.DisablePairPruning
	for i := range proj {
		if m.tick() {
			break // aborting: mine() rechecks before any recursion
		}
		pe := &proj[i]
		m.stats.CandidateScans++
		seq := &m.db.Seqs[pe.seq]
		if canI && pe.loc.Slice >= 0 {
			sl := &seq.Slices[pe.loc.Slice]
			for ii := int(pe.loc.Idx) + 1; ii < len(sl.Items); ii++ {
				it := sl.Items[ii]
				if !m.admit(it, canStart, pairPruning) {
					continue
				}
				if m.countsI[it] == 0 {
					m.touchedI = append(m.touchedI, it)
				}
				m.countsI[it]++
			}
		}
		if canS {
			for ci := int(pe.loc.Slice) + 1; ci < len(seq.Slices); ci++ {
				for _, it := range seq.Slices[ci].Items {
					if !m.admit(it, canStart, pairPruning) {
						continue
					}
					if m.countsS[it] == 0 {
						m.touchedS = append(m.touchedS, it)
					}
					m.countsS[it]++
				}
			}
		}
	}

	cands := make([]candidate, 0, len(m.touchedS)+len(m.touchedI))
	for _, it := range m.touchedS {
		if c := m.countsS[it]; int(c) >= m.minCount && m.valid(it) {
			cands = append(cands, candidate{item: it, isI: false, count: c})
		}
		m.countsS[it] = 0
	}
	for _, it := range m.touchedI {
		if c := m.countsI[it]; int(c) >= m.minCount && m.valid(it) {
			cands = append(cands, candidate{item: it, isI: true, count: c})
		}
		m.countsI[it] = 0
	}
	m.touchedS = m.touchedS[:0]
	m.touchedI = m.touchedI[:0]
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].isI != cands[j].isI {
			return !cands[i].isI
		}
		return cands[i].item < cands[j].item
	})
	return cands
}

// admit decides whether an item is worth counting at this node. Start
// endpoints are admissible unless the interval cap is reached. Finish
// endpoints are admissible only when their interval is open; with pair
// pruning (P2) enabled the check happens here, saving counter work,
// otherwise the item is counted and filtered later by valid.
func (m *temporalMiner) admit(it seqdb.Item, canStart, pairPruning bool) bool {
	if !m.db.IsFinish[it] {
		return canStart
	}
	if pairPruning {
		if !m.isOpen(m.db.Pair[it]) {
			m.stats.PairPruned++
			return false
		}
	}
	return true
}

// valid is the semantic admissibility check applied before recursion:
// a finish endpoint extends the prefix only if its interval is open.
// Redundant when P2 is on (admit already filtered), required when off.
func (m *temporalMiner) valid(it seqdb.Item) bool {
	if !m.db.IsFinish[it] {
		return true
	}
	return m.isOpen(m.db.Pair[it])
}

// extend applies candidate c to the prefix, projects, recurses (or hands
// the subtree to the shared queue), and restores the prefix state.
func (m *temporalMiner) extend(proj []projEntry, c candidate, depth int) {
	// Mutate prefix state.
	if c.isI {
		last := len(m.elems) - 1
		m.elems[last] = append(m.elems[last], c.item)
	} else {
		m.elems = append(m.elems, []seqdb.Item{c.item})
	}
	var closed openInterval
	closedAt := -1
	if m.db.IsFinish[c.item] {
		start := m.db.Pair[c.item]
		for i := range m.open {
			if m.open[i].start == start {
				closedAt = i
				break
			}
		}
		closed = m.open[closedAt]
		last := len(m.open) - 1
		m.open[closedAt] = m.open[last]
		m.open = m.open[:last]
	} else {
		m.open = append(m.open, openInterval{start: c.item, finish: m.db.Pair[c.item]})
		m.nIntervals++
	}

	next := m.project(proj, c, depth)
	if len(next) > 0 && !m.trySteal(next, depth) {
		m.mine(next, depth+1)
	}

	// Undo (the swap-remove above is reversed exactly, restoring order).
	if m.db.IsFinish[c.item] {
		if closedAt == len(m.open) { // removed entry was the last one
			m.open = append(m.open, closed)
		} else {
			m.open = append(m.open, m.open[closedAt])
			m.open[closedAt] = closed
		}
	} else {
		m.open = m.open[:len(m.open)-1]
		m.nIntervals--
	}
	if c.isI {
		last := len(m.elems) - 1
		m.elems[last] = m.elems[last][:len(m.elems[last])-1]
	} else {
		m.elems = m.elems[:len(m.elems)-1]
	}
}

// project builds the pseudo-projected database for prefix + c. It relies
// on the dense position index: every item occurs at most once per
// sequence, so one array load per sequence finds the unique match
// location. The open set must already reflect the extension (project is
// called from extend after the prefix mutation). The returned slice is a
// depth-pooled buffer owned by the miner; it stays valid until the next
// projection at the same depth.
func (m *temporalMiner) project(proj []projEntry, c candidate, depth int) []projEntry {
	postfixPruning := !m.opt.DisablePostfixPruning
	for len(m.projPool) <= depth {
		m.projPool = append(m.projPool, nil)
	}
	out := m.projPool[depth][:0]
	if cap(out) < int(c.count) {
		out = make([]projEntry, 0, int(c.count))
	}
	for i := range proj {
		if m.tick() {
			break // aborting: the recursion on the partial projection is cut at entry
		}
		pe := &proj[i]
		row := m.db.Pos.Row(pe.seq)
		loc := row[c.item]
		if loc.Slice < 0 {
			continue
		}
		if c.isI {
			if loc.Slice != pe.loc.Slice || loc.Idx <= pe.loc.Idx {
				continue
			}
		} else if loc.Slice <= pe.loc.Slice {
			continue
		}
		newTime := m.db.Seqs[pe.seq].Slices[loc.Slice].Time
		ft := pe.firstTime
		if pe.loc.Slice < 0 {
			ft = newTime
		}
		if m.opt.MaxSpan > 0 && newTime-ft > m.opt.MaxSpan {
			continue
		}
		// Gap check applies to S-extensions only: I-extensions stay on
		// the previous element's time point.
		if m.opt.MaxGap > 0 && !c.isI && pe.loc.Slice >= 0 &&
			newTime-m.db.Seqs[pe.seq].Slices[pe.loc.Slice].Time > m.opt.MaxGap {
			continue
		}
		if postfixPruning && len(m.open) > 0 { // P3
			dead := false
			for oi := range m.open {
				f := m.open[oi].finish
				if f < 0 {
					dead = true
					break
				}
				floc := row[f]
				if floc.Slice < 0 || !loc.Before(floc) {
					dead = true
					break
				}
			}
			if dead {
				m.stats.PostfixPruned++
				continue
			}
		}
		out = append(out, projEntry{seq: pe.seq, loc: loc, firstTime: ft})
	}
	m.projPool[depth] = out // keep any growth for reuse
	return out
}

// temporalJob is one stolen subtree: a snapshot of the prefix state plus
// an owned copy of its projected database.
type temporalJob struct {
	elems      [][]seqdb.Item
	open       []openInterval
	nIntervals int
	proj       []projEntry
	depth      int
}

// trySteal offers the subtree under the just-applied extension to the
// shared queue. It returns true when the subtree was handed off (the
// caller skips recursion). Serial runs (no scheduler) and small subtrees
// always return false.
func (m *temporalMiner) trySteal(next []projEntry, depth int) bool {
	if m.sched == nil || len(next) < m.stealCutoff || m.sched.full() {
		return false
	}
	elems := make([][]seqdb.Item, len(m.elems))
	for i, el := range m.elems {
		elems[i] = append([]seqdb.Item(nil), el...)
	}
	return m.sched.trySpawn(int(m.worker), temporalJob{
		elems:      elems,
		open:       append([]openInterval(nil), m.open...),
		nIntervals: m.nIntervals,
		proj:       append([]projEntry(nil), next...),
		depth:      depth + 1,
	})
}

// runJob loads a stolen subtree's prefix state into the worker's miner
// and searches it.
func (m *temporalMiner) runJob(j temporalJob) {
	m.elems = j.elems
	m.open = j.open
	m.nIntervals = j.nIntervals
	m.mine(j.proj, j.depth)
}

// emit records the current (complete) prefix as a result.
func (m *temporalMiner) emit(proj []projEntry) {
	m.stats.Emitted++
	els := make([][]endpoint.Endpoint, len(m.elems))
	for i, el := range m.elems {
		eps := make([]endpoint.Endpoint, len(el))
		for j, it := range el {
			eps[j] = m.db.Table.Endpoint(it)
		}
		els[i] = eps
	}
	res := pattern.TemporalResult{
		Pattern: pattern.NewTemporal(els...),
		Support: len(proj),
	}
	m.results = append(m.results, res)
	m.ctl.noteEmit()
	if m.topk != nil {
		m.minCount = m.topk.observe(m.topk.key(res.Pattern), res.Support, m.minCount)
	}
}

// mineTemporalParallel runs the work-stealing parallel search: workers
// drain a bounded shared queue seeded with the root subtree, and any
// worker enqueues a subtree when its projected database reaches the
// steal cutoff (see sched.go). tk, when non-nil, is the shared top-k
// threshold state. The callers' final normalize/sort pass makes the
// merged output byte-identical to a serial run.
func mineTemporalParallel(db *seqdb.EndpointDB, opt Options, minCount int, stats *Stats, ctl *runControl, tk *topKState) []pattern.TemporalResult {
	workers := opt.Parallel
	s := newSched[temporalJob](workers)
	s.trySpawn(rootSpawner, temporalJob{proj: initialTemporalProjection(db), depth: 0})

	cutoff := stealCutoffFor(opt, len(db.Seqs), minCount)
	miners := make([]*temporalMiner, workers)
	for w := range miners {
		m := newTemporalMiner(db, opt, minCount, ctl)
		m.topk = tk
		m.sched = s
		m.stealCutoff = cutoff
		m.worker = int32(w)
		miners[w] = m
	}
	s.run(workers, func(w int, j temporalJob) { miners[w].runJob(j) })

	var out []pattern.TemporalResult
	for _, m := range miners {
		stats.add(m.stats)
		out = append(out, m.results...)
	}
	stats.addSched(s.counters())
	return out
}
