package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/seqdb"
)

// MineTemporal discovers all frequent complete temporal patterns of the
// database under occurrence-aligned semantics (see DESIGN.md). Results
// are normalized and sorted unless Options.KeepOccurrences is set, in
// which case the raw occurrence-labelled pattern set is returned.
func MineTemporal(db *interval.Database, opt Options) ([]pattern.TemporalResult, Stats, error) {
	return MineTemporalCtx(context.Background(), db, opt)
}

// MineTemporalCtx is MineTemporal with cooperative cancellation: the
// search polls ctx every pollInterval units of work and aborts with
// ctx.Err() (and nil results) when it is cancelled or its deadline
// passes. Budget stops (Options.MaxPatterns, Options.TimeBudget) are not
// errors — they return the patterns found so far with Stats.Truncated
// set.
func MineTemporalCtx(ctx context.Context, db *interval.Database, opt Options) ([]pattern.TemporalResult, Stats, error) {
	start := time.Now()
	if err := opt.validate(); err != nil {
		return nil, Stats{}, err
	}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		return nil, Stats{}, err
	}
	enc, err := seqdb.EncodeEndpointDB(db)
	if err != nil {
		return nil, Stats{}, err
	}

	ctl := newRunControl(ctx, opt, start)
	stats := Stats{Sequences: db.Len(), MinCount: minCount}
	if !opt.DisableGlobalPruning {
		stats.ItemsRemoved = enc.FilterInfrequent(minCount) // P1
	}

	var results []pattern.TemporalResult
	if opt.Parallel > 1 {
		results = mineTemporalParallel(enc, opt, minCount, &stats, ctl)
	} else {
		m := newTemporalMiner(enc, opt, minCount, ctl)
		m.mine(initialTemporalProjection(enc))
		stats.add(m.stats)
		results = m.results
	}

	err, stats.Truncated, stats.TruncatedBy = ctl.finish()
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}

	if !opt.KeepOccurrences {
		results = pattern.NormalizeTemporalResults(results)
	} else {
		pattern.SortTemporalResults(results)
	}
	if opt.MaxPatterns > 0 && len(results) > opt.MaxPatterns {
		results = results[:opt.MaxPatterns]
	}
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}

// projEntry is one sequence of a pseudo-projected database: the location
// where the prefix's last item matched (Slice == -1 for the empty
// prefix) and the time of the first matched endpoint, used by the
// MaxSpan constraint.
type projEntry struct {
	seq       int32
	loc       seqdb.Loc
	firstTime interval.Time
}

func initialTemporalProjection(db *seqdb.EndpointDB) []projEntry {
	proj := make([]projEntry, len(db.Seqs))
	for i := range proj {
		proj[i] = projEntry{seq: int32(i), loc: seqdb.Loc{Slice: -1, Idx: -1}}
	}
	return proj
}

// temporalMiner holds the depth-first search state for one worker.
type temporalMiner struct {
	db       *seqdb.EndpointDB
	opt      Options
	minCount int
	stats    Stats
	results  []pattern.TemporalResult

	// ctl is the run-wide cancellation/budget state; ops counts local
	// work units between polls.
	ctl *runControl
	ops int64

	// Current prefix: elements of item ids, the set of open interval
	// starts, and the number of interval instances opened so far.
	elems      [][]seqdb.Item
	open       map[seqdb.Item]struct{}
	nIntervals int

	// Candidate counting scratch, reused across the whole search.
	countsS, countsI   []int32
	touchedS, touchedI []seqdb.Item

	// topk, when non-nil, raises minCount dynamically (top-k mining).
	topk *topKState
}

func newTemporalMiner(db *seqdb.EndpointDB, opt Options, minCount int, ctl *runControl) *temporalMiner {
	n := db.Table.Len()
	return &temporalMiner{
		db:       db,
		opt:      opt,
		minCount: minCount,
		ctl:      ctl,
		open:     make(map[seqdb.Item]struct{}),
		countsS:  make([]int32, n),
		countsI:  make([]int32, n),
	}
}

// tick counts one unit of search work, polls the run control every
// pollInterval units, and reports whether the search must stop. It sits
// on the hot path: between polls it costs one increment and one relaxed
// atomic load.
func (m *temporalMiner) tick() bool {
	m.ops++
	if m.ops&(pollInterval-1) == 0 {
		m.ctl.poll()
	}
	return m.ctl.stop.Load()
}

// candidate is one frequent extension discovered at a node.
type candidate struct {
	item  seqdb.Item
	isI   bool
	count int32
}

// mine explores the search tree rooted at the current prefix, whose
// projected database is proj.
func (m *temporalMiner) mine(proj []projEntry) {
	if m.tick() {
		return
	}
	m.stats.Nodes++
	if len(m.elems) > 0 && len(m.open) == 0 && len(proj) >= m.minCount {
		m.emit(proj)
	}
	if !m.opt.DisableSizePruning && len(proj) < m.minCount { // P4
		m.stats.SizePruned++
		return
	}

	canS := m.opt.MaxElements == 0 || len(m.elems) < m.opt.MaxElements
	canI := len(m.elems) > 0 &&
		(m.opt.MaxItemsPerElement == 0 || len(m.elems[len(m.elems)-1]) < m.opt.MaxItemsPerElement)
	canStart := m.opt.MaxIntervals == 0 || m.nIntervals < m.opt.MaxIntervals
	if !canS && !canI {
		return
	}

	cands := m.countCandidates(proj, canS, canI, canStart)
	for _, c := range cands {
		if m.ctl.stop.Load() {
			return
		}
		m.extend(proj, c)
	}
	// Return scratch: countCandidates already reset the touched counters.
}

// countCandidates scans the projected database once and returns the
// frequent, admissible extensions, deterministically ordered (S before I,
// then by item id).
func (m *temporalMiner) countCandidates(proj []projEntry, canS, canI, canStart bool) []candidate {
	pairPruning := !m.opt.DisablePairPruning
	for i := range proj {
		if m.tick() {
			break // aborting: mine() rechecks before any recursion
		}
		pe := &proj[i]
		m.stats.CandidateScans++
		seq := &m.db.Seqs[pe.seq]
		if canI && pe.loc.Slice >= 0 {
			sl := &seq.Slices[pe.loc.Slice]
			for ii := int(pe.loc.Idx) + 1; ii < len(sl.Items); ii++ {
				it := sl.Items[ii]
				if !m.admit(it, canStart, pairPruning) {
					continue
				}
				if m.countsI[it] == 0 {
					m.touchedI = append(m.touchedI, it)
				}
				m.countsI[it]++
			}
		}
		if canS {
			for ci := int(pe.loc.Slice) + 1; ci < len(seq.Slices); ci++ {
				for _, it := range seq.Slices[ci].Items {
					if !m.admit(it, canStart, pairPruning) {
						continue
					}
					if m.countsS[it] == 0 {
						m.touchedS = append(m.touchedS, it)
					}
					m.countsS[it]++
				}
			}
		}
	}

	cands := make([]candidate, 0, len(m.touchedS)+len(m.touchedI))
	for _, it := range m.touchedS {
		if c := m.countsS[it]; int(c) >= m.minCount && m.valid(it) {
			cands = append(cands, candidate{item: it, isI: false, count: c})
		}
		m.countsS[it] = 0
	}
	for _, it := range m.touchedI {
		if c := m.countsI[it]; int(c) >= m.minCount && m.valid(it) {
			cands = append(cands, candidate{item: it, isI: true, count: c})
		}
		m.countsI[it] = 0
	}
	m.touchedS = m.touchedS[:0]
	m.touchedI = m.touchedI[:0]
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].isI != cands[j].isI {
			return !cands[i].isI
		}
		return cands[i].item < cands[j].item
	})
	return cands
}

// admit decides whether an item is worth counting at this node. Start
// endpoints are admissible unless the interval cap is reached. Finish
// endpoints are admissible only when their interval is open; with pair
// pruning (P2) enabled the check happens here, saving counter work,
// otherwise the item is counted and filtered later by valid.
func (m *temporalMiner) admit(it seqdb.Item, canStart, pairPruning bool) bool {
	if !m.db.IsFinish[it] {
		return canStart
	}
	if pairPruning {
		if _, ok := m.open[m.db.Pair[it]]; !ok {
			m.stats.PairPruned++
			return false
		}
	}
	return true
}

// valid is the semantic admissibility check applied before recursion:
// a finish endpoint extends the prefix only if its interval is open.
// Redundant when P2 is on (admit already filtered), required when off.
func (m *temporalMiner) valid(it seqdb.Item) bool {
	if !m.db.IsFinish[it] {
		return true
	}
	_, ok := m.open[m.db.Pair[it]]
	return ok
}

// extend applies candidate c to the prefix, projects, recurses, and
// restores the prefix state.
func (m *temporalMiner) extend(proj []projEntry, c candidate) {
	// Mutate prefix state.
	if c.isI {
		last := len(m.elems) - 1
		m.elems[last] = append(m.elems[last], c.item)
	} else {
		m.elems = append(m.elems, []seqdb.Item{c.item})
	}
	var closed seqdb.Item = -1
	if m.db.IsFinish[c.item] {
		closed = m.db.Pair[c.item]
		delete(m.open, closed)
	} else {
		m.open[c.item] = struct{}{}
		m.nIntervals++
	}

	next := m.project(proj, c)
	if len(next) > 0 {
		m.mine(next)
	}

	// Undo.
	if m.db.IsFinish[c.item] {
		m.open[closed] = struct{}{}
	} else {
		delete(m.open, c.item)
		m.nIntervals--
	}
	if c.isI {
		last := len(m.elems) - 1
		m.elems[last] = m.elems[last][:len(m.elems[last])-1]
	} else {
		m.elems = m.elems[:len(m.elems)-1]
	}
}

// project builds the pseudo-projected database for prefix + c. It relies
// on the per-sequence exact position index: every item occurs at most
// once per sequence, so the match location is unique. The open set must
// already reflect the extension (project is called from extend after the
// prefix mutation).
func (m *temporalMiner) project(proj []projEntry, c candidate) []projEntry {
	postfixPruning := !m.opt.DisablePostfixPruning
	out := make([]projEntry, 0, int(c.count))
	for i := range proj {
		if m.tick() {
			break // aborting: the recursion on the partial projection is cut at entry
		}
		pe := &proj[i]
		loc, ok := m.db.Pos[pe.seq][c.item]
		if !ok {
			continue
		}
		if c.isI {
			if loc.Slice != pe.loc.Slice || loc.Idx <= pe.loc.Idx {
				continue
			}
		} else if loc.Slice <= pe.loc.Slice {
			continue
		}
		newTime := m.db.Seqs[pe.seq].Slices[loc.Slice].Time
		ft := pe.firstTime
		if pe.loc.Slice < 0 {
			ft = newTime
		}
		if m.opt.MaxSpan > 0 && newTime-ft > m.opt.MaxSpan {
			continue
		}
		// Gap check applies to S-extensions only: I-extensions stay on
		// the previous element's time point.
		if m.opt.MaxGap > 0 && !c.isI && pe.loc.Slice >= 0 &&
			newTime-m.db.Seqs[pe.seq].Slices[pe.loc.Slice].Time > m.opt.MaxGap {
			continue
		}
		if postfixPruning && len(m.open) > 0 { // P3
			dead := false
			pos := m.db.Pos[pe.seq]
			for s := range m.open {
				floc, ok := pos[m.db.Pair[s]]
				if !ok || !loc.Before(floc) {
					dead = true
					break
				}
			}
			if dead {
				m.stats.PostfixPruned++
				continue
			}
		}
		out = append(out, projEntry{seq: pe.seq, loc: loc, firstTime: ft})
	}
	return out
}

// emit records the current (complete) prefix as a result.
func (m *temporalMiner) emit(proj []projEntry) {
	m.stats.Emitted++
	els := make([][]endpoint.Endpoint, len(m.elems))
	for i, el := range m.elems {
		eps := make([]endpoint.Endpoint, len(el))
		for j, it := range el {
			eps[j] = m.db.Table.Endpoint(it)
		}
		els[i] = eps
	}
	res := pattern.TemporalResult{
		Pattern: pattern.NewTemporal(els...),
		Support: len(proj),
	}
	m.results = append(m.results, res)
	m.ctl.noteEmit()
	if m.topk != nil {
		m.minCount = m.topk.observe(m.topk.key(res.Pattern), res.Support, m.minCount)
	}
}

// mineTemporalParallel fans the first-level frequent items out over
// Options.Parallel workers, each running an independent serial miner on
// its subtree. Results and stats are merged deterministically.
func mineTemporalParallel(db *seqdb.EndpointDB, opt Options, minCount int, stats *Stats, ctl *runControl) []pattern.TemporalResult {
	root := newTemporalMiner(db, opt, minCount, ctl)
	proj := initialTemporalProjection(db)
	root.stats.Nodes++ // the shared root node
	canStart := true
	cands := root.countCandidates(proj, true, false, canStart)

	type job struct {
		idx int
		c   candidate
	}
	jobs := make(chan job)
	workerResults := make([][]pattern.TemporalResult, len(cands))
	workerStats := make([]Stats, opt.Parallel)

	var wg sync.WaitGroup
	for w := 0; w < opt.Parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := newTemporalMiner(db, opt, minCount, ctl)
			for j := range jobs {
				m.results = nil
				m.extend(proj, j.c)
				workerResults[j.idx] = m.results
			}
			workerStats[w] = m.stats
		}(w)
	}
	for i, c := range cands {
		jobs <- job{idx: i, c: c}
	}
	close(jobs)
	wg.Wait()

	stats.add(root.stats)
	for _, ws := range workerStats {
		stats.add(ws)
	}
	var out []pattern.TemporalResult
	for _, rs := range workerResults {
		out = append(out, rs...)
	}
	return out
}
