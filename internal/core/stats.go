package core

import "time"

// Stats reports what a mining run did. Counter semantics:
//
//   - Nodes counts search-tree nodes (prefixes) explored, including the
//     root.
//   - Emitted counts patterns emitted before normalization/merging.
//   - CandidateScans counts projected-sequence scans performed while
//     counting extension candidates (the dominant cost).
//   - PairPruned counts finish endpoints skipped by P2.
//   - PostfixPruned counts projected sequences dropped by P3.
//   - SizePruned counts nodes cut by P4.
//   - ItemsRemoved counts item ids removed by P1.
//
// Parallel runs additionally report scheduler counters (zero on serial
// runs):
//
//   - JobsSpawned counts subtrees handed to the shared work queue,
//     including the root seed.
//   - StealsTaken counts queued subtrees executed by a worker other than
//     the one that spawned them — the actual load-balancing events.
//   - MaxQueueDepth is the high-water mark of the shared queue.
type Stats struct {
	Sequences      int
	MinCount       int
	ItemsRemoved   int
	Nodes          int64
	Emitted        int64
	CandidateScans int64
	PairPruned     int64
	PostfixPruned  int64
	SizePruned     int64
	JobsSpawned    int64
	StealsTaken    int64
	MaxQueueDepth  int64
	Elapsed        time.Duration

	// Truncated reports that the search stopped before exhausting the
	// search space; TruncatedBy says why (TruncatedMaxPatterns or
	// TruncatedTimeBudget). Context cancellation is reported as an error
	// by the mining call instead, never as a truncation.
	Truncated   bool
	TruncatedBy string
}

// add accumulates worker-local stats into s (used by the parallel miner).
// Scheduler counters are run-global — they live on the shared queue, not
// per worker — and are copied in once by addSched.
func (s *Stats) add(w Stats) {
	s.Nodes += w.Nodes
	s.Emitted += w.Emitted
	s.CandidateScans += w.CandidateScans
	s.PairPruned += w.PairPruned
	s.PostfixPruned += w.PostfixPruned
	s.SizePruned += w.SizePruned
}

// addSched copies a finished run's scheduler counters into s.
func (s *Stats) addSched(spawned, steals, maxDepth int64) {
	s.JobsSpawned = spawned
	s.StealsTaken = steals
	s.MaxQueueDepth = maxDepth
}
