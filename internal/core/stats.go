package core

import "time"

// Stats reports what a mining run did. Counter semantics:
//
//   - Nodes counts search-tree nodes (prefixes) explored, including the
//     root.
//   - Emitted counts patterns emitted before normalization/merging.
//   - CandidateScans counts projected-sequence scans performed while
//     counting extension candidates (the dominant cost).
//   - PairPruned counts finish endpoints skipped by P2.
//   - PostfixPruned counts projected sequences dropped by P3.
//   - SizePruned counts nodes cut by P4.
//   - ItemsRemoved counts item ids removed by P1.
type Stats struct {
	Sequences      int
	MinCount       int
	ItemsRemoved   int
	Nodes          int64
	Emitted        int64
	CandidateScans int64
	PairPruned     int64
	PostfixPruned  int64
	SizePruned     int64
	Elapsed        time.Duration

	// Truncated reports that the search stopped before exhausting the
	// search space; TruncatedBy says why (TruncatedMaxPatterns or
	// TruncatedTimeBudget). Context cancellation is reported as an error
	// by the mining call instead, never as a truncation.
	Truncated   bool
	TruncatedBy string
}

// add accumulates worker-local stats into s (used by the parallel miner).
func (s *Stats) add(w Stats) {
	s.Nodes += w.Nodes
	s.Emitted += w.Emitted
	s.CandidateScans += w.CandidateScans
	s.PairPruned += w.PairPruned
	s.PostfixPruned += w.PostfixPruned
	s.SizePruned += w.SizePruned
}
