// Package core implements P-TPMiner, the paper's contribution: a
// projection-based miner that discovers the two types of interval-based
// sequential patterns — temporal patterns over the endpoint
// representation and coincidence patterns over the coincidence
// representation — with pruning techniques that reduce the search space.
//
// The mining strategy is PrefixSpan-family: patterns are grown
// depth-first by S-extensions (a new element) and I-extensions (growing
// the last element), and support is counted on pseudo-projected
// databases that store only (sequence, position) pairs. Four pruning
// techniques keep the search space small; each can be disabled
// individually for the ablation study (see DESIGN.md, Fig 3):
//
//	P1 — global infrequent-endpoint pruning: one counting pass removes
//	     all items below the support threshold before mining starts.
//	P2 — pair pruning: finish endpoints whose interval is not open in
//	     the current prefix are skipped during candidate counting
//	     rather than discarded after it.
//	P3 — postfix completion pruning: a projected sequence whose suffix
//	     can no longer close every open interval is dropped from the
//	     projection; it cannot support any completable extension.
//	P4 — projection-size pruning: recursion stops as soon as a
//	     projected database is smaller than the support threshold.
package core

import (
	"fmt"
	"math"
	"time"

	"tpminer/internal/interval"
)

// Options configures a mining run. The zero value is not valid: either
// MinSupport or MinCount must be set.
type Options struct {
	// MinSupport is the relative minimum support in (0, 1]. It is
	// converted to an absolute count with ceil(MinSupport * |DB|).
	// Ignored when MinCount > 0.
	MinSupport float64

	// MinCount is the absolute minimum support (number of sequences).
	// Takes precedence over MinSupport when > 0.
	MinCount int

	// MaxElements caps the number of elements (distinct time points) in
	// a pattern. 0 means unlimited.
	MaxElements int

	// MaxIntervals caps the number of interval instances in a temporal
	// pattern. 0 means unlimited. Ignored by coincidence mining.
	MaxIntervals int

	// MaxItemsPerElement caps the number of items inside one element.
	// 0 means unlimited.
	MaxItemsPerElement int

	// MaxSpan caps the time between the first and the last matched
	// endpoint of a supporting embedding (temporal mining only).
	// Sequences whose unique embedding exceeds the span do not count
	// toward support. 0 means unlimited.
	MaxSpan interval.Time

	// MaxGap caps the time between consecutive matched elements of a
	// supporting embedding (temporal mining only; I-extensions share a
	// time point and are never gap-checked). 0 means unlimited.
	MaxGap interval.Time

	// KeepOccurrences reports temporal patterns with their raw
	// occurrence labels instead of normalizing them (see
	// pattern.Temporal.Normalize). Raw results are what the search
	// enumerates and are used by the equivalence tests.
	KeepOccurrences bool

	// MaxPatterns caps the number of patterns emitted by the search; the
	// run stops early and Stats.Truncated reports the cut. Temporal
	// results are normalized after mining, so the returned slice may be
	// smaller than the cap (never larger). 0 means unlimited.
	MaxPatterns int

	// TimeBudget is a soft wall-clock budget for the search. When it
	// runs out the miner stops and returns the patterns found so far
	// with Stats.Truncated set — no error. For a hard deadline that
	// aborts with context.DeadlineExceeded instead, use the Ctx mining
	// variants with a deadline context. 0 means unlimited.
	TimeBudget time.Duration

	// Pruning ablation switches. All prunings are enabled by default;
	// disabling any of them changes performance but never results.
	DisableGlobalPruning  bool // P1
	DisablePairPruning    bool // P2
	DisablePostfixPruning bool // P3
	DisableSizePruning    bool // P4

	// Parallel is the number of worker goroutines of the work-stealing
	// parallel DFS: workers drain a shared queue of subtree jobs and any
	// worker splits off subtrees whose projected database is large
	// enough to be worth sharing. Results are identical to a serial run.
	// 0 or 1 mines serially. Honored by all miners, including top-k.
	Parallel int

	// stealCutoff overrides the minimum projected-database size at which
	// a subtree is offered to other workers. 0 uses the built-in
	// heuristic (see stealCutoffFor). Unexported: a white-box test knob
	// to force stealing on tiny databases.
	stealCutoff int
}

// ResolveMinCount converts the options' support threshold into an
// absolute sequence count for a database of n sequences. It is exported
// so the baseline miners share the exact threshold semantics of the core
// miner.
func ResolveMinCount(o Options, n int) (int, error) {
	if err := o.validate(); err != nil {
		return 0, err
	}
	return o.resolveMinCount(n)
}

// resolveMinCount converts the options' support threshold to an absolute
// sequence count for a database of n sequences.
func (o Options) resolveMinCount(n int) (int, error) {
	if o.MinCount > 0 {
		return o.MinCount, nil
	}
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		return 0, fmt.Errorf("core: MinSupport %v outside (0,1] and no MinCount given", o.MinSupport)
	}
	c := int(math.Ceil(o.MinSupport * float64(n)))
	if c < 1 {
		c = 1
	}
	return c, nil
}

// validate rejects nonsensical option combinations.
func (o Options) validate() error {
	if o.MinCount < 0 {
		return fmt.Errorf("core: negative MinCount %d", o.MinCount)
	}
	if o.MinCount == 0 && (o.MinSupport <= 0 || o.MinSupport > 1) {
		return fmt.Errorf("core: MinSupport %v outside (0,1] and no MinCount given", o.MinSupport)
	}
	if o.MaxElements < 0 || o.MaxIntervals < 0 || o.MaxItemsPerElement < 0 {
		return fmt.Errorf("core: negative pattern size limit")
	}
	if o.MaxSpan < 0 {
		return fmt.Errorf("core: negative MaxSpan %d", o.MaxSpan)
	}
	if o.MaxGap < 0 {
		return fmt.Errorf("core: negative MaxGap %d", o.MaxGap)
	}
	if o.Parallel < 0 {
		return fmt.Errorf("core: negative Parallel %d", o.Parallel)
	}
	if o.MaxPatterns < 0 {
		return fmt.Errorf("core: negative MaxPatterns %d", o.MaxPatterns)
	}
	if o.TimeBudget < 0 {
		return fmt.Errorf("core: negative TimeBudget %v", o.TimeBudget)
	}
	return nil
}
