package core

import (
	"context"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// Closed- and maximal-pattern post-filters. These are extensions beyond
// the two-page paper (flagged as such in DESIGN.md): result sets at low
// support thresholds are dominated by sub-patterns of larger frequent
// arrangements, and the standard condensed representations apply to
// temporal patterns exactly as to classic sequences.
//
// Sub-pattern subsumption uses any-binding semantics: p ⊑ q when p's
// arrangement embeds into q's arrangement (each p-interval mapped
// injectively to a same-symbol q-interval, preserving the element
// structure). This is checked by materializing q as a concrete interval
// sequence over element indices and reusing pattern.ContainsAny.

// patternAsSequence materializes a complete temporal pattern as the
// concrete interval sequence in which element index serves as time.
func patternAsSequence(q pattern.Temporal) interval.Sequence {
	type span struct {
		start, end int
		ok         bool
	}
	spans := make(map[instanceKey]*span)
	var order []instanceKey
	for i, el := range q.Elements {
		for _, e := range el {
			k := instanceKey{e.Symbol, e.Occ}
			sp, found := spans[k]
			if !found {
				sp = &span{start: -1, end: -1}
				spans[k] = sp
				order = append(order, k)
			}
			if e.Kind == endpoint.Start {
				sp.start = i
			} else {
				sp.end = i
			}
		}
	}
	var seq interval.Sequence
	for _, k := range order {
		sp := spans[k]
		if sp.start < 0 || sp.end < 0 {
			continue // unpaired instance: skip (incomplete pattern)
		}
		seq.Intervals = append(seq.Intervals, interval.Interval{
			Symbol: k.sym,
			Start:  interval.Time(sp.start),
			End:    interval.Time(sp.end),
		})
	}
	seq.Normalize()
	return seq
}

type instanceKey struct {
	sym string
	occ int
}

// SubPattern reports whether p is contained in q as an arrangement
// (any-binding subsumption). Every pattern subsumes itself.
func SubPattern(p, q pattern.Temporal) bool {
	if p.Size() > q.Size() {
		return false
	}
	return pattern.ContainsAny(patternAsSequence(q), p)
}

// FilterClosed keeps only closed patterns: those with no proper
// super-pattern of equal support in rs. The input is not modified; the
// output is sorted.
func FilterClosed(rs []pattern.TemporalResult) []pattern.TemporalResult {
	out, _ := FilterClosedCtx(context.Background(), rs)
	return out
}

// FilterClosedCtx is FilterClosed with cooperative cancellation: the
// quadratic subsumption scan polls ctx and aborts with ctx.Err() and a
// nil result when it is cancelled.
func FilterClosedCtx(ctx context.Context, rs []pattern.TemporalResult) ([]pattern.TemporalResult, error) {
	return filterSubsumed(ctx, rs, func(sub, super pattern.TemporalResult) bool {
		return sub.Support == super.Support
	})
}

// FilterMaximal keeps only maximal patterns: those with no proper
// frequent super-pattern in rs at all. Maximal sets are smaller than
// closed sets but lose exact supports of sub-patterns.
func FilterMaximal(rs []pattern.TemporalResult) []pattern.TemporalResult {
	out, _ := FilterMaximalCtx(context.Background(), rs)
	return out
}

// FilterMaximalCtx is FilterMaximal with cooperative cancellation; see
// FilterClosedCtx.
func FilterMaximalCtx(ctx context.Context, rs []pattern.TemporalResult) ([]pattern.TemporalResult, error) {
	return filterSubsumed(ctx, rs, func(sub, super pattern.TemporalResult) bool {
		return true
	})
}

// filterSubsumed drops every result subsumed by a strictly larger result
// for which admits returns true.
func filterSubsumed(ctx context.Context, rs []pattern.TemporalResult, admits func(sub, super pattern.TemporalResult) bool) ([]pattern.TemporalResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Pre-materialize super-pattern sequences once.
	seqs := make([]interval.Sequence, len(rs))
	for i := range rs {
		seqs[i] = patternAsSequence(rs[i].Pattern)
	}
	var ops int64
	out := make([]pattern.TemporalResult, 0, len(rs))
	for i := range rs {
		subsumed := false
		for j := range rs {
			if ops++; ops&(pollInterval-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if i == j || rs[j].Pattern.Size() <= rs[i].Pattern.Size() {
				continue
			}
			// Supports are anti-monotone, so a super-pattern never has
			// higher support; admits refines which supers count.
			if !admits(rs[i], rs[j]) {
				continue
			}
			if pattern.ContainsAny(seqs[j], rs[i].Pattern) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, rs[i])
		}
	}
	pattern.SortTemporalResults(out)
	return out, nil
}
