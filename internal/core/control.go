package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Truncation reasons reported in Stats.TruncatedBy when a run stopped
// early without error.
const (
	// TruncatedMaxPatterns: the Options.MaxPatterns emission cap tripped.
	TruncatedMaxPatterns = "max_patterns"
	// TruncatedTimeBudget: the Options.TimeBudget soft deadline passed.
	TruncatedTimeBudget = "time_budget"
)

// pollInterval is how many units of search work (nodes visited plus
// projected sequences scanned) pass between cancellation polls. One unit
// is microseconds of work, so the interval keeps detection latency well
// under the documented ~10ms while keeping time.Now/ctx.Err off the hot
// path. Must be a power of two (used as a mask).
const pollInterval = 256

// runControl carries the cancellation and budget state of one mining
// run. It is shared by every worker of a parallel run: the first worker
// to observe a stop condition records it and flips the stop flag, which
// all workers read on their next work unit.
type runControl struct {
	ctx         context.Context
	deadline    time.Time // zero when no TimeBudget
	maxPatterns int64     // 0 = unlimited

	emitted atomic.Int64
	stop    atomic.Bool

	mu     sync.Mutex
	err    error  // context error; nil for budget truncation
	reason string // TruncatedMaxPatterns / TruncatedTimeBudget
}

func newRunControl(ctx context.Context, opt Options, start time.Time) *runControl {
	c := &runControl{ctx: ctx, maxPatterns: int64(opt.MaxPatterns)}
	if opt.TimeBudget > 0 {
		c.deadline = start.Add(opt.TimeBudget)
	}
	return c
}

// poll re-checks the context and the time budget. The context wins over
// the budget so callers that set both get the error they asked for.
func (c *runControl) poll() {
	if c.stop.Load() {
		return
	}
	if err := c.ctx.Err(); err != nil {
		c.halt(err, "")
		return
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.halt(nil, TruncatedTimeBudget)
	}
}

// halt records the first stop cause and flips the stop flag. Later calls
// keep the original cause.
func (c *runControl) halt(err error, reason string) {
	c.mu.Lock()
	if c.err == nil && c.reason == "" {
		c.err = err
		c.reason = reason
	}
	c.mu.Unlock()
	c.stop.Store(true)
}

// noteEmit counts one emitted pattern toward the MaxPatterns cap and
// stops the search once the cap is reached. The pattern that reaches the
// cap is kept.
func (c *runControl) noteEmit() {
	if c.maxPatterns > 0 && c.emitted.Add(1) >= c.maxPatterns {
		c.halt(nil, TruncatedMaxPatterns)
	}
}

// finish returns the run outcome: a non-nil error for context
// cancellation/deadline, or the truncation cause. The context is checked
// one final time so a cancellation that raced the end of the search
// still reports; the time budget is not — a search that ran to
// completion is complete even if the budget expired moments later.
func (c *runControl) finish() (err error, truncated bool, reason string) {
	if cerr := c.ctx.Err(); cerr != nil {
		c.halt(cerr, "")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err, c.reason != "", c.reason
}
