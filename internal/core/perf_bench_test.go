package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"tpminer/internal/gen"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/seqdb"
)

// Micro-benchmarks of the mining hot path — projection and candidate
// counting in isolation — plus a head-to-head of the work-stealing
// scheduler against a static first-level fan-out reference. The former
// two are what the dense position index and the depth-indexed projection
// pools optimize; run them with -benchmem to see the allocation counts.

func benchDB(b *testing.B) *interval.Database {
	b.Helper()
	db, _, err := gen.Quest(gen.QuestConfig{
		NumSequences: 200,
		AvgIntervals: 8,
		NumSymbols:   40,
		Seed:         42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// benchTemporalMiner builds a ready-to-search miner plus the candidates
// of the root node.
func benchTemporalMiner(b *testing.B, opt Options) (*temporalMiner, []projEntry, []candidate) {
	b.Helper()
	db := benchDB(b)
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		b.Fatal(err)
	}
	enc, err := seqdb.EncodeEndpointDB(db)
	if err != nil {
		b.Fatal(err)
	}
	enc.FilterInfrequent(minCount)
	ctl := newRunControl(context.Background(), opt, time.Now())
	m := newTemporalMiner(enc, opt, minCount, ctl)
	proj := initialTemporalProjection(enc)
	cands := m.countCandidates(proj, true, false, true)
	if len(cands) == 0 {
		b.Fatal("no frequent root candidates")
	}
	return m, proj, cands
}

// BenchmarkProjectTemporal measures one root-level projection: a single
// dense-index lookup per projected sequence plus the P3 postfix check.
func BenchmarkProjectTemporal(b *testing.B) {
	m, proj, cands := benchTemporalMiner(b, Options{MinSupport: 0.04})
	c := cands[len(cands)/2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.project(proj, c, 0)
	}
}

// BenchmarkCountTemporal measures one root-level candidate-counting scan.
func BenchmarkCountTemporal(b *testing.B) {
	m, proj, _ := benchTemporalMiner(b, Options{MinSupport: 0.04})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.countCandidates(proj, true, false, true)
	}
}

// BenchmarkProjectCoinc measures one root-level coincidence projection
// through the posting-list occurrence index.
func BenchmarkProjectCoinc(b *testing.B) {
	db := benchDB(b)
	opt := Options{MinSupport: 0.04}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		b.Fatal(err)
	}
	enc, err := seqdb.EncodeCoincidenceDB(db)
	if err != nil {
		b.Fatal(err)
	}
	enc.FilterInfrequent(minCount)
	ctl := newRunControl(context.Background(), opt, time.Now())
	m := newCoincMiner(enc, opt, minCount, ctl)
	proj := initialCoincProjection(enc)
	cands := m.countCandidates(proj, true, false)
	if len(cands) == 0 {
		b.Fatal("no frequent root candidates")
	}
	c := cands[len(cands)/2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.project(proj, c, 0)
	}
}

// staticFanoutTemporal is the scheduling strategy this PR replaced, kept
// here as a benchmark reference: the root's candidates are dealt out to
// workers once, and each subtree is mined serially no matter how skewed
// the work distribution turns out to be.
func staticFanoutTemporal(db *seqdb.EndpointDB, opt Options, minCount int, ctl *runControl) []pattern.TemporalResult {
	root := newTemporalMiner(db, opt, minCount, ctl)
	proj := initialTemporalProjection(db)
	cands := root.countCandidates(proj, true, false, true)

	jobs := make(chan int)
	workerResults := make([][]pattern.TemporalResult, len(cands))
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := newTemporalMiner(db, opt, minCount, ctl)
			for idx := range jobs {
				m.results = nil
				m.extend(proj, cands[idx], 0)
				workerResults[idx] = m.results
			}
		}()
	}
	for i := range cands {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var out []pattern.TemporalResult
	for _, rs := range workerResults {
		out = append(out, rs...)
	}
	return out
}

// BenchmarkParallelScheduling compares the work-stealing DFS against the
// static first-level fan-out on a skewed search space (explosiveDB's
// subtree sizes fall off steeply across first-level candidates, so a
// static deal leaves workers idle while one grinds the big subtree).
// Meaningful with GOMAXPROCS > 1.
func BenchmarkParallelScheduling(b *testing.B) {
	db := explosiveDB(48, 9)
	opt := Options{MinCount: db.Len(), Parallel: 4}
	minCount := db.Len()
	enc, err := seqdb.EncodeEndpointDB(db)
	if err != nil {
		b.Fatal(err)
	}
	enc.FilterInfrequent(minCount)

	b.Run("WorkStealing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctl := newRunControl(context.Background(), opt, time.Now())
			var stats Stats
			mineTemporalParallel(enc, opt, minCount, &stats, ctl, nil)
		}
	})
	b.Run("StaticFanout", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctl := newRunControl(context.Background(), opt, time.Now())
			staticFanoutTemporal(enc, opt, minCount, ctl)
		}
	})
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctl := newRunControl(context.Background(), opt, time.Now())
			m := newTemporalMiner(enc, opt, minCount, ctl)
			m.mine(initialTemporalProjection(enc), 0)
		}
	})
}
