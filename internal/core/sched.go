package core

import "sync"

// Work-stealing parallel DFS.
//
// A parallel run is a pool of workers draining one bounded shared queue
// of subtree jobs. The run starts with a single job — the search root —
// and any worker that projects a subtree bigger than its steal cutoff
// offers it to the queue instead of recursing, so large skewed subtrees
// are split across workers wherever they appear, not just at the first
// level. Below the cutoff (or when the queue is full) the worker
// recurses serially, which keeps job granularity bounded and makes the
// enqueue side non-blocking — workers can never deadlock on a full
// queue. Each worker owns one miner (counters, projection pools), so a
// job execution reuses the same scratch memory as serial search.
//
// Termination uses the standard pending-counter pattern: every spawned
// job holds one count, the queue closes when the count drains to zero,
// and workers exit on queue close. Cancellation needs nothing extra:
// the runControl stop flag makes queued jobs return at their first tick,
// so the queue drains promptly and no goroutine is left behind.
//
// Determinism: the complete search visits exactly the same nodes as the
// serial miner (prunings P1–P4 depend only on per-node state), so the
// union of per-worker result buffers equals the serial result multiset;
// the callers' final normalize/sort pass puts it into the canonical
// order, making output byte-identical to serial runs. Top-k runs share
// one topKState whose threshold only ever rises toward the true kth-best
// support, which never prunes a top-k pattern — see topk.go.

// defaultStealCutoff floors the steal cutoff: subtrees whose projected
// database is smaller than this are never worth a queue round-trip.
const defaultStealCutoff = 16

// stealCutoffFor picks the minimum projected-database size at which a
// subtree is offered to other workers. Options.stealCutoff (tests)
// overrides it.
func stealCutoffFor(opt Options, nSeqs, minCount int) int {
	if opt.stealCutoff > 0 {
		return opt.stealCutoff
	}
	c := nSeqs / (8 * opt.Parallel)
	if c < 2*minCount {
		c = 2 * minCount
	}
	if c < defaultStealCutoff {
		c = defaultStealCutoff
	}
	return c
}

// sched is the bounded shared work queue of one parallel mining run.
// J is the subtree job type (temporalJob or coincJob).
type sched[J any] struct {
	jobs    chan J
	pending sync.WaitGroup // outstanding (queued or running) jobs
}

func newSched[J any](workers int) *sched[J] {
	capacity := 8 * workers
	if capacity < 64 {
		capacity = 64
	}
	return &sched[J]{jobs: make(chan J, capacity)}
}

// trySpawn offers a job to the queue without blocking. It returns false
// when the queue is full; the caller then recurses inline. Safe to call
// from inside a running job: that job's own pending count keeps the
// queue open while the new count is added.
func (s *sched[J]) trySpawn(j J) bool {
	s.pending.Add(1)
	select {
	case s.jobs <- j:
		return true
	default:
		s.pending.Done()
		return false
	}
}

// full reports whether the queue looks full right now — a cheap gate so
// workers skip the snapshot copy that building a job requires when a
// spawn would almost surely fail anyway.
func (s *sched[J]) full() bool { return len(s.jobs) == cap(s.jobs) }

// run drains the queue with the given workers and blocks until the whole
// search is done: every spawned job executed and every worker exited.
func (s *sched[J]) run(workers int, handle func(worker int, j J)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range s.jobs {
				handle(w, j)
				s.pending.Done()
			}
		}(w)
	}
	go func() {
		s.pending.Wait()
		close(s.jobs)
	}()
	wg.Wait()
}
