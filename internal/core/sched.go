package core

import (
	"sync"
	"sync/atomic"
)

// Work-stealing parallel DFS.
//
// A parallel run is a pool of workers draining one bounded shared queue
// of subtree jobs. The run starts with a single job — the search root —
// and any worker that projects a subtree bigger than its steal cutoff
// offers it to the queue instead of recursing, so large skewed subtrees
// are split across workers wherever they appear, not just at the first
// level. Below the cutoff (or when the queue is full) the worker
// recurses serially, which keeps job granularity bounded and makes the
// enqueue side non-blocking — workers can never deadlock on a full
// queue. Each worker owns one miner (counters, projection pools), so a
// job execution reuses the same scratch memory as serial search.
//
// Termination uses the standard pending-counter pattern: every spawned
// job holds one count, the queue closes when the count drains to zero,
// and workers exit on queue close. Cancellation needs nothing extra:
// the runControl stop flag makes queued jobs return at their first tick,
// so the queue drains promptly and no goroutine is left behind.
//
// Determinism: the complete search visits exactly the same nodes as the
// serial miner (prunings P1–P4 depend only on per-node state), so the
// union of per-worker result buffers equals the serial result multiset;
// the callers' final normalize/sort pass puts it into the canonical
// order, making output byte-identical to serial runs. Top-k runs share
// one topKState whose threshold only ever rises toward the true kth-best
// support, which never prunes a top-k pattern — see topk.go.

// defaultStealCutoff floors the steal cutoff: subtrees whose projected
// database is smaller than this are never worth a queue round-trip.
const defaultStealCutoff = 16

// stealCutoffFor picks the minimum projected-database size at which a
// subtree is offered to other workers. Options.stealCutoff (tests)
// overrides it.
func stealCutoffFor(opt Options, nSeqs, minCount int) int {
	if opt.stealCutoff > 0 {
		return opt.stealCutoff
	}
	c := nSeqs / (8 * opt.Parallel)
	if c < 2*minCount {
		c = 2 * minCount
	}
	if c < defaultStealCutoff {
		c = defaultStealCutoff
	}
	return c
}

// rootSpawner marks the run's seed job, which no worker spawned. Seeds
// count as spawned jobs but never as steals.
const rootSpawner = -1

// spawnedJob wraps a queued subtree with the id of the worker that
// spawned it, so the scheduler can count genuine steals (executions by a
// different worker) rather than every queue round-trip.
type spawnedJob[J any] struct {
	by  int32 // spawning worker, rootSpawner for the seed
	job J
}

// sched is the bounded shared work queue of one parallel mining run.
// J is the subtree job type (temporalJob or coincJob).
type sched[J any] struct {
	jobs    chan spawnedJob[J]
	pending sync.WaitGroup // outstanding (queued or running) jobs

	// Observability counters, reported through Stats after the run:
	// spawned counts accepted trySpawn offers, steals counts jobs
	// executed by a worker other than their spawner, and maxDepth is the
	// queue's high-water mark sampled at enqueue time.
	spawned  atomic.Int64
	steals   atomic.Int64
	maxDepth atomic.Int64
}

func newSched[J any](workers int) *sched[J] {
	capacity := 8 * workers
	if capacity < 64 {
		capacity = 64
	}
	return &sched[J]{jobs: make(chan spawnedJob[J], capacity)}
}

// trySpawn offers a job to the queue without blocking. by is the
// spawning worker's id (rootSpawner for the seed). It returns false when
// the queue is full; the caller then recurses inline. Safe to call from
// inside a running job: that job's own pending count keeps the queue
// open while the new count is added.
func (s *sched[J]) trySpawn(by int, j J) bool {
	s.pending.Add(1)
	select {
	case s.jobs <- spawnedJob[J]{by: int32(by), job: j}:
		s.spawned.Add(1)
		d := int64(len(s.jobs))
		for {
			cur := s.maxDepth.Load()
			if d <= cur || s.maxDepth.CompareAndSwap(cur, d) {
				break
			}
		}
		return true
	default:
		s.pending.Done()
		return false
	}
}

// full reports whether the queue looks full right now — a cheap gate so
// workers skip the snapshot copy that building a job requires when a
// spawn would almost surely fail anyway.
func (s *sched[J]) full() bool { return len(s.jobs) == cap(s.jobs) }

// run drains the queue with the given workers and blocks until the whole
// search is done: every spawned job executed and every worker exited.
func (s *sched[J]) run(workers int, handle func(worker int, j J)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sj := range s.jobs {
				if sj.by != rootSpawner && int(sj.by) != w {
					s.steals.Add(1)
				}
				handle(w, sj.job)
				s.pending.Done()
			}
		}(w)
	}
	go func() {
		s.pending.Wait()
		close(s.jobs)
	}()
	wg.Wait()
}

// counters returns the run's scheduler counters for Stats reporting.
func (s *sched[J]) counters() (spawned, steals, maxDepth int64) {
	return s.spawned.Load(), s.steals.Load(), s.maxDepth.Load()
}
