package core_test

import (
	"math/rand"
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

func TestSubPattern(t *testing.T) {
	p := func(s string) pattern.Temporal {
		q, err := pattern.ParseTemporal(s)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"A+ A-", "A+ B+ A- B-", true},
		{"B+ B-", "A+ B+ A- B-", true},
		{"A+ B+ A- B-", "A+ B+ A- B-", true}, // self
		{"A+ A- B+ B-", "A+ B+ A- B-", false},
		{"A+ B+ A- B-", "A+ A- B+ B-", false},
		{"A+ A-", "B+ B-", false},
		// Sub-pattern via a different occurrence: "one A" embeds into
		// "A before A" using either instance.
		{"A+ A-", "A+ A- A.2+ A.2-", true},
		{"C+ C-", "A+ B+ A- B-", false},
	}
	for _, c := range cases {
		if got := core.SubPattern(p(c.sub), p(c.super)); got != c.want {
			t.Errorf("SubPattern(%q, %q) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestFilterClosedAndMaximal(t *testing.T) {
	// Hand-built result set:
	//   A (sup 5), B (sup 3), A-overlaps-B (sup 3), C (sup 2)
	// Closed: A (no equal-support super), A-overlaps-B, C; B is subsumed
	// by A-overlaps-B at equal support.
	// Maximal: A-overlaps-B and C only (A has a frequent super).
	mk := func(s string, sup int) pattern.TemporalResult {
		q, err := pattern.ParseTemporal(s)
		if err != nil {
			t.Fatal(err)
		}
		return pattern.TemporalResult{Pattern: q, Support: sup}
	}
	rs := []pattern.TemporalResult{
		mk("A+ A-", 5),
		mk("B+ B-", 3),
		mk("A+ B+ A- B-", 3),
		mk("C+ C-", 2),
	}

	closed := core.FilterClosed(rs)
	closedKeys := map[string]bool{}
	for _, r := range closed {
		closedKeys[r.Pattern.String()] = true
	}
	if len(closed) != 3 || !closedKeys["A+ A-"] || !closedKeys["A+ B+ A- B-"] || !closedKeys["C+ C-"] {
		t.Errorf("closed = %v", closed)
	}

	maximal := core.FilterMaximal(rs)
	maxKeys := map[string]bool{}
	for _, r := range maximal {
		maxKeys[r.Pattern.String()] = true
	}
	if len(maximal) != 2 || !maxKeys["A+ B+ A- B-"] || !maxKeys["C+ C-"] {
		t.Errorf("maximal = %v", maximal)
	}
}

// TestClosedFilterProperties: on mined results, (a) maximal ⊆ closed ⊆
// all, (b) every dropped pattern has a strict super-pattern in the input
// justifying the drop, (c) every kept closed pattern has no equal-support
// strict super.
func TestClosedFilterProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		db := randomDB(rng, 10, 5, 3, 20)
		rs := mustMineT(t, db, core.Options{MinCount: 2})
		closed := core.FilterClosed(rs)
		maximal := core.FilterMaximal(rs)

		if len(maximal) > len(closed) || len(closed) > len(rs) {
			t.Fatalf("sizes: %d maximal, %d closed, %d all", len(maximal), len(closed), len(rs))
		}
		closedSet := make(map[string]bool)
		for _, r := range closed {
			closedSet[r.Pattern.Key()] = true
		}
		for _, r := range maximal {
			if !closedSet[r.Pattern.Key()] {
				t.Fatalf("maximal pattern %v not closed", r.Pattern)
			}
		}
		for _, r := range closed {
			for _, super := range rs {
				if super.Pattern.Size() <= r.Pattern.Size() || super.Support != r.Support {
					continue
				}
				if core.SubPattern(r.Pattern, super.Pattern) {
					t.Fatalf("non-closed pattern kept: %v under %v", r.Pattern, super.Pattern)
				}
			}
		}
	}
}

func TestMineTemporalTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 10; trial++ {
		db := randomDB(rng, 12, 5, 3, 20)
		full := mustMineT(t, db, core.Options{MinCount: 1})
		for _, k := range []int{1, 3, 10, len(full) + 5} {
			got, _, err := core.MineTemporalTopK(db, k, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := full
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: got %d patterns, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Support != want[i].Support {
					t.Fatalf("trial %d k=%d: rank %d support %d != %d\ngot %v\nwant %v",
						trial, k, i, got[i].Support, want[i].Support, got, want)
				}
			}
		}
	}
}

func TestMineCoincidenceTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	db := randomDB(rng, 12, 5, 3, 20)
	full, _, err := core.MineCoincidence(db, core.Options{MinCount: 1, MaxElements: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 20} {
		got, _, err := core.MineCoincidenceTopK(db, k, core.Options{MaxElements: 3})
		if err != nil {
			t.Fatal(err)
		}
		want := full
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i].Support != want[i].Support {
				t.Fatalf("k=%d rank %d: support %d != %d", k, i, got[i].Support, want[i].Support)
			}
		}
	}
}

func TestTopKValidation(t *testing.T) {
	db := interval.NewDatabase([]interval.Interval{{Symbol: "A", Start: 0, End: 1}})
	if _, _, err := core.MineTemporalTopK(db, 0, core.Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := core.MineCoincidenceTopK(db, -1, core.Options{}); err == nil {
		t.Error("negative k accepted")
	}
	// A floor threshold is honoured: nothing has support >= 2 here.
	rs, _, err := core.MineTemporalTopK(db, 5, core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("floor threshold ignored: %v", rs)
	}
}

// TestTopKRaisesThreshold: the search with small k must explore no more
// nodes than the full support-1 mining.
func TestTopKRaisesThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	db := randomDB(rng, 20, 6, 3, 25)
	_, stFull, err := core.MineTemporal(db, core.Options{MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, stTopK, err := core.MineTemporalTopK(db, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stTopK.Nodes > stFull.Nodes {
		t.Errorf("top-k explored %d nodes > full mining's %d", stTopK.Nodes, stFull.Nodes)
	}
}

func TestSubCoincPattern(t *testing.T) {
	p := func(s string) pattern.Coinc {
		q, err := pattern.ParseCoinc(s)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"{A}", "{A B}", true},
		{"{A}", "{B} {A}", true},
		{"{A} {B}", "{A C} {B C}", true},
		{"{A B}", "{A} {B}", false},
		{"{B} {A}", "{A} {B}", false},
		{"{A} {A}", "{A B}", false},
		{"{A} {A}", "{A} {A B}", true},
	}
	for _, c := range cases {
		if got := core.SubCoincPattern(p(c.sub), p(c.super)); got != c.want {
			t.Errorf("SubCoincPattern(%q, %q) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestFilterClosedMaximalCoinc(t *testing.T) {
	mk := func(s string, sup int) pattern.CoincResult {
		q, err := pattern.ParseCoinc(s)
		if err != nil {
			t.Fatal(err)
		}
		return pattern.CoincResult{Pattern: q, Support: sup}
	}
	rs := []pattern.CoincResult{
		mk("{A}", 5),
		mk("{B}", 3),
		mk("{A B}", 3),
		mk("{C}", 2),
	}
	closed := core.FilterClosedCoinc(rs)
	keys := map[string]bool{}
	for _, r := range closed {
		keys[r.Pattern.String()] = true
	}
	// {B} is subsumed by {A B} at equal support; {A} survives (higher
	// support than its super).
	if len(closed) != 3 || !keys["{A}"] || !keys["{A B}"] || !keys["{C}"] {
		t.Errorf("closed = %v", closed)
	}
	maximal := core.FilterMaximalCoinc(rs)
	keys = map[string]bool{}
	for _, r := range maximal {
		keys[r.Pattern.String()] = true
	}
	if len(maximal) != 2 || !keys["{A B}"] || !keys["{C}"] {
		t.Errorf("maximal = %v", maximal)
	}
}
