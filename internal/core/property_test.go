package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// TestMinerDeterminism: identical inputs produce byte-identical result
// lists, serial and parallel, both pattern types.
func TestMinerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		db := randomDB(rng, 15, 6, 3, 25)
		for _, par := range []int{0, 2, 4, 8} {
			opt := core.Options{MinCount: 2, Parallel: par}
			a, _, err := core.MineTemporal(db, opt)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := core.MineTemporal(db, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("temporal mining not deterministic (parallel=%d)", par)
			}
			ca, _, err := core.MineCoincidence(db, opt)
			if err != nil {
				t.Fatal(err)
			}
			cb, _, err := core.MineCoincidence(db, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ca, cb) {
				t.Fatalf("coincidence mining not deterministic (parallel=%d)", par)
			}
		}
	}
}

// quickDB builds a database from testing/quick's raw fuzz material.
func quickDB(seqs [][6]uint8) *interval.Database {
	db := &interval.Database{}
	for _, raw := range seqs {
		seq := interval.Sequence{ID: "q"}
		// Three intervals per raw tuple: (symbol, start, duration) x2.
		for i := 0; i+2 < len(raw); i += 3 {
			start := int64(raw[i+1] % 24)
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: string(rune('A' + raw[i]%3)),
				Start:  start,
				End:    start + int64(raw[i+2]%12),
			})
		}
		db.Sequences = append(db.Sequences, seq)
	}
	return db
}

// TestQuickMinerSoundness is the testing/quick form of the soundness
// invariant: every reported pattern is complete, valid, and has its
// support confirmed by independent recounting.
func TestQuickMinerSoundness(t *testing.T) {
	f := func(seqs [][6]uint8) bool {
		if len(seqs) == 0 {
			return true
		}
		if len(seqs) > 12 {
			seqs = seqs[:12]
		}
		db := quickDB(seqs)
		rs, _, err := core.MineTemporal(db, core.Options{MinCount: 2, KeepOccurrences: true})
		if err != nil {
			return false
		}
		enc, err := pattern.EncodeDatabase(db)
		if err != nil {
			return false
		}
		for _, r := range rs {
			if r.Pattern.Validate() != nil || !r.Pattern.Complete() {
				return false
			}
			if pattern.SupportAligned(enc, r.Pattern) != r.Support || r.Support < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(72))}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoincidenceSoundness mirrors the soundness check for
// coincidence patterns.
func TestQuickCoincidenceSoundness(t *testing.T) {
	f := func(seqs [][6]uint8) bool {
		if len(seqs) == 0 {
			return true
		}
		if len(seqs) > 12 {
			seqs = seqs[:12]
		}
		db := quickDB(seqs)
		rs, _, err := core.MineCoincidence(db, core.Options{MinCount: 2})
		if err != nil {
			return false
		}
		enc, err := pattern.TransformDatabase(db)
		if err != nil {
			return false
		}
		for _, r := range rs {
			if r.Pattern.Validate() != nil {
				return false
			}
			if pattern.SupportCoinc(enc, r.Pattern) != r.Support || r.Support < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(73))}); err != nil {
		t.Error(err)
	}
}

// TestQuickThresholdMonotone: raising the threshold can only shrink the
// result set, and the smaller set is exactly the filtered larger one.
func TestQuickThresholdMonotone(t *testing.T) {
	f := func(seqs [][6]uint8) bool {
		if len(seqs) < 4 {
			return true
		}
		if len(seqs) > 10 {
			seqs = seqs[:10]
		}
		db := quickDB(seqs)
		lo, _, err := core.MineTemporal(db, core.Options{MinCount: 2})
		if err != nil {
			return false
		}
		hi, _, err := core.MineTemporal(db, core.Options{MinCount: 3})
		if err != nil {
			return false
		}
		want := lo[:0:0]
		for _, r := range lo {
			if r.Support >= 3 {
				want = append(want, r)
			}
		}
		return pattern.TemporalResultsEqual(hi, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(74))}); err != nil {
		t.Error(err)
	}
}
