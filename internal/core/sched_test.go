package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

func TestStealCutoffFor(t *testing.T) {
	// Override wins unconditionally.
	if got := stealCutoffFor(Options{stealCutoff: 3, Parallel: 4}, 100000, 50); got != 3 {
		t.Errorf("override cutoff = %d, want 3", got)
	}
	// Tiny databases floor at the default.
	if got := stealCutoffFor(Options{Parallel: 4}, 10, 1); got != defaultStealCutoff {
		t.Errorf("small-db cutoff = %d, want %d", got, defaultStealCutoff)
	}
	// Large databases scale with nSeqs/workers.
	if got := stealCutoffFor(Options{Parallel: 4}, 32000, 1); got != 1000 {
		t.Errorf("large-db cutoff = %d, want 1000", got)
	}
	// minCount dominates when the threshold is high: subtrees barely
	// above it are close to dying anyway.
	if got := stealCutoffFor(Options{Parallel: 2}, 1600, 500); got != 1000 {
		t.Errorf("high-threshold cutoff = %d, want 1000", got)
	}
}

func TestLowerBound32(t *testing.T) {
	a := []int32{2, 4, 4, 9}
	cases := []struct {
		x    int32
		want int
	}{
		{0, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 3}, {9, 3}, {10, 4},
	}
	for _, c := range cases {
		if got := lowerBound32(a, c.x); got != c.want {
			t.Errorf("lowerBound32(%v, %d) = %d, want %d", a, c.x, got, c.want)
		}
	}
	if got := lowerBound32(nil, 1); got != 0 {
		t.Errorf("lowerBound32(nil, 1) = %d, want 0", got)
	}
}

// TestSchedRunsAllJobs drives the generic scheduler directly: jobs
// spawned from inside running jobs are all executed exactly once, and
// run returns only after the whole tree is done.
func TestSchedRunsAllJobs(t *testing.T) {
	s := newSched[int](4)
	var handled atomic.Int64
	var inlined atomic.Int64
	s.trySpawn(rootSpawner, 4) // root: a depth-4 binary tree of jobs
	s.run(4, func(w int, depth int) {
		handled.Add(1)
		for child := 0; child < 2 && depth > 0; child++ {
			if !s.trySpawn(w, depth-1) {
				inlined.Add(1) // queue full: a real miner would recurse inline
			}
		}
	})
	// 2^5 - 1 = 31 nodes minus any the fake "inline recursion" dropped.
	want := int64(31) - inlined.Load()
	if handled.Load() != want {
		t.Errorf("handled %d jobs, want %d (inlined %d)", handled.Load(), want, inlined.Load())
	}
}

// TestSchedTrySpawnFull: a full queue rejects spawns without blocking.
func TestSchedTrySpawnFull(t *testing.T) {
	s := newSched[int](1) // capacity 64
	n := 0
	for s.trySpawn(rootSpawner, n) {
		n++
		if n > 1000 {
			t.Fatal("trySpawn never reported full")
		}
	}
	if n != cap(s.jobs) {
		t.Errorf("accepted %d spawns before full, want %d", n, cap(s.jobs))
	}
	if !s.full() {
		t.Error("full() = false on a full queue")
	}
	// Drain so the pending counts resolve.
	s.run(1, func(int, int) {})

	// Counters: every accepted spawn counted, the high-water mark is the
	// full queue, and a single worker draining seeds takes no steals.
	spawned, steals, maxDepth := s.counters()
	if spawned != int64(n) {
		t.Errorf("spawned = %d, want %d", spawned, n)
	}
	if steals != 0 {
		t.Errorf("steals = %d, want 0 (all jobs were root seeds)", steals)
	}
	if maxDepth != int64(cap(s.jobs)) {
		t.Errorf("maxDepth = %d, want %d", maxDepth, cap(s.jobs))
	}
}

// TestSchedCounters: jobs a worker spawns and another worker executes
// count as steals; jobs executed by their spawner do not.
func TestSchedCounters(t *testing.T) {
	s := newSched[int](2)
	var handled atomic.Int64
	s.trySpawn(rootSpawner, 3)
	s.run(2, func(w int, depth int) {
		handled.Add(1)
		for child := 0; child < 2 && depth > 0; child++ {
			s.trySpawn(w, depth-1)
		}
	})
	spawned, steals, maxDepth := s.counters()
	if spawned != handled.Load() {
		t.Errorf("spawned = %d, handled = %d; every accepted job must run exactly once",
			spawned, handled.Load())
	}
	if steals < 0 || steals > spawned {
		t.Errorf("steals = %d outside [0, %d]", steals, spawned)
	}
	if maxDepth < 1 {
		t.Errorf("maxDepth = %d, want >= 1", maxDepth)
	}
}

// TestForcedStealSchedulerStats: a forced-steal parallel mine reports
// scheduler counters through Stats, and a serial mine reports zeros.
func TestForcedStealSchedulerStats(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := schedRandomDB(rng, 20, 6, 4, 30)

	_, serial, err := MineTemporal(db, Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if serial.JobsSpawned != 0 || serial.StealsTaken != 0 || serial.MaxQueueDepth != 0 {
		t.Errorf("serial run has scheduler stats: %+v", serial)
	}

	opt := Options{MinCount: 2, Parallel: 4}
	opt.stealCutoff = 1
	_, par, err := MineTemporal(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if par.JobsSpawned < 1 {
		t.Errorf("forced-steal run spawned %d jobs, want >= 1 (the root seed)", par.JobsSpawned)
	}
	if par.StealsTaken > par.JobsSpawned {
		t.Errorf("steals %d > spawned %d", par.StealsTaken, par.JobsSpawned)
	}
	if par.MaxQueueDepth < 1 {
		t.Errorf("forced-steal run max queue depth = %d, want >= 1", par.MaxQueueDepth)
	}

	_, parC, err := MineCoincidence(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if parC.JobsSpawned < 1 || parC.MaxQueueDepth < 1 {
		t.Errorf("coincidence forced-steal scheduler stats: %+v", parC)
	}
}

// schedRandomDB builds a random interval database for the white-box
// steal tests (the black-box suite has its own copy in package
// core_test).
func schedRandomDB(rng *rand.Rand, nSeq, maxIvs, nSyms int, horizon int64) *interval.Database {
	db := &interval.Database{}
	for s := 0; s < nSeq; s++ {
		n := 1 + rng.Intn(maxIvs)
		seq := interval.Sequence{ID: fmt.Sprintf("s%d", s)}
		for i := 0; i < n; i++ {
			start := rng.Int63n(horizon)
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: string(rune('A' + rng.Intn(nSyms))),
				Start:  start,
				End:    start + rng.Int63n(horizon/2),
			})
		}
		db.Sequences = append(db.Sequences, seq)
	}
	return db
}

// TestForcedStealEquivalence forces the steal cutoff to 1 so that every
// non-empty subtree is offered to the queue, maximizing interleaving,
// and checks the results still match a serial run exactly. This
// exercises the prefix snapshot/restore logic far harder than the
// default cutoff, which rarely steals on small test databases.
func TestForcedStealEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		db := schedRandomDB(rng, 15, 6, 4, 30)
		serial := Options{MinCount: 2, KeepOccurrences: true}
		wantT, _, err := MineTemporal(db, serial)
		if err != nil {
			t.Fatal(err)
		}
		wantC, _, err := MineCoincidence(db, serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par := serial
			par.Parallel = workers
			par.stealCutoff = 1

			gotT, _, err := MineTemporal(db, par)
			if err != nil {
				t.Fatal(err)
			}
			if !pattern.TemporalResultsEqual(gotT, wantT) {
				t.Fatalf("trial %d parallel=%d: forced-steal temporal differs: %d vs %d",
					trial, workers, len(gotT), len(wantT))
			}
			gotC, _, err := MineCoincidence(db, par)
			if err != nil {
				t.Fatal(err)
			}
			if !pattern.CoincResultsEqual(gotC, wantC) {
				t.Fatalf("trial %d parallel=%d: forced-steal coincidence differs: %d vs %d",
					trial, workers, len(gotC), len(wantC))
			}
		}
	}
}

// TestForcedStealTopK: same forced-steal stress for the shared-threshold
// top-k path.
func TestForcedStealTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 3; trial++ {
		db := schedRandomDB(rng, 15, 6, 4, 30)
		for _, k := range []int{1, 10} {
			serial := Options{MinCount: 2}
			wantT, _, err := MineTemporalTopK(db, k, serial)
			if err != nil {
				t.Fatal(err)
			}
			wantC, _, err := MineCoincidenceTopK(db, k, serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				par := serial
				par.Parallel = workers
				par.stealCutoff = 1
				gotT, _, err := MineTemporalTopK(db, k, par)
				if err != nil {
					t.Fatal(err)
				}
				if !pattern.TemporalResultsEqual(gotT, wantT) {
					t.Fatalf("trial %d k=%d parallel=%d: forced-steal temporal top-k differs", trial, k, workers)
				}
				gotC, _, err := MineCoincidenceTopK(db, k, par)
				if err != nil {
					t.Fatal(err)
				}
				if !pattern.CoincResultsEqual(gotC, wantC) {
					t.Fatalf("trial %d k=%d parallel=%d: forced-steal coincidence top-k differs", trial, k, workers)
				}
			}
		}
	}
}

// TestCancelMidStealNoGoroutineLeak cancels a heavily-stealing parallel
// run mid-flight and asserts every worker goroutine exits: the process
// goroutine count must return to its pre-run baseline. (The repo vendors
// no leak-checking library, so this polls runtime.NumGoroutine with a
// deadline.)
func TestCancelMidStealNoGoroutineLeak(t *testing.T) {
	db := explosiveDB(3, 16)
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		opt := Options{MinCount: db.Len(), Parallel: 8}
		opt.stealCutoff = 1
		if _, _, err := MineTemporalCtx(ctx, db, opt); !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
		}
		ctx2, cancel2 := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel2()
		}()
		if _, _, err := MineCoincidenceCtx(ctx2, db, opt); !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: coinc err = %v, want context.Canceled", trial, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
