package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/seqdb"
)

// MineCoincidence discovers all frequent coincidence patterns of the
// database. Results are sorted deterministically. Unlike temporal
// mining, the same symbol may appear in many segments of a sequence, so
// the miner uses full PrefixSpan semantics with earliest-match
// projection. Prunings P2/P3 are endpoint-specific and do not apply;
// P1 and P4 do.
func MineCoincidence(db *interval.Database, opt Options) ([]pattern.CoincResult, Stats, error) {
	return MineCoincidenceCtx(context.Background(), db, opt)
}

// MineCoincidenceCtx is MineCoincidence with cooperative cancellation
// and resource budgets; see MineTemporalCtx for the contract.
func MineCoincidenceCtx(ctx context.Context, db *interval.Database, opt Options) ([]pattern.CoincResult, Stats, error) {
	start := time.Now()
	if err := opt.validate(); err != nil {
		return nil, Stats{}, err
	}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		return nil, Stats{}, err
	}
	enc, err := seqdb.EncodeCoincidenceDB(db)
	if err != nil {
		return nil, Stats{}, err
	}

	ctl := newRunControl(ctx, opt, start)
	stats := Stats{Sequences: db.Len(), MinCount: minCount}
	if !opt.DisableGlobalPruning {
		stats.ItemsRemoved = enc.FilterInfrequent(minCount) // P1
	}

	var results []pattern.CoincResult
	if opt.Parallel > 1 {
		results = mineCoincParallel(enc, opt, minCount, &stats, ctl)
	} else {
		m := newCoincMiner(enc, opt, minCount, ctl)
		m.mine(initialCoincProjection(enc))
		stats.add(m.stats)
		results = m.results
	}

	err, stats.Truncated, stats.TruncatedBy = ctl.finish()
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}

	pattern.SortCoincResults(results)
	if opt.MaxPatterns > 0 && len(results) > opt.MaxPatterns {
		results = results[:opt.MaxPatterns]
	}
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}

// coincProjEntry is one sequence of a coincidence pseudo-projection:
// loc is the earliest match of the prefix's last element, pointing at its
// maximum item (Slice == -1 for the empty prefix). Because elements are
// matched greedily earliest, loc alone determines where extensions may
// match: I-extensions from loc.Slice onward, S-extensions strictly after.
type coincProjEntry struct {
	seq int32
	loc seqdb.Loc
}

func initialCoincProjection(db *seqdb.CoincDB) []coincProjEntry {
	proj := make([]coincProjEntry, len(db.Seqs))
	for i := range proj {
		proj[i] = coincProjEntry{seq: int32(i), loc: seqdb.Loc{Slice: -1, Idx: -1}}
	}
	return proj
}

type coincMiner struct {
	db       *seqdb.CoincDB
	opt      Options
	minCount int
	stats    Stats
	results  []pattern.CoincResult

	elems [][]seqdb.Item

	countsS, countsI   []int32
	touchedS, touchedI []seqdb.Item
	stampS, stampI     []int64
	tok                int64

	// ctl is the run-wide cancellation/budget state; ops counts local
	// work units between polls.
	ctl *runControl
	ops int64

	// topk, when non-nil, raises minCount dynamically (top-k mining).
	topk *topKState
}

func newCoincMiner(db *seqdb.CoincDB, opt Options, minCount int, ctl *runControl) *coincMiner {
	n := db.Table.Len()
	return &coincMiner{
		db:       db,
		opt:      opt,
		minCount: minCount,
		ctl:      ctl,
		countsS:  make([]int32, n),
		countsI:  make([]int32, n),
		stampS:   make([]int64, n),
		stampI:   make([]int64, n),
	}
}

// tick counts one unit of search work, polls the run control every
// pollInterval units, and reports whether the search must stop.
func (m *coincMiner) tick() bool {
	m.ops++
	if m.ops&(pollInterval-1) == 0 {
		m.ctl.poll()
	}
	return m.ctl.stop.Load()
}

func (m *coincMiner) mine(proj []coincProjEntry) {
	if m.tick() {
		return
	}
	m.stats.Nodes++
	if len(m.elems) > 0 {
		m.emit(proj)
	}
	if !m.opt.DisableSizePruning && len(proj) < m.minCount { // P4
		m.stats.SizePruned++
		return
	}

	canS := m.opt.MaxElements == 0 || len(m.elems) < m.opt.MaxElements
	canI := len(m.elems) > 0 &&
		(m.opt.MaxItemsPerElement == 0 || len(m.elems[len(m.elems)-1]) < m.opt.MaxItemsPerElement)
	if !canS && !canI {
		return
	}

	cands := m.countCandidates(proj, canS, canI)
	for _, c := range cands {
		if m.ctl.stop.Load() {
			return
		}
		m.extend(proj, c)
	}
}

// countCandidates scans the projection and returns frequent extensions.
// Per-sequence deduplication uses monotonic stamps so the counter arrays
// never need clearing between sequences.
func (m *coincMiner) countCandidates(proj []coincProjEntry, canS, canI bool) []candidate {
	var lastElem []seqdb.Item
	var maxItem seqdb.Item = -1
	if len(m.elems) > 0 {
		lastElem = m.elems[len(m.elems)-1]
		maxItem = lastElem[len(lastElem)-1]
	}
	for i := range proj {
		if m.tick() {
			break // aborting: mine() rechecks before any recursion
		}
		pe := &proj[i]
		m.stats.CandidateScans++
		m.tok++
		seq := &m.db.Seqs[pe.seq]
		if canI && pe.loc.Slice >= 0 {
			// Remainder of the earliest-match slice.
			sl := &seq.Slices[pe.loc.Slice]
			for ii := int(pe.loc.Idx) + 1; ii < len(sl.Items); ii++ {
				m.countI(sl.Items[ii])
			}
			// Later slices that contain the whole last element.
			for ci := int(pe.loc.Slice) + 1; ci < len(seq.Slices); ci++ {
				items := seq.Slices[ci].Items
				if !containsItems(items, lastElem) {
					continue
				}
				for _, it := range items {
					if it > maxItem {
						m.countI(it)
					}
				}
			}
		}
		if canS {
			for ci := int(pe.loc.Slice) + 1; ci < len(seq.Slices); ci++ {
				for _, it := range seq.Slices[ci].Items {
					m.countS(it)
				}
			}
		}
	}

	cands := make([]candidate, 0, len(m.touchedS)+len(m.touchedI))
	for _, it := range m.touchedS {
		if c := m.countsS[it]; int(c) >= m.minCount {
			cands = append(cands, candidate{item: it, isI: false, count: c})
		}
		m.countsS[it] = 0
	}
	for _, it := range m.touchedI {
		if c := m.countsI[it]; int(c) >= m.minCount {
			cands = append(cands, candidate{item: it, isI: true, count: c})
		}
		m.countsI[it] = 0
	}
	m.touchedS = m.touchedS[:0]
	m.touchedI = m.touchedI[:0]
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].isI != cands[j].isI {
			return !cands[i].isI
		}
		return cands[i].item < cands[j].item
	})
	return cands
}

func (m *coincMiner) countS(it seqdb.Item) {
	if m.stampS[it] == m.tok {
		return
	}
	m.stampS[it] = m.tok
	if m.countsS[it] == 0 {
		m.touchedS = append(m.touchedS, it)
	}
	m.countsS[it]++
}

func (m *coincMiner) countI(it seqdb.Item) {
	if m.stampI[it] == m.tok {
		return
	}
	m.stampI[it] = m.tok
	if m.countsI[it] == 0 {
		m.touchedI = append(m.touchedI, it)
	}
	m.countsI[it]++
}

// containsItems reports whether the sorted item list haystack contains
// every element of the sorted item list needle.
func containsItems(haystack, needle []seqdb.Item) bool {
	i := 0
	for _, w := range needle {
		for i < len(haystack) && haystack[i] < w {
			i++
		}
		if i >= len(haystack) || haystack[i] != w {
			return false
		}
		i++
	}
	return true
}

// extend projects for candidate c, applies it to the prefix, recurses,
// and restores the prefix.
func (m *coincMiner) extend(proj []coincProjEntry, c candidate) {
	next := m.project(proj, c)
	if c.isI {
		last := len(m.elems) - 1
		m.elems[last] = append(m.elems[last], c.item)
	} else {
		m.elems = append(m.elems, []seqdb.Item{c.item})
	}
	m.mine(next)
	if c.isI {
		last := len(m.elems) - 1
		m.elems[last] = m.elems[last][:len(m.elems[last])-1]
	} else {
		m.elems = m.elems[:len(m.elems)-1]
	}
}

// project computes the earliest-match projection for prefix + c.
// It must run before the prefix mutation (it reads the current last
// element).
func (m *coincMiner) project(proj []coincProjEntry, c candidate) []coincProjEntry {
	var lastElem []seqdb.Item
	if len(m.elems) > 0 {
		lastElem = m.elems[len(m.elems)-1]
	}
	out := make([]coincProjEntry, 0, int(c.count))
	for i := range proj {
		if m.tick() {
			break // aborting: the recursion on the partial projection is cut at entry
		}
		pe := &proj[i]
		seq := &m.db.Seqs[pe.seq]
		if c.isI {
			// Earliest slice containing lastElem ∪ {item}. The stored
			// loc is the earliest match of lastElem, so the scan starts
			// there; the new item has a larger id than every lastElem
			// member, so within loc.Slice it can only sit after loc.Idx.
			for ci := int(pe.loc.Slice); ci < len(seq.Slices); ci++ {
				items := seq.Slices[ci].Items
				if ci > int(pe.loc.Slice) && !containsItems(items, lastElem) {
					continue
				}
				if idx := findItem(items, c.item); idx >= 0 {
					out = append(out, coincProjEntry{
						seq: pe.seq,
						loc: seqdb.Loc{Slice: int32(ci), Idx: int32(idx)},
					})
					break
				}
			}
		} else {
			for ci := int(pe.loc.Slice) + 1; ci < len(seq.Slices); ci++ {
				if idx := findItem(seq.Slices[ci].Items, c.item); idx >= 0 {
					out = append(out, coincProjEntry{
						seq: pe.seq,
						loc: seqdb.Loc{Slice: int32(ci), Idx: int32(idx)},
					})
					break
				}
			}
		}
	}
	return out
}

// findItem returns the index of it in the sorted item list, or -1.
func findItem(items []seqdb.Item, it seqdb.Item) int {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if items[mid] < it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(items) && items[lo] == it {
		return lo
	}
	return -1
}

func (m *coincMiner) emit(proj []coincProjEntry) {
	m.stats.Emitted++
	els := make([][]string, len(m.elems))
	for i, el := range m.elems {
		syms := make([]string, len(el))
		for j, it := range el {
			syms[j] = m.db.Table.Symbol(it)
		}
		els[i] = syms
	}
	res := pattern.CoincResult{
		Pattern: pattern.NewCoinc(els...),
		Support: len(proj),
	}
	m.results = append(m.results, res)
	m.ctl.noteEmit()
	if m.topk != nil {
		m.minCount = m.topk.observe(res.Pattern.Key(), res.Support, m.minCount)
	}
}

// mineCoincParallel fans first-level frequent symbols out over workers.
func mineCoincParallel(db *seqdb.CoincDB, opt Options, minCount int, stats *Stats, ctl *runControl) []pattern.CoincResult {
	root := newCoincMiner(db, opt, minCount, ctl)
	proj := initialCoincProjection(db)
	root.stats.Nodes++
	cands := root.countCandidates(proj, true, false)

	type job struct {
		idx int
		c   candidate
	}
	jobs := make(chan job)
	workerResults := make([][]pattern.CoincResult, len(cands))
	workerStats := make([]Stats, opt.Parallel)

	var wg sync.WaitGroup
	for w := 0; w < opt.Parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := newCoincMiner(db, opt, minCount, ctl)
			for j := range jobs {
				m.results = nil
				m.extend(proj, j.c)
				workerResults[j.idx] = m.results
			}
			workerStats[w] = m.stats
		}(w)
	}
	for i, c := range cands {
		jobs <- job{idx: i, c: c}
	}
	close(jobs)
	wg.Wait()

	stats.add(root.stats)
	for _, ws := range workerStats {
		stats.add(ws)
	}
	var out []pattern.CoincResult
	for _, rs := range workerResults {
		out = append(out, rs...)
	}
	return out
}
