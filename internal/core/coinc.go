package core

import (
	"context"
	"sort"
	"time"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/seqdb"
)

// MineCoincidence discovers all frequent coincidence patterns of the
// database. Results are sorted deterministically. Unlike temporal
// mining, the same symbol may appear in many segments of a sequence, so
// the miner uses full PrefixSpan semantics with earliest-match
// projection. Prunings P2/P3 are endpoint-specific and do not apply;
// P1 and P4 do.
func MineCoincidence(db *interval.Database, opt Options) ([]pattern.CoincResult, Stats, error) {
	return MineCoincidenceCtx(context.Background(), db, opt)
}

// MineCoincidenceCtx is MineCoincidence with cooperative cancellation
// and resource budgets; see MineTemporalCtx for the contract.
func MineCoincidenceCtx(ctx context.Context, db *interval.Database, opt Options) ([]pattern.CoincResult, Stats, error) {
	start := time.Now()
	if err := opt.validate(); err != nil {
		return nil, Stats{}, err
	}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		return nil, Stats{}, err
	}
	enc, err := seqdb.EncodeCoincidenceDB(db)
	if err != nil {
		return nil, Stats{}, err
	}

	ctl := newRunControl(ctx, opt, start)
	stats := Stats{Sequences: db.Len(), MinCount: minCount}
	if !opt.DisableGlobalPruning {
		stats.ItemsRemoved = enc.FilterInfrequent(minCount) // P1
	}

	var results []pattern.CoincResult
	if opt.Parallel > 1 {
		results = mineCoincParallel(enc, opt, minCount, &stats, ctl, nil)
	} else {
		m := newCoincMiner(enc, opt, minCount, ctl)
		m.mine(initialCoincProjection(enc), 0)
		stats.add(m.stats)
		results = m.results
	}

	err, stats.Truncated, stats.TruncatedBy = ctl.finish()
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}

	pattern.SortCoincResults(results)
	if opt.MaxPatterns > 0 && len(results) > opt.MaxPatterns {
		results = results[:opt.MaxPatterns]
	}
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}

// coincProjEntry is one sequence of a coincidence pseudo-projection:
// loc is the earliest match of the prefix's last element, pointing at its
// maximum item (Slice == -1 for the empty prefix). Because elements are
// matched greedily earliest, loc alone determines where extensions may
// match: I-extensions from loc.Slice onward, S-extensions strictly after.
type coincProjEntry struct {
	seq int32
	loc seqdb.Loc
}

func initialCoincProjection(db *seqdb.CoincDB) []coincProjEntry {
	proj := make([]coincProjEntry, len(db.Seqs))
	for i := range proj {
		proj[i] = coincProjEntry{seq: int32(i), loc: seqdb.Loc{Slice: -1, Idx: -1}}
	}
	return proj
}

type coincMiner struct {
	db       *seqdb.CoincDB
	opt      Options
	minCount int
	stats    Stats
	results  []pattern.CoincResult

	elems [][]seqdb.Item

	countsS, countsI   []int32
	touchedS, touchedI []seqdb.Item
	stampS, stampI     []int64
	tok                int64

	// projPool holds one reusable projection buffer per search depth;
	// see temporalMiner.projPool.
	projPool [][]coincProjEntry

	// sched, stealCutoff, and worker are set on parallel runs; see
	// temporalMiner.
	sched       *sched[coincJob]
	stealCutoff int
	worker      int32

	// ctl is the run-wide cancellation/budget state; ops counts local
	// work units between polls.
	ctl *runControl
	ops int64

	// topk, when non-nil, raises minCount dynamically (top-k mining).
	topk *topKState
}

func newCoincMiner(db *seqdb.CoincDB, opt Options, minCount int, ctl *runControl) *coincMiner {
	n := db.Table.Len()
	return &coincMiner{
		db:       db,
		opt:      opt,
		minCount: minCount,
		ctl:      ctl,
		countsS:  make([]int32, n),
		countsI:  make([]int32, n),
		stampS:   make([]int64, n),
		stampI:   make([]int64, n),
	}
}

// tick counts one unit of search work, polls the run control every
// pollInterval units, and reports whether the search must stop.
func (m *coincMiner) tick() bool {
	m.ops++
	if m.ops&(pollInterval-1) == 0 {
		m.ctl.poll()
	}
	return m.ctl.stop.Load()
}

func (m *coincMiner) mine(proj []coincProjEntry, depth int) {
	if m.tick() {
		return
	}
	if m.topk != nil {
		if f := m.topk.threshold(); f > m.minCount {
			m.minCount = f
		}
	}
	m.stats.Nodes++
	if len(m.elems) > 0 {
		m.emit(proj)
	}
	if !m.opt.DisableSizePruning && len(proj) < m.minCount { // P4
		m.stats.SizePruned++
		return
	}

	canS := m.opt.MaxElements == 0 || len(m.elems) < m.opt.MaxElements
	canI := len(m.elems) > 0 &&
		(m.opt.MaxItemsPerElement == 0 || len(m.elems[len(m.elems)-1]) < m.opt.MaxItemsPerElement)
	if !canS && !canI {
		return
	}

	cands := m.countCandidates(proj, canS, canI)
	for _, c := range cands {
		if m.ctl.stop.Load() {
			return
		}
		m.extend(proj, c, depth)
	}
}

// countCandidates scans the projection and returns frequent extensions.
// Per-sequence deduplication uses monotonic stamps so the counter arrays
// never need clearing between sequences.
func (m *coincMiner) countCandidates(proj []coincProjEntry, canS, canI bool) []candidate {
	var lastElem []seqdb.Item
	var maxItem seqdb.Item = -1
	if len(m.elems) > 0 {
		lastElem = m.elems[len(m.elems)-1]
		maxItem = lastElem[len(lastElem)-1]
	}
	for i := range proj {
		if m.tick() {
			break // aborting: mine() rechecks before any recursion
		}
		pe := &proj[i]
		m.stats.CandidateScans++
		m.tok++
		seq := &m.db.Seqs[pe.seq]
		if canI && pe.loc.Slice >= 0 {
			// Remainder of the earliest-match slice.
			sl := &seq.Slices[pe.loc.Slice]
			for ii := int(pe.loc.Idx) + 1; ii < len(sl.Items); ii++ {
				m.countI(sl.Items[ii])
			}
			// Later slices that contain the whole last element.
			for ci := int(pe.loc.Slice) + 1; ci < len(seq.Slices); ci++ {
				items := seq.Slices[ci].Items
				if !containsItems(items, lastElem) {
					continue
				}
				for _, it := range items {
					if it > maxItem {
						m.countI(it)
					}
				}
			}
		}
		if canS {
			for ci := int(pe.loc.Slice) + 1; ci < len(seq.Slices); ci++ {
				for _, it := range seq.Slices[ci].Items {
					m.countS(it)
				}
			}
		}
	}

	cands := make([]candidate, 0, len(m.touchedS)+len(m.touchedI))
	for _, it := range m.touchedS {
		if c := m.countsS[it]; int(c) >= m.minCount {
			cands = append(cands, candidate{item: it, isI: false, count: c})
		}
		m.countsS[it] = 0
	}
	for _, it := range m.touchedI {
		if c := m.countsI[it]; int(c) >= m.minCount {
			cands = append(cands, candidate{item: it, isI: true, count: c})
		}
		m.countsI[it] = 0
	}
	m.touchedS = m.touchedS[:0]
	m.touchedI = m.touchedI[:0]
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].isI != cands[j].isI {
			return !cands[i].isI
		}
		return cands[i].item < cands[j].item
	})
	return cands
}

func (m *coincMiner) countS(it seqdb.Item) {
	if m.stampS[it] == m.tok {
		return
	}
	m.stampS[it] = m.tok
	if m.countsS[it] == 0 {
		m.touchedS = append(m.touchedS, it)
	}
	m.countsS[it]++
}

func (m *coincMiner) countI(it seqdb.Item) {
	if m.stampI[it] == m.tok {
		return
	}
	m.stampI[it] = m.tok
	if m.countsI[it] == 0 {
		m.touchedI = append(m.touchedI, it)
	}
	m.countsI[it]++
}

// containsItems reports whether the sorted item list haystack contains
// every element of the sorted item list needle.
func containsItems(haystack, needle []seqdb.Item) bool {
	i := 0
	for _, w := range needle {
		for i < len(haystack) && haystack[i] < w {
			i++
		}
		if i >= len(haystack) || haystack[i] != w {
			return false
		}
		i++
	}
	return true
}

// extend projects for candidate c, applies it to the prefix, recurses
// (or hands the subtree to the shared queue), and restores the prefix.
func (m *coincMiner) extend(proj []coincProjEntry, c candidate, depth int) {
	next := m.project(proj, c, depth)
	if c.isI {
		last := len(m.elems) - 1
		m.elems[last] = append(m.elems[last], c.item)
	} else {
		m.elems = append(m.elems, []seqdb.Item{c.item})
	}
	if !m.trySteal(next, depth) {
		m.mine(next, depth+1)
	}
	if c.isI {
		last := len(m.elems) - 1
		m.elems[last] = m.elems[last][:len(m.elems[last])-1]
	} else {
		m.elems = m.elems[:len(m.elems)-1]
	}
}

// project computes the earliest-match projection for prefix + c using
// the posting-list index: instead of scanning every later slice, it
// walks only the slices that actually contain c.item. It must run before
// the prefix mutation (it reads the current last element). The returned
// slice is a depth-pooled buffer owned by the miner.
func (m *coincMiner) project(proj []coincProjEntry, c candidate, depth int) []coincProjEntry {
	var lastElem []seqdb.Item
	if len(m.elems) > 0 {
		lastElem = m.elems[len(m.elems)-1]
	}
	for len(m.projPool) <= depth {
		m.projPool = append(m.projPool, nil)
	}
	out := m.projPool[depth][:0]
	if cap(out) < int(c.count) {
		out = make([]coincProjEntry, 0, int(c.count))
	}
	for i := range proj {
		if m.tick() {
			break // aborting: the recursion on the partial projection is cut at entry
		}
		pe := &proj[i]
		posts := m.db.Occ.Slices(pe.seq, c.item)
		if c.isI {
			// Earliest slice containing lastElem ∪ {item}, at or after
			// the stored earliest match of lastElem. The new item has a
			// larger id than every lastElem member, so within loc.Slice
			// it can only sit after loc.Idx; in later slices the whole
			// last element must re-match.
			seq := &m.db.Seqs[pe.seq]
			for k := lowerBound32(posts, pe.loc.Slice); k < len(posts); k++ {
				ci := posts[k]
				items := seq.Slices[ci].Items
				if ci > pe.loc.Slice && !containsItems(items, lastElem) {
					continue
				}
				out = append(out, coincProjEntry{
					seq: pe.seq,
					loc: seqdb.Loc{Slice: ci, Idx: int32(findItem(items, c.item))},
				})
				break
			}
		} else {
			// Earliest slice strictly after the match containing c.item:
			// the first posting past loc.Slice.
			if k := lowerBound32(posts, pe.loc.Slice+1); k < len(posts) {
				ci := posts[k]
				items := m.db.Seqs[pe.seq].Slices[ci].Items
				out = append(out, coincProjEntry{
					seq: pe.seq,
					loc: seqdb.Loc{Slice: ci, Idx: int32(findItem(items, c.item))},
				})
			}
		}
	}
	m.projPool[depth] = out // keep any growth for reuse
	return out
}

// lowerBound32 returns the index of the first element of the ascending
// slice a that is >= x, or len(a).
func lowerBound32(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// coincJob is one stolen subtree: the prefix elements plus an owned copy
// of its projected database.
type coincJob struct {
	elems [][]seqdb.Item
	proj  []coincProjEntry
	depth int
}

// trySteal offers the subtree under the just-applied extension to the
// shared queue; see temporalMiner.trySteal. Unlike the temporal miner it
// is called after the prefix mutation (coinc projection precedes it), so
// the snapshot is simply the current prefix.
func (m *coincMiner) trySteal(next []coincProjEntry, depth int) bool {
	if m.sched == nil || len(next) == 0 || len(next) < m.stealCutoff || m.sched.full() {
		return false
	}
	elems := make([][]seqdb.Item, len(m.elems))
	for i, el := range m.elems {
		elems[i] = append([]seqdb.Item(nil), el...)
	}
	return m.sched.trySpawn(int(m.worker), coincJob{
		elems: elems,
		proj:  append([]coincProjEntry(nil), next...),
		depth: depth + 1,
	})
}

// runJob loads a stolen subtree's prefix state into the worker's miner
// and searches it.
func (m *coincMiner) runJob(j coincJob) {
	m.elems = j.elems
	m.mine(j.proj, j.depth)
}

// findItem returns the index of it in the sorted item list, or -1.
func findItem(items []seqdb.Item, it seqdb.Item) int {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if items[mid] < it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(items) && items[lo] == it {
		return lo
	}
	return -1
}

func (m *coincMiner) emit(proj []coincProjEntry) {
	m.stats.Emitted++
	els := make([][]string, len(m.elems))
	for i, el := range m.elems {
		syms := make([]string, len(el))
		for j, it := range el {
			syms[j] = m.db.Table.Symbol(it)
		}
		els[i] = syms
	}
	res := pattern.CoincResult{
		Pattern: pattern.NewCoinc(els...),
		Support: len(proj),
	}
	m.results = append(m.results, res)
	m.ctl.noteEmit()
	if m.topk != nil {
		m.minCount = m.topk.observe(res.Pattern.Key(), res.Support, m.minCount)
	}
}

// mineCoincParallel runs a work-stealing parallel DFS over the search
// tree: workers drain a bounded shared queue of subtree jobs, splitting
// any subtree whose projected database exceeds the steal cutoff. The
// callers' final sort restores the canonical order, so output is
// byte-identical to a serial run. tk, when non-nil, is the shared top-k
// state raising every worker's support threshold.
func mineCoincParallel(db *seqdb.CoincDB, opt Options, minCount int, stats *Stats, ctl *runControl, tk *topKState) []pattern.CoincResult {
	workers := opt.Parallel
	s := newSched[coincJob](workers)
	cutoff := stealCutoffFor(opt, len(db.Seqs), minCount)

	miners := make([]*coincMiner, workers)
	for w := range miners {
		m := newCoincMiner(db, opt, minCount, ctl)
		m.topk = tk
		m.sched = s
		m.stealCutoff = cutoff
		m.worker = int32(w)
		miners[w] = m
	}

	s.trySpawn(rootSpawner, coincJob{proj: initialCoincProjection(db), depth: 0})
	s.run(workers, func(w int, j coincJob) { miners[w].runJob(j) })

	var out []pattern.CoincResult
	for _, m := range miners {
		stats.add(m.stats)
		out = append(out, m.results...)
	}
	stats.addSched(s.counters())
	return out
}
