package core_test

import (
	"math/rand"
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

func mustMineT(t *testing.T, db *interval.Database, opt core.Options) []pattern.TemporalResult {
	t.Helper()
	rs, _, err := core.MineTemporal(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestOptionsValidation(t *testing.T) {
	db := interval.NewDatabase([]interval.Interval{{Symbol: "A", Start: 0, End: 1}})
	bad := []core.Options{
		{},                 // no threshold
		{MinSupport: -0.5}, // negative
		{MinSupport: 1.5},  // > 1
		{MinCount: -1},     // negative count
		{MinCount: 1, MaxSpan: -1},
		{MinCount: 1, Parallel: -2},
		{MinCount: 1, MaxElements: -1},
	}
	for i, opt := range bad {
		if _, _, err := core.MineTemporal(db, opt); err == nil {
			t.Errorf("case %d: MineTemporal accepted %+v", i, opt)
		}
		if _, _, err := core.MineCoincidence(db, opt); err == nil {
			t.Errorf("case %d: MineCoincidence accepted %+v", i, opt)
		}
	}
}

func TestResolveMinCount(t *testing.T) {
	cases := []struct {
		opt  core.Options
		n    int
		want int
	}{
		{core.Options{MinSupport: 0.5}, 10, 5},
		{core.Options{MinSupport: 0.05}, 10, 1},
		{core.Options{MinSupport: 0.51}, 10, 6}, // ceil
		{core.Options{MinSupport: 1}, 10, 10},
		{core.Options{MinCount: 3, MinSupport: 0.9}, 10, 3}, // MinCount wins
		{core.Options{MinCount: 20}, 10, 20},
	}
	for _, c := range cases {
		got, err := core.ResolveMinCount(c.opt, c.n)
		if err != nil {
			t.Errorf("ResolveMinCount(%+v, %d): %v", c.opt, c.n, err)
			continue
		}
		if got != c.want {
			t.Errorf("ResolveMinCount(%+v, %d) = %d, want %d", c.opt, c.n, got, c.want)
		}
	}
}

func TestMineTemporalKnownTiny(t *testing.T) {
	// Three sequences, "A overlaps B" in two of them.
	db := interval.NewDatabase(
		[]interval.Interval{{Symbol: "A", Start: 0, End: 4}, {Symbol: "B", Start: 2, End: 6}},
		[]interval.Interval{{Symbol: "A", Start: 10, End: 20}, {Symbol: "B", Start: 15, End: 25}},
		[]interval.Interval{{Symbol: "A", Start: 0, End: 4}},
	)
	rs := mustMineT(t, db, core.Options{MinCount: 2})
	bySupport := make(map[string]int)
	for _, r := range rs {
		bySupport[r.Pattern.String()] = r.Support
	}
	if bySupport["A+ A-"] != 3 {
		t.Errorf("support(A) = %d, want 3 (all: %v)", bySupport["A+ A-"], rs)
	}
	if bySupport["B+ B-"] != 2 {
		t.Errorf("support(B) = %d, want 2", bySupport["B+ B-"])
	}
	if bySupport["A+ B+ A- B-"] != 2 {
		t.Errorf("support(A overlaps B) = %d, want 2", bySupport["A+ B+ A- B-"])
	}
	if len(rs) != 3 {
		t.Errorf("patterns = %d, want 3: %v", len(rs), rs)
	}
}

func TestMineCoincidenceKnownTiny(t *testing.T) {
	db := interval.NewDatabase(
		[]interval.Interval{{Symbol: "A", Start: 0, End: 4}, {Symbol: "B", Start: 2, End: 6}},
		[]interval.Interval{{Symbol: "A", Start: 10, End: 20}, {Symbol: "B", Start: 15, End: 25}},
	)
	rs, _, err := core.MineCoincidence(db, core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"{A}":           2,
		"{B}":           2,
		"{A B}":         2,
		"{A} {B}":       2,
		"{A} {A B}":     2,
		"{A B} {B}":     2,
		"{A} {A B} {B}": 2,
		// {A} also subset-matches the {A B} segment, so "{A} {A}" and
		// friends are legitimately frequent; a truly absent order:
		"{B} {A}": 0, // must NOT appear
	}
	got := make(map[string]int)
	for _, r := range rs {
		got[r.Pattern.String()] = r.Support
	}
	for k, v := range want {
		if v == 0 {
			if _, ok := got[k]; ok {
				t.Errorf("unexpected pattern %q", k)
			}
			continue
		}
		if got[k] != v {
			t.Errorf("support(%q) = %d, want %d", k, got[k], v)
		}
	}
}

func TestConstraintsShrinkResults(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := randomDB(rng, 12, 6, 3, 25)
	base := core.Options{MinCount: 2}
	full := mustMineT(t, db, base)
	fullKeys := make(map[string]int)
	for _, r := range full {
		fullKeys[r.Pattern.Key()] = r.Support
	}

	type check struct {
		name string
		opt  core.Options
		ok   func(p pattern.Temporal) bool
	}
	checks := []check{
		{"MaxIntervals=2", core.Options{MinCount: 2, MaxIntervals: 2},
			func(p pattern.Temporal) bool { return p.NumIntervals() <= 2 }},
		{"MaxElements=3", core.Options{MinCount: 2, MaxElements: 3},
			func(p pattern.Temporal) bool { return p.Len() <= 3 }},
		{"MaxItemsPerElement=1", core.Options{MinCount: 2, MaxItemsPerElement: 1},
			func(p pattern.Temporal) bool {
				for _, el := range p.Elements {
					if len(el) > 1 {
						return false
					}
				}
				return true
			}},
	}
	for _, c := range checks {
		rs := mustMineT(t, db, c.opt)
		if len(rs) > len(full) {
			t.Errorf("%s: constraint grew the result set", c.name)
		}
		for _, r := range rs {
			if !c.ok(r.Pattern) {
				t.Errorf("%s: pattern %v violates constraint", c.name, r.Pattern)
			}
			if sup, ok := fullKeys[r.Pattern.Key()]; !ok || sup != r.Support {
				t.Errorf("%s: pattern %v support %d inconsistent with unconstrained run (%d, present=%v)",
					c.name, r.Pattern, r.Support, sup, ok)
			}
		}
		// Completeness under the constraint: every unconstrained result
		// satisfying the predicate must be present.
		got := make(map[string]bool)
		for _, r := range rs {
			got[r.Pattern.Key()] = true
		}
		for _, r := range full {
			if c.ok(r.Pattern) && !got[r.Pattern.Key()] {
				t.Errorf("%s: missing %v", c.name, r.Pattern)
			}
		}
	}
}

func TestMaxSpanConstraint(t *testing.T) {
	// A before B, far apart in seq0, close in seq1.
	db := interval.NewDatabase(
		[]interval.Interval{{Symbol: "A", Start: 0, End: 2}, {Symbol: "B", Start: 100, End: 102}},
		[]interval.Interval{{Symbol: "A", Start: 0, End: 2}, {Symbol: "B", Start: 5, End: 7}},
	)
	// Unconstrained: A..B frequent with support 2.
	rs := mustMineT(t, db, core.Options{MinCount: 2})
	keys := map[string]int{}
	for _, r := range rs {
		keys[r.Pattern.String()] = r.Support
	}
	if keys["A+ A- B+ B-"] != 2 {
		t.Fatalf("unconstrained support = %d, want 2", keys["A+ A- B+ B-"])
	}
	// MaxSpan 10: only seq1's embedding fits; support drops below 2 and
	// the pattern disappears.
	rs = mustMineT(t, db, core.Options{MinCount: 2, MaxSpan: 10})
	for _, r := range rs {
		if r.Pattern.String() == "A+ A- B+ B-" {
			t.Errorf("span-violating pattern survived with support %d", r.Support)
		}
	}
	// With MinCount 1 it comes back, supported by the close embedding.
	rs = mustMineT(t, db, core.Options{MinCount: 1, MaxSpan: 10})
	found := false
	for _, r := range rs {
		if r.Pattern.String() == "A+ A- B+ B-" {
			found = true
			if r.Support != 1 {
				t.Errorf("span-constrained support = %d, want 1", r.Support)
			}
		}
	}
	if !found {
		t.Error("pattern with a fitting embedding missing under MaxSpan")
	}
}

// TestSupportsVerified: every mined pattern's reported support equals
// brute-force recounting, and support never falls below minCount.
func TestSupportsVerified(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		db := randomDB(rng, 10, 6, 3, 25)
		opt := core.Options{MinCount: 3, KeepOccurrences: true}
		rs := mustMineT(t, db, opt)
		enc, err := pattern.EncodeDatabase(db)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if err := r.Pattern.Validate(); err != nil {
				t.Fatalf("invalid mined pattern %v: %v", r.Pattern, err)
			}
			if !r.Pattern.Complete() {
				t.Fatalf("incomplete mined pattern %v", r.Pattern)
			}
			if got := pattern.SupportAligned(enc, r.Pattern); got != r.Support {
				t.Fatalf("pattern %v: reported %d, recounted %d", r.Pattern, r.Support, got)
			}
			if r.Support < 3 {
				t.Fatalf("pattern %v below threshold: %d", r.Pattern, r.Support)
			}
		}
	}
}

// TestAntiMonotoneSupport: along every mined pattern, removing the last
// endpoint (canonical prefix) never decreases support.
func TestAntiMonotoneSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	db := randomDB(rng, 15, 6, 3, 25)
	rs := mustMineT(t, db, core.Options{MinCount: 2, KeepOccurrences: true})
	enc, err := pattern.EncodeDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		p := r.Pattern.Clone()
		sup := r.Support
		for p.Size() > 1 {
			last := len(p.Elements) - 1
			if len(p.Elements[last]) > 1 {
				p.Elements[last] = p.Elements[last][:len(p.Elements[last])-1]
			} else {
				p.Elements = p.Elements[:last]
			}
			prefixSup := pattern.SupportAligned(enc, p)
			if prefixSup < sup {
				t.Fatalf("anti-monotonicity violated: prefix %v has support %d < %d", p, prefixSup, sup)
			}
			sup = prefixSup
		}
	}
}

func TestStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	db := randomDB(rng, 20, 6, 3, 25)
	_, st, err := core.MineTemporal(db, core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sequences != 20 || st.MinCount != 2 {
		t.Errorf("header stats: %+v", st)
	}
	if st.Nodes == 0 || st.CandidateScans == 0 {
		t.Errorf("counters not collected: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Errorf("elapsed not set: %v", st.Elapsed)
	}

	// Disabling pair pruning must zero the PairPruned counter.
	_, st2, err := core.MineTemporal(db, core.Options{MinCount: 2, DisablePairPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PairPruned != 0 {
		t.Errorf("PairPruned = %d with P2 disabled", st2.PairPruned)
	}
	// And the node count with all prunings off is at least as large.
	_, st3, err := core.MineTemporal(db, core.Options{
		MinCount: 2, DisableGlobalPruning: true, DisablePairPruning: true,
		DisablePostfixPruning: true, DisableSizePruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st3.CandidateScans < st.CandidateScans {
		t.Errorf("unpruned scans %d < pruned scans %d", st3.CandidateScans, st.CandidateScans)
	}
}

func TestEmptyAndDegenerateDatabases(t *testing.T) {
	empty := &interval.Database{}
	rs, st, err := core.MineTemporal(empty, core.Options{MinCount: 1})
	if err != nil || len(rs) != 0 {
		t.Errorf("empty db: %v %v", rs, err)
	}
	if st.Sequences != 0 {
		t.Errorf("stats on empty db: %+v", st)
	}
	cr, _, err := core.MineCoincidence(empty, core.Options{MinCount: 1})
	if err != nil || len(cr) != 0 {
		t.Errorf("empty db coincidence: %v %v", cr, err)
	}

	// Sequences with no intervals are fine.
	db := interval.NewDatabase(nil, []interval.Interval{{Symbol: "A", Start: 0, End: 1}})
	rs = mustMineT(t, db, core.Options{MinCount: 1})
	if len(rs) != 1 || rs[0].Support != 1 {
		t.Errorf("degenerate db: %v", rs)
	}

	// Invalid data propagates an error.
	bad := interval.NewDatabase([]interval.Interval{{Symbol: "A", Start: 5, End: 0}})
	if _, _, err := core.MineTemporal(bad, core.Options{MinCount: 1}); err == nil {
		t.Error("invalid db accepted")
	}
	if _, _, err := core.MineCoincidence(bad, core.Options{MinCount: 1}); err == nil {
		t.Error("invalid db accepted by coincidence miner")
	}
}

func TestMinSupportOne(t *testing.T) {
	// MinSupport 1.0 keeps only patterns in every sequence.
	db := interval.NewDatabase(
		[]interval.Interval{{Symbol: "A", Start: 0, End: 2}, {Symbol: "B", Start: 5, End: 6}},
		[]interval.Interval{{Symbol: "A", Start: 0, End: 2}},
	)
	rs := mustMineT(t, db, core.Options{MinSupport: 1.0})
	if len(rs) != 1 || rs[0].Pattern.String() != "A+ A-" {
		t.Errorf("MinSupport=1: %v", rs)
	}
}

func TestKeepOccurrencesReporting(t *testing.T) {
	// Two sequences where the overlapping pair is occurrences 2 and 3.
	mk := func() []interval.Interval {
		return []interval.Interval{
			{Symbol: "A", Start: 0, End: 10},
			{Symbol: "A", Start: 20, End: 30},
			{Symbol: "A", Start: 25, End: 35},
		}
	}
	db := interval.NewDatabase(mk(), mk())
	raw := mustMineT(t, db, core.Options{MinCount: 2, KeepOccurrences: true})
	foundRaw := false
	for _, r := range raw {
		if r.Pattern.String() == "A.2+ A.3+ A.2- A.3-" {
			foundRaw = true
		}
	}
	if !foundRaw {
		t.Errorf("raw results missing occurrence-labelled overlap: %v", raw)
	}
	norm := mustMineT(t, db, core.Options{MinCount: 2})
	foundNorm := false
	for _, r := range norm {
		if r.Pattern.String() == "A+ A.2+ A- A.2-" && r.Support == 2 {
			foundNorm = true
		}
	}
	if !foundNorm {
		t.Errorf("normalized results missing merged overlap: %v", norm)
	}
}

func TestMaxGapConstraint(t *testing.T) {
	// A then B then C; the A→B gap is 50, the B→C gap is 5.
	db := interval.NewDatabase(
		[]interval.Interval{
			{Symbol: "A", Start: 0, End: 2},
			{Symbol: "B", Start: 52, End: 54},
			{Symbol: "C", Start: 59, End: 61},
		},
		[]interval.Interval{
			{Symbol: "A", Start: 0, End: 2},
			{Symbol: "B", Start: 52, End: 54},
			{Symbol: "C", Start: 59, End: 61},
		},
	)
	rs := mustMineT(t, db, core.Options{MinCount: 2, MaxGap: 10})
	keys := make(map[string]bool)
	for _, r := range rs {
		keys[r.Pattern.String()] = true
	}
	// B before C survives (every consecutive gap <= 10)...
	if !keys["B+ B- C+ C-"] {
		t.Errorf("B..C missing under MaxGap: %v", rs)
	}
	// ...but any pattern bridging the 50-unit A→B gap is gone.
	for _, bad := range []string{"A+ A- B+ B-", "A+ A- C+ C-", "A+ A- B+ B- C+ C-"} {
		if keys[bad] {
			t.Errorf("%q survived a 50-unit gap under MaxGap=10", bad)
		}
	}
	// Intra-interval gaps count too: A+ at 0 and A- at 2 is a gap of 2.
	if !keys["A+ A-"] {
		t.Errorf("single interval A missing: %v", rs)
	}
	// Unconstrained, the bridge patterns exist.
	rs = mustMineT(t, db, core.Options{MinCount: 2})
	found := false
	for _, r := range rs {
		if r.Pattern.String() == "A+ A- B+ B- C+ C-" {
			found = true
		}
	}
	if !found {
		t.Error("unconstrained mining lost the full chain")
	}
}
