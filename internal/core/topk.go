package core

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/seqdb"
)

// Top-k mining (extension beyond the two-page paper): instead of a fixed
// support threshold, mine the k best-supported complete patterns. The
// search starts from the options' threshold (or 1) and raises it
// dynamically to the running kth-best support, so low-support subtrees
// are pruned as soon as k better patterns are known.
//
// Ties at the kth support are cut deterministically by the standard
// result order (descending support, ascending size, lexicographic key).
// Top-k runs are always serial; Options.Parallel is ignored.

// MineTemporalTopK returns the k best-supported temporal patterns.
// Distinctness is counted on normalized patterns unless
// opt.KeepOccurrences is set.
func MineTemporalTopK(db *interval.Database, k int, opt Options) ([]pattern.TemporalResult, Stats, error) {
	return MineTemporalTopKCtx(context.Background(), db, k, opt)
}

// MineTemporalTopKCtx is MineTemporalTopK with cooperative cancellation
// and resource budgets; see MineTemporalCtx for the contract.
func MineTemporalTopKCtx(ctx context.Context, db *interval.Database, k int, opt Options) ([]pattern.TemporalResult, Stats, error) {
	start := time.Now()
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	if opt.MinCount == 0 && opt.MinSupport == 0 {
		opt.MinCount = 1
	}
	if err := opt.validate(); err != nil {
		return nil, Stats{}, err
	}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		return nil, Stats{}, err
	}
	enc, err := seqdb.EncodeEndpointDB(db)
	if err != nil {
		return nil, Stats{}, err
	}

	ctl := newRunControl(ctx, opt, start)
	stats := Stats{Sequences: db.Len(), MinCount: minCount}
	if !opt.DisableGlobalPruning {
		stats.ItemsRemoved = enc.FilterInfrequent(minCount)
	}

	m := newTemporalMiner(enc, opt, minCount, ctl)
	m.topk = newTopKState(k, !opt.KeepOccurrences)
	m.mine(initialTemporalProjection(enc))
	stats.add(m.stats)

	err, stats.Truncated, stats.TruncatedBy = ctl.finish()
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}

	results := m.results
	if !opt.KeepOccurrences {
		results = pattern.NormalizeTemporalResults(results)
	} else {
		pattern.SortTemporalResults(results)
	}
	if len(results) > k {
		results = results[:k]
	}
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}

// MineCoincidenceTopK returns the k best-supported coincidence patterns.
func MineCoincidenceTopK(db *interval.Database, k int, opt Options) ([]pattern.CoincResult, Stats, error) {
	return MineCoincidenceTopKCtx(context.Background(), db, k, opt)
}

// MineCoincidenceTopKCtx is MineCoincidenceTopK with cooperative
// cancellation and resource budgets; see MineTemporalCtx for the
// contract.
func MineCoincidenceTopKCtx(ctx context.Context, db *interval.Database, k int, opt Options) ([]pattern.CoincResult, Stats, error) {
	start := time.Now()
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	if opt.MinCount == 0 && opt.MinSupport == 0 {
		opt.MinCount = 1
	}
	if err := opt.validate(); err != nil {
		return nil, Stats{}, err
	}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		return nil, Stats{}, err
	}
	enc, err := seqdb.EncodeCoincidenceDB(db)
	if err != nil {
		return nil, Stats{}, err
	}

	ctl := newRunControl(ctx, opt, start)
	stats := Stats{Sequences: db.Len(), MinCount: minCount}
	if !opt.DisableGlobalPruning {
		stats.ItemsRemoved = enc.FilterInfrequent(minCount)
	}

	m := newCoincMiner(enc, opt, minCount, ctl)
	m.topk = newTopKState(k, false)
	m.mine(initialCoincProjection(enc))
	stats.add(m.stats)

	err, stats.Truncated, stats.TruncatedBy = ctl.finish()
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}

	results := m.results
	pattern.SortCoincResults(results)
	if len(results) > k {
		results = results[:k]
	}
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}

// topKState drives dynamic threshold raising. It tracks the supports of
// the k best distinct patterns seen so far in a min-heap; once k
// patterns are known, the mining threshold rises to the heap minimum.
//
// When normalization merges occurrence labelings, several raw patterns
// map to one distinct pattern. The heap keeps the support first seen per
// distinct key; a later better labeling leaves a stale (lower) entry,
// which only makes the threshold conservative — completeness is never
// at risk.
type topKState struct {
	k         int
	normalize bool
	seen      map[string]struct{}
	supports  intMinHeap
}

func newTopKState(k int, normalize bool) *topKState {
	return &topKState{k: k, normalize: normalize, seen: make(map[string]struct{}, k)}
}

// observe records an emitted pattern's support and returns the (possibly
// raised) mining threshold.
func (t *topKState) observe(key string, support, minCount int) int {
	if _, dup := t.seen[key]; !dup {
		t.seen[key] = struct{}{}
		if t.supports.Len() < t.k {
			heap.Push(&t.supports, support)
		} else if support > t.supports[0] {
			t.supports[0] = support
			heap.Fix(&t.supports, 0)
		}
	}
	if t.supports.Len() >= t.k && t.supports[0] > minCount {
		return t.supports[0]
	}
	return minCount
}

// key computes the distinctness key of a temporal pattern under the
// state's normalization mode.
func (t *topKState) key(p pattern.Temporal) string {
	if t.normalize {
		return p.Normalize().Key()
	}
	return p.Key()
}

// intMinHeap is a minimal min-heap of ints for container/heap.
type intMinHeap []int

func (h intMinHeap) Len() int            { return len(h) }
func (h intMinHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intMinHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
