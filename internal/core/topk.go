package core

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/seqdb"
)

// Top-k mining (extension beyond the two-page paper): instead of a fixed
// support threshold, mine the k best-supported complete patterns. The
// search starts from the options' threshold (or 1) and raises it
// dynamically to the running kth-best support, so low-support subtrees
// are pruned as soon as k better patterns are known.
//
// Ties at the kth support are cut deterministically by the standard
// result order (descending support, ascending size, lexicographic key).
// Top-k honors Options.Parallel: parallel workers share one topKState
// whose threshold rises monotonically toward the true kth-best support,
// so no top-k pattern is ever pruned and the final sort+truncate yields
// the same result set as a serial run.

// MineTemporalTopK returns the k best-supported temporal patterns.
// Distinctness is counted on normalized patterns unless
// opt.KeepOccurrences is set.
func MineTemporalTopK(db *interval.Database, k int, opt Options) ([]pattern.TemporalResult, Stats, error) {
	return MineTemporalTopKCtx(context.Background(), db, k, opt)
}

// MineTemporalTopKCtx is MineTemporalTopK with cooperative cancellation
// and resource budgets; see MineTemporalCtx for the contract.
func MineTemporalTopKCtx(ctx context.Context, db *interval.Database, k int, opt Options) ([]pattern.TemporalResult, Stats, error) {
	start := time.Now()
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	if opt.MinCount == 0 && opt.MinSupport == 0 {
		opt.MinCount = 1
	}
	if err := opt.validate(); err != nil {
		return nil, Stats{}, err
	}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		return nil, Stats{}, err
	}
	enc, err := seqdb.EncodeEndpointDB(db)
	if err != nil {
		return nil, Stats{}, err
	}

	ctl := newRunControl(ctx, opt, start)
	stats := Stats{Sequences: db.Len(), MinCount: minCount}
	if !opt.DisableGlobalPruning {
		stats.ItemsRemoved = enc.FilterInfrequent(minCount)
	}

	tk := newTopKState(k, !opt.KeepOccurrences)
	var results []pattern.TemporalResult
	if opt.Parallel > 1 {
		results = mineTemporalParallel(enc, opt, minCount, &stats, ctl, tk)
	} else {
		m := newTemporalMiner(enc, opt, minCount, ctl)
		m.topk = tk
		m.mine(initialTemporalProjection(enc), 0)
		stats.add(m.stats)
		results = m.results
	}

	err, stats.Truncated, stats.TruncatedBy = ctl.finish()
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}

	if !opt.KeepOccurrences {
		results = pattern.NormalizeTemporalResults(results)
	} else {
		pattern.SortTemporalResults(results)
	}
	if len(results) > k {
		results = results[:k]
	}
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}

// MineCoincidenceTopK returns the k best-supported coincidence patterns.
func MineCoincidenceTopK(db *interval.Database, k int, opt Options) ([]pattern.CoincResult, Stats, error) {
	return MineCoincidenceTopKCtx(context.Background(), db, k, opt)
}

// MineCoincidenceTopKCtx is MineCoincidenceTopK with cooperative
// cancellation and resource budgets; see MineTemporalCtx for the
// contract.
func MineCoincidenceTopKCtx(ctx context.Context, db *interval.Database, k int, opt Options) ([]pattern.CoincResult, Stats, error) {
	start := time.Now()
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	if opt.MinCount == 0 && opt.MinSupport == 0 {
		opt.MinCount = 1
	}
	if err := opt.validate(); err != nil {
		return nil, Stats{}, err
	}
	minCount, err := opt.resolveMinCount(db.Len())
	if err != nil {
		return nil, Stats{}, err
	}
	enc, err := seqdb.EncodeCoincidenceDB(db)
	if err != nil {
		return nil, Stats{}, err
	}

	ctl := newRunControl(ctx, opt, start)
	stats := Stats{Sequences: db.Len(), MinCount: minCount}
	if !opt.DisableGlobalPruning {
		stats.ItemsRemoved = enc.FilterInfrequent(minCount)
	}

	tk := newTopKState(k, false)
	var results []pattern.CoincResult
	if opt.Parallel > 1 {
		results = mineCoincParallel(enc, opt, minCount, &stats, ctl, tk)
	} else {
		m := newCoincMiner(enc, opt, minCount, ctl)
		m.topk = tk
		m.mine(initialCoincProjection(enc), 0)
		stats.add(m.stats)
		results = m.results
	}

	err, stats.Truncated, stats.TruncatedBy = ctl.finish()
	if err != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, err
	}

	pattern.SortCoincResults(results)
	if len(results) > k {
		results = results[:k]
	}
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}

// topKState drives dynamic threshold raising. It tracks the supports of
// the k best distinct patterns seen so far in a min-heap; once k
// patterns are known, the mining threshold rises to the heap minimum.
//
// When normalization merges occurrence labelings, several raw patterns
// map to one distinct pattern. The heap keeps the support first seen per
// distinct key; a later better labeling leaves a stale (lower) entry,
// which only makes the threshold conservative — completeness is never
// at risk.
//
// The state is shared across the workers of a parallel run: seen/heap
// updates are mutex-guarded, and the effective threshold is published
// through an atomic floor that only ever rises. Since the floor is at
// all times ≤ the true kth-best support, a worker pruning at the floor
// can never discard a top-k pattern, and the deterministic final
// sort+truncate makes parallel output identical to serial.
type topKState struct {
	k         int
	normalize bool

	mu       sync.Mutex
	seen     map[string]struct{}
	supports intMinHeap

	floor atomic.Int64 // current threshold; 0 until k patterns are known
}

func newTopKState(k int, normalize bool) *topKState {
	return &topKState{k: k, normalize: normalize, seen: make(map[string]struct{}, k)}
}

// threshold returns the current dynamic support threshold (0 until k
// distinct patterns have been observed). Lock-free; safe from any
// worker.
func (t *topKState) threshold() int { return int(t.floor.Load()) }

// observe records an emitted pattern's support and returns the (possibly
// raised) mining threshold for the calling worker.
func (t *topKState) observe(key string, support, minCount int) int {
	t.mu.Lock()
	if _, dup := t.seen[key]; !dup {
		t.seen[key] = struct{}{}
		if t.supports.Len() < t.k {
			heap.Push(&t.supports, support)
		} else if support > t.supports[0] {
			t.supports[0] = support
			heap.Fix(&t.supports, 0)
		}
	}
	var thr int
	if t.supports.Len() >= t.k {
		thr = t.supports[0]
	}
	t.mu.Unlock()

	if thr > 0 {
		for {
			cur := t.floor.Load()
			if int64(thr) <= cur || t.floor.CompareAndSwap(cur, int64(thr)) {
				break
			}
		}
	}
	if f := int(t.floor.Load()); f > minCount {
		return f
	}
	return minCount
}

// key computes the distinctness key of a temporal pattern under the
// state's normalization mode.
func (t *topKState) key(p pattern.Temporal) string {
	if t.normalize {
		return p.Normalize().Key()
	}
	return p.Key()
}

// intMinHeap is a minimal min-heap of ints for container/heap.
type intMinHeap []int

func (h intMinHeap) Len() int            { return len(h) }
func (h intMinHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intMinHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
