package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func expositionOf(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Total jobs.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	out := expositionOf(t, r)
	for _, want := range []string{
		"# HELP jobs_total Total jobs.\n",
		"# TYPE jobs_total counter\n",
		"jobs_total 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("http_requests_total", "Requests.", "route", "code")
	v.With("/mine", "2xx").Add(3)
	v.With("/mine", "5xx").Inc()
	v.With(`/odd"name`, "2xx").Inc() // label value needing escaping

	out := expositionOf(t, r)
	for _, want := range []string{
		`http_requests_total{route="/mine",code="2xx"} 3`,
		`http_requests_total{route="/mine",code="5xx"} 1`,
		`http_requests_total{route="/odd\"name",code="2xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Same labels return the same counter.
	if v.With("/mine", "2xx").Value() != 3 {
		t.Error("With() did not return the existing series")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("in_flight", "In-flight requests.")
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("Value = %d, want 1", g.Value())
	}
	g.Set(10)
	g.SetMax(7) // lower: no effect
	if g.Value() != 10 {
		t.Errorf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Errorf("SetMax(12) = %d", g.Value())
	}
	if out := expositionOf(t, r); !strings.Contains(out, "in_flight 12\n") {
		t.Errorf("exposition: %s", out)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.6) > 1e-9 {
		t.Fatalf("Sum = %v, want 102.6", h.Sum())
	}

	out := expositionOf(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 102.6",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Quantiles report conservative (bucket upper bound) estimates.
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("Quantile(0.5) = %v, want 1", q)
	}
	if q := h.Quantile(0.99); q != 10 { // lands in +Inf: clamp to last bound
		t.Errorf("Quantile(0.99) = %v, want 10", q)
	}
	empty := newHistogram(nil)
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %v, want 0", q)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("dur_seconds", "Durations.", []float64{1}, "route")
	v.With("/a").Observe(0.5)
	v.With("/a").Observe(2)
	out := expositionOf(t, r)
	for _, want := range []string{
		`dur_seconds_bucket{route="/a",le="1"} 1`,
		`dur_seconds_bucket{route="/a",le="+Inf"} 2`,
		`dur_seconds_count{route="/a"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounter("a_total", "")
	mustPanic("duplicate name", func() { r.NewGauge("a_total", "") })
	mustPanic("invalid name", func() { r.NewCounter("0bad", "") })
	mustPanic("invalid label", func() { r.NewCounterVec("b_total", "", "bad-label") })
	mustPanic("label arity", func() { r.NewCounterVec("c_total", "", "x").With("1", "2") })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h", "", []float64{2, 1}) })
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body: %s", rec.Body.String())
	}
}

// TestConcurrentUpdates hammers every metric type from several
// goroutines; correctness of the totals plus the race detector cover the
// lock-free paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "")
	g := r.NewGauge("gg", "")
	h := r.NewHistogram("hh_seconds", "", nil)
	v := r.NewCounterVec("vv_total", "", "w")

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%2))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(int64(i))
				h.Observe(float64(i) / 100)
				v.With(lbl).Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if got := v.With("a").Value() + v.With("b").Value(); got != workers*perWorker {
		t.Errorf("vec total = %d, want %d", got, workers*perWorker)
	}
	// Exposition during writes must not corrupt (covered by -race) and
	// must include every family.
	out := expositionOf(t, r)
	for _, want := range []string{"cc_total", "gg", "hh_seconds_count", "vv_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestNewLogger(t *testing.T) {
	var b bytes.Buffer
	lg, err := NewLogger(&b, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "k", "v")
	out := b.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, `"msg":"kept"`) || !strings.Contains(out, `"k":"v"`) {
		t.Errorf("json log output: %q", out)
	}

	if _, err := NewLogger(&b, "xml", ""); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&b, "", "loud"); err == nil {
		t.Error("bad level accepted")
	}

	// Discard drops records and reports disabled.
	Discard().Error("nothing")
}
