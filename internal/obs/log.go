package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a *slog.Logger writing structured records to w.
// format is "text" (logfmt-style key=value, the default) or "json" (one
// JSON object per line, the shape log shippers expect); level is one of
// "debug", "info", "warn", "error" ("" means info). Every record carries
// the standard time/level/msg fields plus whatever attributes the call
// site attaches (tpmd attaches request_id, route, status, duration_ms,
// ...).
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// Discard returns a logger that drops every record without formatting
// it — the nil-logger replacement for tests and for embedders that do
// not want logging.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// discardHandler is a no-op slog.Handler. Enabled reports false, so call
// sites skip building attributes entirely.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
