// Package obs is the observability layer shared by the miner's
// operational surfaces (tpmd, tpminer): a process-local metrics registry
// with Prometheus text exposition and structured-logging helpers over
// log/slog. It is deliberately stdlib-only — the repo vendors nothing —
// and implements the small subset of the Prometheus data model the
// service needs: monotone counters, gauges, and fixed-bucket histograms,
// each optionally partitioned by a bounded label set.
//
// Concurrency: every metric update is a single atomic operation (or one
// mutex hop on the first use of a new label combination), so metrics are
// safe to update from request handlers and mining workers without
// coordination. Exposition takes a per-family snapshot; it never blocks
// writers.
//
// Exposition follows the Prometheus text format version 0.0.4
// (https://prometheus.io/docs/instrumenting/exposition_formats/):
// HELP/TYPE headers, cumulative _bucket/_sum/_count series for
// histograms, and escaped label values.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them in the
// Prometheus text format. The zero value is not usable; create with
// NewRegistry.
type Registry struct {
	mu     sync.Mutex
	fams   []*family // registration order, the exposition order
	byName map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with all its label children.
type family struct {
	name, help, mtype string
	labels            []string

	mu     sync.Mutex
	series map[string]sample // key: rendered label pairs ("" for unlabelled)
}

// sample is one (labelled) time series of a family.
type sample interface {
	// expose writes the series' sample lines. name is the family name,
	// labelPairs the rendered `k="v"` pairs without braces ("" when
	// unlabelled).
	expose(w io.Writer, name, labelPairs string)
}

// register adds a family, enforcing unique, well-formed names.
func (r *Registry) register(name, help, mtype string, labels []string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validMetricName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, mtype: mtype, labels: labels,
		series: make(map[string]sample)}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// get returns the series for the rendered label pairs, creating it with
// mk on first use.
func (f *family) get(labelPairs string, mk func() sample) sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[labelPairs]
	if !ok {
		s = mk()
		f.series[labelPairs] = s
	}
	return s
}

// renderLabels joins label names and values into `k="v",k="v"` form.
// The slices must be the same length (checked by the Vec callers).
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------- counter

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; negative deltas are a programming
// error the type system already prevents.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, name, labelPairs string) {
	writeSampleLine(w, name, labelPairs, formatUint(c.v.Load()))
}

// NewCounter registers and returns an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// FloatCounter is a monotonically increasing float value, for counters
// that accumulate fractional quantities (e.g. seconds spent degraded).
// All methods are safe for concurrent use.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v. Negative deltas are a programming error and are
// ignored to keep the series monotone.
func (c *FloatCounter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *FloatCounter) expose(w io.Writer, name, labelPairs string) {
	writeSampleLine(w, name, labelPairs, formatFloat(c.Value()))
}

// NewFloatCounter registers and returns an unlabelled float counter.
func (r *Registry) NewFloatCounter(name, help string) *FloatCounter {
	f := r.register(name, help, "counter", nil)
	c := &FloatCounter{}
	f.series[""] = c
	return c
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	fam *family
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs at least one label", name))
	}
	return &CounterVec{fam: r.register(name, help, "counter", labels)}
}

// With returns the counter for the given label values, creating it on
// first use. The number of values must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: %q expects %d label values, got %d",
			v.fam.name, len(v.fam.labels), len(values)))
	}
	key := renderLabels(v.fam.labels, values)
	return v.fam.get(key, func() sample { return &Counter{} }).(*Counter)
}

// ------------------------------------------------------------------ gauge

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to n if n is larger (a high-water mark).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) expose(w io.Writer, name, labelPairs string) {
	writeSampleLine(w, name, labelPairs, strconv.FormatInt(g.v.Load(), 10))
}

// NewGauge registers and returns an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// FloatGauge is a gauge holding a float value, for ratios and other
// fractional instantaneous readings (e.g. shard load skew). All methods
// are safe for concurrent use.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FloatGauge) expose(w io.Writer, name, labelPairs string) {
	writeSampleLine(w, name, labelPairs, formatFloat(g.Value()))
}

// NewFloatGauge registers and returns an unlabelled float gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	f := r.register(name, help, "gauge", nil)
	g := &FloatGauge{}
	f.series[""] = g
	return g
}

// -------------------------------------------------------------- histogram

// Histogram samples observations into fixed cumulative buckets, tracking
// the total sum and count. Observations and exposition are lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefBuckets covers request latencies from 5ms to 60s; the wide tail
// suits mining jobs, whose server-side ceiling defaults to 60s.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of
// the bucket holding the q-th observation — a deliberately conservative
// (upper) estimate. It returns 0 with no observations, and the largest
// finite bound when the quantile lands in the +Inf bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) expose(w io.Writer, name, labelPairs string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := `le="` + formatFloat(b) + `"`
		if labelPairs != "" {
			le = labelPairs + "," + le
		}
		writeSampleLine(w, name+"_bucket", le, formatUint(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	le := `le="+Inf"`
	if labelPairs != "" {
		le = labelPairs + "," + le
	}
	writeSampleLine(w, name+"_bucket", le, formatUint(cum))
	writeSampleLine(w, name+"_sum", labelPairs, formatFloat(h.Sum()))
	writeSampleLine(w, name+"_count", labelPairs, formatUint(cum))
}

// NewHistogram registers an unlabelled histogram. buckets are ascending
// upper bounds (+Inf is implicit); nil selects DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	h := newHistogram(buckets)
	f.series[""] = h
	return h
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	fam     *family
	buckets []float64
}

// NewHistogramVec registers a histogram family with the given label
// names; nil buckets selects DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: HistogramVec %q needs at least one label", name))
	}
	return &HistogramVec{
		fam:     r.register(name, help, "histogram", labels),
		buckets: buckets,
	}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: %q expects %d label values, got %d",
			v.fam.name, len(v.fam.labels), len(values)))
	}
	key := renderLabels(v.fam.labels, values)
	return v.fam.get(key, func() sample { return newHistogram(v.buckets) }).(*Histogram)
}

// ------------------------------------------------------------- exposition

// WritePrometheus renders every registered family in the Prometheus text
// format, families in registration order, series within a family in
// sorted label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.mtype)
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f.series[k].expose(&b, f.name, k)
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry in the Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func writeSampleLine(w io.Writer, name, labelPairs, value string) {
	if labelPairs == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labelPairs, value)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
