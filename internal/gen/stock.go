package gen

import (
	"fmt"
	"math/rand"

	"tpminer/internal/interval"
)

// StockConfig parameterizes the simulated stock dataset that substitutes
// for the proprietary tick data of the paper's practicability study.
// One sequence is one trading window (e.g. a month) holding trend
// intervals for every ticker: maximal runs of rising days become
// "<ticker>.up" intervals, falling runs "<ticker>.down", and runs of
// high absolute daily moves "<ticker>.vol".
//
// A fraction of windows are market-wide rallies or sell-offs, biasing
// every ticker in the same direction — this plants the co-occurrence
// structure (overlapping same-direction trends across tickers) that the
// case study is expected to surface.
type StockConfig struct {
	NumWindows    int
	NumTickers    int
	DaysPerWindow int
	// RegimeProb is the probability that a window is a market-wide
	// rally (half of the regimes) or sell-off (the other half).
	RegimeProb float64
	Seed       int64
}

func (c StockConfig) withDefaults() StockConfig {
	if c.NumWindows == 0 {
		c.NumWindows = 500
	}
	if c.NumTickers == 0 {
		c.NumTickers = 8
	}
	if c.DaysPerWindow == 0 {
		c.DaysPerWindow = 22
	}
	if c.RegimeProb == 0 {
		c.RegimeProb = 0.3
	}
	return c
}

// Stock generates the simulated stock trend database. Deterministic per
// Seed. It returns the database and, for reporting, the number of rally
// and sell-off windows planted.
func Stock(cfg StockConfig) (db *interval.Database, rallies, selloffs int) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	db = &interval.Database{Sequences: make([]interval.Sequence, cfg.NumWindows)}
	for w := 0; w < cfg.NumWindows; w++ {
		bias := 0.0
		regime := "flat"
		if rng.Float64() < cfg.RegimeProb {
			if rng.Float64() < 0.5 {
				bias, regime = 0.8, "rally"
				rallies++
			} else {
				bias, regime = -0.8, "selloff"
				selloffs++
			}
		}
		var ivs []interval.Interval
		for t := 0; t < cfg.NumTickers; t++ {
			ticker := fmt.Sprintf("T%d", t)
			ivs = append(ivs, tickerTrends(rng, ticker, cfg.DaysPerWindow, bias)...)
		}
		seq := interval.Sequence{ID: fmt.Sprintf("w%d-%s", w, regime), Intervals: ivs}
		seq.Normalize()
		db.Sequences[w] = seq
	}
	return db, rallies, selloffs
}

// tickerTrends simulates one ticker's daily moves for a window and emits
// its maximal trend and volatility run intervals.
func tickerTrends(rng *rand.Rand, ticker string, days int, bias float64) []interval.Interval {
	moves := make([]float64, days)
	for d := range moves {
		moves[d] = rng.NormFloat64() + bias
	}

	var ivs []interval.Interval
	emitRuns := func(kind string, in func(float64) bool) {
		runStart := -1
		for d := 0; d <= days; d++ {
			inside := d < days && in(moves[d])
			switch {
			case inside && runStart < 0:
				runStart = d
			case !inside && runStart >= 0:
				if d-runStart >= 2 { // ignore one-day blips
					ivs = append(ivs, interval.Interval{
						Symbol: ticker + "." + kind,
						Start:  int64(runStart),
						End:    int64(d - 1),
					})
				}
				runStart = -1
			}
		}
	}
	emitRuns("up", func(m float64) bool { return m > 0.1 })
	emitRuns("down", func(m float64) bool { return m < -0.1 })
	emitRuns("vol", func(m float64) bool { return m > 1.5 || m < -1.5 })
	return ivs
}
