package gen

import (
	"fmt"
	"math/rand"

	"tpminer/internal/interval"
)

// PatientConfig parameterizes the simulated clinical dataset: one
// sequence per patient, one interval per active-condition or treatment
// span (in days since first contact). Three clinically-shaped episode
// templates are planted:
//
//	infection episode:  fever during infection, antibiotic overlapped-by
//	                    fever (starts while fever is active, ends after)
//	chronic episode:    diabetes during hypertension (long co-active
//	                    spans)
//	pain episode:       pain before opioid, opioid overlaps insomnia
//
// plus background noise conditions. The practicability experiment checks
// that the planted arrangements surface among the top patterns.
type PatientConfig struct {
	NumPatients int
	// EpisodeProb is the probability a patient has each episode type.
	EpisodeProb float64
	// NoiseConditions is the average number of unrelated condition
	// intervals per patient.
	NoiseConditions int
	Seed            int64
}

func (c PatientConfig) withDefaults() PatientConfig {
	if c.NumPatients == 0 {
		c.NumPatients = 500
	}
	if c.EpisodeProb == 0 {
		c.EpisodeProb = 0.4
	}
	if c.NoiseConditions == 0 {
		c.NoiseConditions = 4
	}
	return c
}

// patientNoise is the alphabet of background conditions.
var patientNoise = []string{
	"asthma", "allergy", "migraine", "dermatitis", "anemia",
	"bronchitis", "sinusitis", "gastritis", "arthritis", "vertigo",
}

// patientEpisodes returns the planted episode templates with concrete
// relative times (days). Relations are preserved by every embedding.
func patientEpisodes() []Planted {
	templates := [][]interval.Interval{
		{
			{Symbol: "infection", Start: 0, End: 14},
			{Symbol: "fever", Start: 2, End: 9},
			{Symbol: "antibiotic", Start: 4, End: 12},
		},
		{
			{Symbol: "hypertension", Start: 0, End: 60},
			{Symbol: "diabetes", Start: 10, End: 50},
		},
		{
			{Symbol: "pain", Start: 0, End: 6},
			{Symbol: "opioid", Start: 8, End: 20},
			{Symbol: "insomnia", Start: 15, End: 30},
		},
	}
	out := make([]Planted, len(templates))
	for i, tpl := range templates {
		seq := interval.Sequence{Intervals: tpl}
		seq.Normalize()
		pat, err := TemplatePattern(seq.Intervals)
		if err != nil {
			// Templates are static and valid by construction.
			panic(fmt.Sprintf("gen: bad patient template %d: %v", i, err))
		}
		out[i] = Planted{Template: seq.Intervals, Pattern: pat}
	}
	return out
}

// Patients generates the simulated clinical database and returns the
// planted episode ground truth with embedding counts. Deterministic per
// Seed.
func Patients(cfg PatientConfig) (*interval.Database, []Planted) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	episodes := patientEpisodes()

	const horizon = 365
	db := &interval.Database{Sequences: make([]interval.Sequence, cfg.NumPatients)}
	for p := 0; p < cfg.NumPatients; p++ {
		var ivs []interval.Interval
		for ei := range episodes {
			if rng.Float64() >= cfg.EpisodeProb {
				continue
			}
			span := templateSpan(episodes[ei].Template)
			off := rng.Int63n(horizon - span)
			ivs = embed(ivs, episodes[ei].Template, off, 1)
			episodes[ei].Embeddings++
		}
		n := poisson(rng, float64(cfg.NoiseConditions))
		for i := 0; i < n; i++ {
			start := rng.Int63n(horizon)
			dur := 1 + exponential(rng, 10)
			if start+dur > horizon {
				dur = horizon - start
			}
			ivs = append(ivs, interval.Interval{
				Symbol: patientNoise[rng.Intn(len(patientNoise))],
				Start:  start,
				End:    start + dur,
			})
		}
		seq := interval.Sequence{ID: fmt.Sprintf("p%04d", p), Intervals: ivs}
		seq.Normalize()
		db.Sequences[p] = seq
	}
	return db, episodes
}
