package gen

import (
	"math/rand"
	"reflect"
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

func TestQuestDeterministic(t *testing.T) {
	cfg := QuestConfig{NumSequences: 50, AvgIntervals: 6, NumSymbols: 20, Seed: 7}
	a, pa, err := Quest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, pb, err := Quest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Quest not deterministic for equal seeds")
	}
	if len(pa) != len(pb) {
		t.Error("planted sets differ")
	}
	c, _, err := Quest(QuestConfig{NumSequences: 50, AvgIntervals: 6, NumSymbols: 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds gave identical databases")
	}
}

func TestQuestHonoursParameters(t *testing.T) {
	cfg := QuestConfig{NumSequences: 300, AvgIntervals: 10, NumSymbols: 30, Horizon: 500, Seed: 1}
	db, planted, err := Quest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 300 {
		t.Fatalf("|D| = %d", db.Len())
	}
	st := db.Summarize()
	if st.AvgSeqLen < 5 || st.AvgSeqLen > 15 {
		t.Errorf("average length %v far from |C|=10", st.AvgSeqLen)
	}
	if st.Symbols > 30+1 {
		t.Errorf("alphabet %d exceeds |N|", st.Symbols)
	}
	if st.SpanStart < 0 || st.SpanEnd > 2*500 { // stretch factor <= 2
		t.Errorf("horizon violated: [%d,%d]", st.SpanStart, st.SpanEnd)
	}
	if err := db.Valid(); err != nil {
		t.Errorf("invalid db: %v", err)
	}
	if len(planted) != 10 {
		t.Errorf("planted = %d, want default |S|=10", len(planted))
	}
	for i := range db.Sequences {
		if !db.Sequences[i].Normalized() {
			t.Fatal("sequence not normalized")
		}
	}
}

func TestQuestPlantedAreFrequent(t *testing.T) {
	db, planted, err := Quest(QuestConfig{NumSequences: 400, AvgIntervals: 8, NumSymbols: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range planted {
		total += p.Embeddings
		if err := p.Pattern.Validate(); err != nil {
			t.Errorf("planted pattern invalid: %v", err)
		}
		if !p.Pattern.Complete() {
			t.Errorf("planted pattern incomplete: %v", p.Pattern)
		}
	}
	if total < 100 {
		t.Errorf("only %d embeddings planted across 400 sequences", total)
	}
	// The most-planted template must actually be frequent under
	// any-binding semantics (embeddings preserve the arrangement).
	best := planted[0]
	for _, p := range planted[1:] {
		if p.Embeddings > best.Embeddings {
			best = p
		}
	}
	sup := pattern.SupportAny(db, best.Pattern)
	if sup < best.Embeddings/2 {
		t.Errorf("top template support %d << %d embeddings", sup, best.Embeddings)
	}
}

func TestTemplatePattern(t *testing.T) {
	p, err := TemplatePattern([]interval.Interval{
		{Symbol: "A", Start: 0, End: 4},
		{Symbol: "B", Start: 2, End: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "A+ B+ A- B-" {
		t.Errorf("TemplatePattern = %q", got)
	}
	if _, err := TemplatePattern([]interval.Interval{{Symbol: "", Start: 0, End: 1}}); err == nil {
		t.Error("TemplatePattern accepted invalid interval")
	}
}

func TestStockGenerator(t *testing.T) {
	db, rallies, selloffs := Stock(StockConfig{NumWindows: 100, NumTickers: 4, Seed: 5})
	if db.Len() != 100 {
		t.Fatalf("windows = %d", db.Len())
	}
	if err := db.Valid(); err != nil {
		t.Fatal(err)
	}
	if rallies == 0 || selloffs == 0 {
		t.Errorf("no regimes planted: rallies=%d selloffs=%d", rallies, selloffs)
	}
	// Trend symbols have the expected shape.
	for _, sym := range db.Symbols() {
		ok := false
		for _, suffix := range []string{".up", ".down", ".vol"} {
			if len(sym) > len(suffix) && sym[len(sym)-len(suffix):] == suffix {
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected symbol %q", sym)
		}
	}
	// Determinism.
	db2, _, _ := Stock(StockConfig{NumWindows: 100, NumTickers: 4, Seed: 5})
	if !reflect.DeepEqual(db, db2) {
		t.Error("Stock not deterministic")
	}
}

func TestPatientGenerator(t *testing.T) {
	db, episodes := Patients(PatientConfig{NumPatients: 200, Seed: 9})
	if db.Len() != 200 {
		t.Fatalf("patients = %d", db.Len())
	}
	if err := db.Valid(); err != nil {
		t.Fatal(err)
	}
	if len(episodes) != 3 {
		t.Fatalf("episodes = %d", len(episodes))
	}
	for i, e := range episodes {
		if e.Embeddings < 200*2/10 { // EpisodeProb 0.4, generous slack
			t.Errorf("episode %d embedded only %d times", i, e.Embeddings)
		}
		// Every planted episode must be recoverable by the miner.
		sup := pattern.SupportAny(db, e.Pattern)
		if sup < e.Embeddings {
			t.Errorf("episode %d support %d < embeddings %d", i, sup, e.Embeddings)
		}
	}
}

func TestPatientPlantedRecoveredByMiner(t *testing.T) {
	db, episodes := Patients(PatientConfig{NumPatients: 150, Seed: 10})
	rs, _, err := core.MineTemporal(db, core.Options{MinSupport: 0.15, MaxIntervals: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]int)
	for _, r := range rs {
		keys[r.Pattern.Key()] = r.Support
	}
	for i, e := range episodes {
		sup, ok := keys[e.Pattern.Normalize().Key()]
		if !ok {
			t.Errorf("episode %d (%v) not mined", i, e.Pattern)
			continue
		}
		if sup < e.Embeddings {
			t.Errorf("episode %d mined support %d < %d embeddings", i, sup, e.Embeddings)
		}
	}
}

func TestASLGenerator(t *testing.T) {
	db, wh, neg, topic := ASL(ASLConfig{NumUtterances: 150, Seed: 11})
	if db.Len() != 150 {
		t.Fatalf("utterances = %d", db.Len())
	}
	if err := db.Valid(); err != nil {
		t.Fatal(err)
	}
	if wh == 0 || neg == 0 || topic == 0 {
		t.Errorf("markers: wh=%d neg=%d topic=%d", wh, neg, topic)
	}
	// No negative times survive shifting.
	for i := range db.Sequences {
		for _, iv := range db.Sequences[i].Intervals {
			if iv.Start < 0 {
				t.Fatalf("negative start %v", iv)
			}
		}
	}
	// The wh marker must be frequent enough to mine at its planted rate.
	sup := db.SymbolSupport()
	if sup["face.wh"] != wh {
		t.Errorf("face.wh support %d != planted %d", sup["face.wh"], wh)
	}
}

func TestLibraryGenerator(t *testing.T) {
	db, students, series := Library(LibraryConfig{NumBorrowers: 200, Seed: 12})
	if db.Len() != 200 {
		t.Fatalf("borrowers = %d", db.Len())
	}
	if err := db.Valid(); err != nil {
		t.Fatal(err)
	}
	if students == 0 || series == 0 {
		t.Errorf("planted behaviours: students=%d series=%d", students, series)
	}
	sup := db.SymbolSupport()
	if sup["textbook"] != students || sup["reference"] != students {
		t.Errorf("textbook/reference supports %d/%d != students %d",
			sup["textbook"], sup["reference"], students)
	}
	// Series readers borrow overlapping fiction volumes.
	p, err := TemplatePattern([]interval.Interval{
		{Symbol: "fiction", Start: 0, End: 21},
		{Symbol: "fiction", Start: 18, End: 39},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pattern.SupportAny(db, p); got < series {
		t.Errorf("overlapping-fiction support %d < series readers %d", got, series)
	}
}

func TestPoissonAndExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, 6))
	}
	if mean := sum / n; mean < 5.5 || mean > 6.5 {
		t.Errorf("poisson mean %v far from 6", mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("poisson of non-positive mean should be 0")
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(exponential(rng, 10))
	}
	if mean := sum / n; mean < 8.5 || mean > 11.5 {
		t.Errorf("exponential mean %v far from 10", mean)
	}
	if exponential(rng, 0) != 0 {
		t.Error("exponential of zero mean should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pick := zipfSymbols(rng, 20)
	counts := make([]int, 20)
	for i := 0; i < 10000; i++ {
		counts[pick()]++
	}
	if counts[0] < counts[10]*2 {
		t.Errorf("zipf not skewed: top=%d mid=%d", counts[0], counts[10])
	}
	one := zipfSymbols(rng, 1)
	if one() != 0 {
		t.Error("single-symbol zipf must return 0")
	}
}

func TestQuestName(t *testing.T) {
	if got := (QuestConfig{NumSequences: 10000, AvgIntervals: 10, NumSymbols: 100}).Name(); got != "D10k-C10-N100" {
		t.Errorf("Name = %q", got)
	}
	if got := (QuestConfig{NumSequences: 123, AvgIntervals: 5, NumSymbols: 7}).Name(); got != "D123-C5-N7" {
		t.Errorf("Name = %q", got)
	}
}
