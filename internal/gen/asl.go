package gen

import (
	"fmt"
	"math/rand"

	"tpminer/internal/interval"
)

// ASLConfig parameterizes the simulated sign-language dataset that
// substitutes for the ASL-BU / ASL-GT corpora used in the literature's
// practicability studies: one sequence per utterance, intervals for
// manual signs (consecutive, meeting or nearly meeting) and for facial
// grammar markers that span several signs — exactly the heavy-overlap,
// repeated-symbol structure that stresses interval miners.
//
// Planted grammar:
//
//	wh-question:  the "face.wh" marker overlaps the final signs and
//	              extends past the last one.
//	negation:     the "face.neg" head-shake contains the negated sign.
//	topic:        "face.browraise" co-starts with the first sign.
type ASLConfig struct {
	NumUtterances int
	// AvgSigns is the average number of manual signs per utterance.
	AvgSigns int
	// Vocabulary is the number of distinct manual signs.
	Vocabulary int
	// WhProb, NegProb, TopicProb are the grammar-marker probabilities.
	WhProb, NegProb, TopicProb float64
	Seed                       int64
}

func (c ASLConfig) withDefaults() ASLConfig {
	if c.NumUtterances == 0 {
		c.NumUtterances = 400
	}
	if c.AvgSigns == 0 {
		c.AvgSigns = 5
	}
	if c.Vocabulary == 0 {
		c.Vocabulary = 30
	}
	if c.WhProb == 0 {
		c.WhProb = 0.35
	}
	if c.NegProb == 0 {
		c.NegProb = 0.25
	}
	if c.TopicProb == 0 {
		c.TopicProb = 0.3
	}
	return c
}

// ASL generates the simulated sign-language database. It returns the
// database and the per-marker utterance counts (wh, neg, topic) for
// verification. Deterministic per Seed.
func ASL(cfg ASLConfig) (db *interval.Database, wh, neg, topic int) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pickSign := zipfSymbols(rng, cfg.Vocabulary)

	db = &interval.Database{Sequences: make([]interval.Sequence, cfg.NumUtterances)}
	for u := 0; u < cfg.NumUtterances; u++ {
		n := poisson(rng, float64(cfg.AvgSigns))
		if n < 2 {
			n = 2
		}
		// Manual signs: consecutive spans with small gaps or exact meets.
		var ivs []interval.Interval
		t := int64(0)
		signSpans := make([][2]int64, n)
		for i := 0; i < n; i++ {
			dur := 3 + rng.Int63n(8)
			ivs = append(ivs, interval.Interval{
				Symbol: fmt.Sprintf("sign.w%d", pickSign()),
				Start:  t,
				End:    t + dur,
			})
			signSpans[i] = [2]int64{t, t + dur}
			gap := rng.Int63n(3) // 0 = exact meet
			t += dur + gap
		}

		if rng.Float64() < cfg.WhProb {
			// Overlap the last two signs and extend past the end.
			from := signSpans[n-1][0]
			if n >= 2 {
				from = signSpans[n-2][0] + 1
			}
			ivs = append(ivs, interval.Interval{
				Symbol: "face.wh", Start: from, End: signSpans[n-1][1] + 2,
			})
			wh++
		}
		if rng.Float64() < cfg.NegProb {
			// Contain one middle sign entirely.
			i := rng.Intn(n)
			ivs = append(ivs, interval.Interval{
				Symbol: "face.neg",
				Start:  signSpans[i][0] - 1,
				End:    signSpans[i][1] + 1,
			})
			neg++
		}
		if rng.Float64() < cfg.TopicProb {
			// Co-start with the first sign, finish inside it.
			end := signSpans[0][0] + (signSpans[0][1]-signSpans[0][0])/2
			if end <= signSpans[0][0] {
				end = signSpans[0][0] + 1
			}
			ivs = append(ivs, interval.Interval{
				Symbol: "face.browraise", Start: signSpans[0][0], End: end,
			})
			topic++
		}

		seq := interval.Sequence{ID: fmt.Sprintf("u%04d", u), Intervals: ivs}
		// Negation may produce Start == -1 for the first sign; clamp by
		// shifting the whole utterance right.
		shiftNonNegative(&seq)
		seq.Normalize()
		db.Sequences[u] = seq
	}
	return db, wh, neg, topic
}

// shiftNonNegative shifts all intervals of the sequence so the earliest
// start is at time zero or later.
func shiftNonNegative(seq *interval.Sequence) {
	var min int64
	for _, iv := range seq.Intervals {
		if iv.Start < min {
			min = iv.Start
		}
	}
	if min >= 0 {
		return
	}
	for i := range seq.Intervals {
		seq.Intervals[i].Start -= min
		seq.Intervals[i].End -= min
	}
}
