package gen

import (
	"fmt"
	"math/rand"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// QuestConfig parameterizes the Quest-style synthetic generator with the
// conventional knobs of the pattern-mining literature:
//
//	|D| NumSequences      number of sequences
//	|C| AvgIntervals      average intervals per sequence (Poisson)
//	|N| NumSymbols        alphabet size
//	|S| NumTemplates      number of potentially-frequent arrangements
//	|I| AvgTemplateSize   average intervals per planted arrangement
//
// Datasets are conventionally named like "D10k-C10-N100".
type QuestConfig struct {
	NumSequences    int
	AvgIntervals    int
	NumSymbols      int
	NumTemplates    int
	AvgTemplateSize int
	// TemplateProb is the probability that a sequence embeds a planted
	// arrangement (a second, independent embedding happens with
	// TemplateProb/2).
	TemplateProb float64
	// Horizon is the time span of one sequence.
	Horizon int64
	// AvgDuration is the mean duration of noise intervals.
	AvgDuration int64
	Seed        int64
}

// withDefaults fills unset fields with the defaults used throughout the
// evaluation.
func (c QuestConfig) withDefaults() QuestConfig {
	if c.NumSequences == 0 {
		c.NumSequences = 1000
	}
	if c.AvgIntervals == 0 {
		c.AvgIntervals = 10
	}
	if c.NumSymbols == 0 {
		c.NumSymbols = 100
	}
	if c.NumTemplates == 0 {
		c.NumTemplates = 10
	}
	if c.AvgTemplateSize == 0 {
		c.AvgTemplateSize = 3
	}
	if c.TemplateProb == 0 {
		c.TemplateProb = 0.5
	}
	if c.Horizon == 0 {
		c.Horizon = 1000
	}
	if c.AvgDuration == 0 {
		c.AvgDuration = 100
	}
	return c
}

// Name renders the conventional dataset name, e.g. "D10k-C10-N100".
func (c QuestConfig) Name() string {
	c = c.withDefaults()
	d := fmt.Sprintf("%d", c.NumSequences)
	if c.NumSequences%1000 == 0 {
		d = fmt.Sprintf("%dk", c.NumSequences/1000)
	}
	return fmt.Sprintf("D%s-C%d-N%d", d, c.AvgIntervals, c.NumSymbols)
}

// Planted describes one ground-truth arrangement the generator embeds.
type Planted struct {
	// Template is the arrangement with concrete relative times.
	Template []interval.Interval
	// Pattern is the temporal pattern every embedding matches.
	Pattern pattern.Temporal
	// Embeddings counts the sequences that received the template.
	Embeddings int
}

// Quest generates a synthetic interval database and reports the planted
// arrangements. Deterministic per Seed.
func Quest(cfg QuestConfig) (*interval.Database, []Planted, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	templates, err := questTemplates(rng, cfg)
	if err != nil {
		return nil, nil, err
	}
	pickTemplate := zipfSymbols(rng, len(templates))
	pickSymbol := zipfSymbols(rng, cfg.NumSymbols)

	db := &interval.Database{Sequences: make([]interval.Sequence, cfg.NumSequences)}
	for s := 0; s < cfg.NumSequences; s++ {
		var ivs []interval.Interval
		planted := 0
		p := cfg.TemplateProb
		for p > 0 && rng.Float64() < p {
			ti := pickTemplate()
			t := &templates[ti]
			span := templateSpan(t.Template)
			maxOff := cfg.Horizon - span
			if maxOff < 0 {
				maxOff = 0
			}
			off := rng.Int63n(maxOff + 1)
			scale := int64(1 + rng.Intn(2))
			if off+span*scale > cfg.Horizon {
				scale = 1
			}
			ivs = embed(ivs, t.Template, off, scale)
			t.Embeddings++
			planted += len(t.Template)
			p /= 2
		}
		// Fill with noise up to the target length.
		target := poisson(rng, float64(cfg.AvgIntervals))
		for len(ivs) < target {
			start := rng.Int63n(cfg.Horizon)
			dur := exponential(rng, float64(cfg.AvgDuration))
			if start+dur > cfg.Horizon {
				dur = cfg.Horizon - start
			}
			ivs = append(ivs, interval.Interval{
				Symbol: fmt.Sprintf("e%d", pickSymbol()),
				Start:  start,
				End:    start + dur,
			})
		}
		seq := interval.Sequence{ID: fmt.Sprintf("q%d", s), Intervals: ivs}
		seq.Normalize()
		db.Sequences[s] = seq
	}
	return db, templates, nil
}

// questTemplates draws the potentially-frequent arrangements: 2–5
// intervals with random relative spans inside a window, so all Allen
// relations occur among them.
func questTemplates(rng *rand.Rand, cfg QuestConfig) ([]Planted, error) {
	pickSymbol := zipfSymbols(rng, cfg.NumSymbols)
	out := make([]Planted, cfg.NumTemplates)
	for i := range out {
		n := poisson(rng, float64(cfg.AvgTemplateSize))
		if n < 2 {
			n = 2
		}
		if n > 5 {
			n = 5
		}
		window := int64(100)
		used := make(map[string]bool, n)
		var tpl []interval.Interval
		for len(tpl) < n {
			sym := fmt.Sprintf("e%d", pickSymbol())
			if used[sym] {
				continue // keep template symbols distinct for clarity
			}
			used[sym] = true
			start := rng.Int63n(window)
			dur := 1 + rng.Int63n(window/2)
			end := start + dur
			if end > window {
				end = window
			}
			tpl = append(tpl, interval.Interval{Symbol: sym, Start: start, End: end})
		}
		seq := interval.Sequence{Intervals: tpl}
		seq.Normalize()
		pat, err := TemplatePattern(seq.Intervals)
		if err != nil {
			return nil, fmt.Errorf("gen: template %d: %w", i, err)
		}
		out[i] = Planted{Template: seq.Intervals, Pattern: pat}
	}
	return out, nil
}

func templateSpan(tpl []interval.Interval) int64 {
	var span int64
	for _, iv := range tpl {
		if iv.End > span {
			span = iv.End
		}
	}
	return span
}
