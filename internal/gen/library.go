package gen

import (
	"fmt"
	"math/rand"

	"tpminer/internal/interval"
)

// LibraryConfig parameterizes the simulated library-loan dataset: one
// sequence per borrower, one interval per loan (genre symbol, checkout
// day to return day). Two behaviours are planted:
//
//	exam season:   textbook loans cluster and overlap reference loans
//	               (reference during textbook).
//	series reader: consecutive fiction loans where the next volume is
//	               borrowed just before the previous is returned
//	               (fiction overlaps fiction).
type LibraryConfig struct {
	NumBorrowers int
	// AvgLoans is the average number of loans per borrower.
	AvgLoans int
	// StudentProb is the fraction of borrowers with exam-season
	// behaviour; SeriesProb the fraction with series-reading behaviour.
	StudentProb, SeriesProb float64
	Seed                    int64
}

func (c LibraryConfig) withDefaults() LibraryConfig {
	if c.NumBorrowers == 0 {
		c.NumBorrowers = 400
	}
	if c.AvgLoans == 0 {
		c.AvgLoans = 6
	}
	if c.StudentProb == 0 {
		c.StudentProb = 0.4
	}
	if c.SeriesProb == 0 {
		c.SeriesProb = 0.3
	}
	return c
}

var libraryGenres = []string{
	"history", "science", "travel", "cooking", "biography", "poetry",
}

// Library generates the simulated loan database. It returns the database
// and the planted behaviour counts (students, seriesReaders).
// Deterministic per Seed.
func Library(cfg LibraryConfig) (db *interval.Database, students, seriesReaders int) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	const horizon = 365
	db = &interval.Database{Sequences: make([]interval.Sequence, cfg.NumBorrowers)}
	for b := 0; b < cfg.NumBorrowers; b++ {
		var ivs []interval.Interval

		if rng.Float64() < cfg.StudentProb {
			// Exam season: a long textbook loan containing a shorter
			// reference loan.
			examStart := 100 + rng.Int63n(60)
			ivs = append(ivs,
				interval.Interval{Symbol: "textbook", Start: examStart, End: examStart + 40},
				interval.Interval{Symbol: "reference", Start: examStart + 10, End: examStart + 25},
			)
			students++
		}
		if rng.Float64() < cfg.SeriesProb {
			// Series reading: each next volume borrowed shortly before
			// the previous return.
			t := rng.Int63n(120)
			vols := 2 + rng.Intn(3)
			for v := 0; v < vols; v++ {
				ivs = append(ivs, interval.Interval{
					Symbol: "fiction", Start: t, End: t + 21,
				})
				t += 18 // 3-day overlap with the previous volume
			}
			seriesReaders++
		}
		// Background loans.
		n := poisson(rng, float64(cfg.AvgLoans))
		for i := 0; i < n; i++ {
			start := rng.Int63n(horizon - 30)
			dur := 7 + exponential(rng, 14)
			if dur > 60 {
				dur = 60
			}
			ivs = append(ivs, interval.Interval{
				Symbol: libraryGenres[rng.Intn(len(libraryGenres))],
				Start:  start,
				End:    start + dur,
			})
		}

		seq := interval.Sequence{ID: fmt.Sprintf("b%04d", b), Intervals: ivs}
		seq.Normalize()
		db.Sequences[b] = seq
	}
	return db, students, seriesReaders
}
