// Package gen provides the workload generators of the evaluation: a
// Quest-style synthetic interval-sequence generator (substituting for
// IBM's closed-source Quest data generator) and four domain simulators
// that substitute for the real datasets of the paper's practicability
// study — ASL-like gesture utterances, stock trend intervals, patient
// diagnosis histories, and library loan records. All generators are
// deterministic for a given seed and return the ground-truth arrangements
// they plant, so recovery can be verified.
package gen

import (
	"math"
	"math/rand"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// poisson draws from a Poisson distribution with the given mean using
// Knuth's method (fine for the small means used here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // numerical guard; unreachable for sane means
			return k
		}
	}
}

// exponential draws a non-negative integer duration with the given mean.
func exponential(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	return int64(rng.ExpFloat64() * mean)
}

// zipfSymbols returns a generator of symbol indices in [0, n) with a
// mildly skewed (Zipf s=1.1) distribution, so some symbols are much more
// frequent than others — the shape pattern-mining workloads assume.
func zipfSymbols(rng *rand.Rand, n int) func() int {
	if n <= 1 {
		return func() int { return 0 }
	}
	z := rand.NewZipf(rng, 1.1, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// TemplatePattern converts a set of template intervals (an arrangement
// expressed with concrete relative times) into the temporal pattern that
// any relation-preserving embedding of the template matches. It is how
// generators express their planted ground truth.
func TemplatePattern(ivs []interval.Interval) (pattern.Temporal, error) {
	slices, err := endpoint.Encode(interval.Sequence{ID: "template", Intervals: ivs})
	if err != nil {
		return pattern.Temporal{}, err
	}
	els := make([][]endpoint.Endpoint, len(slices))
	for i, sl := range slices {
		els[i] = sl.Points
	}
	return pattern.NewTemporal(els...), nil
}

// embed shifts a template by offset and stretches it by scale (>= 1),
// preserving every pairwise Allen relation, and appends the result to
// dst.
func embed(dst []interval.Interval, template []interval.Interval, offset int64, scale int64) []interval.Interval {
	if scale < 1 {
		scale = 1
	}
	for _, iv := range template {
		dst = append(dst, interval.Interval{
			Symbol: iv.Symbol,
			Start:  offset + iv.Start*scale,
			End:    offset + iv.End*scale,
		})
	}
	return dst
}
