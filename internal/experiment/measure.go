package experiment

import (
	"fmt"
	"runtime"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// TemporalMiner is the signature every temporal-pattern algorithm under
// evaluation satisfies (core.MineTemporal, baseline.TPrefixSpan,
// baseline.AprioriTemporal).
type TemporalMiner func(*interval.Database, core.Options) ([]pattern.TemporalResult, core.Stats, error)

// CoincMiner is the coincidence analogue.
type CoincMiner func(*interval.Database, core.Options) ([]pattern.CoincResult, core.Stats, error)

// Measurement is one timed algorithm run.
type Measurement struct {
	Elapsed  time.Duration
	Allocs   uint64 // bytes allocated during the run
	HeapLive uint64 // live heap after the run, post-GC
	Patterns int
	Stats    core.Stats
}

// MeasureTemporal runs one temporal miner under time and memory
// accounting. Memory numbers are whole-process heap deltas: Allocs is
// everything allocated during the run, HeapLive what remains live after
// a forced collection (the working-set proxy used by Tab 1).
func MeasureTemporal(m TemporalMiner, db *interval.Database, opt core.Options) (Measurement, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	start := time.Now()
	rs, st, err := m(db, opt)
	elapsed := time.Since(start)
	if err != nil {
		return Measurement{}, err
	}

	runtime.ReadMemStats(&after)
	return Measurement{
		Elapsed:  elapsed,
		Allocs:   after.TotalAlloc - before.TotalAlloc,
		HeapLive: after.HeapAlloc,
		Patterns: len(rs),
		Stats:    st,
	}, nil
}

// MeasureCoinc is the coincidence analogue of MeasureTemporal.
func MeasureCoinc(m CoincMiner, db *interval.Database, opt core.Options) (Measurement, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	start := time.Now()
	rs, st, err := m(db, opt)
	elapsed := time.Since(start)
	if err != nil {
		return Measurement{}, err
	}

	runtime.ReadMemStats(&after)
	return Measurement{
		Elapsed:  elapsed,
		Allocs:   after.TotalAlloc - before.TotalAlloc,
		HeapLive: after.HeapAlloc,
		Patterns: len(rs),
		Stats:    st,
	}, nil
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// mb renders a byte count as fractional mebibytes.
func mb(b uint64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1024*1024))
}

// pct renders a relative support as a percentage.
func pct(s float64) string {
	return fmt.Sprintf("%g%%", s*100)
}
