// Package experiment is the evaluation harness: it defines every
// table and figure of the reproduction (see DESIGN.md, "Evaluation
// plan"), runs the parameter sweeps, measures time and memory, and
// formats results as aligned text tables and CSV. Both cmd/experiments
// and the root bench suite drive this package, so the numbers reported
// by `go test -bench` and by the CLI come from the same code.
package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a header, and rows of
// string cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row. The cell count should match the header.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned monospace text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting: cells
// produced by this package never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
