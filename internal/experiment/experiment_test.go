package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/gen"
)

// tiny is a miniature scale so the whole suite runs in well under a
// second per experiment.
var tiny = Scale{
	Name:         "tiny",
	D:            40,
	C:            5,
	N:            15,
	MinSups:      []float64{0.2, 0.1},
	DBSizes:      []int{20, 40},
	SeqLens:      []int{3, 5},
	MaxIntervals: 3,
	Seed:         1,
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header", "c"},
	}
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("wide-cell", "x", "y")
	out := tbl.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a          long-header") {
		t.Errorf("header alignment: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"x", "y"}}
	tbl.AddRow("1", "2")
	if got := tbl.CSV(); got != "x,y\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestMeasureTemporal(t *testing.T) {
	db, _, err := gen.Quest(tiny.questConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureTemporal(core.MineTemporal, db, tiny.options(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Elapsed <= 0 || m.Patterns == 0 || m.Stats.Nodes == 0 {
		t.Errorf("measurement: %+v", m)
	}
	// Errors propagate.
	if _, err := MeasureTemporal(core.MineTemporal, db, core.Options{}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	runs := map[string]func() (*Table, error){
		"fig1a": func() (*Table, error) { return Fig1a(tiny) },
		"fig1b": func() (*Table, error) { return Fig1b(tiny) },
		"fig2a": func() (*Table, error) { return Fig2a(tiny) },
		"fig2b": func() (*Table, error) { return Fig2b(tiny) },
		"fig3":  func() (*Table, error) { return Fig3(tiny) },
		"tab1":  func() (*Table, error) { return Tab1(tiny) },
		"ext1":  func() (*Table, error) { return Ext1(tiny) },
	}
	for name, run := range runs {
		tbl, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Errorf("%s: ragged row %v", name, row)
			}
		}
	}
}

func TestFig1aShape(t *testing.T) {
	tbl, err := Fig1a(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern counts must not decrease as minsup drops.
	prev := -1
	for _, row := range tbl.Rows {
		n, err := strconv.Atoi(row[len(row)-1])
		if err != nil {
			t.Fatalf("bad patterns cell %q", row[len(row)-1])
		}
		if prev >= 0 && n < prev {
			t.Errorf("pattern count dropped as minsup fell: %v", tbl.Rows)
		}
		prev = n
	}
}

func TestRealDatasetsAndTables(t *testing.T) {
	ds, err := RealDatasets(7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("datasets = %d", len(ds))
	}
	for _, d := range ds {
		if d.DB.Len() == 0 {
			t.Errorf("%s empty", d.Name)
		}
		if d.MinSup <= 0 || d.MinSup > 1 {
			t.Errorf("%s minsup %v", d.Name, d.MinSup)
		}
	}

	tab2, err := Tab2(7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Rows) != 4 {
		t.Errorf("tab2 rows = %d", len(tab2.Rows))
	}

	tab3, err := Tab3(7, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab3.Rows) == 0 {
		t.Error("tab3 empty")
	}
	// The Patient-sim planted episodes must be reported as recovered.
	recovered := 0
	for _, row := range tab3.Rows {
		if row[0] == "Patient-sim" && strings.HasPrefix(row[3], "recovered") {
			recovered++
		}
	}
	if recovered != 3 {
		t.Errorf("patient episodes recovered = %d, want 3\n%s", recovered, tab3.Format())
	}
}

func TestRunAllWritesEveryTable(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, tiny, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 1a", "Fig 1b", "Fig 2a", "Fig 2b", "Fig 3", "Tab 1", "Tab 2", "Tab 3", "Ext 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}
