package experiment

import (
	"fmt"
	"io"
	"strconv"

	"tpminer/internal/baseline"
	"tpminer/internal/core"
	"tpminer/internal/gen"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// Scale sizes the experiment suite. Quick keeps every run in seconds for
// iterating and for the bench suite; Paper approaches the dataset sizes
// conventional for this literature (the baselines are only run where
// they remain tractable — their blow-up at scale is the result).
type Scale struct {
	Name    string
	D       int       // base database size (sequences)
	C       int       // average intervals per sequence
	N       int       // alphabet size
	MinSups []float64 // relative supports for the minsup sweeps
	DBSizes []int     // database sizes for Fig 2a
	SeqLens []int     // average sequence lengths for Fig 2b
	// MaxIntervals caps pattern size uniformly across all algorithms
	// (identical pattern space, so relative comparisons are unaffected);
	// 0 means unlimited.
	MaxIntervals int
	// BaselineMinSup is the lowest support at which the baseline
	// algorithms are run; below it their blow-up makes the sweep
	// intractable and the cell reads "-". 0 runs them everywhere.
	BaselineMinSup float64
	// BaselineMaxD is the largest database size at which TPrefixSpan
	// joins the Fig 2a scalability sweep. 0 runs it everywhere.
	BaselineMaxD int
	Seed         int64
}

// Quick is the scale used by the benchmark suite and -quick CLI runs.
var Quick = Scale{
	Name:         "quick",
	D:            200,
	C:            8,
	N:            40,
	MinSups:      []float64{0.10, 0.08, 0.06, 0.04, 0.02},
	DBSizes:      []int{100, 200, 400, 800},
	SeqLens:      []int{4, 6, 8, 10},
	MaxIntervals: 4,
	Seed:         42,
}

// Paper is the scale recorded in EXPERIMENTS.md.
var Paper = Scale{
	Name:           "paper",
	D:              2000,
	C:              10,
	N:              100,
	MinSups:        []float64{0.10, 0.08, 0.06, 0.04, 0.02},
	DBSizes:        []int{1000, 2000, 4000, 8000},
	SeqLens:        []int{5, 10, 15, 20},
	MaxIntervals:   4,
	BaselineMinSup: 0.06,
	BaselineMaxD:   2000,
	Seed:           42,
}

func (sc Scale) questConfig() gen.QuestConfig {
	return gen.QuestConfig{
		NumSequences: sc.D,
		AvgIntervals: sc.C,
		NumSymbols:   sc.N,
		Seed:         sc.Seed,
	}
}

func (sc Scale) options(minSup float64) core.Options {
	return core.Options{MinSupport: minSup, MaxIntervals: sc.MaxIntervals}
}

// Fig1a — runtime vs. minimum support, temporal patterns, P-TPMiner vs.
// TPrefixSpan vs. Apriori on the Quest synthetic dataset.
func Fig1a(sc Scale) (*Table, error) {
	db, _, err := gen.Quest(sc.questConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig 1a: runtime vs minsup, temporal patterns (%s)", sc.questConfig().Name()),
		Header: []string{"minsup", "P-TPMiner(ms)", "TPrefixSpan(ms)", "Apriori(ms)", "patterns"},
	}
	for _, s := range sc.MinSups {
		opt := sc.options(s)
		mCore, err := MeasureTemporal(core.MineTemporal, db, opt)
		if err != nil {
			return nil, err
		}
		tpsCell, aprCell := "-", "-"
		if sc.BaselineMinSup == 0 || s >= sc.BaselineMinSup {
			mTPS, err := MeasureTemporal(baseline.TPrefixSpan, db, opt)
			if err != nil {
				return nil, err
			}
			tpsCell = ms(mTPS.Elapsed)
			mApr, err := MeasureTemporal(baseline.AprioriTemporal, db, opt)
			if err != nil {
				return nil, err
			}
			aprCell = ms(mApr.Elapsed)
		}
		t.AddRow(pct(s), ms(mCore.Elapsed), tpsCell, aprCell,
			strconv.Itoa(mCore.Patterns))
	}
	return t, nil
}

// Fig1b — runtime vs. minimum support, coincidence patterns, P-TPMiner
// vs. Apriori.
func Fig1b(sc Scale) (*Table, error) {
	db, _, err := gen.Quest(sc.questConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig 1b: runtime vs minsup, coincidence patterns (%s)", sc.questConfig().Name()),
		Header: []string{"minsup", "P-TPMiner(ms)", "Apriori(ms)", "patterns"},
	}
	for _, s := range sc.MinSups {
		opt := sc.options(s)
		mCore, err := MeasureCoinc(core.MineCoincidence, db, opt)
		if err != nil {
			return nil, err
		}
		aprCell := "-"
		if sc.BaselineMinSup == 0 || s >= sc.BaselineMinSup {
			mApr, err := MeasureCoinc(baseline.AprioriCoincidence, db, opt)
			if err != nil {
				return nil, err
			}
			aprCell = ms(mApr.Elapsed)
		}
		t.AddRow(pct(s), ms(mCore.Elapsed), aprCell, strconv.Itoa(mCore.Patterns))
	}
	return t, nil
}

// fig2MinSup is the fixed support threshold of the scalability figures.
const fig2MinSup = 0.05

// Fig2a — runtime vs. database size at fixed minsup, serial and parallel
// P-TPMiner against TPrefixSpan.
func Fig2a(sc Scale) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Fig 2a: scalability vs |D| (C%d-N%d, minsup %s)", sc.C, sc.N, pct(fig2MinSup)),
		Header: []string{"|D|", "P-TPMiner(ms)", "P-TPMiner-par4(ms)", "TPrefixSpan(ms)", "patterns"},
	}
	for _, d := range sc.DBSizes {
		cfg := sc.questConfig()
		cfg.NumSequences = d
		db, _, err := gen.Quest(cfg)
		if err != nil {
			return nil, err
		}
		opt := sc.options(fig2MinSup)
		mSer, err := MeasureTemporal(core.MineTemporal, db, opt)
		if err != nil {
			return nil, err
		}
		optPar := opt
		optPar.Parallel = 4
		mPar, err := MeasureTemporal(core.MineTemporal, db, optPar)
		if err != nil {
			return nil, err
		}
		tpsCell := "-"
		if sc.BaselineMaxD == 0 || d <= sc.BaselineMaxD {
			mTPS, err := MeasureTemporal(baseline.TPrefixSpan, db, opt)
			if err != nil {
				return nil, err
			}
			tpsCell = ms(mTPS.Elapsed)
		}
		t.AddRow(strconv.Itoa(d), ms(mSer.Elapsed), ms(mPar.Elapsed), tpsCell,
			strconv.Itoa(mSer.Patterns))
	}
	return t, nil
}

// Fig2b — runtime vs. average sequence length at fixed minsup and |D|.
func Fig2b(sc Scale) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Fig 2b: scalability vs |C| (D%d-N%d, minsup %s)", sc.D, sc.N, pct(fig2MinSup)),
		Header: []string{"|C|", "P-TPMiner(ms)", "patterns", "nodes"},
	}
	for _, c := range sc.SeqLens {
		cfg := sc.questConfig()
		cfg.AvgIntervals = c
		db, _, err := gen.Quest(cfg)
		if err != nil {
			return nil, err
		}
		m, err := MeasureTemporal(core.MineTemporal, db, sc.options(fig2MinSup))
		if err != nil {
			return nil, err
		}
		t.AddRow(strconv.Itoa(c), ms(m.Elapsed), strconv.Itoa(m.Patterns),
			strconv.FormatInt(m.Stats.Nodes, 10))
	}
	return t, nil
}

// Fig3 — pruning ablation: each pruning disabled in turn, then all of
// them, at the lowest support of the sweep (where pruning matters most).
func Fig3(sc Scale) (*Table, error) {
	db, _, err := gen.Quest(sc.questConfig())
	if err != nil {
		return nil, err
	}
	minSup := sc.MinSups[len(sc.MinSups)-1]
	base := sc.options(minSup)

	configs := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"all prunings", func(*core.Options) {}},
		{"-P1 global", func(o *core.Options) { o.DisableGlobalPruning = true }},
		{"-P2 pair", func(o *core.Options) { o.DisablePairPruning = true }},
		{"-P3 postfix", func(o *core.Options) { o.DisablePostfixPruning = true }},
		{"-P4 size", func(o *core.Options) { o.DisableSizePruning = true }},
		{"none", func(o *core.Options) {
			o.DisableGlobalPruning = true
			o.DisablePairPruning = true
			o.DisablePostfixPruning = true
			o.DisableSizePruning = true
		}},
	}

	t := &Table{
		Title: fmt.Sprintf("Fig 3: pruning ablation, temporal patterns (%s, minsup %s)",
			sc.questConfig().Name(), pct(minSup)),
		Header: []string{"config", "time(ms)", "nodes", "cand.scans", "patterns"},
	}
	for _, cf := range configs {
		opt := base
		cf.mut(&opt)
		m, err := MeasureTemporal(core.MineTemporal, db, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(cf.name, ms(m.Elapsed),
			strconv.FormatInt(m.Stats.Nodes, 10),
			strconv.FormatInt(m.Stats.CandidateScans, 10),
			strconv.Itoa(m.Patterns))
	}
	return t, nil
}

// Tab1 — memory usage vs. minimum support: total allocations and live
// heap of P-TPMiner against TPrefixSpan. Pseudo-projection should keep
// the former flat.
func Tab1(sc Scale) (*Table, error) {
	db, _, err := gen.Quest(sc.questConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Tab 1: memory vs minsup (%s)", sc.questConfig().Name()),
		Header: []string{"minsup", "P-TPMiner alloc(MB)", "P-TPMiner live(MB)", "TPrefixSpan alloc(MB)", "patterns"},
	}
	for _, s := range sc.MinSups {
		opt := sc.options(s)
		mCore, err := MeasureTemporal(core.MineTemporal, db, opt)
		if err != nil {
			return nil, err
		}
		tpsCell := "-"
		if sc.BaselineMinSup == 0 || s >= sc.BaselineMinSup {
			mTPS, err := MeasureTemporal(baseline.TPrefixSpan, db, opt)
			if err != nil {
				return nil, err
			}
			tpsCell = mb(mTPS.Allocs)
		}
		t.AddRow(pct(s), mb(mCore.Allocs), mb(mCore.HeapLive), tpsCell,
			strconv.Itoa(mCore.Patterns))
	}
	return t, nil
}

// RealDataset bundles one simulated real-world database with the support
// threshold used for it in the case studies.
type RealDataset struct {
	Name   string
	DB     *interval.Database
	MinSup float64
	// Planted ground truth, when the generator reports it.
	Planted []gen.Planted
}

// RealDatasets builds the four simulated real datasets of the
// practicability study.
func RealDatasets(seed int64, quick bool) ([]RealDataset, error) {
	size := func(full int) int {
		if quick {
			return full / 4
		}
		return full
	}
	aslDB, _, _, _ := gen.ASL(gen.ASLConfig{NumUtterances: size(400), Seed: seed})
	stockDB, _, _ := gen.Stock(gen.StockConfig{NumWindows: size(400), Seed: seed + 1})
	patDB, patPlanted := gen.Patients(gen.PatientConfig{NumPatients: size(400), Seed: seed + 2})
	libDB, _, _ := gen.Library(gen.LibraryConfig{NumBorrowers: size(400), Seed: seed + 3})
	return []RealDataset{
		{Name: "ASL-sim", DB: aslDB, MinSup: 0.15},
		{Name: "Stock-sim", DB: stockDB, MinSup: 0.30},
		{Name: "Patient-sim", DB: patDB, MinSup: 0.15, Planted: patPlanted},
		{Name: "Library-sim", DB: libDB, MinSup: 0.15},
	}, nil
}

// tab2MaxIntervals caps temporal patterns at three interval instances
// and tab2MaxElements caps coincidence patterns at three elements: the
// real-data pattern spaces stay readable and the runs fast. (Coincidence
// sequences of the stock data are long and repetitive; unbounded mining
// there yields hundreds of thousands of patterns.)
const (
	tab2MaxIntervals = 3
	tab2MaxElements  = 3
)

// Tab2 — dataset statistics and pattern counts per type on the simulated
// real datasets.
func Tab2(seed int64, quick bool) (*Table, error) {
	ds, err := RealDatasets(seed, quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Tab 2: simulated real datasets, pattern counts per type",
		Header: []string{"dataset", "seqs", "intervals", "symbols", "minsup", "temporal", "coincidence", "time(ms)"},
	}
	for _, d := range ds {
		st := d.DB.Summarize()
		opt := core.Options{MinSupport: d.MinSup, MaxIntervals: tab2MaxIntervals}
		mT, err := MeasureTemporal(core.MineTemporal, d.DB, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		optC := opt
		optC.MaxElements = tab2MaxElements
		mC, err := MeasureCoinc(core.MineCoincidence, d.DB, optC)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		t.AddRow(d.Name,
			strconv.Itoa(st.Sequences), strconv.Itoa(st.Intervals), strconv.Itoa(st.Symbols),
			pct(d.MinSup), strconv.Itoa(mT.Patterns), strconv.Itoa(mC.Patterns),
			ms(mT.Elapsed+mC.Elapsed))
	}
	return t, nil
}

// Tab3 — practicability: the top multi-interval patterns per dataset
// with their recovered Allen-relation reading, plus verification that
// the Patient-sim planted episodes are recovered.
func Tab3(seed int64, quick bool, topK int) (*Table, error) {
	ds, err := RealDatasets(seed, quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Tab 3: practicability — top multi-interval temporal patterns",
		Header: []string{"dataset", "support", "pattern", "relations"},
	}
	for _, d := range ds {
		opt := core.Options{MinSupport: d.MinSup, MaxIntervals: tab2MaxIntervals}
		rs, _, err := core.MineTemporal(d.DB, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		shown := 0
		for _, r := range rs {
			if r.Pattern.NumIntervals() < 2 {
				continue // single intervals say nothing about arrangement
			}
			t.AddRow(d.Name, strconv.Itoa(r.Support), r.Pattern.String(),
				r.Pattern.RelationSummary())
			shown++
			if shown >= topK {
				break
			}
		}
		// Ground-truth recovery check for planted arrangements.
		for i, pl := range d.Planted {
			found := "MISSING"
			key := pl.Pattern.Normalize().Key()
			for _, r := range rs {
				if containsSubpattern(r.Pattern, key) || r.Pattern.Normalize().Key() == key {
					found = fmt.Sprintf("recovered (support %d)", r.Support)
					break
				}
			}
			t.AddRow(d.Name, "-", fmt.Sprintf("planted #%d: %s", i, pl.Pattern), found)
		}
	}
	return t, nil
}

// containsSubpattern reports whether p's normalized key equals key.
// (Planted templates are compared exactly; partial recovery is counted
// as missing so the check stays strict.)
func containsSubpattern(p pattern.Temporal, key string) bool {
	return p.Normalize().Key() == key
}

// RunAll executes the full suite at the given scale and writes every
// table to w. It is the engine behind cmd/experiments.
func RunAll(w io.Writer, sc Scale, quick bool) error {
	type namedRun struct {
		name string
		run  func() (*Table, error)
	}
	runs := []namedRun{
		{"fig1a", func() (*Table, error) { return Fig1a(sc) }},
		{"fig1b", func() (*Table, error) { return Fig1b(sc) }},
		{"fig2a", func() (*Table, error) { return Fig2a(sc) }},
		{"fig2b", func() (*Table, error) { return Fig2b(sc) }},
		{"fig3", func() (*Table, error) { return Fig3(sc) }},
		{"tab1", func() (*Table, error) { return Tab1(sc) }},
		{"tab2", func() (*Table, error) { return Tab2(sc.Seed, quick) }},
		{"tab3", func() (*Table, error) { return Tab3(sc.Seed, quick, 5) }},
		{"ext1", func() (*Table, error) { return Ext1(sc) }},
	}
	for _, r := range runs {
		tbl, err := r.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", r.name, err)
		}
		if _, err := fmt.Fprintf(w, "%s\n", tbl.Format()); err != nil {
			return err
		}
	}
	return nil
}
