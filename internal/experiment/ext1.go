package experiment

import (
	"fmt"
	"strconv"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/gen"
	"tpminer/internal/incremental"
	"tpminer/internal/interval"
)

// Ext1 — extension experiment: incremental maintenance vs. re-mining
// from scratch on a stream of appended sequences. A Quest database is
// replayed one sequence at a time; the incremental miner (lazy
// semi-frequent buffer, several ratios µ) is compared against running
// core.MineTemporal on the accumulated database after every append.
// Both sides produce identical pattern sets (enforced by the
// test-suite); the table reports total maintenance time and how many
// appends the buffer absorbed.
func Ext1(sc Scale) (*Table, error) {
	cfg := sc.questConfig()
	cfg.NumSequences = sc.D / 2 // streams are expensive: D/2 appends
	db, _, err := gen.Quest(cfg)
	if err != nil {
		return nil, err
	}
	opt := core.Options{MinSupport: 0.1, MaxIntervals: sc.MaxIntervals}

	t := &Table{
		Title: fmt.Sprintf("Ext 1: incremental vs from-scratch maintenance (%d appends of 1 sequence, minsup 10%%)",
			len(db.Sequences)),
		Header: []string{"strategy", "total(ms)", "remines", "absorbed", "patterns"},
	}

	// From-scratch: re-mine after every append.
	start := time.Now()
	var scratch int
	{
		acc := &interval.Database{}
		for i := range db.Sequences {
			acc.Sequences = append(acc.Sequences, db.Sequences[i])
			rs, _, err := core.MineTemporal(acc, opt)
			if err != nil {
				return nil, err
			}
			scratch = len(rs)
		}
	}
	scratchTime := time.Since(start)
	t.AddRow("re-mine every append", ms(scratchTime),
		strconv.Itoa(len(db.Sequences)), "0", strconv.Itoa(scratch))

	for _, mu := range []float64{1.0, 0.5, 0.3} {
		m, err := incremental.NewMiner(opt, mu)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := range db.Sequences {
			if _, err := m.Append(db.Sequences[i]); err != nil {
				return nil, err
			}
		}
		patterns := len(m.Patterns())
		elapsed := time.Since(start)
		st := m.Stats()
		t.AddRow(fmt.Sprintf("incremental µ=%.1f", mu), ms(elapsed),
			strconv.Itoa(st.FullRemines),
			fmt.Sprintf("%d%%", 100*st.IncrementalSteps/st.Appends),
			strconv.Itoa(patterns))
	}
	return t, nil
}
