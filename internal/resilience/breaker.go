package resilience

import "sync"

// BreakerState is the circuit breaker's position. The numeric values
// are stable — they are exported as the tpmd_resilience_breaker_state
// gauge.
type BreakerState int32

const (
	// BreakerClosed: normal operation, requests flow.
	BreakerClosed BreakerState = 0
	// BreakerOpen: tripped; Allow refuses until a probe succeeds.
	BreakerOpen BreakerState = 1
	// BreakerHalfOpen: a probe is in flight deciding open vs closed.
	BreakerHalfOpen BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// DefaultBreakerThreshold is the failure score that trips the breaker.
const DefaultBreakerThreshold = 3

// Breaker is a circuit breaker over an unreliable dependency. Failures
// accumulate a score — permanent errors (disk full) weigh 2, transient
// ones 1 — and any success resets it; when the score reaches the
// threshold the breaker opens and Allow refuses work until a probe
// (BeginProbe/ProbeResult, driven by the owner's recovery loop)
// succeeds. Probing uses the half-open state, so regular traffic never
// races a probe: Allow stays false until the probe closes the breaker.
type Breaker struct {
	threshold int

	mu    sync.Mutex
	state BreakerState
	score int
}

// NewBreaker creates a closed breaker tripping at threshold (<= 0
// selects DefaultBreakerThreshold).
func NewBreaker(threshold int) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	return &Breaker{threshold: threshold}
}

// Allow reports whether a request may proceed. Only a closed breaker
// admits work; open and half-open both refuse (the probe path goes
// through the owner, not through Allow).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// Success records a successful operation, clearing the failure score.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.score = 0
}

// Failure records a failed operation; permanent failures count double.
// It returns true when this failure tripped the breaker open (the
// caller starts its recovery probe on that edge).
func (b *Breaker) Failure(permanent bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		return false
	}
	if permanent {
		b.score += 2
	} else {
		b.score++
	}
	if b.score >= b.threshold {
		b.state = BreakerOpen
		return true
	}
	return false
}

// BeginProbe moves an open breaker to half-open for one probe attempt.
// It reports whether the probe may run (false when the breaker was not
// open — e.g. already closed by a concurrent probe).
func (b *Breaker) BeginProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return false
	}
	b.state = BreakerHalfOpen
	return true
}

// ProbeResult resolves a half-open probe: success closes the breaker
// and clears the score, failure re-opens it.
func (b *Breaker) ProbeResult(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return
	}
	if ok {
		b.state = BreakerClosed
		b.score = 0
	} else {
		b.state = BreakerOpen
	}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
