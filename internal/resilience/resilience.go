// Package resilience is tpmd's fault-tolerance toolkit: error
// classification (transient vs permanent), retry with exponential
// backoff and jitter, a circuit breaker, and a pluggable fault-injection
// layer that the persistence tests and the -fault-profile dev flag use
// to exercise all of it deterministically.
//
// The pieces compose but do not know about each other:
//
//   - Classify sorts an I/O error into ClassTransient (worth retrying:
//     EIO, EINTR, timeouts) or ClassPermanent (retrying is futile until
//     an operator intervenes: ENOSPC, EROFS, permission errors).
//   - RetryPolicy.Do retries transient failures with capped exponential
//     backoff + jitter and gives up immediately on permanent ones.
//   - Breaker counts failures across operations and trips open after
//     repeated ones, so a dead disk stops being hammered per-request;
//     a probe (driven by the caller) closes it again.
//   - Injector is the seam through which tests and the -fault-profile
//     flag plant errors, latency, and partial writes inside
//     internal/persist's WAL and snapshot I/O.
//
// internal/persist wires the injector and retry policy into its write
// paths; internal/server wraps its journal in the breaker and turns an
// open breaker into read-only degraded mode (mutations 503, reads keep
// serving) with a background recovery probe.
package resilience

import (
	"errors"
	"os"
	"syscall"
)

// Class is the retry-worthiness of an error.
type Class int

const (
	// ClassTransient errors may succeed on retry: flaky device I/O,
	// interrupted syscalls, timeouts.
	ClassTransient Class = iota
	// ClassPermanent errors will keep failing until something outside
	// the process changes: disk full, read-only filesystem, permissions.
	ClassPermanent
)

// ErrPermanent is a classification marker: an error wrapping it is
// ClassPermanent regardless of its underlying cause. Callers tag
// failures that must never be retried with it — e.g. a WAL whose tail
// state is unknown after a failed rollback.
var ErrPermanent = errors.New("permanent failure")

// Classify sorts err for the retry and breaker layers. Unknown errors
// are treated as transient — retrying an unknown failure a bounded
// number of times is cheap, while misclassifying a recoverable blip as
// permanent needlessly trips the breaker.
func Classify(err error) Class {
	switch {
	case errors.Is(err, ErrPermanent),
		errors.Is(err, syscall.ENOSPC),
		errors.Is(err, syscall.EROFS),
		errors.Is(err, os.ErrPermission):
		return ClassPermanent
	}
	return ClassTransient
}

// IsPermanent reports whether err classifies as ClassPermanent.
func IsPermanent(err error) bool { return err != nil && Classify(err) == ClassPermanent }
