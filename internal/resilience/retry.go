package resilience

import (
	"math/rand"
	"time"
)

// Retry defaults; see RetryPolicy.
const (
	DefaultRetryAttempts = 3
	DefaultRetryBase     = 5 * time.Millisecond
	DefaultRetryMax      = 80 * time.Millisecond
)

// RetryPolicy retries an operation on transient failure with capped
// exponential backoff and full jitter. Permanent failures (Classify)
// abort immediately: retrying a full disk only delays the error the
// caller needs to see. The zero value selects the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt
	// included). 0 means DefaultRetryAttempts; 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry up to MaxDelay. 0 means DefaultRetryBase.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means DefaultRetryMax.
	MaxDelay time.Duration
	// Sleep replaces time.Sleep; tests inject a no-op to retry
	// instantly. nil means time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBase
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMax
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Do runs op, retrying transient errors up to MaxAttempts total tries.
// onRetry, if non-nil, is called before each backoff sleep with the
// failing attempt's error and number (1-based) — the hook for logging
// and retry metrics. The returned error is the last attempt's.
func (p RetryPolicy) Do(op func() error, onRetry func(err error, attempt int)) error {
	p = p.withDefaults()
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || Classify(err) == ClassPermanent || attempt >= p.MaxAttempts {
			return err
		}
		if onRetry != nil {
			onRetry(err, attempt)
		}
		// Full jitter: a uniform draw from (0, delay] keeps concurrent
		// retriers from re-colliding in lockstep.
		p.Sleep(time.Duration(rand.Int63n(int64(delay)) + 1))
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
