package resilience

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Op names one injectable I/O operation inside the persistence layer.
type Op string

// The injection points internal/persist consults.
const (
	OpWALWrite       Op = "wal_write"
	OpWALSync        Op = "wal_sync"
	OpWALOpen        Op = "wal_open"
	OpSnapshotWrite  Op = "snapshot_write"
	OpSnapshotSync   Op = "snapshot_sync"
	OpSnapshotRename Op = "snapshot_rename"
)

// OpAll in a profile rule matches every operation.
const OpAll Op = "all"

// Fault is one injected failure decision. The zero value means "no
// fault, proceed normally".
type Fault struct {
	// Err, when non-nil, is returned by the operation instead of (or,
	// for partial writes, after) performing it.
	Err error
	// Delay is slept before the operation runs — injected latency. It
	// applies with or without Err.
	Delay time.Duration
	// PartialFraction, in (0,1), makes a faulted write first write that
	// fraction of its bytes before reporting Err — a torn write. Only
	// meaningful on write operations with Err set.
	PartialFraction float64
}

// Injector decides, per operation, whether to inject a fault.
// Implementations must be safe for concurrent use. A nil Injector in
// persist.Options disables injection entirely (the production default).
type Injector interface {
	Fault(op Op) Fault
}

// FaultRule is one probabilistic rule in a Profile.
type FaultRule struct {
	// Prob is the chance in [0,1] that the rule fires on a matching op.
	Prob float64
	// Err is the error to inject when the rule fires; nil makes the
	// rule latency-only.
	Err error
	// Delay is injected latency when the rule fires.
	Delay time.Duration
	// Partial makes a firing write rule tear the write (a random
	// nonzero prefix lands before Err is reported).
	Partial bool
}

// Profile is a seeded, probabilistic Injector: a set of rules per
// operation, each firing with its own probability from one deterministic
// random stream. The same seed replays the same fault schedule for the
// same operation sequence — the property the chaos suite's
// seed-on-failure reproduction relies on.
type Profile struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[Op][]FaultRule
}

// NewProfile creates an empty profile drawing from seed.
func NewProfile(seed int64) *Profile {
	return &Profile{rng: rand.New(rand.NewSource(seed)), rules: make(map[Op][]FaultRule)}
}

// Add appends a rule for op (OpAll matches every operation).
func (p *Profile) Add(op Op, r FaultRule) *Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[op] = append(p.rules[op], r)
	return p
}

// Fault rolls each matching rule in order and returns the first that
// fires, folding latency-only rules into the eventual decision.
func (p *Profile) Fault(op Op) Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out Fault
	for _, r := range append(p.rules[op], p.rules[OpAll]...) {
		if p.rng.Float64() >= r.Prob {
			continue
		}
		out.Delay += r.Delay
		if r.Err != nil && out.Err == nil {
			out.Err = r.Err
			if r.Partial {
				// A torn write lands at least something and never the
				// whole buffer.
				out.PartialFraction = 0.1 + 0.8*p.rng.Float64()
			}
		}
	}
	return out
}

// Toggle gates an inner injector behind an atomic on/off switch, so a
// chaos test can open and close fault windows around a shared store
// without rebuilding it. It starts off.
type Toggle struct {
	inner Injector
	on    atomic.Bool
}

// NewToggle wraps inner, initially disabled.
func NewToggle(inner Injector) *Toggle { return &Toggle{inner: inner} }

// Set enables or disables injection.
func (t *Toggle) Set(on bool) { t.on.Store(on) }

// Fault consults the inner injector only while enabled.
func (t *Toggle) Fault(op Op) Fault {
	if !t.on.Load() {
		return Fault{}
	}
	return t.inner.Fault(op)
}

// ParseProfile builds a Profile from the -fault-profile flag syntax:
// comma-separated rules of the form
//
//	op:kind:prob[:arg]
//
// where op is one of wal_write, wal_sync, wal_open, snapshot_write,
// snapshot_sync, snapshot_rename, or all; kind is eio, enospc, timeout,
// partial (a torn EIO write), or latency (arg = a Go duration, e.g.
// 20ms); and prob is the per-operation firing probability in [0,1].
// Example:
//
//	wal_write:eio:0.05,wal_sync:latency:0.5:10ms,snapshot_write:enospc:0.01
func ParseProfile(spec string, seed int64) (*Profile, error) {
	p := NewProfile(seed)
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("resilience: fault rule %q: want op:kind:prob[:arg]", raw)
		}
		op := Op(parts[0])
		switch op {
		case OpWALWrite, OpWALSync, OpWALOpen, OpSnapshotWrite, OpSnapshotSync, OpSnapshotRename, OpAll:
		default:
			return nil, fmt.Errorf("resilience: fault rule %q: unknown op %q", raw, parts[0])
		}
		prob, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("resilience: fault rule %q: probability %q not in [0,1]", raw, parts[2])
		}
		rule := FaultRule{Prob: prob}
		switch parts[1] {
		case "eio":
			rule.Err = fmt.Errorf("injected: %w", syscall.EIO)
		case "enospc":
			rule.Err = fmt.Errorf("injected: %w", syscall.ENOSPC)
		case "timeout":
			rule.Err = fmt.Errorf("injected: %w", os.ErrDeadlineExceeded)
		case "partial":
			rule.Err = fmt.Errorf("injected torn write: %w", syscall.EIO)
			rule.Partial = true
		case "latency":
			if len(parts) < 4 {
				return nil, fmt.Errorf("resilience: fault rule %q: latency needs a duration arg", raw)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("resilience: fault rule %q: bad duration: %v", raw, err)
			}
			rule.Delay = d
		default:
			return nil, fmt.Errorf("resilience: fault rule %q: unknown kind %q (want eio, enospc, timeout, partial, latency)", raw, parts[1])
		}
		p.Add(op, rule)
	}
	return p, nil
}
