package resilience

import (
	"errors"
	"fmt"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{syscall.ENOSPC, ClassPermanent},
		{syscall.EROFS, ClassPermanent},
		{os.ErrPermission, ClassPermanent},
		{fmt.Errorf("persist: WAL append: %w", syscall.ENOSPC), ClassPermanent},
		{syscall.EIO, ClassTransient},
		{syscall.EINTR, ClassTransient},
		{os.ErrDeadlineExceeded, ClassTransient},
		{errors.New("mystery"), ClassTransient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if IsPermanent(nil) {
		t.Error("IsPermanent(nil) = true")
	}
}

func TestRetryTransientEventuallySucceeds(t *testing.T) {
	calls, retries := 0, 0
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return syscall.EIO
		}
		return nil
	}, func(err error, attempt int) {
		retries++
		if !errors.Is(err, syscall.EIO) {
			t.Errorf("onRetry err = %v", err)
		}
	})
	if err != nil || calls != 3 || retries != 2 {
		t.Errorf("err=%v calls=%d retries=%d, want nil/3/2", err, calls, retries)
	}
}

func TestRetryPermanentFailsFast(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	err := p.Do(func() error {
		calls++
		return fmt.Errorf("write: %w", syscall.ENOSPC)
	}, nil)
	if !errors.Is(err, syscall.ENOSPC) || calls != 1 {
		t.Errorf("err=%v calls=%d, want ENOSPC after exactly 1 call", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: 4 * time.Millisecond, MaxDelay: 6 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	err := p.Do(func() error { calls++; return syscall.EIO }, nil)
	if !errors.Is(err, syscall.EIO) || calls != 3 {
		t.Errorf("err=%v calls=%d, want EIO after 3 calls", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Full jitter: each sleep is in (0, delay], delay doubling but capped.
	if slept[0] <= 0 || slept[0] > 4*time.Millisecond {
		t.Errorf("first backoff %v outside (0, 4ms]", slept[0])
	}
	if slept[1] <= 0 || slept[1] > 6*time.Millisecond {
		t.Errorf("second backoff %v outside (0, 6ms] (cap)", slept[1])
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3)
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	// Two transient failures: score 2, still closed.
	if b.Failure(false) || b.Failure(false) {
		t.Fatal("tripped below threshold")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused work")
	}
	// Success resets the score.
	b.Success()
	if b.Failure(false) || b.Failure(false) {
		t.Fatal("score not reset by success")
	}
	// Third consecutive failure trips.
	if !b.Failure(false) {
		t.Fatal("threshold failure did not trip")
	}
	if b.Allow() || b.State() != BreakerOpen {
		t.Fatal("open breaker admitted work")
	}
	// Failures while open are no-ops and never re-trip.
	if b.Failure(true) {
		t.Error("open breaker reported a fresh trip")
	}

	// Probe: open -> half-open (still refusing) -> closed on success.
	if !b.BeginProbe() {
		t.Fatal("BeginProbe refused on open breaker")
	}
	if b.Allow() || b.State() != BreakerHalfOpen {
		t.Fatal("half-open breaker admitted work")
	}
	b.ProbeResult(false)
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	b.BeginProbe()
	b.ProbeResult(true)
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("successful probe did not close")
	}
	// BeginProbe on a closed breaker is refused.
	if b.BeginProbe() {
		t.Error("BeginProbe ran on closed breaker")
	}
}

func TestBreakerPermanentWeighsDouble(t *testing.T) {
	b := NewBreaker(3)
	b.Failure(true) // score 2
	if !b.Failure(false) {
		t.Fatal("permanent(2) + transient(1) should reach threshold 3")
	}
	b2 := NewBreaker(0) // default threshold 3
	b2.Failure(true)
	if !b2.Failure(true) {
		t.Fatal("two permanent failures should trip the default breaker")
	}
}

func TestProfileDeterministicForSeed(t *testing.T) {
	run := func(seed int64) []bool {
		p := NewProfile(seed)
		p.Add(OpWALWrite, FaultRule{Prob: 0.5, Err: syscall.EIO})
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Fault(OpWALWrite).Err != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	hits := 0
	for _, v := range a {
		if v {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Errorf("prob 0.5 fired %d/%d times; expected a mix", hits, len(a))
	}
}

func TestProfileAllAndPartial(t *testing.T) {
	p := NewProfile(1)
	p.Add(OpAll, FaultRule{Prob: 1, Err: syscall.EIO, Partial: true})
	for _, op := range []Op{OpWALWrite, OpSnapshotSync} {
		f := p.Fault(op)
		if f.Err == nil {
			t.Fatalf("OpAll rule did not fire on %s", op)
		}
		if f.PartialFraction <= 0 || f.PartialFraction >= 1 {
			t.Errorf("%s: partial fraction %v outside (0,1)", op, f.PartialFraction)
		}
	}
}

func TestToggleGates(t *testing.T) {
	p := NewProfile(7)
	p.Add(OpWALWrite, FaultRule{Prob: 1, Err: syscall.EIO})
	tg := NewToggle(p)
	if tg.Fault(OpWALWrite).Err != nil {
		t.Fatal("disabled toggle injected")
	}
	tg.Set(true)
	if tg.Fault(OpWALWrite).Err == nil {
		t.Fatal("enabled toggle did not inject")
	}
	tg.Set(false)
	if tg.Fault(OpWALWrite).Err != nil {
		t.Fatal("re-disabled toggle injected")
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("wal_write:eio:1,wal_sync:latency:1:3ms,snapshot_write:enospc:1,all:partial:0", 9)
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Fault(OpWALWrite); !errors.Is(f.Err, syscall.EIO) {
		t.Errorf("wal_write fault = %+v, want EIO", f)
	}
	if f := p.Fault(OpWALSync); f.Err != nil || f.Delay != 3*time.Millisecond {
		t.Errorf("wal_sync fault = %+v, want 3ms latency only", f)
	}
	if f := p.Fault(OpSnapshotWrite); !errors.Is(f.Err, syscall.ENOSPC) {
		t.Errorf("snapshot_write fault = %+v, want ENOSPC", f)
	}

	for _, bad := range []string{
		"nope:eio:1",           // unknown op
		"wal_write:boom:1",     // unknown kind
		"wal_write:eio:2",      // probability out of range
		"wal_write:eio",        // missing probability
		"wal_sync:latency:1",   // latency without duration
		"wal_sync:latency:1:x", // unparseable duration
	} {
		if _, err := ParseProfile(bad, 0); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}

	// Empty rules (trailing commas, empty string) are tolerated.
	if _, err := ParseProfile("", 0); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
}
