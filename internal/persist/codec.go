package persist

import (
	"fmt"

	"tpminer/internal/interval"
)

// EncodeDatabase appends the WAL's compact varint encoding of db to buf
// and returns the extended slice. The format is the one WAL records use
// for dataset payloads: a uvarint sequence count, then per sequence a
// length-prefixed ID, a uvarint interval count, and per interval a
// length-prefixed symbol plus varint start/end times. It is exported so
// other subsystems (remote shard push) can reuse the codec instead of
// inventing a second wire format.
func EncodeDatabase(buf []byte, db *interval.Database) []byte {
	return appendDatabase(buf, db)
}

// DecodeDatabase parses one EncodeDatabase payload. Unlike the WAL
// reader — where a database is followed by further record fields — a
// standalone payload must be consumed exactly, so trailing bytes are
// rejected as corruption.
func DecodeDatabase(data []byte) (*interval.Database, error) {
	c := &byteCursor{buf: data}
	db, err := c.database()
	if err != nil {
		return nil, fmt.Errorf("persist: decode database: %w", err)
	}
	if c.off != len(data) {
		return nil, fmt.Errorf("persist: decode database: %d trailing bytes", len(data)-c.off)
	}
	return db, nil
}
