package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tpminer/internal/resilience"
)

// injectorFunc adapts a function to resilience.Injector.
type injectorFunc func(resilience.Op) resilience.Fault

func (f injectorFunc) Fault(op resilience.Op) resilience.Fault { return f(op) }

// scriptInjector plays a fixed queue of errors per op, then stops
// injecting. Safe for concurrent use.
type scriptInjector struct {
	mu     sync.Mutex
	faults map[resilience.Op][]error
	hits   map[resilience.Op]int
}

func newScriptInjector() *scriptInjector {
	return &scriptInjector{
		faults: make(map[resilience.Op][]error),
		hits:   make(map[resilience.Op]int),
	}
}

func (si *scriptInjector) push(op resilience.Op, errs ...error) {
	si.mu.Lock()
	defer si.mu.Unlock()
	si.faults[op] = append(si.faults[op], errs...)
}

func (si *scriptInjector) Fault(op resilience.Op) resilience.Fault {
	si.mu.Lock()
	defer si.mu.Unlock()
	si.hits[op]++
	q := si.faults[op]
	if len(q) == 0 {
		return resilience.Fault{}
	}
	err := q[0]
	si.faults[op] = q[1:]
	return resilience.Fault{Err: err}
}

// noSleep is a retry policy with the default attempt budget but no
// real backoff, so fault tests stay fast.
var noSleep = resilience.RetryPolicy{Sleep: func(time.Duration) {}}

// TestBootRemovesOrphanTempFiles: snapshot temp files left by a crash
// mid-compaction are deleted during the boot scan and counted in the
// recovery stats; real data is untouched.
func TestBootRemovesOrphanTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	dbA := testDB(1, 3, 5)
	if err := s.LogPut("a", 1, dbA); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		snapshotName(7) + ".tmp",
		snapshotName(8) + ".tmp",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, map[string]DatasetState{"a": {DB: dbA, Version: 1}}, 1)
	if got := s2.RecoveryStats().TempFilesRemoved; got != 2 {
		t.Errorf("TempFilesRemoved = %d, want 2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("orphan temp file %q survived boot", e.Name())
		}
	}
}

// TestWALWriteRetriesTransient: a transient EIO on a WAL append is
// retried under the store's retry policy and the mutation still
// commits — durably, as a crash-reopen proves.
func TestWALWriteRetriesTransient(t *testing.T) {
	dir := t.TempDir()
	si := newScriptInjector()
	si.push(resilience.OpWALWrite, errors.New("injected transient eio"))
	s := mustOpen(t, dir, Options{Injector: si, Retry: noSleep})
	db := testDB(1, 2, 3)
	if err := s.LogPut("a", 1, db); err != nil {
		t.Fatalf("put with one transient failure: %v", err)
	}

	// Crash (no Close) and reopen without the injector: the record made
	// it to disk exactly once.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, map[string]DatasetState{"a": {DB: db, Version: 1}}, 1)
}

// TestPermanentFailureFailsFastAndProbeRecovers: ENOSPC is classified
// permanent — one attempt, no retries — and once the condition clears,
// Probe restores the write path without a restart.
func TestPermanentFailureFailsFastAndProbeRecovers(t *testing.T) {
	dir := t.TempDir()
	var failing sync.Map // non-empty => inject ENOSPC on WAL writes
	failing.Store("on", true)
	attempts := 0
	inj := injectorFunc(func(op resilience.Op) resilience.Fault {
		if op != resilience.OpWALWrite {
			return resilience.Fault{}
		}
		if _, on := failing.Load("on"); !on {
			return resilience.Fault{}
		}
		attempts++
		return resilience.Fault{Err: syscall.ENOSPC}
	})
	s := mustOpen(t, dir, Options{Injector: inj, Retry: noSleep})
	defer s.Close()
	dbA := testDB(1, 2, 3)
	if err := s.LogPut("a", 1, dbA); err == nil {
		t.Fatal("put succeeded despite ENOSPC")
	} else if !resilience.IsPermanent(err) {
		t.Errorf("ENOSPC not classified permanent: %v", err)
	}
	if attempts != 1 {
		t.Errorf("ENOSPC write attempted %d times, want 1 (no retries on permanent failures)", attempts)
	}

	// Disk comes back; a probe re-journals the mirror and writes flow.
	failing.Delete("on")
	if err := s.Probe(); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if err := s.LogPut("a", 2, dbA); err != nil {
		t.Fatalf("put after probe: %v", err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, map[string]DatasetState{"a": {DB: dbA, Version: 2}}, 2)
}

// TestFsyncFailureVetoesRecord: a failed fsync must reject the mutation
// AND roll the record off the log — an unacknowledged write that
// resurrected on replay would be a lie in the other direction. The
// fsync is never retried (one failure means the kernel may have dropped
// the dirty pages; a passing retry proves nothing).
func TestFsyncFailureVetoesRecord(t *testing.T) {
	dir := t.TempDir()
	si := newScriptInjector()
	s := mustOpen(t, dir, Options{Injector: si, Retry: noSleep})
	dbA, dbB := testDB(1, 2, 3), testDB(2, 2, 2)
	if err := s.LogPut("a", 1, dbA); err != nil {
		t.Fatal(err)
	}

	si.push(resilience.OpWALSync, errors.New("injected fsync failure"))
	if err := s.LogPut("b", 2, dbB); err == nil {
		t.Fatal("put acknowledged despite failed fsync")
	}
	// The store must keep serving writes after the veto.
	if err := s.LogPut("c", 3, dbB); err != nil {
		t.Fatalf("put after fsync veto: %v", err)
	}

	// Crash-reopen: the vetoed record must not resurrect.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, map[string]DatasetState{
		"a": {DB: dbA, Version: 1},
		"c": {DB: dbB, Version: 3},
	}, 3)
	if rs := s2.RecoveryStats(); rs.Truncations != 0 {
		t.Errorf("rollback left a torn tail for recovery to fix: %+v", rs)
	}
}

// TestSnapshotFaultLeavesNoTemp: every failure path of the snapshot
// write removes its temp file, so retries and boot cleanup never trip
// over a half-written artifact.
func TestSnapshotFaultLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	si := newScriptInjector()
	s := mustOpen(t, dir, Options{Injector: si, Retry: resilience.RetryPolicy{MaxAttempts: 1, Sleep: func(time.Duration) {}}})
	defer s.Close()
	if err := s.LogPut("a", 1, testDB(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	for _, op := range []resilience.Op{
		resilience.OpSnapshotWrite,
		resilience.OpSnapshotSync,
		resilience.OpSnapshotRename,
	} {
		si.push(op, errors.New("injected "+string(op)+" failure"))
		if err := s.Snapshot(); err == nil {
			t.Fatalf("%s: snapshot succeeded despite injected fault", op)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				t.Errorf("%s: temp file %q left behind", op, e.Name())
			}
		}
	}
	// With the faults drained the snapshot goes through.
	if err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot after faults drained: %v", err)
	}
}
