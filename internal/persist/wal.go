package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"tpminer/internal/interval"
)

// WAL wire format. Every record is one frame:
//
//	offset  size  field
//	0       4     payload length N, little-endian uint32
//	4       4     CRC32C (Castagnoli) of the payload, little-endian
//	8       N     payload
//
// The payload is:
//
//	byte     record type: 1 put, 2 append, 3 delete,
//	         4 job-put, 5 job-delete, 6 job-result
//	uvarint  store version the record installed
//	uvarint  name length, then the dataset (or job id) bytes
//	—        for put/append: the database encoding below
//	—        for job-put/job-result: uvarint blob length, then the blob
//
// Job records (types 4–6) carry the continuous-mining job table: the
// name field holds the job id and the trailing blob is an opaque
// payload owned by the layer above (the server journals JSON job specs
// and latest-result summaries). Keeping the payload opaque means the
// WAL format is closed under job-schema evolution — persist never
// needs a version bump when the spec grows a field. Job records draw
// their versions from the same store-wide counter as dataset records,
// which is what keeps the replay-skip invariant (`version <=
// SnapshotVersion` ⇒ already in the snapshot) sound across both kinds.
//
// A database is encoded as:
//
//	uvarint  sequence count
//	per sequence:
//	  uvarint  id length, then the id bytes
//	  uvarint  interval count
//	  per interval: uvarint symbol length + symbol, varint start, varint end
//
// The frame CRC makes every record self-validating: recovery and the
// inspector can walk a log byte-by-byte and classify the first bad
// frame as either a torn tail (not enough bytes for the declared
// length) or corruption (CRC or decode failure).
const (
	recPut       byte = 1
	recAppend    byte = 2
	recDelete    byte = 3
	recJobPut    byte = 4
	recJobDelete byte = 5
	recJobResult byte = 6

	frameHeaderLen = 8

	// maxRecordBytes bounds a single frame so a corrupt length field can
	// never drive a giant allocation during recovery.
	maxRecordBytes = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded WAL record. name holds the dataset name for
// dataset records and the job id for job records.
type record struct {
	typ     byte
	version uint64
	name    string
	db      *interval.Database // put/append only
	blob    []byte             // job-put/job-result only
}

func (r record) typeName() string {
	switch r.typ {
	case recPut:
		return "put"
	case recAppend:
		return "append"
	case recDelete:
		return "delete"
	case recJobPut:
		return "job-put"
	case recJobDelete:
		return "job-delete"
	case recJobResult:
		return "job-result"
	}
	return fmt.Sprintf("unknown(%d)", r.typ)
}

// isJobType reports whether typ is one of the job record types.
func isJobType(typ byte) bool {
	return typ == recJobPut || typ == recJobDelete || typ == recJobResult
}

// frameErr classifies why a frame failed to parse. torn means the
// buffer ended before the frame did — the signature of a crash mid
// write — while corrupt means the bytes are there but wrong (flipped
// CRC, bad type, garbled varint).
type frameErr struct {
	torn bool
	msg  string
}

func (e *frameErr) Error() string { return e.msg }

var errEndOfLog = errors.New("persist: end of log")

// appendFrame appends the framed, checksummed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// parseFrame reads one frame from buf. It returns the payload and the
// total frame size. io.EOF-like end of input returns errEndOfLog; a
// damaged frame returns *frameErr.
func parseFrame(buf []byte) (payload []byte, frameLen int, err error) {
	if len(buf) == 0 {
		return nil, 0, errEndOfLog
	}
	if len(buf) < frameHeaderLen {
		return nil, 0, &frameErr{torn: true, msg: fmt.Sprintf("torn frame header: %d bytes, want %d", len(buf), frameHeaderLen)}
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxRecordBytes {
		return nil, 0, &frameErr{msg: fmt.Sprintf("corrupt frame: implausible payload length %d", n)}
	}
	if uint64(len(buf)-frameHeaderLen) < uint64(n) {
		return nil, 0, &frameErr{torn: true, msg: fmt.Sprintf("torn frame payload: %d bytes present, %d declared", len(buf)-frameHeaderLen, n)}
	}
	payload = buf[frameHeaderLen : frameHeaderLen+int(n)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		return nil, 0, &frameErr{msg: fmt.Sprintf("corrupt frame: CRC mismatch (stored %08x, computed %08x)", want, got)}
	}
	return payload, frameHeaderLen + int(n), nil
}

// ------------------------------------------------------------- encoding

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendDatabase(buf []byte, db *interval.Database) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(db.Sequences)))
	for i := range db.Sequences {
		seq := &db.Sequences[i]
		buf = appendString(buf, seq.ID)
		buf = binary.AppendUvarint(buf, uint64(len(seq.Intervals)))
		for _, iv := range seq.Intervals {
			buf = appendString(buf, iv.Symbol)
			buf = binary.AppendVarint(buf, iv.Start)
			buf = binary.AppendVarint(buf, iv.End)
		}
	}
	return buf
}

// encodeRecord builds the payload of one WAL record. db is nil for
// delete records.
func encodeRecord(typ byte, version uint64, name string, db *interval.Database) []byte {
	size := 1 + binary.MaxVarintLen64 + len(name) + 4
	if db != nil {
		size += db.NumIntervals()*8 + len(db.Sequences)*4
	}
	buf := make([]byte, 0, size)
	buf = append(buf, typ)
	buf = binary.AppendUvarint(buf, version)
	buf = appendString(buf, name)
	if typ != recDelete {
		buf = appendDatabase(buf, db)
	}
	return buf
}

// encodeJobRecord builds the payload of one job WAL record. blob is the
// opaque spec/result payload; nil for job-delete records.
func encodeJobRecord(typ byte, version uint64, id string, blob []byte) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(id)+len(blob))
	buf = append(buf, typ)
	buf = binary.AppendUvarint(buf, version)
	buf = appendString(buf, id)
	if typ != recJobDelete {
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf
}

// ------------------------------------------------------------- decoding

// byteCursor walks an encoded payload with bounds checking.
type byteCursor struct {
	buf []byte
	off int
}

func (c *byteCursor) byte() (byte, error) {
	if c.off >= len(c.buf) {
		return 0, errors.New("payload truncated")
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, errors.New("bad uvarint")
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, errors.New("bad varint")
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) string() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(c.buf)-c.off) < n {
		return "", errors.New("string length past payload end")
	}
	s := string(c.buf[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

// bytes reads a uvarint-prefixed byte blob, copying it out of the
// frame buffer so the record outlives the read buffer.
func (c *byteCursor) bytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(c.buf)-c.off) < n {
		return nil, errors.New("blob length past payload end")
	}
	b := make([]byte, n)
	copy(b, c.buf[c.off:c.off+int(n)])
	c.off += int(n)
	return b, nil
}

func (c *byteCursor) database() (*interval.Database, error) {
	nSeq, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(c.buf)-c.off) < nSeq {
		return nil, fmt.Errorf("sequence count %d past payload end", nSeq)
	}
	db := &interval.Database{}
	if nSeq > 0 {
		db.Sequences = make([]interval.Sequence, 0, nSeq)
	}
	for s := uint64(0); s < nSeq; s++ {
		id, err := c.string()
		if err != nil {
			return nil, err
		}
		nIv, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if uint64(len(c.buf)-c.off) < nIv {
			return nil, fmt.Errorf("interval count %d past payload end", nIv)
		}
		seq := interval.Sequence{ID: id}
		if nIv > 0 {
			seq.Intervals = make([]interval.Interval, 0, nIv)
		}
		for i := uint64(0); i < nIv; i++ {
			sym, err := c.string()
			if err != nil {
				return nil, err
			}
			start, err := c.varint()
			if err != nil {
				return nil, err
			}
			end, err := c.varint()
			if err != nil {
				return nil, err
			}
			seq.Intervals = append(seq.Intervals, interval.Interval{Symbol: sym, Start: start, End: end})
		}
		db.Sequences = append(db.Sequences, seq)
	}
	return db, nil
}

// decodeRecord parses a WAL record payload.
func decodeRecord(payload []byte) (record, error) {
	c := &byteCursor{buf: payload}
	typ, err := c.byte()
	if err != nil {
		return record{}, err
	}
	if typ < recPut || typ > recJobResult {
		return record{}, fmt.Errorf("unknown record type %d", typ)
	}
	version, err := c.uvarint()
	if err != nil {
		return record{}, err
	}
	name, err := c.string()
	if err != nil {
		return record{}, err
	}
	rec := record{typ: typ, version: version, name: name}
	switch typ {
	case recPut, recAppend:
		if rec.db, err = c.database(); err != nil {
			return record{}, err
		}
	case recJobPut, recJobResult:
		if rec.blob, err = c.bytes(); err != nil {
			return record{}, err
		}
	}
	if c.off != len(payload) {
		return record{}, fmt.Errorf("%d trailing bytes after record", len(payload)-c.off)
	}
	return rec, nil
}
