// Package persist makes tpmd's dataset store durable: an append-only
// write-ahead log of framed, CRC32C-checksummed mutation records
// (put/append/delete for datasets, job-put/job-delete/job-result for
// continuous-mining jobs, each carrying the name and the store version
// it installed), periodic full-state snapshots, and boot-time recovery
// that loads the newest valid snapshot and replays the WAL tail.
//
// All I/O goes through a blob.Store (internal/blob): WAL segments are
// append-only blobs, snapshots are atomic-Put blobs, and the backend is
// chosen by URL — file://<dir> for the classic one-directory layout,
// mem://<name> for tests and ephemeral servers, with an S3-style
// backend as the designed next step. The blob interface carries exactly
// the commit semantics the invariants below need: atomic Put (a
// snapshot is never observable half-written), ordered truncatable
// appends (the WAL's write/rollback cycle), and a namespace Sync
// barrier (the directory fsync that makes segment creation and deletion
// durable).
//
// # Protocol
//
// The server's store calls LogPut/LogAppend/LogDelete *before* a
// mutation becomes visible, so an acknowledged mutation is always in
// the log (commit-before-visible). Each record carries the store
// version it installs; recovery restores the version counter to the
// maximum seen across the snapshot and the replayed tail, so (name,
// version) cache keys and the strong ETags derived from them never
// repeat across restarts — even when the last mutation before a crash
// was a delete.
//
// # Crash tolerance
//
// Recovery tolerates a torn final record (the signature of a crash mid
// write): the log is truncated at the first damaged frame and the
// prefix is kept. A corrupt frame anywhere — bit-flipped CRC, garbled
// varint — stops replay the same way, because framing after a bad
// record cannot be trusted. Snapshots commit atomically through
// blob.Store.Put; a partial snapshot (possible only through damage
// outside the store's control) fails its length/CRC check and recovery
// falls back to the next older valid one (the WAL covering it is only
// deleted after the newer snapshot is durable, so no data is lost).
//
// # Compaction
//
// When the live WAL segment grows past Options.WALMaxBytes, the store
// cuts a snapshot of its in-memory mirror state, opens a fresh segment,
// and deletes the old segments and snapshots the new one supersedes.
// Close flushes, fsyncs, and cuts a final snapshot so a clean shutdown
// restarts without any replay.
//
// # Durability modes
//
// Options.FsyncMode trades write latency for crash durability:
// "always" fsyncs the WAL after every record (an acknowledged mutation
// survives power loss), "interval" fsyncs on a background tick
// (bounded-loss, Redis-AOF-everysec style), "never" leaves flushing to
// the OS (survives process crash, not power loss). Durability is also
// bounded by the backend: mem:// never survives the process no matter
// the mode.
package persist

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"tpminer/internal/blob"
	"tpminer/internal/interval"
	"tpminer/internal/obs"
	"tpminer/internal/resilience"
)

// Fsync policy names accepted by Options.FsyncMode.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncNever    = "never"
)

// Defaults for Options zero values.
const (
	// DefaultWALMaxBytes is the live-segment size that triggers
	// snapshot + compaction (64 MiB).
	DefaultWALMaxBytes = 64 << 20
	// DefaultFsyncInterval is the background fsync cadence in
	// "interval" mode.
	DefaultFsyncInterval = 100 * time.Millisecond
)

// Options configures a Store. The zero value selects "always" fsync
// and the default compaction threshold.
type Options struct {
	// FsyncMode is "always" (default), "interval", or "never".
	FsyncMode string
	// FsyncInterval is the flush cadence in "interval" mode. 0 means
	// DefaultFsyncInterval.
	FsyncInterval time.Duration
	// WALMaxBytes triggers snapshot + compaction when the live segment
	// passes it. 0 means DefaultWALMaxBytes.
	WALMaxBytes int64
	// Logger receives recovery and compaction records; nil disables.
	Logger *slog.Logger
	// Injector, when non-nil, wraps the blob store in a fault-injecting
	// decorator so tests and the -fault-profile dev flag can plant
	// errors, latency, and torn writes at the WAL and snapshot I/O
	// boundaries of any backend. nil (the production default) disables
	// injection.
	Injector resilience.Injector
	// Retry governs how transient I/O failures on WAL appends and
	// snapshot writes are retried. The zero value selects the
	// resilience defaults (3 attempts, 5ms..80ms jittered backoff).
	// Fsyncs are deliberately never retried: after one failed fsync the
	// kernel may already have dropped the dirty pages, so a passing
	// retry proves nothing (the record is rolled back instead).
	Retry resilience.RetryPolicy
}

func (o Options) withDefaults() (Options, error) {
	switch o.FsyncMode {
	case "":
		o.FsyncMode = FsyncAlways
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return o, fmt.Errorf("persist: unknown fsync mode %q (want always, interval, or never)", o.FsyncMode)
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.WALMaxBytes <= 0 {
		o.WALMaxBytes = DefaultWALMaxBytes
	}
	if o.Logger == nil {
		o.Logger = obs.Discard()
	}
	return o, nil
}

// DatasetState is one recovered dataset: the database and the store
// version under which it was installed.
type DatasetState struct {
	DB      *interval.Database
	Version uint64
}

// JobState is one recovered continuous-mining job: the opaque spec
// blob journaled at creation and, when the job has completed at least
// one run, the opaque blob of its latest result. Persist never looks
// inside either blob — the server owns their schema (JSON job specs and
// result summaries) — it only guarantees they survive restarts.
type JobState struct {
	// Spec is the job definition, journaled by LogJobPut; SpecVersion is
	// the store version that installed it.
	Spec        []byte
	SpecVersion uint64
	// Result is the latest run's stored summary (nil until the first
	// LogJobResult); ResultVersion is the store version that installed
	// it.
	Result        []byte
	ResultVersion uint64
}

// RecoveryStats describes what Open found in the store.
type RecoveryStats struct {
	// Duration is the wall time of snapshot load + WAL replay.
	Duration time.Duration
	// SnapshotLoaded reports whether a valid snapshot seeded the state;
	// SnapshotVersion is its verSeq.
	SnapshotLoaded  bool
	SnapshotVersion uint64
	// RecordsReplayed counts WAL records applied on top of the snapshot.
	RecordsReplayed int
	// Truncations counts logs cut short at a torn or corrupt frame.
	Truncations int
	// TempFilesRemoved counts orphaned snapshot temp files (left by a
	// compaction that died mid-write) deleted during the boot scan.
	TempFilesRemoved int
}

// Metrics receives the store's operational counters; implementations
// must be safe for concurrent use. See internal/server for the
// tpmd_persist_* and tpmd_blob_* Prometheus wiring.
type Metrics interface {
	// WALBytes reports the live WAL segment's current size.
	WALBytes(n int64)
	// RecordAppended counts one record committed to the WAL.
	RecordAppended()
	// FsyncDone counts one fsync of the WAL file.
	FsyncDone()
	// SnapshotDone counts one completed snapshot and its duration.
	SnapshotDone(d time.Duration)
	// RecoveryDone reports the boot-time recovery outcome.
	RecoveryDone(d time.Duration, recordsReplayed, truncations int)
	// RetryDone counts one retried I/O attempt on the named operation.
	RetryDone(op string)
	// BlobOp counts one blob-store operation: backend kind ("file",
	// "mem"), operation name, payload bytes moved, and error outcome.
	BlobOp(backend, op string, n int, err error)
}

// blobMetricsAdapter bridges the blob.Metrics sink onto persist.Metrics.
type blobMetricsAdapter struct{ m Metrics }

func (a blobMetricsAdapter) Op(backend, op string, n int, err error) {
	a.m.BlobOp(backend, op, n, err)
}

// ErrClosed is returned by mutations on a closed Store.
var ErrClosed = errors.New("persist: store is closed")

// Store is the durability engine: one blob store holding the live WAL
// segment and the snapshots, plus an in-memory mirror of the full
// dataset state (sharing the immutable databases, so the mirror costs
// pointers, not copies) from which snapshots are cut.
type Store struct {
	label  string // backend URL (or equivalent) for logs
	opt    Options
	logger *slog.Logger

	// bs is the store all I/O goes through: the backend, wrapped first
	// by the fault injector (when configured) and then by the metrics
	// instrumentation (inst), outermost so every attempt — including
	// injected failures — is counted.
	bs   blob.Store
	inst *blob.Instrumented

	mu        sync.Mutex
	wal       blob.Appender
	walKey    string
	walBytes  int64
	compactAt int64
	dirty     bool  // bytes written since the last fsync
	failed    error // sticky failure: set when the WAL is wedged or the store closed
	state     map[string]DatasetState
	jobs      map[string]JobState
	verSeq    uint64
	met       Metrics
	recov     RecoveryStats

	stopSync chan struct{} // closes the interval-mode syncer
	syncDone chan struct{}
}

// Open recovers the state in the directory dir (creating it if needed)
// and returns a store ready for logging — the file:// convenience form
// of OpenURL, and the layout every pre-blob data directory already has.
func Open(dir string, opt Options) (*Store, error) {
	return OpenURL("file://"+dir, opt)
}

// OpenURL builds the blob backend named by storeURL (see blob.NewStore
// for the accepted schemes) and recovers the state it holds. Recovery
// loads the newest valid snapshot, replays the WAL tail on top,
// truncates at the first torn or corrupt frame, and keeps appending to
// the surviving segment.
func OpenURL(storeURL string, opt Options) (*Store, error) {
	bs, err := blob.NewStore(storeURL)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return OpenStore(bs, storeURL, opt)
}

// OpenStore recovers the state held by an already-constructed backend.
// The persist store takes ownership of bs: Close closes it. label names
// the backend in logs (typically its URL).
func OpenStore(bs blob.Store, label string, opt Options) (*Store, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if opt.Injector != nil {
		bs = newFaultStore(bs, opt.Injector)
	}
	inst := blob.Instrument(bs)
	s := &Store{
		label:     label,
		opt:       opt,
		logger:    opt.Logger,
		bs:        inst,
		inst:      inst,
		compactAt: opt.WALMaxBytes,
		state:     make(map[string]DatasetState),
		jobs:      make(map[string]JobState),
	}
	start := time.Now()
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.recov.Duration = time.Since(start)
	s.logger.Info("persist recovered",
		"store", label,
		"backend", bs.Backend(),
		"datasets", len(s.state),
		"jobs", len(s.jobs),
		"version", s.verSeq,
		"snapshot_loaded", s.recov.SnapshotLoaded,
		"records_replayed", s.recov.RecordsReplayed,
		"truncations", s.recov.Truncations,
		"duration_ms", s.recov.Duration.Milliseconds())
	if opt.FsyncMode == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

// Recovered returns the dataset state and version counter restored by
// Open. The caller may take ownership of the map; the databases are
// shared and must be treated as immutable.
func (s *Store) Recovered() (map[string]DatasetState, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]DatasetState, len(s.state))
	for name, ds := range s.state {
		out[name] = ds
	}
	return out, s.verSeq
}

// RecoveredJobs returns the continuous-mining job table restored by
// Open. The caller may take ownership of the map and the blobs inside
// (persist keeps its own references but never mutates the bytes).
func (s *Store) RecoveredJobs() map[string]JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]JobState, len(s.jobs))
	for id, js := range s.jobs {
		out[id] = js
	}
	return out
}

// RecoveryStats returns what Open found in the store.
func (s *Store) RecoveryStats() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recov
}

// SetMetrics attaches the metrics sink — to the store and to the blob
// instrumentation layer beneath it — and immediately reports the
// recovery outcome and current WAL size, so a server wiring metrics
// after Open still sees the boot numbers.
func (s *Store) SetMetrics(m Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
	if m != nil {
		s.inst.SetMetrics(blobMetricsAdapter{m})
		m.RecoveryDone(s.recov.Duration, s.recov.RecordsReplayed, s.recov.Truncations)
		m.WALBytes(s.walBytes)
	} else {
		s.inst.SetMetrics(nil)
	}
}

// LogPut commits a dataset replacement. db must be treated as
// immutable from here on.
func (s *Store) LogPut(name string, version uint64, db *interval.Database) error {
	payload := encodeRecord(recPut, version, name, db)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	s.state[name] = DatasetState{DB: db, Version: version}
	s.verSeq = version
	s.maybeCompactLocked()
	return nil
}

// LogAppend commits an append of add's sequences to an existing
// dataset. Only the increment is logged; the mirror state extends its
// copy with shared sequence headers, exactly as the server store does.
func (s *Store) LogAppend(name string, version uint64, add *interval.Database) error {
	payload := encodeRecord(recAppend, version, name, add)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	s.applyAppendLocked(name, version, add)
	s.verSeq = version
	s.maybeCompactLocked()
	return nil
}

// LogDelete commits a dataset removal. The version still advances so
// the counter recovers correctly even when a delete is the last record
// before a crash.
func (s *Store) LogDelete(name string, version uint64) error {
	payload := encodeRecord(recDelete, version, name, nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	delete(s.state, name)
	s.verSeq = version
	s.maybeCompactLocked()
	return nil
}

// LogJobPut commits a continuous-mining job creation. spec is opaque to
// persist (the server journals its JSON job spec); version must come
// from the same store-wide counter as dataset mutations, or the
// replay-skip invariant breaks. A re-put of an existing id replaces the
// job and drops its stored result.
func (s *Store) LogJobPut(id string, version uint64, spec []byte) error {
	payload := encodeJobRecord(recJobPut, version, id, spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	s.jobs[id] = JobState{Spec: spec, SpecVersion: version}
	s.verSeq = version
	s.maybeCompactLocked()
	return nil
}

// LogJobDelete commits a job removal. As with dataset deletes, the
// version still advances so the counter recovers correctly even when
// this is the last record before a crash.
func (s *Store) LogJobDelete(id string, version uint64) error {
	payload := encodeJobRecord(recJobDelete, version, id, nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	delete(s.jobs, id)
	s.verSeq = version
	s.maybeCompactLocked()
	return nil
}

// LogJobResult commits the latest result summary of a job run. Only the
// newest result is retained — each record supersedes the previous one
// in the mirror, and compaction folds the chain into one snapshot
// entry. A result for an unknown job is journaled but not mirrored
// (matching applyRecord's treatment on replay, where the job's put may
// have been lost to a truncation).
func (s *Store) LogJobResult(id string, version uint64, result []byte) error {
	payload := encodeJobRecord(recJobResult, version, id, result)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	if js, ok := s.jobs[id]; ok {
		js.Result, js.ResultVersion = result, version
		s.jobs[id] = js
	}
	s.verSeq = version
	s.maybeCompactLocked()
	return nil
}

// applyAppendLocked extends the mirror copy of a dataset with shared
// sequence headers (the stored databases are immutable, so sequences
// are never copied deeply).
func (s *Store) applyAppendLocked(name string, version uint64, add *interval.Database) {
	old, ok := s.state[name]
	if !ok {
		// Replaying an append whose base put was lost to a truncation:
		// nothing to extend. The live path never hits this — the server
		// store verifies existence before logging.
		return
	}
	grown := &interval.Database{Sequences: make([]interval.Sequence, 0, len(old.DB.Sequences)+len(add.Sequences))}
	grown.Sequences = append(grown.Sequences, old.DB.Sequences...)
	grown.Sequences = append(grown.Sequences, add.Sequences...)
	s.state[name] = DatasetState{DB: grown, Version: version}
}

// appendLocked writes one framed record to the live WAL segment and
// applies the fsync policy. Transient write failures are retried under
// the store's retry policy, with the partial frame rolled back before
// each retry so the log never gains an interior torn record. A failed
// fsync is never retried — after one failure the kernel may already
// have dropped the dirty pages, so a passing retry proves nothing
// (the fsyncgate lesson); the record is rolled back and the mutation
// rejected instead, leaving recovery to the caller's probe. Only a
// failed rollback wedges the store (sticky failure): the log tail is
// then in an unknown state and no further append can be trusted.
func (s *Store) appendLocked(payload []byte) error {
	if s.failed != nil {
		return s.failed
	}
	if s.wal == nil {
		return errors.New("persist: WAL not open")
	}
	frame := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload)
	write := func() error {
		if s.failed != nil {
			return s.failed
		}
		_, err := s.wal.Write(frame)
		if err == nil {
			return nil
		}
		// The frame may be half on the backend; cut it off so a retry
		// starts from a clean tail.
		if werr := s.rollbackTailLocked(err); werr != nil {
			return werr
		}
		return err
	}
	if err := s.retryLocked(resilience.OpWALWrite, write); err != nil {
		if s.failed != nil {
			return s.failed
		}
		return fmt.Errorf("persist: WAL append: %w", err)
	}
	if s.opt.FsyncMode == FsyncAlways {
		if err := s.wal.Sync(); err != nil {
			// Roll the unacknowledged record back so it can never
			// resurrect on replay after the caller was told it failed.
			if werr := s.rollbackTailLocked(err); werr != nil {
				return werr
			}
			return fmt.Errorf("persist: WAL fsync: %w", err)
		}
		s.dirty = false
		if s.met != nil {
			s.met.FsyncDone()
		}
	} else {
		s.dirty = true
	}
	s.walBytes += int64(len(frame))
	if s.met != nil {
		s.met.RecordAppended()
		s.met.WALBytes(s.walBytes)
	}
	return nil
}

// rollbackTailLocked truncates the WAL back to the last committed
// record (s.walBytes) after a failed write or fsync. cause is the I/O
// error that forced the rollback. If the rollback itself fails the
// store wedges — the sticky failure is tagged permanent so no layer
// above retries against a log tail in an unknown state.
func (s *Store) rollbackTailLocked(cause error) error {
	if terr := s.wal.Truncate(s.walBytes); terr != nil {
		s.failed = fmt.Errorf("persist: WAL wedged (write failed: %v; truncate failed: %v): %w",
			cause, terr, resilience.ErrPermanent)
		return s.failed
	}
	return nil
}

// retryLocked runs op under the store's retry policy, logging and
// counting every retried attempt. Backoff sleeps hold the store lock —
// acceptable because the WAL is strictly ordered, so no other mutation
// could make progress anyway, and the capped backoff bounds the stall.
func (s *Store) retryLocked(op resilience.Op, f func() error) error {
	return s.opt.Retry.Do(f, func(err error, attempt int) {
		s.logger.Warn("persist: retrying after transient failure",
			"op", string(op), "attempt", attempt, "error", err)
		if s.met != nil {
			s.met.RetryDone(string(op))
		}
	})
}

// maybeCompactLocked cuts a snapshot and rotates the WAL once the live
// segment passes the threshold. Failure is non-fatal — the record is
// already durable in the WAL — but backs off so a persistently failing
// snapshot is not retried on every write.
func (s *Store) maybeCompactLocked() {
	if s.walBytes < s.compactAt {
		return
	}
	if err := s.snapshotLocked(true); err != nil {
		s.logger.Warn("persist compaction failed; will retry later", "error", err)
		s.compactAt = s.walBytes + s.opt.WALMaxBytes
		return
	}
	s.compactAt = s.opt.WALMaxBytes
}

// Snapshot forces a snapshot + WAL rotation now. Typically only needed
// by tests and at shutdown (Close cuts one automatically).
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	return s.snapshotLocked(true)
}

// Probe attempts to restore a store whose write path has been failing
// — the recovery path the server's circuit breaker drives while in
// degraded mode. It clears any sticky failure and re-journals the full
// in-memory mirror: a fresh snapshot (the mirror always equals the
// acknowledged visible state, because mutations commit here before
// becoming visible), a fresh WAL segment, and removal of everything
// superseded. On failure the prior sticky failure (if any) is restored
// so the store stays firmly wedged rather than half-open. A closed
// store reports ErrClosed.
func (s *Store) Probe() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(s.failed, ErrClosed) {
		return ErrClosed
	}
	prevFailed := s.failed
	s.failed = nil
	if err := s.snapshotLocked(true); err != nil {
		// snapshotLocked may itself have set a fresh sticky failure
		// (e.g. the WAL rotation failed); keep the newer diagnosis.
		if s.failed == nil {
			s.failed = prevFailed
		}
		return err
	}
	s.logger.Info("persist probe succeeded; write path restored",
		"version", s.verSeq, "datasets", len(s.state))
	return nil
}

// snapshotLocked writes the mirror state as a snapshot, then — when
// rotate is set — opens a fresh WAL segment and deletes the blobs the
// snapshot supersedes.
func (s *Store) snapshotLocked(rotate bool) error {
	start := time.Now()
	// The snapshot commits atomically (blob.Store.Put) and is made
	// namespace-durable before any WAL segment is removed, so
	// superseded records are never deleted ahead of their replacement
	// being durable. Transient Put failures retry; the atomic-Put
	// contract guarantees each failed attempt leaves nothing behind.
	err := s.retryLocked(resilience.OpSnapshotWrite, func() error {
		return s.bs.Put(snapshotName(s.verSeq), encodeSnapshotFile(s.state, s.jobs, s.verSeq))
	})
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	s.namespaceSyncLocked()
	if s.met != nil {
		s.met.SnapshotDone(time.Since(start))
	}
	if !rotate {
		return nil
	}
	if err := s.openWALLocked(s.verSeq, true); err != nil {
		return err
	}
	s.removeSupersededLocked(s.verSeq)
	s.logger.Info("persist snapshot cut", "version", s.verSeq, "datasets", len(s.state),
		"duration_ms", time.Since(start).Milliseconds())
	return nil
}

// openWALLocked closes the current segment (if any) and opens the
// segment named for baseVer, truncating it when fresh is set. The
// namespace sync afterwards makes a freshly created segment's existence
// durable — without it, a power cut could lose the dirent and with it
// every record fsynced into the file.
func (s *Store) openWALLocked(baseVer uint64, fresh bool) error {
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil {
			s.logger.Warn("persist: final fsync of rotated WAL segment failed", "segment", s.walKey, "error", err)
		}
		if err := s.wal.Close(); err != nil {
			s.logger.Warn("persist: closing rotated WAL segment failed", "segment", s.walKey, "error", err)
		}
		s.wal = nil
	}
	key := walName(baseVer)
	a, err := s.bs.Append(key)
	if err != nil {
		s.failed = fmt.Errorf("persist: open WAL: %w", err)
		return s.failed
	}
	if fresh && a.Size() > 0 {
		if err := a.Truncate(0); err != nil {
			if cerr := a.Close(); cerr != nil {
				s.logger.Warn("persist: closing unusable WAL segment failed", "segment", key, "error", cerr)
			}
			s.failed = fmt.Errorf("persist: reset WAL: %w", err)
			return s.failed
		}
	}
	s.wal, s.walKey, s.walBytes, s.dirty = a, key, a.Size(), false
	s.namespaceSyncLocked()
	if s.met != nil {
		s.met.WALBytes(s.walBytes)
	}
	return nil
}

// namespaceSyncLocked runs the backend's namespace durability barrier
// (a directory fsync on file://) so blob creations, deletions, and Put
// commits issued so far survive power loss. Refusals are logged at warn
// — some filesystems reject directory fsync, and a silently weakened
// durability contract is the kind of thing an operator needs to see.
func (s *Store) namespaceSyncLocked() {
	if err := s.bs.Sync(); err != nil {
		s.logger.Warn("persist: namespace sync failed; recent blob creates/deletes may not survive power loss",
			"error", err)
	}
}

// removeSupersededLocked deletes WAL segments and snapshots made
// redundant by a durable snapshot at verSeq, then syncs the namespace
// so the deletions are themselves durable.
func (s *Store) removeSupersededLocked(verSeq uint64) {
	keys, err := s.bs.List("")
	if err != nil {
		s.logger.Warn("persist: listing superseded blobs failed; skipping cleanup", "error", err)
		return
	}
	keepSnap := snapshotName(verSeq)
	removed := 0
	for _, key := range keys {
		if key == keepSnap || key == s.walKey {
			continue
		}
		if isSnapshotKey(key) || isWALKey(key) || isTempKey(key) {
			if err := s.bs.Delete(key); err != nil {
				s.logger.Warn("persist: deleting superseded blob failed", "key", key, "error", err)
				continue
			}
			removed++
		}
	}
	if removed > 0 {
		s.namespaceSyncLocked()
	}
}

// isTempKey reports whether key is a leftover atomic-Put temp object.
func isTempKey(key string) bool {
	return len(key) > 4 && key[len(key)-4:] == ".tmp"
}

// syncIfDirty flushes pending WAL bytes; the interval-mode loop calls
// it on every tick.
func (s *Store) syncIfDirty() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil || !s.dirty || s.wal == nil {
		return
	}
	if err := s.wal.Sync(); err != nil {
		// The already-acknowledged dirty records may or may not be on
		// the platter (interval mode accepts bounded loss); sticky-fail
		// so the caller's recovery probe re-journals the full state.
		s.failed = fmt.Errorf("persist: WAL fsync: %w", err)
		return
	}
	s.dirty = false
	if s.met != nil {
		s.met.FsyncDone()
	}
}

func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opt.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.syncIfDirty()
		}
	}
}

// Close flushes and fsyncs the WAL, cuts a final snapshot so the next
// boot needs no replay, releases the store, and closes the blob
// backend. Mutations after Close return ErrClosed.
func (s *Store) Close() error {
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(s.failed, ErrClosed) {
		return nil
	}
	var firstErr error
	if s.wal != nil && s.failed == nil {
		if err := s.wal.Sync(); err != nil {
			firstErr = fmt.Errorf("persist: close fsync: %w", err)
		} else {
			s.dirty = false
			if s.met != nil {
				s.met.FsyncDone()
			}
			if err := s.snapshotLocked(false); err != nil {
				firstErr = err
			} else {
				// The snapshot covers everything; the segments are now
				// redundant. walKey is cleared first so the live
				// segment is removed too.
				key := s.walKey
				s.walKey = ""
				s.removeSupersededLocked(s.verSeq)
				if err := s.bs.Delete(key); err != nil {
					s.logger.Warn("persist: deleting final WAL segment failed", "key", key, "error", err)
				}
				s.namespaceSyncLocked()
			}
		}
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("persist: close WAL: %w", err)
		}
		s.wal = nil
	}
	if err := s.bs.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("persist: close blob store: %w", err)
	}
	s.failed = ErrClosed
	return firstErr
}

// ------------------------------------------------------------- recovery

// recover loads the newest valid snapshot, replays the WAL tail, and
// leaves the store appending to the surviving segment.
func (s *Store) recover() error {
	keys, err := s.bs.List("")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	type seqFile struct {
		seq  uint64
		name string
	}
	var snaps, wals []seqFile
	cleaned := false
	for _, key := range keys {
		if v, ok := parseSeqName(key, "snapshot-", ".snap"); ok {
			snaps = append(snaps, seqFile{v, key})
		}
		if v, ok := parseSeqName(key, "wal-", ".log"); ok {
			wals = append(wals, seqFile{v, key})
		}
		if isTempKey(key) {
			// An atomic Put that died mid-commit leaves its temp object
			// behind; without cleanup they accumulate forever. The
			// commit never happened, so the object is covered by the
			// live WAL and safe to drop.
			if err := s.bs.Delete(key); err != nil {
				s.logger.Warn("persist: removing orphaned temp blob failed", "key", key, "error", err)
				continue
			}
			s.recov.TempFilesRemoved++
			cleaned = true
			s.logger.Info("persist: removed orphaned snapshot temp file", "file", key)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq }) // newest first
	sort.Slice(wals, func(i, j int) bool { return wals[i].seq < wals[j].seq })    // oldest first

	for _, sn := range snaps {
		buf, err := s.bs.Get(sn.name)
		if err != nil {
			s.logger.Warn("persist: skipping unreadable snapshot", "file", sn.name, "error", err)
			continue
		}
		state, jobs, verSeq, err := decodeSnapshotFile(buf)
		if err != nil {
			s.logger.Warn("persist: skipping invalid snapshot", "file", sn.name, "error", err)
			continue
		}
		s.state, s.jobs, s.verSeq = state, jobs, verSeq
		s.recov.SnapshotLoaded = true
		s.recov.SnapshotVersion = verSeq
		break
	}

	// Replay every segment in order, skipping records the snapshot
	// already covers. A torn or corrupt frame truncates its segment and
	// ends replay: frames after it cannot be trusted, and later
	// segments would skip over the gap. (In practice compaction leaves
	// a single live segment, so "later segments" only exist after an
	// unclean shutdown mid-rotation.) The truncation itself happens
	// through the reopened appender below, once the surviving segment
	// is the live one.
	lastIdx := -1
	truncAt := int64(-1)
	stopped := false
	for i, wf := range wals {
		if stopped {
			// Unreachable records; drop the segment so the next boot
			// does not see a gap.
			if err := s.bs.Delete(wf.name); err != nil {
				s.logger.Warn("persist: deleting unreachable WAL segment failed", "key", wf.name, "error", err)
			} else {
				cleaned = true
			}
			continue
		}
		lastIdx = i
		// Stream the segment via Open — segments can be large, and the
		// streaming read is the seam a larger-than-RAM replay would
		// build on.
		data, err := readAllBlob(s.bs, wf.name)
		if err != nil {
			return fmt.Errorf("persist: read WAL %s: %w", wf.name, err)
		}
		off := 0
		for {
			payload, n, err := parseFrame(data[off:])
			if err == errEndOfLog {
				break
			}
			var fe *frameErr
			if errors.As(err, &fe) {
				s.logger.Warn("persist: truncating WAL at damaged frame",
					"file", wf.name, "offset", off, "torn", fe.torn, "error", fe.msg)
				truncAt = int64(off)
				s.recov.Truncations++
				stopped = true
				break
			}
			rec, derr := decodeRecord(payload)
			if derr != nil {
				// Framing was intact but the contents are not a valid
				// record: same treatment as a corrupt frame.
				s.logger.Warn("persist: truncating WAL at undecodable record",
					"file", wf.name, "offset", off, "error", derr)
				truncAt = int64(off)
				s.recov.Truncations++
				stopped = true
				break
			}
			off += n
			if rec.version <= s.recov.SnapshotVersion && s.recov.SnapshotLoaded {
				continue // already in the snapshot
			}
			s.applyRecord(rec)
			s.recov.RecordsReplayed++
			if rec.version > s.verSeq {
				s.verSeq = rec.version
			}
		}
	}
	if cleaned {
		// Make the boot-time deletions durable: a power cut must not
		// resurrect unreachable segments or orphaned temp objects.
		s.namespaceSyncLocked()
	}

	// Keep appending to the surviving segment (repairing its damaged
	// tail first), or start a fresh one.
	if lastIdx >= 0 {
		if err := s.openWALLocked(wals[lastIdx].seq, false); err != nil {
			return err
		}
		if truncAt >= 0 {
			if err := s.wal.Truncate(truncAt); err != nil {
				return fmt.Errorf("persist: truncate WAL %s: %w", wals[lastIdx].name, err)
			}
			// Fsync the repair so the damaged tail cannot resurrect
			// after a power cut between boot and the next record.
			if err := s.wal.Sync(); err != nil {
				s.logger.Warn("persist: fsync of repaired WAL tail failed", "error", err)
			}
			s.walBytes = truncAt
		}
		return nil
	}
	return s.openWALLocked(s.verSeq, false)
}

// applyRecord folds one replayed record into the mirror state.
func (s *Store) applyRecord(rec record) {
	switch rec.typ {
	case recPut:
		s.state[rec.name] = DatasetState{DB: rec.db, Version: rec.version}
	case recAppend:
		s.applyAppendLocked(rec.name, rec.version, rec.db)
	case recDelete:
		delete(s.state, rec.name)
	case recJobPut:
		s.jobs[rec.name] = JobState{Spec: rec.blob, SpecVersion: rec.version}
	case recJobDelete:
		delete(s.jobs, rec.name)
	case recJobResult:
		if js, ok := s.jobs[rec.name]; ok {
			js.Result, js.ResultVersion = rec.blob, rec.version
			s.jobs[rec.name] = js
		}
	}
}
