package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tpminer/internal/interval"
)

// shallowExtend mirrors the server store's copy-on-write append: shared
// sequence headers, no interval cloning.
func shallowExtend(base, add *interval.Database) *interval.Database {
	out := &interval.Database{Sequences: make([]interval.Sequence, 0, len(base.Sequences)+len(add.Sequences))}
	out.Sequences = append(out.Sequences, base.Sequences...)
	out.Sequences = append(out.Sequences, add.Sequences...)
	return out
}

// walSize returns the size of the newest WAL segment.
func walSize(t *testing.T, dir string) (string, int64) {
	t.Helper()
	_, wals := listDataFiles(t, dir)
	if len(wals) == 0 {
		t.Fatal("no WAL segment")
	}
	path := filepath.Join(dir, wals[len(wals)-1])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, fi.Size()
}

// TestRecoveryTornTail: a crash mid-write leaves a half-frame at the
// end of the log. Recovery must keep every complete record, truncate
// the torn tail, and keep accepting writes afterwards.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	dbA, dbB := testDB(1, 3, 5), testDB(2, 2, 2)
	if err := s.LogPut("a", 1, dbA); err != nil {
		t.Fatal(err)
	}
	if err := s.LogPut("b", 2, dbB); err != nil {
		t.Fatal(err)
	}
	// Crash, then shear off the last few bytes of the final frame —
	// the on-disk shape of a power cut mid-append.
	path, size := walSize(t, dir)
	if err := os.Truncate(path, size-3); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	// The put of "b" was torn: only "a" survives.
	assertState(t, s2, map[string]DatasetState{"a": {DB: dbA, Version: 1}}, 1)
	rs := s2.RecoveryStats()
	if rs.Truncations != 1 || rs.RecordsReplayed != 1 {
		t.Errorf("torn-tail stats = %+v, want 1 replayed + 1 truncation", rs)
	}

	// The log must be writable again at the truncation point: new
	// mutations land, and a third boot sees them intact.
	if err := s2.LogPut("c", 2, dbB); err != nil {
		t.Fatalf("write after torn-tail recovery: %v", err)
	}
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	assertState(t, s3, map[string]DatasetState{
		"a": {DB: dbA, Version: 1},
		"c": {DB: dbB, Version: 2},
	}, 2)
	if rs := s3.RecoveryStats(); rs.Truncations != 0 {
		t.Errorf("third boot saw damage again: %+v", rs)
	}
}

// TestRecoveryCorruptCRCMidLog: a bit flip in an early record's payload
// must stop replay at that record — frames beyond a corrupt one cannot
// be trusted — keeping the prefix and truncating the rest.
func TestRecoveryCorruptCRCMidLog(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	dbs := make([]*DatasetState, 5)
	var offsets []int64
	for i := 0; i < 5; i++ {
		db := testDB(i, 2, 3)
		dbs[i] = &DatasetState{DB: db, Version: uint64(i + 1)}
		_, before := walSize(t, dir)
		offsets = append(offsets, before)
		if err := s.LogPut(fmt.Sprintf("ds%d", i), uint64(i+1), db); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload byte inside record 2 (datasets 0 and 1 precede
	// it; 3 and 4 follow it and become unreachable).
	corruptLiveWAL(t, dir, offsets[2]+frameHeaderLen+1)

	s2 := mustOpen(t, dir, Options{})
	assertState(t, s2, map[string]DatasetState{
		"ds0": *dbs[0],
		"ds1": *dbs[1],
	}, 2)
	rs := s2.RecoveryStats()
	if rs.Truncations != 1 || rs.RecordsReplayed != 2 {
		t.Errorf("corrupt-mid-log stats = %+v, want 2 replayed + 1 truncation", rs)
	}
	// The file itself was cut at the corruption, so the next boot is
	// clean.
	if _, size := walSize(t, dir); size != offsets[2] {
		t.Errorf("WAL truncated to %d bytes, want %d", size, offsets[2])
	}
	s2.Close()
}

// TestRecoveryPartialSnapshot: a snapshot that was only partially
// written (crash mid-copy, torn rename target) fails its length/CRC
// check and recovery must fall back to the WAL, losing nothing.
func TestRecoveryPartialSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	dbA, dbB := testDB(1, 3, 5), testDB(2, 2, 2)
	if err := s.LogPut("a", 1, dbA); err != nil {
		t.Fatal(err)
	}
	if err := s.LogPut("b", 2, dbB); err != nil {
		t.Fatal(err)
	}
	// Fabricate a partial snapshot claiming to be newer than the WAL:
	// a valid snapshot prefix cut in half.
	full := filepath.Join(dir, snapshotName(99))
	if _, err := writeSnapshotFile(dir, map[string]DatasetState{
		"bogus": {DB: testDB(9, 4, 4), Version: 98},
	}, 99, nil); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from the same doomed snapshot must be
	// ignored too.
	if err := os.WriteFile(full+".tmp", buf[:len(buf)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, map[string]DatasetState{
		"a": {DB: dbA, Version: 1},
		"b": {DB: dbB, Version: 2},
	}, 2)
	rs := s2.RecoveryStats()
	if rs.SnapshotLoaded {
		t.Errorf("recovery stats %+v: loaded a partial snapshot", rs)
	}
}

// TestRecoveryPartialSnapshotFallsBackToOlder: with an older valid
// snapshot present, recovery uses it (plus the WAL tail) instead of the
// damaged newer one.
func TestRecoveryPartialSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	dbA := testDB(1, 3, 5)
	if err := s.LogPut("a", 1, dbA); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // valid snapshot at verSeq 1
		t.Fatal(err)
	}
	dbB := testDB(2, 2, 2)
	if err := s.LogPut("b", 2, dbB); err != nil {
		t.Fatal(err)
	}
	// Damaged "newer" snapshot at verSeq 99.
	full := filepath.Join(dir, snapshotName(99))
	if err := os.WriteFile(full, []byte("TPMSNAP1 this is not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, map[string]DatasetState{
		"a": {DB: dbA, Version: 1},
		"b": {DB: dbB, Version: 2},
	}, 2)
	rs := s2.RecoveryStats()
	if !rs.SnapshotLoaded || rs.SnapshotVersion != 1 || rs.RecordsReplayed != 1 {
		t.Errorf("fallback stats = %+v, want snapshot v1 + 1 replayed", rs)
	}
}

// TestCrashDuringMixedWorkloadWithCompaction drives a put/append/delete
// mix through a store with an aggressive compaction threshold, crashes
// without Close, and checks that recovery reproduces the exact final
// state — acknowledged mutations all present, deleted datasets gone,
// version counter intact — no matter where compaction landed.
func TestCrashDuringMixedWorkloadWithCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{WALMaxBytes: 1 << 10})
	want := map[string]DatasetState{}
	ver := uint64(0)
	for i := 0; i < 120; i++ {
		name := fmt.Sprintf("ds%d", i%9)
		ver++
		switch i % 4 {
		case 0, 1: // put
			db := testDB(i, 2, 4)
			if err := s.LogPut(name, ver, db); err != nil {
				t.Fatal(err)
			}
			want[name] = DatasetState{DB: db, Version: ver}
		case 2: // append when present, else put
			add := testDB(i, 1, 3)
			if old, ok := want[name]; ok {
				if err := s.LogAppend(name, ver, add); err != nil {
					t.Fatal(err)
				}
				want[name] = DatasetState{DB: shallowExtend(old.DB, add), Version: ver}
			} else {
				if err := s.LogPut(name, ver, add); err != nil {
					t.Fatal(err)
				}
				want[name] = DatasetState{DB: add, Version: ver}
			}
		case 3: // delete when present, else put
			if _, ok := want[name]; ok {
				if err := s.LogDelete(name, ver); err != nil {
					t.Fatal(err)
				}
				delete(want, name)
			} else {
				db := testDB(i, 1, 2)
				if err := s.LogPut(name, ver, db); err != nil {
					t.Fatal(err)
				}
				want[name] = DatasetState{DB: db, Version: ver}
			}
		}
	}
	// Crash: no Close, no final snapshot.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, want, ver)
}
