package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Inspect dumps the data directory's snapshot and WAL record headers to
// w for offline debugging: one line per file and per record, and an
// explicit flag on the first damaged frame of each log (with its byte
// offset and whether it looks torn or corrupt). It never modifies the
// directory. The returned error covers only I/O on the directory
// itself; damaged records are reported in the output, not as errors.
func Inspect(dir string, w io.Writer) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("persist: inspect: %w", err)
	}
	var snaps, wals []string
	for _, e := range entries {
		if _, ok := parseSeqName(e.Name(), "snapshot-", ".snap"); ok {
			snaps = append(snaps, e.Name())
		}
		if _, ok := parseSeqName(e.Name(), "wal-", ".log"); ok {
			wals = append(wals, e.Name())
		}
	}
	sort.Strings(snaps)
	sort.Strings(wals)
	if len(snaps) == 0 && len(wals) == 0 {
		fmt.Fprintf(w, "%s: no snapshots or WAL segments\n", dir)
		return nil
	}

	for _, name := range snaps {
		path := filepath.Join(dir, name)
		fi, _ := os.Stat(path)
		var size int64
		if fi != nil {
			size = fi.Size()
		}
		state, verSeq, err := readSnapshotFile(path)
		if err != nil {
			fmt.Fprintf(w, "snapshot %s  %d bytes  INVALID: %v\n", name, size, err)
			continue
		}
		fmt.Fprintf(w, "snapshot %s  %d bytes  version=%d datasets=%d\n",
			name, size, verSeq, len(state))
		names := make([]string, 0, len(state))
		for n := range state {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ds := state[n]
			fmt.Fprintf(w, "  dataset %-20q version=%-6d sequences=%-6d intervals=%d\n",
				n, ds.Version, len(ds.DB.Sequences), ds.DB.NumIntervals())
		}
	}

	for _, name := range wals {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(w, "wal %s  UNREADABLE: %v\n", name, err)
			continue
		}
		fmt.Fprintf(w, "wal %s  %d bytes\n", name, len(data))
		off := 0
		for {
			payload, n, err := parseFrame(data[off:])
			if err == errEndOfLog {
				break
			}
			var fe *frameErr
			if errors.As(err, &fe) {
				kind := "CORRUPT"
				if fe.torn {
					kind = "TORN"
				}
				fmt.Fprintf(w, "  %s frame at offset %d: %s (%d trailing bytes unreadable)\n",
					kind, off, fe.msg, len(data)-off)
				break
			}
			rec, derr := decodeRecord(payload)
			if derr != nil {
				fmt.Fprintf(w, "  CORRUPT record at offset %d: %v (%d trailing bytes unreadable)\n",
					off, derr, len(data)-off)
				break
			}
			switch rec.typ {
			case recDelete:
				fmt.Fprintf(w, "  off=%-10d %-6s version=%-6d dataset=%q payload=%dB\n",
					off, rec.typeName(), rec.version, rec.name, len(payload))
			default:
				fmt.Fprintf(w, "  off=%-10d %-6s version=%-6d dataset=%q sequences=%d intervals=%d payload=%dB\n",
					off, rec.typeName(), rec.version, rec.name,
					len(rec.db.Sequences), rec.db.NumIntervals(), len(payload))
			}
			off += n
		}
	}
	return nil
}
