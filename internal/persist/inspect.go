package persist

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"tpminer/internal/blob"
)

// printer wraps an io.Writer and remembers the first write error, so a
// long dump can short-circuit instead of formatting into a broken pipe
// and the caller gets the failure instead of silent truncation.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Inspect dumps the data directory's snapshot and WAL record headers to
// w for offline debugging — the file:// convenience form of
// InspectStore. It never modifies the directory.
func Inspect(dir string, w io.Writer) error {
	bs, err := blob.NewStore("file://" + dir)
	if err != nil {
		return fmt.Errorf("persist: inspect: %w", err)
	}
	defer bs.Close()
	return InspectStore(bs, dir, w)
}

// InspectStore dumps the store's snapshot and WAL record headers to w:
// one line per blob and per record, and an explicit flag on the first
// damaged frame of each log (with its byte offset and whether it looks
// torn or corrupt). label names the store in the output. It never
// modifies the store. The returned error covers listing the store and
// writing to w; an unreadable blob is reported on its own entry in the
// output, not as an error, so one bad object does not hide the rest.
func InspectStore(bs blob.Store, label string, w io.Writer) error {
	keys, err := bs.List("")
	if err != nil {
		return fmt.Errorf("persist: inspect: %w", err)
	}
	var snaps, wals []string
	for _, key := range keys {
		if isSnapshotKey(key) {
			snaps = append(snaps, key)
		}
		if isWALKey(key) {
			wals = append(wals, key)
		}
	}
	if len(snaps) == 0 && len(wals) == 0 {
		p := &printer{w: w}
		p.printf("%s: no snapshots or WAL segments\n", label)
		return p.err
	}
	p := &printer{w: w}

	for _, name := range snaps {
		buf, err := bs.Get(name)
		if err != nil {
			// A stat/read failure is a finding, not a zero-byte
			// snapshot: report it on the entry.
			p.printf("snapshot %s  UNREADABLE: %v\n", name, err)
			continue
		}
		state, jobs, verSeq, err := decodeSnapshotFile(buf)
		if err != nil {
			p.printf("snapshot %s  %d bytes  INVALID: %v\n", name, len(buf), err)
			continue
		}
		p.printf("snapshot %s  %d bytes  version=%d datasets=%d jobs=%d\n",
			name, len(buf), verSeq, len(state), len(jobs))
		names := make([]string, 0, len(state))
		for n := range state {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ds := state[n]
			p.printf("  dataset %-20q version=%-6d sequences=%-6d intervals=%d\n",
				n, ds.Version, len(ds.DB.Sequences), ds.DB.NumIntervals())
		}
		ids := make([]string, 0, len(jobs))
		for id := range jobs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			js := jobs[id]
			p.printf("  job     %-20q version=%-6d spec=%dB result=%dB result_version=%d\n",
				id, js.SpecVersion, len(js.Spec), len(js.Result), js.ResultVersion)
		}
	}

	for _, name := range wals {
		data, err := readAllBlob(bs, name)
		if err != nil {
			p.printf("wal %s  UNREADABLE: %v\n", name, err)
			continue
		}
		p.printf("wal %s  %d bytes\n", name, len(data))
		off := 0
		for {
			payload, n, err := parseFrame(data[off:])
			if err == errEndOfLog {
				break
			}
			var fe *frameErr
			if errors.As(err, &fe) {
				kind := "CORRUPT"
				if fe.torn {
					kind = "TORN"
				}
				p.printf("  %s frame at offset %d: %s (%d trailing bytes unreadable)\n",
					kind, off, fe.msg, len(data)-off)
				break
			}
			rec, derr := decodeRecord(payload)
			if derr != nil {
				p.printf("  CORRUPT record at offset %d: %v (%d trailing bytes unreadable)\n",
					off, derr, len(data)-off)
				break
			}
			switch {
			case isJobType(rec.typ):
				p.printf("  off=%-10d %-10s version=%-6d job=%q blob=%dB payload=%dB\n",
					off, rec.typeName(), rec.version, rec.name, len(rec.blob), len(payload))
			case rec.typ == recDelete:
				p.printf("  off=%-10d %-6s version=%-6d dataset=%q payload=%dB\n",
					off, rec.typeName(), rec.version, rec.name, len(payload))
			default:
				p.printf("  off=%-10d %-6s version=%-6d dataset=%q sequences=%d intervals=%d payload=%dB\n",
					off, rec.typeName(), rec.version, rec.name,
					len(rec.db.Sequences), rec.db.NumIntervals(), len(payload))
			}
			off += n
		}
	}
	return p.err
}

// readAllBlob streams one blob into memory.
func readAllBlob(bs blob.Store, key string) ([]byte, error) {
	rc, err := bs.Open(key)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return data, err
}
