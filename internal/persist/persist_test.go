package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tpminer/internal/interval"
)

// testDB builds a small database whose contents are derived from seed,
// so different calls produce distinguishable data.
func testDB(seed, seqs, ivs int) *interval.Database {
	db := &interval.Database{Sequences: make([]interval.Sequence, seqs)}
	for s := 0; s < seqs; s++ {
		seq := interval.Sequence{ID: fmt.Sprintf("d%d-s%d", seed, s)}
		for i := 0; i < ivs; i++ {
			start := int64(seed + s + i)
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: fmt.Sprintf("S%d", (seed+i)%5),
				Start:  start,
				End:    start + int64(i%7) + 1,
			})
		}
		db.Sequences[s] = seq
	}
	return db
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// assertState compares a recovered state against the expected
// name→DatasetState map, including full database contents.
func assertState(t *testing.T, s *Store, want map[string]DatasetState, wantVer uint64) {
	t.Helper()
	got, ver := s.Recovered()
	if ver != wantVer {
		t.Errorf("recovered verSeq = %d, want %d", ver, wantVer)
	}
	if len(got) != len(want) {
		t.Errorf("recovered %d datasets, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("dataset %q missing after recovery", name)
			continue
		}
		if g.Version != w.Version {
			t.Errorf("dataset %q version = %d, want %d", name, g.Version, w.Version)
		}
		if !reflect.DeepEqual(g.DB.Sequences, w.DB.Sequences) {
			t.Errorf("dataset %q contents differ after recovery", name)
		}
	}
}

func TestRecordEncodingRoundTrip(t *testing.T) {
	cases := []record{
		{typ: recPut, version: 1, name: "alpha", db: testDB(1, 3, 4)},
		{typ: recAppend, version: 9000, name: "with spaces and ünïcode", db: testDB(2, 1, 1)},
		{typ: recDelete, version: 1 << 40, name: ""},
		{typ: recPut, version: 7, name: "empty", db: &interval.Database{}},
	}
	for _, want := range cases {
		payload := encodeRecord(want.typ, want.version, want.name, want.db)
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decode %s: %v", want.typeName(), err)
		}
		if got.typ != want.typ || got.version != want.version || got.name != want.name {
			t.Errorf("round trip %s: got %+v", want.typeName(), got)
		}
		if want.typ != recDelete && !reflect.DeepEqual(got.db.Sequences, want.db.Sequences) {
			t.Errorf("round trip %s: database differs", want.typeName())
		}
	}
}

func TestSnapshotEncodingRoundTrip(t *testing.T) {
	state := map[string]DatasetState{
		"a": {DB: testDB(1, 4, 6), Version: 3},
		"b": {DB: testDB(2, 1, 1), Version: 9},
	}
	jobs := map[string]JobState{
		"j1": {Spec: []byte(`{"dataset":"a"}`), SpecVersion: 5, Result: []byte(`{"runs":3}`), ResultVersion: 8},
		"j2": {Spec: []byte(`{"dataset":"b"}`), SpecVersion: 7},
	}
	payload := encodeSnapshot(state, jobs, 42)
	got, gotJobs, verSeq, err := decodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if verSeq != 42 || len(got) != 2 {
		t.Fatalf("decoded verSeq=%d datasets=%d", verSeq, len(got))
	}
	for name, w := range state {
		if !reflect.DeepEqual(got[name].DB.Sequences, w.DB.Sequences) || got[name].Version != w.Version {
			t.Errorf("dataset %q differs after snapshot round trip", name)
		}
	}
	if !reflect.DeepEqual(gotJobs, jobs) {
		t.Errorf("jobs differ after snapshot round trip: got %+v want %+v", gotJobs, jobs)
	}
}

// TestSnapshotBackwardCompatible: a pre-jobs snapshot payload (ending
// at the last dataset) still decodes, with an empty job table.
func TestSnapshotBackwardCompatible(t *testing.T) {
	state := map[string]DatasetState{"a": {DB: testDB(1, 2, 3), Version: 4}}
	payload := encodeSnapshot(state, nil, 11)
	// Strip the trailing job section (a single uvarint 0 for zero jobs)
	// to reconstruct the old format.
	old := payload[:len(payload)-1]
	got, jobs, verSeq, err := decodeSnapshot(old)
	if err != nil {
		t.Fatalf("old-format snapshot failed to decode: %v", err)
	}
	if verSeq != 11 || len(got) != 1 || len(jobs) != 0 {
		t.Fatalf("decoded verSeq=%d datasets=%d jobs=%d", verSeq, len(got), len(jobs))
	}
}

// TestJobJournalRoundTrip: job records survive both recovery paths —
// WAL replay (dirty restart) and the final snapshot (clean restart) —
// with the latest result superseding earlier ones and deletes honored.
func TestJobJournalRoundTrip(t *testing.T) {
	for _, clean := range []bool{false, true} {
		name := "wal-replay"
		if clean {
			name = "snapshot"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			if err := s.LogPut("d", 1, testDB(1, 3, 2)); err != nil {
				t.Fatal(err)
			}
			spec := []byte(`{"dataset":"d","mine":{"min_count":1}}`)
			if err := s.LogJobPut("watch-d", 2, spec); err != nil {
				t.Fatal(err)
			}
			if err := s.LogJobResult("watch-d", 3, []byte(`{"run_seq":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := s.LogJobResult("watch-d", 4, []byte(`{"run_seq":2}`)); err != nil {
				t.Fatal(err)
			}
			if err := s.LogJobPut("doomed", 5, []byte(`{"dataset":"d"}`)); err != nil {
				t.Fatal(err)
			}
			if err := s.LogJobDelete("doomed", 6); err != nil {
				t.Fatal(err)
			}
			if clean {
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			} else {
				// Dirty restart: reopen over the live WAL without Close,
				// forcing full replay.
				if err := s.wal.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			s2 := mustOpen(t, dir, Options{})
			defer func() {
				if err := s2.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			jobs := s2.RecoveredJobs()
			if len(jobs) != 1 {
				t.Fatalf("recovered %d jobs, want 1 (%+v)", len(jobs), jobs)
			}
			js := jobs["watch-d"]
			if string(js.Spec) != string(spec) || js.SpecVersion != 2 {
				t.Errorf("spec = %q v%d, want %q v2", js.Spec, js.SpecVersion, spec)
			}
			if string(js.Result) != `{"run_seq":2}` || js.ResultVersion != 4 {
				t.Errorf("result = %q v%d, want latest result v4", js.Result, js.ResultVersion)
			}
			if _, ver := s2.Recovered(); ver != 6 {
				t.Errorf("verSeq = %d, want 6 (job records must advance the counter)", ver)
			}
		})
	}
}

// TestCleanRestart: a Close'd store restarts from its final snapshot
// with zero replay.
func TestCleanRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	dbA, dbB := testDB(1, 3, 5), testDB(2, 2, 2)
	if err := s.LogPut("a", 1, dbA); err != nil {
		t.Fatal(err)
	}
	if err := s.LogPut("b", 2, dbB); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDelete("b", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogPut("late", 4, dbA); err == nil {
		t.Error("mutation after Close succeeded")
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, map[string]DatasetState{"a": {DB: dbA, Version: 1}}, 3)
	rs := s2.RecoveryStats()
	if !rs.SnapshotLoaded || rs.RecordsReplayed != 0 || rs.Truncations != 0 {
		t.Errorf("clean restart stats = %+v, want snapshot-only recovery", rs)
	}
}

// TestCrashRestart simulates kill -9: the store is abandoned without
// Close, and a fresh Open must recover every logged mutation from the
// WAL alone, including the version counter after a trailing delete.
func TestCrashRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	dbA, dbB, add := testDB(1, 3, 5), testDB(2, 2, 2), testDB(3, 1, 4)
	if err := s.LogPut("a", 1, dbA); err != nil {
		t.Fatal(err)
	}
	if err := s.LogPut("b", 2, dbB); err != nil {
		t.Fatal(err)
	}
	if err := s.LogAppend("a", 3, add); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDelete("b", 4); err != nil {
		t.Fatal(err)
	}
	// No Close: the crash. (fsync=always has already pushed every
	// record to the file.)

	grownA := &interval.Database{}
	grownA.Sequences = append(grownA.Sequences, dbA.Sequences...)
	grownA.Sequences = append(grownA.Sequences, add.Sequences...)

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, map[string]DatasetState{"a": {DB: grownA, Version: 3}}, 4)
	rs := s2.RecoveryStats()
	if rs.SnapshotLoaded || rs.RecordsReplayed != 4 || rs.Truncations != 0 {
		t.Errorf("crash restart stats = %+v, want 4 replayed from WAL only", rs)
	}

	// Versions must keep climbing from the recovered counter: a
	// re-created "b" may never reuse version 2.
	if err := s2.LogPut("b", 5, dbB); err != nil {
		t.Fatal(err)
	}
	if _, ver := s2.Recovered(); ver != 5 {
		t.Errorf("verSeq after post-recovery put = %d, want 5", ver)
	}
}

// TestCompaction: once the WAL passes the threshold a snapshot is cut,
// the log rotates, and recovery reads the snapshot, not the old log.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{WALMaxBytes: 2 << 10, FsyncMode: FsyncNever})
	want := map[string]DatasetState{}
	ver := uint64(0)
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("ds%d", i%7)
		db := testDB(i, 2, 8)
		ver++
		if err := s.LogPut(name, ver, db); err != nil {
			t.Fatal(err)
		}
		want[name] = DatasetState{DB: db, Version: ver}
	}
	snaps, wals := listDataFiles(t, dir)
	if len(snaps) != 1 {
		t.Errorf("after compaction: %d snapshots on disk (%v), want exactly 1", len(snaps), snaps)
	}
	if len(wals) != 1 {
		t.Errorf("after compaction: %d WAL segments (%v), want exactly 1", len(wals), wals)
	}
	// Crash (no Close) and recover: snapshot + tail replay must equal
	// the full state.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	assertState(t, s2, want, ver)
	if rs := s2.RecoveryStats(); !rs.SnapshotLoaded {
		t.Errorf("recovery stats %+v: expected a snapshot to be loaded", rs)
	}
}

// TestFsyncModes: every mode accepts writes and survives a clean
// restart; interval mode flushes on its ticker without explicit sync.
func TestFsyncModes(t *testing.T) {
	for _, mode := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{FsyncMode: mode, FsyncInterval: 5 * time.Millisecond})
			db := testDB(1, 2, 3)
			if err := s.LogPut("a", 1, db); err != nil {
				t.Fatal(err)
			}
			if mode == FsyncInterval {
				time.Sleep(30 * time.Millisecond) // let the ticker flush
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := mustOpen(t, dir, Options{})
			defer s2.Close()
			assertState(t, s2, map[string]DatasetState{"a": {DB: db, Version: 1}}, 1)
		})
	}
}

func TestOpenRejectsBadFsyncMode(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{FsyncMode: "sometimes"}); err == nil {
		t.Fatal("bad fsync mode accepted")
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.LogPut("alpha", 1, testDB(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDelete("alpha", 2); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close so both the snapshot and a live WAL record
	// survive for the inspector.

	var b strings.Builder
	if err := Inspect(dir, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"snapshot", "version=1", "wal", "delete", `dataset "alpha"`} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "CORRUPT") || strings.Contains(out, "TORN") {
		t.Errorf("inspect flagged damage in a healthy dir:\n%s", out)
	}

	// Flip a payload byte in the live segment: the inspector must flag
	// the frame and report its offset.
	corruptLiveWAL(t, dir, frameHeaderLen+1)
	b.Reset()
	if err := Inspect(dir, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CORRUPT") {
		t.Errorf("inspect did not flag the corrupt frame:\n%s", b.String())
	}
}

// listDataFiles returns the snapshot and WAL file names in dir.
func listDataFiles(t *testing.T, dir string) (snaps, wals []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := parseSeqName(e.Name(), "snapshot-", ".snap"); ok {
			snaps = append(snaps, e.Name())
		}
		if _, ok := parseSeqName(e.Name(), "wal-", ".log"); ok {
			wals = append(wals, e.Name())
		}
	}
	return snaps, wals
}

// corruptLiveWAL XORs the byte at off in the newest WAL segment.
func corruptLiveWAL(t *testing.T, dir string, off int64) {
	t.Helper()
	_, wals := listDataFiles(t, dir)
	if len(wals) == 0 {
		t.Fatal("no WAL segment to corrupt")
	}
	path := filepath.Join(dir, wals[len(wals)-1])
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var one [1]byte
	if _, err := f.ReadAt(one[:], off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0xFF
	if _, err := f.WriteAt(one[:], off); err != nil {
		t.Fatal(err)
	}
}
