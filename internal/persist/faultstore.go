package persist

import (
	"time"

	"tpminer/internal/blob"
	"tpminer/internal/resilience"
)

// faultStore is the persistence layer's fault-injection seam, rehomed
// from per-syscall hooks onto the blob.Store boundary: a decorator that
// consults a resilience.Injector before delegating, so the chaos and
// recovery suites exercise identical failure behavior against any
// backend. The key's role decides which injection ops apply — WAL
// segments (wal-*.log) answer to wal_open/wal_write/wal_sync, snapshots
// (snapshot-*.snap) to snapshot_write/snapshot_sync/snapshot_rename —
// which keeps every existing -fault-profile spec meaningful.
//
// Because Put is atomic at the interface, a fault injected on any of
// its three sub-ops (write, sync, rename) simply fails the Put before
// the inner backend runs: from the outside that is indistinguishable
// from the old temp-file dance failing at that step, since every
// failure path there removed the temp file anyway. Torn writes stay
// real on the WAL path: an injected partial append lands a prefix of
// the frame through the inner appender before the error is reported,
// exactly what a crash mid-write leaves on a real disk.
type faultStore struct {
	blob.Store
	inj resilience.Injector
}

// newFaultStore wraps inner; inj must be non-nil.
func newFaultStore(inner blob.Store, inj resilience.Injector) *faultStore {
	return &faultStore{Store: inner, inj: inj}
}

// isWALKey/isSnapshotKey classify a blob key by the persist layout.
func isWALKey(key string) bool {
	_, ok := parseSeqName(key, "wal-", ".log")
	return ok
}

func isSnapshotKey(key string) bool {
	_, ok := parseSeqName(key, "snapshot-", ".snap")
	return ok
}

// consult rolls the injector for op, sleeping any injected latency, and
// returns the fault decision.
func (s *faultStore) consult(op resilience.Op) resilience.Fault {
	fa := s.inj.Fault(op)
	if fa.Delay > 0 {
		time.Sleep(fa.Delay)
	}
	return fa
}

func (s *faultStore) Put(key string, data []byte) error {
	if isSnapshotKey(key) {
		// Mirror the commit pipeline's three fault points in order;
		// failing any one fails the whole atomic Put.
		for _, op := range []resilience.Op{
			resilience.OpSnapshotWrite,
			resilience.OpSnapshotSync,
			resilience.OpSnapshotRename,
		} {
			if fa := s.consult(op); fa.Err != nil {
				return fa.Err
			}
		}
	}
	return s.Store.Put(key, data)
}

func (s *faultStore) Append(key string) (blob.Appender, error) {
	wal := isWALKey(key)
	if wal {
		if fa := s.consult(resilience.OpWALOpen); fa.Err != nil {
			return nil, fa.Err
		}
	}
	a, err := s.Store.Append(key)
	if err != nil {
		return nil, err
	}
	if !wal {
		return a, nil
	}
	return &faultAppender{Appender: a, store: s}, nil
}

// faultAppender injects on the WAL's write and fsync paths. An injected
// partial write lands a real prefix of b through the inner appender
// before reporting the error — a torn write with genuine bytes on the
// backend, which recovery must truncate away.
type faultAppender struct {
	blob.Appender
	store *faultStore
}

func (a *faultAppender) Write(b []byte) (int, error) {
	if fa := a.store.consult(resilience.OpWALWrite); fa.Err != nil {
		n := 0
		if fa.PartialFraction > 0 {
			if cut := int(float64(len(b)) * fa.PartialFraction); cut > 0 {
				n, _ = a.Appender.Write(b[:cut])
			}
		}
		return n, fa.Err
	}
	return a.Appender.Write(b)
}

func (a *faultAppender) Sync() error {
	if fa := a.store.consult(resilience.OpWALSync); fa.Err != nil {
		return fa.Err
	}
	return a.Appender.Sync()
}
