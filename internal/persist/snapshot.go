package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tpminer/internal/blob"
	"tpminer/internal/resilience"
)

// Snapshot file format:
//
//	offset  size  field
//	0       8     magic "TPMSNAP1"
//	8       8     payload length, little-endian uint64
//	16      4     CRC32C of the payload, little-endian
//	20      —     payload
//
// The payload is:
//
//	uvarint  store version counter (verSeq) at snapshot time
//	uvarint  dataset count
//	per dataset: uvarint name length + name, uvarint version,
//	             database encoding (see wal.go)
//	uvarint  job count (absent in pre-jobs snapshots; a payload that
//	         ends after the datasets decodes as zero jobs)
//	per job: uvarint id length + id,
//	         uvarint spec version,   uvarint spec length + spec bytes,
//	         uvarint result version, uvarint result length + result bytes
//
// The job section was appended after the dataset table, so old
// snapshots (which ended at the last dataset) still decode — the
// decoder treats end-of-payload at that point as "no jobs" instead of
// an error. Spec and result bytes are opaque to persist, exactly as in
// the WAL job records.
//
// Snapshots commit through blob.Store.Put, whose atomic-commit contract
// (temp + fsync + rename on file://) guarantees a crash mid-snapshot
// leaves either the previous state or a temp object that recovery
// removes. A snapshot that fails the length or CRC check (e.g. a
// partially copied file) is skipped in favour of an older valid one.
var snapshotMagic = [8]byte{'T', 'P', 'M', 'S', 'N', 'A', 'P', '1'}

const snapshotHeaderLen = 20

func snapshotName(verSeq uint64) string { return fmt.Sprintf("snapshot-%020d.snap", verSeq) }
func walName(verSeq uint64) string      { return fmt.Sprintf("wal-%020d.log", verSeq) }

// parseSeqName extracts the sequence number from a "prefix-<n>.ext"
// data file name.
func parseSeqName(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	num := name[len(prefix) : len(name)-len(ext)]
	v, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// encodeSnapshot serializes the full store state (the payload only; see
// encodeSnapshotFile for the framed on-disk form).
func encodeSnapshot(state map[string]DatasetState, jobs map[string]JobState, verSeq uint64) []byte {
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 1<<12)
	buf = binary.AppendUvarint(buf, verSeq)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		ds := state[name]
		buf = appendString(buf, name)
		buf = binary.AppendUvarint(buf, ds.Version)
		buf = appendDatabase(buf, ds.DB)
	}
	ids := make([]string, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		js := jobs[id]
		buf = appendString(buf, id)
		buf = binary.AppendUvarint(buf, js.SpecVersion)
		buf = binary.AppendUvarint(buf, uint64(len(js.Spec)))
		buf = append(buf, js.Spec...)
		buf = binary.AppendUvarint(buf, js.ResultVersion)
		buf = binary.AppendUvarint(buf, uint64(len(js.Result)))
		buf = append(buf, js.Result...)
	}
	return buf
}

// decodeSnapshot parses a snapshot payload.
func decodeSnapshot(payload []byte) (map[string]DatasetState, map[string]JobState, uint64, error) {
	c := &byteCursor{buf: payload}
	verSeq, err := c.uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	n, err := c.uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	if uint64(len(payload)-c.off) < n {
		return nil, nil, 0, fmt.Errorf("dataset count %d past payload end", n)
	}
	state := make(map[string]DatasetState, n)
	for i := uint64(0); i < n; i++ {
		name, err := c.string()
		if err != nil {
			return nil, nil, 0, err
		}
		ver, err := c.uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		db, err := c.database()
		if err != nil {
			return nil, nil, 0, err
		}
		state[name] = DatasetState{DB: db, Version: ver}
	}
	jobs := make(map[string]JobState)
	if c.off < len(payload) { // pre-jobs snapshots end here
		nj, err := c.uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		if uint64(len(payload)-c.off) < nj {
			return nil, nil, 0, fmt.Errorf("job count %d past payload end", nj)
		}
		for i := uint64(0); i < nj; i++ {
			id, err := c.string()
			if err != nil {
				return nil, nil, 0, err
			}
			var js JobState
			if js.SpecVersion, err = c.uvarint(); err != nil {
				return nil, nil, 0, err
			}
			if js.Spec, err = c.bytes(); err != nil {
				return nil, nil, 0, err
			}
			if js.ResultVersion, err = c.uvarint(); err != nil {
				return nil, nil, 0, err
			}
			if js.Result, err = c.bytes(); err != nil {
				return nil, nil, 0, err
			}
			if len(js.Result) == 0 {
				js.Result = nil
			}
			jobs[id] = js
		}
	}
	if c.off != len(payload) {
		return nil, nil, 0, fmt.Errorf("%d trailing bytes after snapshot", len(payload)-c.off)
	}
	return state, jobs, verSeq, nil
}

// encodeSnapshotFile frames the encoded state with the magic, length,
// and CRC header — the exact bytes a snapshot blob holds.
func encodeSnapshotFile(state map[string]DatasetState, jobs map[string]JobState, verSeq uint64) []byte {
	payload := encodeSnapshot(state, jobs, verSeq)
	buf := make([]byte, snapshotHeaderLen, snapshotHeaderLen+len(payload))
	copy(buf[0:8], snapshotMagic[:])
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[16:20], crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// decodeSnapshotFile validates a snapshot blob's framing and decodes
// the state it holds.
func decodeSnapshotFile(buf []byte) (map[string]DatasetState, map[string]JobState, uint64, error) {
	if len(buf) < snapshotHeaderLen {
		return nil, nil, 0, fmt.Errorf("truncated snapshot: %d bytes", len(buf))
	}
	if [8]byte(buf[0:8]) != snapshotMagic {
		return nil, nil, 0, fmt.Errorf("bad snapshot magic %q", buf[0:8])
	}
	n := binary.LittleEndian.Uint64(buf[8:16])
	if n != uint64(len(buf)-snapshotHeaderLen) {
		return nil, nil, 0, fmt.Errorf("snapshot length mismatch: header says %d, file holds %d", n, len(buf)-snapshotHeaderLen)
	}
	payload := buf[snapshotHeaderLen:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(buf[16:20]); got != want {
		return nil, nil, 0, fmt.Errorf("snapshot CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	return decodeSnapshot(payload)
}

// writeSnapshotFile atomically writes the snapshot for verSeq into dir
// and returns its path — a standalone convenience over a one-shot
// file:// store, kept for tests that plant snapshots directly. inj
// (nil = none) is consulted at the same fault points the live store
// exercises; the atomic-Put contract means a failed attempt leaves
// nothing behind.
func writeSnapshotFile(dir string, state map[string]DatasetState, verSeq uint64, inj resilience.Injector) (string, error) {
	bs, err := blob.NewStore("file://" + dir)
	if err != nil {
		return "", err
	}
	defer bs.Close()
	var target blob.Store = bs
	if inj != nil {
		target = newFaultStore(bs, inj)
	}
	name := snapshotName(verSeq)
	if err := target.Put(name, encodeSnapshotFile(state, nil, verSeq)); err != nil {
		return "", err
	}
	if err := target.Sync(); err != nil {
		return "", err
	}
	return filepath.Join(dir, name), nil
}
