package persist

import (
	"os"
	"time"

	"tpminer/internal/resilience"
)

// The helpers below are the persistence layer's fault-injection seams:
// every WAL and snapshot I/O call routes through one of them, so a
// resilience.Injector (test hook or the -fault-profile dev flag) can
// plant errors, latency, and torn writes at exactly the points a real
// disk would produce them. A nil injector is the production fast path —
// one nil check per call.

// injWrite writes b to f after consulting the injector for op. Injected
// latency sleeps first; an injected error may land a partial prefix of
// b (a torn write) before the failure is reported, mimicking a crash or
// device error mid-write.
func injWrite(inj resilience.Injector, f *os.File, b []byte, op resilience.Op) (int, error) {
	if inj != nil {
		fa := inj.Fault(op)
		if fa.Delay > 0 {
			time.Sleep(fa.Delay)
		}
		if fa.Err != nil {
			n := 0
			if fa.PartialFraction > 0 {
				if cut := int(float64(len(b)) * fa.PartialFraction); cut > 0 {
					n, _ = f.Write(b[:cut])
				}
			}
			return n, fa.Err
		}
	}
	return f.Write(b)
}

// injSync fsyncs f after consulting the injector for op.
func injSync(inj resilience.Injector, f *os.File, op resilience.Op) error {
	if inj != nil {
		fa := inj.Fault(op)
		if fa.Delay > 0 {
			time.Sleep(fa.Delay)
		}
		if fa.Err != nil {
			return fa.Err
		}
	}
	return f.Sync()
}

// injRename renames a snapshot temp file into place after consulting
// the injector for OpSnapshotRename.
func injRename(inj resilience.Injector, oldpath, newpath string) error {
	if inj != nil {
		fa := inj.Fault(resilience.OpSnapshotRename)
		if fa.Delay > 0 {
			time.Sleep(fa.Delay)
		}
		if fa.Err != nil {
			return fa.Err
		}
	}
	return os.Rename(oldpath, newpath)
}

// injOpenFault consults the injector for OpWALOpen before a segment
// open; a non-nil return is the injected failure.
func injOpenFault(inj resilience.Injector) error {
	if inj != nil {
		fa := inj.Fault(resilience.OpWALOpen)
		if fa.Delay > 0 {
			time.Sleep(fa.Delay)
		}
		if fa.Err != nil {
			return fa.Err
		}
	}
	return nil
}
