package persist

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tpminer/internal/blob"
)

var memSeq atomic.Int64

// memStoreURL mints a fresh process-shared mem:// name, so reopening
// the same URL simulates a restart without touching disk.
func memStoreURL(t *testing.T) string {
	return fmt.Sprintf("mem://persist-%s-%d",
		strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()), memSeq.Add(1))
}

// TestMemBackendFullCycle runs the put/append/delete → close → recover
// cycle against mem://, proving the durability engine is
// backend-agnostic: the same WAL framing, snapshotting, and replay, no
// filesystem involved.
func TestMemBackendFullCycle(t *testing.T) {
	url := memStoreURL(t)
	s, err := OpenURL(url, Options{FsyncMode: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	dbA, dbB := testDB(1, 3, 4), testDB(2, 2, 3)
	if err := s.LogPut("a", 1, dbA); err != nil {
		t.Fatal(err)
	}
	if err := s.LogPut("b", 2, dbB); err != nil {
		t.Fatal(err)
	}
	if err := s.LogAppend("a", 3, testDB(3, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDelete("b", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a second store resolving the same mem:// name.
	s2, err := OpenURL(url, Options{FsyncMode: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	state, ver := s2.Recovered()
	if ver != 4 {
		t.Fatalf("recovered version = %d, want 4", ver)
	}
	if len(state) != 1 {
		t.Fatalf("recovered %d datasets, want 1 (b was deleted)", len(state))
	}
	a, ok := state["a"]
	if !ok {
		t.Fatal("dataset a missing after recovery")
	}
	if got, want := len(a.DB.Sequences), 4; got != want {
		t.Fatalf("a has %d sequences after append+recover, want %d", got, want)
	}
	if a.Version != 3 {
		t.Fatalf("a recovered at version %d, want 3", a.Version)
	}
	// Clean shutdown cut a snapshot, so the reboot needed no replay.
	if st := s2.RecoveryStats(); !st.SnapshotLoaded || st.RecordsReplayed != 0 {
		t.Fatalf("clean-shutdown recovery: snapshot=%v replayed=%d, want snapshot and 0 replayed",
			st.SnapshotLoaded, st.RecordsReplayed)
	}
}

// TestMemBackendCrashReplay plants a bare WAL segment (no snapshot, no
// clean shutdown — what a crashed process leaves behind) in a shared
// mem store and checks the replay path recovers it. The segment is
// written through the blob API directly because a same-process "crash"
// cannot release the registry's single-writer guard the way a real
// process death releases an O_APPEND file handle.
func TestMemBackendCrashReplay(t *testing.T) {
	url := memStoreURL(t)
	bs, err := blob.NewStore(url)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bs.Append(walName(0))
	if err != nil {
		t.Fatal(err)
	}
	frame := appendFrame(nil, encodeRecord(recPut, 7, "x", testDB(7, 2, 2)))
	if _, err := a.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenURL(url, Options{FsyncMode: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	state, ver := s2.Recovered()
	if ver != 7 || len(state) != 1 || state["x"].Version != 7 {
		t.Fatalf("crash recovery: ver=%d state=%v", ver, state)
	}
	if st := s2.RecoveryStats(); st.RecordsReplayed != 1 {
		t.Fatalf("replayed %d records, want 1", st.RecordsReplayed)
	}
}

func TestOpenURLBadScheme(t *testing.T) {
	if _, err := OpenURL("s3://bucket/prefix", Options{}); err == nil {
		t.Fatal("OpenURL(s3://...) succeeded; the backend does not exist yet")
	}
	if _, err := OpenURL("no-scheme", Options{}); err == nil {
		t.Fatal("OpenURL without a scheme succeeded")
	}
}

// failGetStore makes snapshot blobs unreadable, standing in for a
// stat/read failure on disk.
type failGetStore struct{ blob.Store }

func (s failGetStore) Get(key string) ([]byte, error) {
	if isSnapshotKey(key) {
		return nil, errors.New("injected read failure")
	}
	return s.Store.Get(key)
}

// TestInspectStoreReportsUnreadableSnapshot: an unreadable snapshot
// must surface as an UNREADABLE entry (with the error), not as a
// phantom 0-byte file, and must not abort the rest of the dump.
func TestInspectStoreReportsUnreadableSnapshot(t *testing.T) {
	url := memStoreURL(t)
	s, err := OpenURL(url, Options{FsyncMode: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LogPut("d", 1, testDB(1, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogPut("e", 2, testDB(2, 1, 2)); err != nil {
		t.Fatal(err)
	}

	bs, err := blob.NewStore(url)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	var buf bytes.Buffer
	if err := InspectStore(failGetStore{bs}, url, &buf); err != nil {
		t.Fatalf("InspectStore: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "UNREADABLE: injected read failure") {
		t.Errorf("unreadable snapshot not reported:\n%s", out)
	}
	if strings.Contains(out, ".snap  0 bytes") {
		t.Errorf("unreadable snapshot reported with a phantom size:\n%s", out)
	}
	if !strings.Contains(out, "wal wal-") {
		t.Errorf("WAL dump missing after the unreadable snapshot:\n%s", out)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// nopMetrics satisfies Metrics with no-ops, for stubs that care about
// one method.
type nopMetrics struct{}

func (nopMetrics) WALBytes(int64)                       {}
func (nopMetrics) RecordAppended()                      {}
func (nopMetrics) FsyncDone()                           {}
func (nopMetrics) SnapshotDone(time.Duration)           {}
func (nopMetrics) RecoveryDone(time.Duration, int, int) {}
func (nopMetrics) RetryDone(string)                     {}
func (nopMetrics) BlobOp(string, string, int, error)    {}

// blobOpCount is a Metrics stub counting BlobOp deliveries.
type blobOpCount struct {
	nopMetrics
	ops  atomic.Int64
	errs atomic.Int64
}

func (m *blobOpCount) BlobOp(backend, op string, n int, err error) {
	m.ops.Add(1)
	if err != nil {
		m.errs.Add(1)
	}
}

// TestSetMetricsWiresBlobOps: attaching persist metrics must start the
// per-operation blob accounting beneath the store.
func TestSetMetricsWiresBlobOps(t *testing.T) {
	s, err := OpenURL(memStoreURL(t), Options{FsyncMode: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := &blobOpCount{}
	s.SetMetrics(m)
	if err := s.LogPut("d", 1, testDB(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if m.ops.Load() == 0 {
		t.Fatal("no blob ops recorded after a logged mutation")
	}
	if m.errs.Load() != 0 {
		t.Fatalf("%d blob errors recorded on a healthy store", m.errs.Load())
	}
}
