package coincidence

import (
	"math/rand"
	"testing"

	"tpminer/internal/interval"
)

func seq(ivs ...interval.Interval) interval.Sequence {
	return interval.Sequence{ID: "t", Intervals: ivs}
}

func TestTransformBasicOverlap(t *testing.T) {
	// A[0,10] overlaps B[5,15]: segments {A} [0,5], {A B} [5,10], {B} [10,15].
	cs, err := Transform(seq(
		interval.Interval{Symbol: "A", Start: 0, End: 10},
		interval.Interval{Symbol: "B", Start: 5, End: 15},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := Format(cs); got != "{A} {A B} {B}" {
		t.Errorf("Format = %q, cs = %v", got, cs)
	}
	if cs[0].Start != 0 || cs[0].End != 5 || cs[1].Start != 5 || cs[1].End != 10 {
		t.Errorf("segment bounds: %v", cs)
	}
}

func TestTransformDisjoint(t *testing.T) {
	// Disjoint intervals: the gap produces no segment.
	cs, err := Transform(seq(
		interval.Interval{Symbol: "A", Start: 0, End: 2},
		interval.Interval{Symbol: "B", Start: 10, End: 12},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := Format(cs); got != "{A} {B}" {
		t.Errorf("Format = %q", got)
	}
}

func TestTransformDuring(t *testing.T) {
	// B during A: {A} {A B} {A}. Adjacent equal sets must NOT be merged
	// across the B span (they differ), but the two {A} segments are
	// separated by {A B} so all three remain.
	cs, err := Transform(seq(
		interval.Interval{Symbol: "A", Start: 0, End: 20},
		interval.Interval{Symbol: "B", Start: 5, End: 10},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := Format(cs); got != "{A} {A B} {A}" {
		t.Errorf("Format = %q", got)
	}
}

func TestTransformMeetMergesEqualSets(t *testing.T) {
	// Two A occurrences meeting at t=5: alive set is {A} throughout, so
	// the segments merge into one.
	cs, err := Transform(seq(
		interval.Interval{Symbol: "A", Start: 0, End: 5},
		interval.Interval{Symbol: "A", Start: 5, End: 10},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := Format(cs); got != "{A}" {
		t.Errorf("Format = %q, cs=%v", got, cs)
	}
	if cs[0].Start != 0 || cs[0].End != 10 {
		t.Errorf("merged bounds: %v", cs[0])
	}
}

func TestTransformPointEvents(t *testing.T) {
	// An isolated point event yields a degenerate segment.
	cs, err := Transform(seq(
		interval.Interval{Symbol: "P", Start: 3, End: 3},
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].Start != 3 || cs[0].End != 3 || !cs[0].Has("P") {
		t.Fatalf("point transform: %v", cs)
	}

	// A point event inside a proper interval inserts one degenerate
	// segment at its instant, labelled with everything alive there.
	cs, err = Transform(seq(
		interval.Interval{Symbol: "A", Start: 0, End: 10},
		interval.Interval{Symbol: "P", Start: 5, End: 5},
	))
	if err != nil {
		t.Fatal(err)
	}
	var degen []Coincidence
	for _, c := range cs {
		if c.Start == c.End {
			degen = append(degen, c)
		}
	}
	if len(degen) != 1 || degen[0].Start != 5 || !degen[0].Has("P") || !degen[0].Has("A") {
		t.Errorf("degenerate segments = %v (all: %v)", degen, cs)
	}
}

func TestTransformEmptyAndInvalid(t *testing.T) {
	cs, err := Transform(interval.Sequence{})
	if err != nil || cs != nil {
		t.Errorf("empty: %v, %v", cs, err)
	}
	if _, err := Transform(seq(interval.Interval{Symbol: "A", Start: 5, End: 1})); err == nil {
		t.Error("Transform accepted invalid interval")
	}
}

func TestCoincidenceHas(t *testing.T) {
	c := Coincidence{Symbols: []string{"A", "C", "E"}}
	for _, s := range []string{"A", "C", "E"} {
		if !c.Has(s) {
			t.Errorf("Has(%q) = false", s)
		}
	}
	for _, s := range []string{"B", "D", "F", ""} {
		if c.Has(s) {
			t.Errorf("Has(%q) = true", s)
		}
	}
}

// TestTransformInvariants checks structural invariants on random
// sequences: segments ordered, non-empty, alive sets correct at segment
// midpoints, and every interval visible in at least one segment.
func TestTransformInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := interval.Sequence{}
		for i := 0; i < 1+rng.Intn(10); i++ {
			start := rng.Int63n(30)
			s.Intervals = append(s.Intervals, interval.Interval{
				Symbol: string(rune('A' + rng.Intn(4))),
				Start:  start,
				End:    start + rng.Int63n(15),
			})
		}
		cs, err := Transform(s)
		if err != nil {
			t.Fatal(err)
		}
		// aliveAtTime reports whether any interval of sym covers instant x.
		aliveAtTime := func(sym string, x int64) bool {
			for _, iv := range s.Intervals {
				if iv.Symbol == sym && iv.Start <= x && x <= iv.End {
					return true
				}
			}
			return false
		}
		covered := make(map[string]bool)
		for i, c := range cs {
			if len(c.Symbols) == 0 {
				t.Fatalf("empty segment %v", c)
			}
			if c.Start > c.End {
				t.Fatalf("reversed segment %v", c)
			}
			if i > 0 && cs[i-1].Start > c.Start {
				t.Fatalf("segments out of order: %v", cs)
			}
			// Every listed symbol must be alive at both segment bounds
			// (merged segments may be covered by several meeting
			// intervals of the same symbol, so a single-interval cover
			// is not required).
			for _, sym := range c.Symbols {
				if !aliveAtTime(sym, c.Start) || !aliveAtTime(sym, c.End) {
					t.Fatalf("segment %v lists dead symbol %s", c, sym)
				}
			}
			// On proper segments, every symbol fully covering the
			// segment must be listed.
			if c.Start < c.End {
				for _, iv := range s.Intervals {
					if iv.Start <= c.Start && c.End <= iv.End && !c.Has(iv.Symbol) {
						t.Fatalf("segment %v misses alive symbol %s", c, iv.Symbol)
					}
				}
			}
			for _, sym := range c.Symbols {
				covered[sym] = true
			}
		}
		for _, iv := range s.Intervals {
			if !covered[iv.Symbol] {
				t.Fatalf("symbol %s of %v not covered by any segment %v", iv.Symbol, s.Intervals, cs)
			}
		}
	}
}
