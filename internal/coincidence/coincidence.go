// Package coincidence implements the coincidence representation of
// interval sequences, the second view mined by P-TPMiner.
//
// The timeline of a sequence is cut at every distinct endpoint time;
// each resulting segment is labelled with the set of symbols whose
// intervals are alive during it. The labelled segments, in order, form
// the coincidence sequence. Where the endpoint representation preserves
// the exact arrangement of every interval, the coincidence view answers
// the coarser question "which symbol combinations are simultaneously
// active, and in what order?" — the natural vocabulary for co-occurrence
// patterns such as comorbidities or concurrent market regimes.
//
// Segments are half-open [Start, End) except that a point event (an
// interval with zero duration) contributes a degenerate segment at its
// instant. Consecutive segments with identical symbol sets (which arise
// when one occurrence of a symbol ends exactly where another begins) are
// merged, so a coincidence sequence never repeats the same set in
// adjacent positions.
package coincidence

import (
	"sort"
	"strings"

	"tpminer/internal/interval"
)

// Coincidence is one timeline segment: the set of symbols alive during
// [Start, End]. Symbols is sorted and duplicate-free.
type Coincidence struct {
	Start   interval.Time
	End     interval.Time
	Symbols []string
}

// Has reports whether sym is alive during the segment.
func (c Coincidence) Has(sym string) bool {
	i := sort.SearchStrings(c.Symbols, sym)
	return i < len(c.Symbols) && c.Symbols[i] == sym
}

// String renders the segment as "{A B}@[s,e]".
func (c Coincidence) String() string {
	return "{" + strings.Join(c.Symbols, " ") + "}@[" +
		itoa(c.Start) + "," + itoa(c.End) + "]"
}

func itoa(t interval.Time) string {
	// Small local helper; strconv.FormatInt kept out of the hot path
	// callers by String being debug-only.
	if t == 0 {
		return "0"
	}
	neg := t < 0
	if neg {
		t = -t
	}
	var buf [20]byte
	i := len(buf)
	for t > 0 {
		i--
		buf[i] = byte('0' + t%10)
		t /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Transform computes the coincidence sequence of an interval sequence.
// The input is not modified. Sequences with no intervals yield nil.
func Transform(s interval.Sequence) ([]Coincidence, error) {
	if err := s.Valid(); err != nil {
		return nil, err
	}
	if len(s.Intervals) == 0 {
		return nil, nil
	}

	// Collect the distinct cut times: every start and every end.
	// Sort-and-dedup beats a hash set here — Transform runs per sequence
	// on every database encode.
	cuts := make([]interval.Time, 0, 2*len(s.Intervals))
	for _, iv := range s.Intervals {
		cuts = append(cuts, iv.Start, iv.End)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	w := 0
	for i, t := range cuts {
		if i == 0 || t != cuts[i-1] {
			cuts[w] = t
			w++
		}
	}
	cuts = cuts[:w]

	// For each elementary segment [cuts[i], cuts[i+1]] determine the
	// alive symbol set. An interval [a,b] is alive on segment [x,y]
	// (x < y) iff a <= x && y <= b. Point events are handled as
	// degenerate segments at their instant.
	var out []Coincidence
	// appendSeg copies syms on keep, so callers may pass a reused
	// scratch buffer; merged segments (equal adjacent sets) cost nothing.
	appendSeg := func(start, end interval.Time, syms []string) {
		if len(syms) == 0 {
			return
		}
		if n := len(out); n > 0 && equalStrings(out[n-1].Symbols, syms) {
			out[n-1].End = end
			return
		}
		cp := make([]string, len(syms))
		copy(cp, syms)
		out = append(out, Coincidence{Start: start, End: end, Symbols: cp})
	}

	// Degenerate segments for point events and cut instants: a symbol is
	// alive "at" time t iff some interval has Start <= t <= End. To keep
	// the representation compact we only materialize proper segments
	// between consecutive cuts, plus instant segments for cut times that
	// carry point events not covered by a proper segment on either side
	// with the same alive set. In practice the proper segments capture
	// everything except isolated point events, which we handle below.
	var scratch []string
	for i := 0; i+1 < len(cuts); i++ {
		x, y := cuts[i], cuts[i+1]
		scratch = aliveOn(s.Intervals, x, y, scratch)
		appendSeg(x, y, scratch)
	}

	// Point events: proper segments cannot carry an interval [t,t], so
	// each point event inserts a degenerate segment at its instant,
	// labelled with everything alive at t (covering intervals included).
	for _, iv := range s.Intervals {
		if !iv.IsPoint() {
			continue
		}
		pos := sort.Search(len(out), func(i int) bool {
			if out[i].Start != iv.Start {
				return out[i].Start > iv.Start
			}
			return out[i].End >= iv.Start // degenerate sorts before [t, >t]
		})
		if pos < len(out) && out[pos].Start == iv.Start && out[pos].End == iv.Start {
			continue // already inserted for another point event at t
		}
		syms := aliveAt(s.Intervals, iv.Start)
		out = append(out, Coincidence{})
		copy(out[pos+1:], out[pos:])
		out[pos] = Coincidence{Start: iv.Start, End: iv.Start, Symbols: syms}
	}
	return out, nil
}

// aliveOn returns the sorted distinct symbols alive on the whole proper
// segment [x,y], x < y. The result reuses scratch's storage; callers
// that keep it must copy.
func aliveOn(ivs []interval.Interval, x, y interval.Time, scratch []string) []string {
	syms := scratch[:0]
	for _, iv := range ivs {
		if iv.Start <= x && y <= iv.End {
			syms = append(syms, iv.Symbol)
		}
	}
	return sortDedup(syms)
}

// aliveAt returns the sorted distinct symbols alive at instant t. The
// result is freshly allocated (point-event segments keep it).
func aliveAt(ivs []interval.Interval, t interval.Time) []string {
	var syms []string
	for _, iv := range ivs {
		if iv.Start <= t && t <= iv.End {
			syms = append(syms, iv.Symbol)
		}
	}
	return sortDedup(syms)
}

// sortDedup sorts syms in place and compacts away adjacent duplicates
// (the same symbol can be alive twice via overlapping occurrences).
func sortDedup(syms []string) []string {
	sort.Strings(syms)
	w := 0
	for i, s := range syms {
		if i == 0 || s != syms[i-1] {
			syms[w] = s
			w++
		}
	}
	return syms[:w]
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Format renders a coincidence sequence as "{A} {A B} {B}".
func Format(cs []Coincidence) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = "{" + strings.Join(c.Symbols, " ") + "}"
	}
	return strings.Join(parts, " ")
}
