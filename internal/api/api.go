// Package api is the wire contract of the tpmd HTTP service: the
// request shapes shared by the batch mine family and the continuous
// mining jobs, with one validation surface for both.
//
// Historically the server carried two request structs — MineRequest
// (POST /v1/datasets/{name}/mine) and RulesRequest
// (POST /v1/datasets/{name}/rules) — that duplicated the shared option
// block and validated separately. MineSpec folds them into a single
// struct with an explicit Mode field ("temporal", "coincidence", or
// "rules") and a single Validate method; job specs (JobSpec) embed the
// exact same struct, so batch and continuous mining share one options
// surface by construction. The legacy shapes remain accepted on the
// wire: the old "type" field is an alias of Mode (flagged deprecated in
// the response headers by the server), and a body without a mode posted
// to the rules route still reads as a rules request.
//
// The package is deliberately free of HTTP: it depends only on
// internal/core (to convert a spec into miner options), so the jobs
// subsystem and any future transport can share it without importing the
// server.
package api

import (
	"fmt"
	"time"

	"tpminer/internal/core"
)

// Mining modes accepted by MineSpec.Mode.
const (
	ModeTemporal    = "temporal"
	ModeCoincidence = "coincidence"
	ModeRules       = "rules"
)

// Window kinds accepted by WindowSpec.Kind.
const (
	WindowAll      = "all"
	WindowSliding  = "sliding"
	WindowTumbling = "tumbling"
)

// FieldError is an error attributable to one JSON request field; the
// server's error envelope surfaces the name in error.field.
type FieldError struct {
	Field string
	Msg   string
}

func (e *FieldError) Error() string { return e.Msg }

// fieldErrf builds a FieldError with a formatted message.
func fieldErrf(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// MiningOptions is the option block shared by every mining mode. It is
// embedded, so the wire format stays flat.
type MiningOptions struct {
	// MinSupport in (0,1], or MinCount >= 1 (one required).
	MinSupport float64 `json:"min_support,omitempty"`
	MinCount   int     `json:"min_count,omitempty"`
	// MaxIntervals caps pattern size in intervals.
	MaxIntervals int `json:"max_intervals,omitempty"`
	// TimeoutMillis lowers the server's hard deadline for this job (it
	// can never raise it); hitting the deadline aborts with 504.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// validate rejects malformed shared options, naming the offending JSON
// field.
func (o MiningOptions) validate() error {
	if o.MinSupport < 0 || o.MinSupport > 1 {
		return fieldErrf("min_support", "min_support %v outside [0,1]", o.MinSupport)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"min_count", int64(o.MinCount)},
		{"max_intervals", int64(o.MaxIntervals)},
		{"timeout_ms", o.TimeoutMillis},
	} {
		if f.v < 0 {
			return fieldErrf(f.name, "%s must not be negative, got %d", f.name, f.v)
		}
	}
	return nil
}

// WindowSpec selects the slice of a dataset a mine runs over. The zero
// value (or Kind "all") mines the whole dataset. "sliding" mines the
// most recent Count sequences; "tumbling" groups the dataset into
// consecutive blocks of Count sequences and mines the newest complete
// block. Windows are what make continuous jobs incremental — each
// re-mine sees a bounded slice of the stream — but they are equally
// valid on batch requests, and a batch mine with the same window,
// options, and dataset version returns byte-identical patterns.
type WindowSpec struct {
	Kind  string `json:"kind,omitempty"`
	Count int    `json:"count,omitempty"`
}

// Windowed reports whether the spec selects a proper subset of the
// dataset (as opposed to whole-dataset mining).
func (w WindowSpec) Windowed() bool {
	return w.Kind == WindowSliding || w.Kind == WindowTumbling
}

// Validate rejects malformed window specs.
func (w WindowSpec) Validate() error {
	switch w.Kind {
	case "", WindowAll:
		if w.Count != 0 {
			return fieldErrf("window.count", "window.count is only valid with kind sliding or tumbling")
		}
	case WindowSliding, WindowTumbling:
		if w.Count <= 0 {
			return fieldErrf("window.count", "window.count must be >= 1 for %s windows, got %d", w.Kind, w.Count)
		}
	default:
		return fieldErrf("window.kind", "unknown window kind %q (want all, sliding, or tumbling)", w.Kind)
	}
	return nil
}

// key canonicalizes the window for cache-key/ETag strings: "" for
// whole-dataset, "<kind>:<count>" otherwise.
func (w WindowSpec) key() string {
	if !w.Windowed() {
		return ""
	}
	return fmt.Sprintf("%s:%d", w.Kind, w.Count)
}

// MineSpec is the one request shape of the mine family: the bodies of
// POST /v1/datasets/{name}/mine and POST /v1/datasets/{name}/rules, and
// the mining half of a job spec. Mode selects what is mined; fields
// that only apply to one mode are rejected in the others, so the
// validation is exactly as strict as the two structs it replaced.
type MineSpec struct {
	// Mode is "temporal" (default), "coincidence", or "rules".
	Mode string `json:"mode,omitempty"`
	// Type is accepted as an alias of Mode for older clients; responses
	// carry a Deprecation header when it is used.
	//
	// Deprecated: set Mode instead.
	Type string `json:"type,omitempty"`

	MiningOptions

	// Window bounds the mine to a slice of the dataset; see WindowSpec.
	Window WindowSpec `json:"window,omitzero"`

	// Pattern-shape constraints and modes (temporal/coincidence only).
	MaxElements        int    `json:"max_elements,omitempty"`
	MaxItemsPerElement int    `json:"max_items_per_element,omitempty"`
	MaxSpan            int64  `json:"max_span,omitempty"`
	MaxGap             int64  `json:"max_gap,omitempty"`
	TopK               int    `json:"top_k,omitempty"`
	Filter             string `json:"filter,omitempty"` // "", "closed", "maximal"

	// Soft budgets: the miner stops early and returns what it found,
	// flagged in stats. Truncated results are never cached.
	TimeBudgetMillis int64 `json:"time_budget_ms,omitempty"`
	MaxPatterns      int   `json:"max_patterns,omitempty"`

	// Parallel requests worker goroutines for the search, capped at the
	// server's MaxParallel ceiling. Absent or 0 mines serially.
	Parallel int `json:"parallel,omitempty"`

	// Rule thresholds (rules mode only).
	MinConfidence float64 `json:"min_confidence,omitempty"`
	MinLift       float64 `json:"min_lift,omitempty"`
}

// ResolvedMode returns the spec's effective mode: Mode, else the legacy
// Type alias, else "temporal".
func (req MineSpec) ResolvedMode() string {
	switch {
	case req.Mode != "":
		return req.Mode
	case req.Type != "":
		return req.Type
	default:
		return ModeTemporal
	}
}

// LegacyShape reports whether the request used a deprecated wire shape
// (the old "type" field); the server flags such responses with a
// Deprecation header.
func (req MineSpec) LegacyShape() bool { return req.Type != "" }

// Validate rejects malformed requests up front — before a mining slot
// is claimed — so garbage input can never occupy a slot or flow into
// core.Options unchecked. This is the single validation surface of the
// whole mine family: batch temporal/coincidence, batch rules, and job
// specs all pass through it. Each violation names the offending JSON
// field.
func (req MineSpec) Validate() error {
	if err := req.MiningOptions.validate(); err != nil {
		return err
	}
	if req.Mode != "" && req.Type != "" && req.Mode != req.Type {
		return fieldErrf("type", "legacy type %q conflicts with mode %q", req.Type, req.Mode)
	}
	mode := req.ResolvedMode()
	switch mode {
	case ModeTemporal, ModeCoincidence, ModeRules:
	default:
		field := "mode"
		if req.Mode == "" && req.Type != "" {
			field = "type"
		}
		return fieldErrf(field, "unknown mode %q (want temporal, coincidence, or rules)", mode)
	}
	if err := req.Window.Validate(); err != nil {
		return err
	}
	switch req.Filter {
	case "", "closed", "maximal":
	default:
		return fieldErrf("filter", "unknown filter %q", req.Filter)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"max_elements", int64(req.MaxElements)},
		{"max_items_per_element", int64(req.MaxItemsPerElement)},
		{"max_span", req.MaxSpan},
		{"max_gap", req.MaxGap},
		{"top_k", int64(req.TopK)},
		{"time_budget_ms", req.TimeBudgetMillis},
		{"max_patterns", int64(req.MaxPatterns)},
		{"parallel", int64(req.Parallel)},
	} {
		if f.v < 0 {
			return fieldErrf(f.name, "%s must not be negative, got %d", f.name, f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"min_confidence", req.MinConfidence},
		{"min_lift", req.MinLift},
	} {
		if f.v < 0 {
			return fieldErrf(f.name, "%s must not be negative, got %v", f.name, f.v)
		}
	}
	// Mode-foreign fields are rejected, keeping the unified struct as
	// strict as the two it replaced.
	if mode == ModeRules {
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"max_elements", req.MaxElements != 0},
			{"max_items_per_element", req.MaxItemsPerElement != 0},
			{"max_span", req.MaxSpan != 0},
			{"max_gap", req.MaxGap != 0},
			{"top_k", req.TopK != 0},
			{"filter", req.Filter != ""},
			{"time_budget_ms", req.TimeBudgetMillis != 0},
			{"max_patterns", req.MaxPatterns != 0},
			{"parallel", req.Parallel != 0},
		} {
			if f.set {
				return fieldErrf(f.name, "%s does not apply to rules mode", f.name)
			}
		}
	} else if req.MinConfidence != 0 || req.MinLift != 0 {
		field := "min_confidence"
		if req.MinConfidence == 0 {
			field = "min_lift"
		}
		return fieldErrf(field, "%s only applies to rules mode", field)
	}
	return nil
}

// ResultOptions canonicalizes the result-determining options into the
// cache-key/ETag string. Execution knobs — timeout_ms, time_budget_ms,
// parallel — are deliberately excluded: they change how long the search
// may run, never what a complete run returns (parallel runs are
// result-equivalent, and truncated runs are never cached), so requests
// differing only in those share one entry. max_patterns is included
// because a complete run under a cap is only known equivalent to an
// uncapped one at the same cap. The window is included: a windowed mine
// is a different result than a whole-dataset one at the same version.
func (req MineSpec) ResultOptions() string {
	mode := req.ResolvedMode()
	if mode == ModeRules {
		return fmt.Sprintf("rules|sup=%v|cnt=%d|ivs=%d|conf=%v|lift=%v|win=%s",
			req.MinSupport, req.MinCount, req.MaxIntervals, req.MinConfidence,
			req.MinLift, req.Window.key())
	}
	return fmt.Sprintf("mine|type=%s|sup=%v|cnt=%d|ivs=%d|els=%d|ipe=%d|span=%d|gap=%d|topk=%d|filter=%s|maxpat=%d|win=%s",
		mode, req.MinSupport, req.MinCount, req.MaxIntervals, req.MaxElements,
		req.MaxItemsPerElement, req.MaxSpan, req.MaxGap, req.TopK, req.Filter,
		req.MaxPatterns, req.Window.key())
}

// Options converts the spec to miner options, capping the requested
// parallelism at the server ceiling.
func (req MineSpec) Options(maxParallel int) core.Options {
	par := req.Parallel
	if par > maxParallel {
		par = maxParallel
	}
	return core.Options{
		Parallel:           par,
		MinSupport:         req.MinSupport,
		MinCount:           req.MinCount,
		MaxIntervals:       req.MaxIntervals,
		MaxElements:        req.MaxElements,
		MaxItemsPerElement: req.MaxItemsPerElement,
		MaxSpan:            req.MaxSpan,
		MaxGap:             req.MaxGap,
		MaxPatterns:        req.MaxPatterns,
		TimeBudget:         time.Duration(req.TimeBudgetMillis) * time.Millisecond,
	}
}

// RulesOptions converts the rules-mode thresholds for the rules
// deriver. Only meaningful when ResolvedMode() == ModeRules.
func (req MineSpec) RulesOptions() (minConfidence, minLift float64) {
	return req.MinConfidence, req.MinLift
}

// JobSpec is the body of POST /v1/jobs: a continuous mining job that
// watches a dataset and re-mines Mine (the exact batch MineSpec, window
// included) whenever the dataset's version changes, publishing pattern
// deltas between consecutive runs.
type JobSpec struct {
	// ID names the job. Client-chosen like a dataset name; the server
	// generates one when empty.
	ID string `json:"id,omitempty"`
	// Dataset is the watched dataset. It does not need to exist yet: a
	// job may be created ahead of its stream, and the first mutation
	// triggers the first run.
	Dataset string `json:"dataset"`
	// Mine is the mining request run on every change — the same struct,
	// same validation, and same result bytes as a batch
	// POST /v1/datasets/{dataset}/mine with this body.
	Mine MineSpec `json:"mine"`
	// DebounceMillis coalesces bursts: after a change notification the
	// job waits this long for further changes before re-mining. 0 means
	// the server default.
	DebounceMillis int64 `json:"debounce_ms,omitempty"`
}

// Validate rejects malformed job specs. Rules mode is not yet runnable
// continuously (rule deltas are undefined while confidence changes are
// not part of the delta contract), so it is rejected here — the one
// place job validation is allowed to be stricter than batch validation.
func (js JobSpec) Validate() error {
	if js.Dataset == "" {
		return fieldErrf("dataset", "dataset must not be empty")
	}
	if err := validateName("id", js.ID); err != nil {
		return err
	}
	if js.DebounceMillis < 0 {
		return fieldErrf("debounce_ms", "debounce_ms must not be negative, got %d", js.DebounceMillis)
	}
	if err := js.Mine.Validate(); err != nil {
		return err
	}
	if js.Mine.ResolvedMode() == ModeRules {
		return fieldErrf("mine.mode", "continuous jobs support temporal and coincidence modes only")
	}
	return nil
}

// validateName bounds client-chosen identifiers to a filesystem- and
// URL-safe alphabet. Empty is allowed (the server generates an ID).
func validateName(field, s string) error {
	if len(s) > 128 {
		return fieldErrf(field, "%s longer than 128 bytes", field)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fieldErrf(field, "%s contains %q; allowed: letters, digits, '-', '_', '.'", field, r)
		}
	}
	return nil
}
