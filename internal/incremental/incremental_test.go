package incremental

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

func randomSeq(rng *rand.Rand, id int) interval.Sequence {
	seq := interval.Sequence{ID: fmt.Sprintf("s%d", id)}
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		start := rng.Int63n(30)
		seq.Intervals = append(seq.Intervals, interval.Interval{
			Symbol: string(rune('A' + rng.Intn(3))),
			Start:  start,
			End:    start + rng.Int63n(12),
		})
	}
	return seq
}

func TestNewMinerValidation(t *testing.T) {
	good := core.Options{MinSupport: 0.2}
	bad := []struct {
		opt   core.Options
		ratio float64
	}{
		{good, 0},
		{good, -0.5},
		{good, 1.5},
		{core.Options{}, 0.5},
		{core.Options{MinSupport: 0.2, KeepOccurrences: true}, 0.5},
		{core.Options{MinSupport: 0.2, Parallel: 2}, 0.5},
		// Truncating budgets would break the exactness guarantee.
		{core.Options{MinSupport: 0.2, MaxPatterns: 10}, 0.5},
		{core.Options{MinSupport: 0.2, TimeBudget: time.Second}, 0.5},
	}
	for i, c := range bad {
		if _, err := NewMiner(c.opt, c.ratio); err == nil {
			t.Errorf("case %d: NewMiner accepted %+v ratio %v", i, c.opt, c.ratio)
		}
	}
	if _, err := NewMiner(good, 0.5); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestValidateSequences: the exported validation gate applies the same
// rules as AppendCtx — a malformed increment is rejected by both, a
// well-formed one accepted by both.
func TestValidateSequences(t *testing.T) {
	good := interval.Sequence{ID: "g", Intervals: []interval.Interval{
		{Symbol: "A", Start: 0, End: 4},
	}}
	bad := interval.Sequence{ID: "b", Intervals: []interval.Interval{
		{Symbol: "A", Start: 5, End: 1}, // End < Start
	}}

	if err := ValidateSequences(good); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	if err := ValidateSequences(good, bad); err == nil {
		t.Error("invalid sequence accepted")
	}

	m, err := NewMiner(core.Options{MinSupport: 0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(good, bad); err == nil {
		t.Error("AppendCtx accepted an increment ValidateSequences rejects")
	}
	if m.Database().Len() != 0 {
		t.Error("rejected append mutated the database")
	}
}

// TestMatchesFromScratch is the central equivalence property: after
// every append, Patterns() equals a from-scratch core.MineTemporal run
// on the accumulated database.
func TestMatchesFromScratch(t *testing.T) {
	for _, ratio := range []float64{0.3, 0.5, 1.0} {
		for _, batch := range []int{1, 3, 7} {
			t.Run(fmt.Sprintf("ratio=%v/batch=%d", ratio, batch), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(batch)*100 + int64(ratio*10)))
				opt := core.Options{MinSupport: 0.25, MaxIntervals: 3}
				m, err := NewMiner(opt, ratio)
				if err != nil {
					t.Fatal(err)
				}
				id := 0
				for round := 0; round < 12; round++ {
					seqs := make([]interval.Sequence, batch)
					for i := range seqs {
						seqs[i] = randomSeq(rng, id)
						id++
					}
					if _, err := m.Append(seqs...); err != nil {
						t.Fatal(err)
					}
					got := m.Patterns()
					want, _, err := core.MineTemporal(m.Database(), opt)
					if err != nil {
						t.Fatal(err)
					}
					if !pattern.TemporalResultsEqual(got, want) {
						t.Fatalf("round %d: incremental %d patterns, scratch %d patterns\ninc: %v\nscratch: %v",
							round, len(got), len(want), got, want)
					}
				}
			})
		}
	}
}

// TestAbsoluteThresholdEquivalence repeats the equivalence with a fixed
// absolute MinCount, where the slack does not grow with the database.
func TestAbsoluteThresholdEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	opt := core.Options{MinCount: 4, MaxIntervals: 3}
	m, err := NewMiner(opt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		if _, err := m.Append(randomSeq(rng, round)); err != nil {
			t.Fatal(err)
		}
		got := m.Patterns()
		want, _, err := core.MineTemporal(m.Database(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !pattern.TemporalResultsEqual(got, want) {
			t.Fatalf("round %d: mismatch (%d vs %d patterns)", round, len(got), len(want))
		}
	}
}

func TestIncrementalStepsActuallyHappen(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, err := NewMiner(core.Options{MinSupport: 0.3, MaxIntervals: 3}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := m.Append(randomSeq(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Appends != 60 {
		t.Errorf("appends = %d", st.Appends)
	}
	if st.IncrementalSteps == 0 {
		t.Error("no incremental steps at all — buffer slack never used")
	}
	if st.FullRemines == 0 {
		t.Error("no full re-mines — first append must re-mine")
	}
	if st.FullRemines+st.IncrementalSteps != st.Appends {
		t.Errorf("step accounting: %+v", st)
	}
	if st.IncrementalSteps < st.FullRemines {
		t.Errorf("expected mostly incremental steps: %+v", st)
	}
	if st.Sequences != 60 {
		t.Errorf("sequences = %d", st.Sequences)
	}
}

func TestThresholdCrossingPatternAppears(t *testing.T) {
	// Start with noise; then append many copies of an A-overlaps-B
	// sequence until the pattern crosses the threshold. The pattern must
	// appear even though it was absent from early buffers.
	m, err := NewMiner(core.Options{MinSupport: 0.4, MaxIntervals: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	noise := func(id int) interval.Sequence {
		return interval.Sequence{ID: fmt.Sprintf("n%d", id), Intervals: []interval.Interval{
			{Symbol: "C", Start: 0, End: 5},
		}}
	}
	overlap := func(id int) interval.Sequence {
		return interval.Sequence{ID: fmt.Sprintf("o%d", id), Intervals: []interval.Interval{
			{Symbol: "A", Start: 0, End: 4},
			{Symbol: "B", Start: 2, End: 6},
		}}
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Append(noise(i)); err != nil {
			t.Fatal(err)
		}
	}
	hasOverlap := func() bool {
		for _, r := range m.Patterns() {
			if r.Pattern.String() == "A+ B+ A- B-" {
				return true
			}
		}
		return false
	}
	if hasOverlap() {
		t.Fatal("overlap frequent before it exists")
	}
	for i := 0; i < 20; i++ {
		if _, err := m.Append(overlap(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !hasOverlap() {
		t.Fatalf("overlap never surfaced; patterns: %v", m.Patterns())
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	m, err := NewMiner(core.Options{MinSupport: 0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bad := interval.Sequence{Intervals: []interval.Interval{{Symbol: "A", Start: 5, End: 1}}}
	if _, err := m.Append(bad); err == nil {
		t.Error("invalid sequence accepted")
	}
	if m.Database().Len() != 0 {
		t.Error("failed append mutated the database")
	}
	if m.Stats().Appends != 0 {
		t.Error("failed append counted")
	}
}

// TestAppendCtxCancelledRollsBack: a cancelled re-mine must leave the
// miner exactly as before the append, and the append must be retryable.
func TestAppendCtxCancelledRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opt := core.Options{MinSupport: 0.3, MaxIntervals: 3}
	m, err := NewMiner(opt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []interval.Sequence
	for i := 0; i < 8; i++ {
		seqs = append(seqs, randomSeq(rng, i))
	}
	if _, err := m.Append(seqs...); err != nil {
		t.Fatal(err)
	}
	before := m.Patterns()
	beforeLen := m.Database().Len()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	extra := randomSeq(rng, 100)
	// Force a re-mine on this append by exhausting the slack: with the
	// database doubled, the exactness condition B-1+k >= minCount holds.
	var batch []interval.Sequence
	for i := 0; i < beforeLen; i++ {
		batch = append(batch, randomSeq(rng, 200+i))
	}
	batch = append(batch, extra)
	if _, err := m.AppendCtx(cancelled, batch...); !errors.Is(err, context.Canceled) {
		t.Fatalf("AppendCtx err = %v, want context.Canceled", err)
	}
	if got := m.Database().Len(); got != beforeLen {
		t.Errorf("rolled-back database has %d sequences, want %d", got, beforeLen)
	}
	if !pattern.TemporalResultsEqual(m.Patterns(), before) {
		t.Error("pattern state changed by a cancelled append")
	}

	// Retrying the same append must succeed and match from-scratch.
	if _, err := m.Append(batch...); err != nil {
		t.Fatal(err)
	}
	want, _, err := core.MineTemporal(m.Database(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !pattern.TemporalResultsEqual(m.Patterns(), want) {
		t.Fatalf("retried append diverged from scratch mine (%d vs %d patterns)",
			len(m.Patterns()), len(want))
	}
}

func TestEmptyMiner(t *testing.T) {
	m, err := NewMiner(core.Options{MinSupport: 0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Patterns(); len(got) != 0 {
		t.Errorf("empty miner returned %v", got)
	}
}
