// Package incremental maintains the frequent temporal patterns of a
// growing database without re-mining from scratch on every insertion —
// the incremental extension of P-TPMiner (the authors' own follow-up
// direction; flagged as an extension beyond the two-page paper in
// DESIGN.md).
//
// # Technique: the lazy semi-frequent buffer
//
// A full mine at buffer threshold B = ceil(µ·minCount), µ in (0, 1],
// stores every pattern with support ≥ B together with its exact
// support. After that:
//
//   - Each append only updates the buffered supports by matching the
//     new sequences (one indexed containment test per buffered pattern
//     per new sequence) — no mining at all.
//   - A pattern absent from the buffer had support ≤ B-1 at the last
//     full mine and can have gained at most one per appended sequence
//     since, so its support is ≤ B-1+k after k appended sequences. As
//     long as B-1+k < minCount, no absent pattern can be frequent and
//     the buffer answers exactly.
//   - When an append exhausts that slack, one full re-mine runs and the
//     slack resets. With a relative support threshold σ the slack is
//     proportional to the database size — about (1-µ)·σ·n appended
//     sequences between re-mines — the amortized behaviour incremental
//     mining is after. (A smaller µ buffers more and re-mines less.)
//
// The result set visible through Patterns is always exactly what a
// from-scratch core.MineTemporal run on the accumulated database would
// report; the test-suite verifies the equivalence on randomized append
// workloads, including threshold-crossing patterns.
package incremental

import (
	"context"
	"fmt"

	"tpminer/internal/core"
	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// Miner maintains frequent temporal patterns over a growing database.
// Not safe for concurrent use.
type Miner struct {
	opt         core.Options
	bufferRatio float64

	db interval.Database

	// buffer holds every raw (occurrence-labelled) pattern whose
	// support was >= bufMinAtRemine at the last full mine, with exact
	// supports kept current through appends. Keyed by pattern key.
	buffer map[string]*bufferEntry

	bufMinAtRemine int // B: buffer threshold of the last full mine
	appendedSince  int // k: sequences appended since the last full mine

	stats IncStats
}

type bufferEntry struct {
	pat     pattern.Temporal
	support int
}

// IncStats reports how the miner has processed its appends.
type IncStats struct {
	Appends          int // Append calls
	FullRemines      int // appends that triggered a full re-mine
	IncrementalSteps int // appends absorbed by the buffer alone
	BufferSize       int // patterns currently buffered
	Sequences        int // accumulated database size
	MinCount         int // current absolute support threshold
}

// NewMiner creates an incremental miner. opt carries the support
// threshold (relative MinSupport recomputes as the database grows; an
// absolute MinCount stays fixed, which caps the usable slack) and any
// pattern constraints. bufferRatio is µ in (0, 1]: smaller buffers more
// patterns and stretches the interval between full re-mines at the cost
// of memory. opt.KeepOccurrences and opt.Parallel are managed
// internally and must be unset.
func NewMiner(opt core.Options, bufferRatio float64) (*Miner, error) {
	if bufferRatio <= 0 || bufferRatio > 1 {
		return nil, fmt.Errorf("incremental: buffer ratio %v outside (0,1]", bufferRatio)
	}
	if opt.KeepOccurrences {
		return nil, fmt.Errorf("incremental: KeepOccurrences is managed internally")
	}
	if opt.Parallel != 0 {
		return nil, fmt.Errorf("incremental: Parallel is not supported")
	}
	if opt.MaxPatterns != 0 || opt.TimeBudget != 0 {
		// A truncated re-mine would leave semi-frequent patterns out of
		// the buffer and silently break the exactness guarantee.
		return nil, fmt.Errorf("incremental: MaxPatterns/TimeBudget are not supported")
	}
	if opt.MinCount == 0 && (opt.MinSupport <= 0 || opt.MinSupport > 1) {
		return nil, fmt.Errorf("incremental: MinSupport %v outside (0,1] and no MinCount given", opt.MinSupport)
	}
	return &Miner{
		opt:         opt,
		bufferRatio: bufferRatio,
		buffer:      make(map[string]*bufferEntry),
	}, nil
}

// minCount returns the absolute support threshold for n sequences.
func (m *Miner) minCount(n int) int {
	c, err := core.ResolveMinCount(m.opt, n)
	if err != nil {
		// NewMiner validated the options; n only changes the arithmetic.
		panic(fmt.Sprintf("incremental: threshold resolution failed: %v", err))
	}
	return c
}

// bufferMin returns the buffer admission threshold for a given absolute
// minCount.
func (m *Miner) bufferMin(minCount int) int {
	b := int(float64(minCount)*m.bufferRatio + 0.999999)
	if b < 1 {
		b = 1
	}
	if b > minCount {
		b = minCount
	}
	return b
}

// Append adds sequences to the database and brings the pattern state up
// to date. It reports whether the append was absorbed incrementally
// (false means a full re-mine ran).
func (m *Miner) Append(seqs ...interval.Sequence) (incremental bool, err error) {
	return m.AppendCtx(context.Background(), seqs...)
}

// AppendCtx is Append with cooperative cancellation of the full re-mine
// an append may trigger. When the context is cancelled mid-re-mine the
// append is rolled back — the database and pattern state are exactly as
// before the call — so the miner stays usable and the append can be
// retried.
func (m *Miner) AppendCtx(ctx context.Context, seqs ...interval.Sequence) (incremental bool, err error) {
	// Validate and index the increment before mutating any state.
	newIdx, err := indexIncrement(seqs)
	if err != nil {
		return false, err
	}
	m.stats.Appends++

	first := m.db.Len() == 0
	prevLen := m.db.Len()
	prevSince := m.appendedSince
	m.db.Sequences = append(m.db.Sequences, seqs...)
	n := m.db.Len()
	newMinCount := m.minCount(n)
	m.stats.Sequences = n
	m.stats.MinCount = newMinCount

	// Tentatively absorb the increment. Exactness condition: an absent
	// pattern's support is at most B-1+k; it must stay below the
	// current threshold.
	m.appendedSince += len(seqs)
	if first || m.bufMinAtRemine-1+m.appendedSince >= newMinCount {
		if err := m.fullRemine(ctx, newMinCount); err != nil {
			// Roll back the append so the accumulated database and the
			// buffer stay mutually consistent.
			m.db.Sequences = m.db.Sequences[:prevLen]
			m.appendedSince = prevSince
			m.stats.Sequences = prevLen
			if prevLen > 0 {
				m.stats.MinCount = m.minCount(prevLen)
			} else {
				m.stats.MinCount = 0
			}
			return false, err
		}
		return false, nil
	}

	for _, e := range m.buffer {
		for _, ix := range newIdx {
			if ix.Contains(e.pat) {
				e.support++
			}
		}
	}
	m.stats.IncrementalSteps++
	m.stats.BufferSize = len(m.buffer)
	return true, nil
}

// indexIncrement encodes and indexes an increment, rejecting any
// sequence that cannot be endpoint-encoded before any state is touched.
// It is the single validation gate for growing a database: AppendCtx
// runs it before mutating, and ValidateSequences exposes the same rules
// to other append paths (tpmd's dataset store), so "acceptable to the
// incremental miner" and "acceptable to the server" can never drift
// apart.
func indexIncrement(seqs []interval.Sequence) ([]pattern.Index, error) {
	idx := make([]pattern.Index, len(seqs))
	for i := range seqs {
		slices, err := endpoint.Encode(seqs[i])
		if err != nil {
			return nil, fmt.Errorf("incremental: sequence %d: %w", i, err)
		}
		idx[i] = pattern.BuildIndex(slices)
	}
	return idx, nil
}

// ValidateSequences reports whether every sequence of an increment is
// endpoint-encodable — the exact precondition AppendCtx enforces before
// mutating its database. Append paths outside this package (the tpmd
// dataset store) call it to get validate-then-mutate atomicity with the
// same rules.
func ValidateSequences(seqs ...interval.Sequence) error {
	_, err := indexIncrement(seqs)
	return err
}

// fullRemine rebuilds the buffer from scratch for the current database
// and threshold.
func (m *Miner) fullRemine(ctx context.Context, minCount int) error {
	bufMin := m.bufferMin(minCount)
	opt := m.opt
	opt.KeepOccurrences = true
	opt.MinSupport = 0
	opt.MinCount = bufMin
	rs, _, err := core.MineTemporalCtx(ctx, &m.db, opt)
	if err != nil {
		return fmt.Errorf("incremental: full re-mine: %w", err)
	}
	m.buffer = make(map[string]*bufferEntry, len(rs))
	for _, r := range rs {
		m.buffer[r.Pattern.Key()] = &bufferEntry{pat: r.Pattern, support: r.Support}
	}
	m.bufMinAtRemine = bufMin
	m.appendedSince = 0
	m.stats.FullRemines++
	m.stats.BufferSize = len(m.buffer)
	return nil
}

// Patterns returns the current frequent temporal patterns, normalized
// and sorted exactly as core.MineTemporal would report them for the
// accumulated database.
func (m *Miner) Patterns() []pattern.TemporalResult {
	if m.db.Len() == 0 {
		return nil
	}
	minCount := m.minCount(m.db.Len())
	raw := make([]pattern.TemporalResult, 0, len(m.buffer))
	for _, e := range m.buffer {
		if e.support >= minCount {
			raw = append(raw, pattern.TemporalResult{Pattern: e.pat, Support: e.support})
		}
	}
	return pattern.NormalizeTemporalResults(raw)
}

// Database returns the accumulated database. The caller must not modify
// it.
func (m *Miner) Database() *interval.Database { return &m.db }

// Stats returns processing counters.
func (m *Miner) Stats() IncStats { return m.stats }
