package window

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/interval"
)

func longSeq() interval.Sequence {
	// A recurring motif every 50 units: A overlaps B.
	var ivs []interval.Interval
	for t := int64(0); t < 500; t += 50 {
		ivs = append(ivs,
			interval.Interval{Symbol: "A", Start: t, End: t + 10},
			interval.Interval{Symbol: "B", Start: t + 5, End: t + 15},
		)
	}
	return interval.Sequence{ID: "trace", Intervals: ivs}
}

func TestSlideValidation(t *testing.T) {
	seq := longSeq()
	if _, err := Slide(seq, Config{Width: 0}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Slide(seq, Config{Width: 10, Stride: -1}); err == nil {
		t.Error("negative stride accepted")
	}
	if _, err := Slide(seq, Config{Width: 10, Policy: Policy(99)}); err == nil {
		t.Error("unknown policy accepted")
	}
	bad := interval.Sequence{Intervals: []interval.Interval{{Symbol: "A", Start: 5, End: 1}}}
	if _, err := Slide(bad, Config{Width: 10}); err == nil {
		t.Error("invalid sequence accepted")
	}
	empty := interval.Sequence{}
	db, err := Slide(empty, Config{Width: 10})
	if err != nil || db.Len() != 0 {
		t.Errorf("empty sequence: %v, %v", db, err)
	}
}

func TestSlideTumbling(t *testing.T) {
	seq := longSeq()
	db, err := Slide(seq, Config{Width: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Span 0..465, tumbling 50-wide windows from 0: starts 0,50,...,450.
	if db.Len() != 10 {
		t.Fatalf("windows = %d", db.Len())
	}
	for i := range db.Sequences {
		if !strings.HasPrefix(db.Sequences[i].ID, "trace[w") {
			t.Errorf("window id %q", db.Sequences[i].ID)
		}
	}
}

func TestSlidePolicies(t *testing.T) {
	seq := interval.Sequence{ID: "x", Intervals: []interval.Interval{
		{Symbol: "L", Start: 0, End: 100}, // long: crosses every border
		{Symbol: "S", Start: 12, End: 14}, // short: inside window [10,20]
	}}

	// Clip: L appears in every window, trimmed.
	db, err := Slide(seq, Config{Width: 10, Policy: Clip})
	if err != nil {
		t.Fatal(err)
	}
	for i := range db.Sequences {
		for _, iv := range db.Sequences[i].Intervals {
			if iv.Duration() > 10 {
				t.Errorf("clip left %v longer than the window", iv)
			}
		}
	}
	if db.Len() != 11 { // windows 0..100
		t.Errorf("clip windows = %d", db.Len())
	}

	// WholeIfStarts: L only in the window containing its start, whole.
	db, err = Slide(seq, Config{Width: 10, Policy: WholeIfStarts, DropEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	countL := 0
	for i := range db.Sequences {
		for _, iv := range db.Sequences[i].Intervals {
			if iv.Symbol == "L" {
				countL++
				if iv.Duration() != 100 {
					t.Errorf("whole-if-starts clipped %v", iv)
				}
			}
		}
	}
	if countL != 1 {
		t.Errorf("L in %d windows under WholeIfStarts", countL)
	}

	// ContainedOnly: L never fits; S fits exactly one tumbling window.
	db, err = Slide(seq, Config{Width: 10, Policy: ContainedOnly, DropEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range db.Sequences {
		for _, iv := range db.Sequences[i].Intervals {
			if iv.Symbol == "L" {
				t.Errorf("contained-only kept %v", iv)
			}
		}
	}
}

func TestSlideDropEmpty(t *testing.T) {
	seq := interval.Sequence{ID: "gap", Intervals: []interval.Interval{
		{Symbol: "A", Start: 0, End: 5},
		{Symbol: "A", Start: 200, End: 205},
	}}
	withEmpty, err := Slide(seq, Config{Width: 10, Policy: ContainedOnly})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Slide(seq, Config{Width: 10, Policy: ContainedOnly, DropEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	if withEmpty.Len() <= without.Len() {
		t.Errorf("empty windows not kept: %d vs %d", withEmpty.Len(), without.Len())
	}
	if without.Len() != 2 {
		t.Errorf("non-empty windows = %d, want 2", without.Len())
	}
}

func TestWindowedMiningFindsMotif(t *testing.T) {
	// The recurring A-overlaps-B motif must be frequent across windows.
	db, err := Slide(longSeq(), Config{Width: 50})
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := core.MineTemporal(db, core.Options{MinSupport: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.Pattern.String() == "A+ B+ A- B-" {
			found = true
			if r.Support < 8 {
				t.Errorf("motif support %d over %d windows", r.Support, db.Len())
			}
		}
	}
	if !found {
		t.Fatalf("motif not frequent across windows: %v", rs)
	}
}

// TestSlideCoverageProperty: under Clip with stride <= width, every
// interval point of the input appears in at least one window, and every
// emitted interval lies inside its window.
func TestSlideCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		seq := interval.Sequence{ID: "r"}
		for i := 0; i < 1+rng.Intn(8); i++ {
			start := rng.Int63n(100)
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: string(rune('A' + rng.Intn(3))),
				Start:  start,
				End:    start + rng.Int63n(30),
			})
		}
		width := 5 + rng.Int63n(20)
		stride := 1 + rng.Int63n(width)
		db, err := Slide(seq, Config{Width: width, Stride: stride})
		if err != nil {
			t.Fatal(err)
		}
		total := int64(0)
		for i := range db.Sequences {
			lo, hi, parseOK := windowRange(db.Sequences[i].ID)
			if !parseOK {
				t.Fatalf("bad window id %q", db.Sequences[i].ID)
			}
			for _, iv := range db.Sequences[i].Intervals {
				if iv.Start < lo || iv.End > hi {
					t.Fatalf("interval %v escapes window [%d,%d]", iv, lo, hi)
				}
				total += 1 + iv.Duration()
			}
		}
		if len(seq.Intervals) > 0 && total == 0 {
			t.Fatal("no interval mass in any window")
		}
	}
}

// windowRange parses "id[wLO,HI]".
func windowRange(id string) (lo, hi int64, ok bool) {
	i := strings.LastIndex(id, "[w")
	if i < 0 || !strings.HasSuffix(id, "]") {
		return 0, 0, false
	}
	body := id[i+2 : len(id)-1]
	comma := strings.IndexByte(body, ',')
	if comma < 0 {
		return 0, 0, false
	}
	lo, err1 := strconv.ParseInt(body[:comma], 10, 64)
	hi, err2 := strconv.ParseInt(body[comma+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return lo, hi, true
}
