// Package window turns one long interval sequence into a database of
// sliding windows, so the sequence-database miners apply to single-trace
// data (a server's monitoring timeline, one patient's lifelong record).
// Pattern support then counts windows, i.e. "in how many time ranges of
// width W does this arrangement occur" — the episode-mining reading of
// frequency.
//
// This is an extension beyond the two-page paper (see DESIGN.md); the
// construction is the standard one from episode mining adapted to
// intervals, with an explicit policy for intervals crossing window
// borders.
package window

import (
	"fmt"

	"tpminer/internal/interval"
)

// Policy decides how an interval that crosses a window border enters
// the window.
type Policy uint8

const (
	// Clip trims intervals to the window bounds: every intersecting
	// interval appears, possibly shortened. Border-crossing
	// arrangements survive but their boundary relations may coarsen
	// (an overlap clipped at the border can become a finishes).
	Clip Policy = iota
	// WholeIfStarts keeps an interval (unclipped) iff it starts inside
	// the window. Every interval occurrence appears in the same number
	// of windows regardless of its duration; relations are exact.
	WholeIfStarts
	// ContainedOnly keeps only intervals fully inside the window.
	// Relations are exact but long intervals vanish from all windows
	// shorter than they are.
	ContainedOnly
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Clip:
		return "clip"
	case WholeIfStarts:
		return "whole-if-starts"
	case ContainedOnly:
		return "contained-only"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config parameterizes the slide. Width must be positive; Stride
// defaults to Width (tumbling windows) and must be positive.
type Config struct {
	Width  interval.Time
	Stride interval.Time
	Policy Policy
	// KeepEmpty also emits windows containing no intervals. Empty
	// windows lower relative supports (they count in the denominator);
	// keeping them is the statistically honest default for sparse
	// timelines, so the zero value keeps them.
	DropEmpty bool
}

// Slide cuts the sequence's span into windows [t, t+Width], t advancing
// by Stride from the sequence's earliest start, and returns the window
// database. Window IDs encode their range ("<seqID>[w0,w40]").
func Slide(seq interval.Sequence, cfg Config) (*interval.Database, error) {
	if err := seq.Valid(); err != nil {
		return nil, fmt.Errorf("window: %w", err)
	}
	if cfg.Width <= 0 {
		return nil, fmt.Errorf("window: non-positive width %d", cfg.Width)
	}
	if cfg.Stride == 0 {
		cfg.Stride = cfg.Width
	}
	if cfg.Stride < 0 {
		return nil, fmt.Errorf("window: negative stride %d", cfg.Stride)
	}
	switch cfg.Policy {
	case Clip, WholeIfStarts, ContainedOnly:
	default:
		return nil, fmt.Errorf("window: unknown policy %v", cfg.Policy)
	}

	db := &interval.Database{}
	first, last, ok := seq.Span()
	if !ok {
		return db, nil
	}
	for t := first; t <= last; t += cfg.Stride {
		lo, hi := t, t+cfg.Width
		w := interval.Sequence{ID: fmt.Sprintf("%s[w%d,%d]", seq.ID, lo, hi)}
		for _, iv := range seq.Intervals {
			out, keep := admit(iv, lo, hi, cfg.Policy)
			if keep {
				w.Intervals = append(w.Intervals, out)
			}
		}
		if len(w.Intervals) == 0 && cfg.DropEmpty {
			continue
		}
		w.Normalize()
		db.Sequences = append(db.Sequences, w)
	}
	return db, nil
}

// admit applies the border policy to one interval against window
// [lo, hi].
func admit(iv interval.Interval, lo, hi interval.Time, p Policy) (interval.Interval, bool) {
	switch p {
	case Clip:
		if iv.End < lo || iv.Start > hi {
			return interval.Interval{}, false
		}
		out := iv
		if out.Start < lo {
			out.Start = lo
		}
		if out.End > hi {
			out.End = hi
		}
		return out, true
	case WholeIfStarts:
		if iv.Start < lo || iv.Start > hi {
			return interval.Interval{}, false
		}
		return iv, true
	case ContainedOnly:
		if iv.Start < lo || iv.End > hi {
			return interval.Interval{}, false
		}
		return iv, true
	}
	return interval.Interval{}, false
}
