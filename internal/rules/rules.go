// Package rules derives temporal association rules from mined temporal
// patterns and scores their interestingness — the post-analysis step a
// practitioner runs after mining (an extension beyond the two-page
// paper; see DESIGN.md).
//
// A rule P ⇒ Q reads: "sequences containing the arrangement P tend to
// contain the full arrangement Q", where P is the sub-arrangement of Q
// induced by a proper, non-empty subset of Q's interval instances.
// Scores:
//
//	support    = sup(Q)                    (sequences with the full arrangement)
//	confidence = sup(Q) / sup(P)
//	lift       = conf / (sup(R) / N)       (R = the complementary
//	             sub-arrangement; lift > 1 means P makes the rest of the
//	             arrangement more likely than its base rate)
//
// Supports of sub-arrangements are taken from the mined result set when
// present and recounted against the database otherwise, so rules are
// exact regardless of the mining threshold.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// Rule is one derived temporal association rule.
type Rule struct {
	// Antecedent is the observed sub-arrangement P.
	Antecedent pattern.Temporal
	// Consequent is the complementary sub-arrangement R (what the rule
	// adds on top of P).
	Consequent pattern.Temporal
	// Full is the complete arrangement Q the rule predicts.
	Full pattern.Temporal
	// Support is sup(Q) in sequences.
	Support int
	// Confidence is sup(Q)/sup(P) in [0, 1].
	Confidence float64
	// Lift is confidence / (sup(R)/N); > 1 indicates positive
	// association between P and R beyond chance.
	Lift float64
}

// String renders the rule as "P ⇒ Q  (conf 0.83, lift 2.1, sup 42)".
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s  (conf %.2f, lift %.2f, sup %d)",
		r.Antecedent, r.Full, r.Confidence, r.Lift, r.Support)
}

// Options filters the derived rules.
type Options struct {
	// MinConfidence drops rules below this confidence (default 0).
	MinConfidence float64
	// MinLift drops rules below this lift (default 0, i.e. keep all).
	MinLift float64
	// MaxInstances skips full patterns with more interval instances
	// (subset enumeration is exponential in instances; default 4).
	MaxInstances int
}

func (o Options) withDefaults() Options {
	if o.MaxInstances == 0 {
		o.MaxInstances = 4
	}
	return o
}

// Derive produces the rules of every mined multi-interval pattern.
// Results should come from mining db (their supports are trusted);
// sub-arrangement supports missing from rs are recounted against db.
func Derive(rs []pattern.TemporalResult, db *interval.Database, opt Options) ([]Rule, error) {
	opt = opt.withDefaults()
	if opt.MinConfidence < 0 || opt.MinConfidence > 1 {
		return nil, fmt.Errorf("rules: MinConfidence %v outside [0,1]", opt.MinConfidence)
	}
	if opt.MinLift < 0 {
		return nil, fmt.Errorf("rules: negative MinLift %v", opt.MinLift)
	}
	if db.Len() == 0 {
		return nil, nil
	}
	if err := db.Valid(); err != nil {
		return nil, err
	}
	n := db.Len()

	// Known supports by normalized key. Sub-arrangements absent from
	// the result set are recounted under any-binding semantics, which
	// upper-bounds the aligned support — confidences are therefore
	// conservative (never overstated).
	known := make(map[string]int, len(rs))
	for _, r := range rs {
		known[r.Pattern.Normalize().Key()] = r.Support
	}
	supportOf := func(p pattern.Temporal) int {
		if s, ok := known[p.Normalize().Key()]; ok {
			return s
		}
		s := pattern.SupportAny(db, p)
		known[p.Normalize().Key()] = s
		return s
	}

	var out []Rule
	for _, r := range rs {
		insts := instancesOf(r.Pattern)
		k := len(insts)
		if k < 2 || k > opt.MaxInstances {
			continue
		}
		full := r.Pattern
		// Every proper, non-empty instance subset forms an antecedent.
		for mask := 1; mask < (1<<k)-1; mask++ {
			var subset, rest []instKey
			for b := 0; b < k; b++ {
				if mask&(1<<b) != 0 {
					subset = append(subset, insts[b])
				} else {
					rest = append(rest, insts[b])
				}
			}
			p := SubArrangement(full, subset)
			q := SubArrangement(full, rest)
			supP := supportOf(p)
			supR := supportOf(q)
			if supP == 0 || supR == 0 {
				continue // cannot happen for patterns mined from db
			}
			conf := float64(r.Support) / float64(supP)
			lift := conf / (float64(supR) / float64(n))
			if conf < opt.MinConfidence || lift < opt.MinLift {
				continue
			}
			out = append(out, Rule{
				Antecedent: p,
				Consequent: q,
				Full:       full,
				Support:    r.Support,
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders rules by descending confidence, then descending lift,
// then descending support, then antecedent key.
func Sort(rules []Rule) {
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Lift != rules[j].Lift {
			return rules[i].Lift > rules[j].Lift
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].Antecedent.Key() < rules[j].Antecedent.Key()
	})
}

type instKey struct {
	sym string
	occ int
}

// instancesOf lists the interval instances of a pattern in order of
// first appearance.
func instancesOf(p pattern.Temporal) []instKey {
	seen := make(map[instKey]bool)
	var out []instKey
	for _, el := range p.Elements {
		for _, e := range el {
			k := instKey{e.Symbol, e.Occ}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// SubArrangement extracts the sub-pattern of p induced by the given
// interval instances: elements keep only endpoints of those instances,
// emptied elements vanish. The result is a valid, complete pattern when
// p is (completeness of instances is preserved by construction).
func SubArrangement(p pattern.Temporal, insts []instKey) pattern.Temporal {
	want := make(map[instKey]bool, len(insts))
	for _, k := range insts {
		want[k] = true
	}
	var els [][]endpoint.Endpoint
	for _, el := range p.Elements {
		var kept []endpoint.Endpoint
		for _, e := range el {
			if want[instKey{e.Symbol, e.Occ}] {
				kept = append(kept, e)
			}
		}
		if len(kept) > 0 {
			els = append(els, kept)
		}
	}
	return pattern.NewTemporal(els...)
}

// Format renders rules as a readable multi-line report with the Allen
// reading of each full arrangement.
func Format(rules []Rule) string {
	var b strings.Builder
	for _, r := range rules {
		fmt.Fprintf(&b, "%-60s conf %.2f  lift %5.2f  sup %d\n",
			r.Antecedent.RelationSummary()+" => "+r.Full.RelationSummary(),
			r.Confidence, r.Lift, r.Support)
	}
	return b.String()
}
