package rules

import (
	"math"
	"strings"
	"testing"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// ruleDB: 10 sequences. "A" in all 10; "A overlaps B" in 6; "B" alone in
// 2 more (8 B total).
func ruleDB() *interval.Database {
	db := &interval.Database{}
	add := func(ivs ...interval.Interval) {
		db.Sequences = append(db.Sequences, interval.Sequence{Intervals: ivs})
	}
	for i := 0; i < 6; i++ {
		add(interval.Interval{Symbol: "A", Start: 0, End: 4},
			interval.Interval{Symbol: "B", Start: 2, End: 6})
	}
	for i := 0; i < 2; i++ {
		add(interval.Interval{Symbol: "A", Start: 0, End: 4})
	}
	for i := 0; i < 2; i++ {
		add(interval.Interval{Symbol: "A", Start: 0, End: 4},
			interval.Interval{Symbol: "B", Start: 10, End: 12})
	}
	return db
}

func TestDeriveKnownValues(t *testing.T) {
	db := ruleDB()
	rs, _, err := core.MineTemporal(db, core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Derive(rs, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find the rule A => (A overlaps B).
	var found *Rule
	for i := range rules {
		if rules[i].Antecedent.String() == "A+ A-" &&
			rules[i].Full.String() == "A+ B+ A- B-" {
			found = &rules[i]
		}
	}
	if found == nil {
		t.Fatalf("rule A => A-overlaps-B missing; rules: %v", rules)
	}
	// sup(Q)=6, sup(A)=10 → conf 0.6; sup(B)=8, N=10 → lift 0.6/(0.8)=0.75.
	if found.Support != 6 {
		t.Errorf("support = %d, want 6", found.Support)
	}
	if math.Abs(found.Confidence-0.6) > 1e-9 {
		t.Errorf("confidence = %v, want 0.6", found.Confidence)
	}
	if math.Abs(found.Lift-0.75) > 1e-9 {
		t.Errorf("lift = %v, want 0.75", found.Lift)
	}

	// The reverse rule B => (A overlaps B): conf 6/8 = 0.75, lift
	// 0.75/(10/10) = 0.75.
	var rev *Rule
	for i := range rules {
		if rules[i].Antecedent.String() == "B+ B-" &&
			rules[i].Full.String() == "A+ B+ A- B-" {
			rev = &rules[i]
		}
	}
	if rev == nil {
		t.Fatal("reverse rule missing")
	}
	if math.Abs(rev.Confidence-0.75) > 1e-9 || math.Abs(rev.Lift-0.75) > 1e-9 {
		t.Errorf("reverse rule scores: conf %v lift %v", rev.Confidence, rev.Lift)
	}
}

func TestDeriveFilters(t *testing.T) {
	db := ruleDB()
	rs, _, err := core.MineTemporal(db, core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Derive(rs, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Derive(rs, db, Options{MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(high) >= len(all) {
		t.Errorf("confidence filter did not shrink: %d vs %d", len(high), len(all))
	}
	for _, r := range high {
		if r.Confidence < 0.7 {
			t.Errorf("rule below threshold kept: %v", r)
		}
	}
	if _, err := Derive(rs, db, Options{MinConfidence: 2}); err == nil {
		t.Error("invalid MinConfidence accepted")
	}
	if _, err := Derive(rs, db, Options{MinLift: -1}); err == nil {
		t.Error("negative MinLift accepted")
	}
}

// TestRuleInvariants: on mined data every rule's confidence is in
// (0, 1], its support matches the full pattern's mined support, and the
// antecedent/consequent partition the full pattern's instances.
func TestRuleInvariants(t *testing.T) {
	db := ruleDB()
	rs, _, err := core.MineTemporal(db, core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Derive(rs, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules derived")
	}
	for _, r := range rules {
		if r.Confidence <= 0 || r.Confidence > 1 {
			t.Errorf("confidence %v out of range: %v", r.Confidence, r)
		}
		if r.Lift <= 0 {
			t.Errorf("non-positive lift: %v", r)
		}
		if err := r.Antecedent.Validate(); err != nil {
			t.Errorf("invalid antecedent: %v", err)
		}
		if !r.Antecedent.Complete() || !r.Consequent.Complete() {
			t.Errorf("incomplete rule parts: %v", r)
		}
		na := r.Antecedent.NumIntervals()
		nc := r.Consequent.NumIntervals()
		if na+nc != r.Full.NumIntervals() {
			t.Errorf("instances don't partition: %d + %d != %d", na, nc, r.Full.NumIntervals())
		}
		// Antecedent and consequent are genuine sub-arrangements.
		if !core.SubPattern(r.Antecedent, r.Full) || !core.SubPattern(r.Consequent, r.Full) {
			t.Errorf("rule parts not sub-arrangements of full: %v", r)
		}
	}
	// Sorted by confidence descending.
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Confidence < rules[i].Confidence {
			t.Errorf("rules not sorted at %d", i)
		}
	}
}

func TestSubArrangement(t *testing.T) {
	p, err := pattern.ParseTemporal("A+ B+ A- B- C+ C-")
	if err != nil {
		t.Fatal(err)
	}
	sub := SubArrangement(p, []instKey{{"A", 1}, {"C", 1}})
	if sub.String() != "A+ A- C+ C-" {
		t.Errorf("SubArrangement = %q", sub)
	}
	sub = SubArrangement(p, []instKey{{"B", 1}})
	if sub.String() != "B+ B-" {
		t.Errorf("SubArrangement = %q", sub)
	}
}

func TestMaxInstancesCap(t *testing.T) {
	// A pattern with 5 instances must be skipped at the default cap.
	db := &interval.Database{}
	var ivs []interval.Interval
	for i := 0; i < 5; i++ {
		ivs = append(ivs, interval.Interval{
			Symbol: string(rune('A' + i)), Start: int64(10 * i), End: int64(10*i + 5),
		})
	}
	for i := 0; i < 3; i++ {
		db.Sequences = append(db.Sequences, interval.Sequence{Intervals: ivs})
	}
	rs, _, err := core.MineTemporal(db, core.Options{MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Derive(rs, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Full.NumIntervals() > 4 {
			t.Errorf("rule from over-cap pattern: %v", r)
		}
	}
}

func TestFormatAndString(t *testing.T) {
	db := ruleDB()
	rs, _, err := core.MineTemporal(db, core.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Derive(rs, db, Options{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	out := Format(rules)
	if !strings.Contains(out, "=>") || !strings.Contains(out, "conf") {
		t.Errorf("Format output: %q", out)
	}
	if s := rules[0].String(); !strings.Contains(s, "=>") {
		t.Errorf("String output: %q", s)
	}
}
