package seqdb

import (
	"math/rand"
	"testing"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
)

func testDB(t *testing.T) *interval.Database {
	t.Helper()
	return interval.NewDatabase(
		[]interval.Interval{
			{Symbol: "A", Start: 0, End: 4},
			{Symbol: "B", Start: 2, End: 6},
		},
		[]interval.Interval{
			{Symbol: "A", Start: 1, End: 3},
			{Symbol: "C", Start: 5, End: 8},
		},
		[]interval.Interval{
			{Symbol: "A", Start: 0, End: 2},
			{Symbol: "A", Start: 1, End: 5},
		},
	)
}

func TestEncodeEndpointDB(t *testing.T) {
	enc, err := EncodeEndpointDB(testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Seqs) != 3 {
		t.Fatalf("seqs = %d", len(enc.Seqs))
	}
	// Items: A+/A-/B+/B- from seq0, C+/C- from seq1, A.2+/A.2- from seq2.
	if enc.Table.Len() != 8 {
		t.Errorf("table size = %d, want 8", enc.Table.Len())
	}
	// Pair index links starts to finishes.
	for id := 0; id < enc.Table.Len(); id++ {
		pid := enc.Pair[id]
		if pid < 0 {
			t.Fatalf("item %v has no pair", enc.Table.Endpoint(Item(id)))
		}
		if enc.Pair[pid] != Item(id) {
			t.Fatalf("pair index not symmetric for %v", enc.Table.Endpoint(Item(id)))
		}
		if enc.IsFinish[id] == enc.IsFinish[pid] {
			t.Fatalf("pair kinds equal for %v", enc.Table.Endpoint(Item(id)))
		}
	}
	// Position index agrees with the slices.
	if enc.Pos.Width() != enc.Table.Len() {
		t.Fatalf("Pos width = %d, want %d", enc.Pos.Width(), enc.Table.Len())
	}
	for si, seq := range enc.Seqs {
		n := 0
		for ci, sl := range seq.Slices {
			for ii, it := range sl.Items {
				loc := enc.Pos.At(int32(si), it)
				if loc.Slice != int32(ci) || loc.Idx != int32(ii) {
					t.Fatalf("Pos.At(%d,%v) = %v; want (%d,%d)", si, it, loc, ci, ii)
				}
				n++
			}
		}
		present := 0
		for _, loc := range enc.Pos.Row(int32(si)) {
			if loc.Slice >= 0 {
				present++
			}
		}
		if n != present {
			t.Fatalf("Pos row %d has %d present entries, slices hold %d items", si, present, n)
		}
	}
}

func TestEndpointItemSupports(t *testing.T) {
	enc, err := EncodeEndpointDB(testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	sup := enc.ItemSupports()
	aPlus, ok := enc.Table.Lookup(endpoint.Endpoint{Symbol: "A", Occ: 1, Kind: endpoint.Start})
	if !ok {
		t.Fatal("A+ not interned")
	}
	if sup[aPlus] != 3 {
		t.Errorf("support(A+) = %d, want 3", sup[aPlus])
	}
	a2Plus, ok := enc.Table.Lookup(endpoint.Endpoint{Symbol: "A", Occ: 2, Kind: endpoint.Start})
	if !ok {
		t.Fatal("A.2+ not interned")
	}
	if sup[a2Plus] != 1 {
		t.Errorf("support(A.2+) = %d, want 1", sup[a2Plus])
	}
}

func TestFilterInfrequent(t *testing.T) {
	enc, err := EncodeEndpointDB(testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	removed := enc.FilterInfrequent(2)
	// Only A.1 (support 3) survives; B, C, A.2 all have support 1.
	if removed != 6 {
		t.Errorf("removed = %d, want 6", removed)
	}
	for si, seq := range enc.Seqs {
		for _, sl := range seq.Slices {
			if len(sl.Items) == 0 {
				t.Fatal("empty slice survived filtering")
			}
			for _, it := range sl.Items {
				e := enc.Table.Endpoint(it)
				if e.Symbol != "A" || e.Occ != 1 {
					t.Fatalf("seq %d kept infrequent item %v", si, e)
				}
			}
		}
		// Position index rebuilt consistently: every present entry points
		// at its item, and every surviving item is indexed.
		kept := 0
		for it, loc := range enc.Pos.Row(int32(si)) {
			if loc.Slice < 0 {
				continue
			}
			kept++
			if enc.Seqs[si].Slices[loc.Slice].Items[loc.Idx] != Item(it) {
				t.Fatalf("stale position index after filtering")
			}
		}
		if kept != seq.NumItems() {
			t.Fatalf("Pos row %d has %d present entries after filter, slices hold %d", si, kept, seq.NumItems())
		}
	}
	// Filtering again removes nothing.
	if again := enc.FilterInfrequent(2); again != 0 {
		t.Errorf("second filter removed %d", again)
	}
}

func TestEncodeCoincidenceDB(t *testing.T) {
	enc, err := EncodeCoincidenceDB(testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if enc.Table.Len() != 3 { // A, B, C
		t.Errorf("symbols = %d", enc.Table.Len())
	}
	sup := enc.ItemSupports()
	a, _ := enc.Table.Lookup("A")
	b, _ := enc.Table.Lookup("B")
	if sup[a] != 3 || sup[b] != 1 {
		t.Errorf("supports: A=%d B=%d", sup[a], sup[b])
	}
	// Durations parallel the slices.
	for si := range enc.Seqs {
		if len(enc.Durations[si]) != len(enc.Seqs[si].Slices) {
			t.Fatalf("durations misaligned for seq %d", si)
		}
	}
	checkOccIndex(t, enc)
}

// checkOccIndex verifies the posting lists against a direct scan of the
// slices: every (sequence, item) pair lists exactly the ascending slice
// indices containing the item.
func checkOccIndex(t *testing.T, enc *CoincDB) {
	t.Helper()
	if enc.Occ.Width() != enc.Table.Len() {
		t.Fatalf("Occ width = %d, want %d", enc.Occ.Width(), enc.Table.Len())
	}
	for si := range enc.Seqs {
		for it := 0; it < enc.Table.Len(); it++ {
			var want []int32
			for ci, sl := range enc.Seqs[si].Slices {
				for _, x := range sl.Items {
					if x == Item(it) {
						want = append(want, int32(ci))
					}
				}
			}
			got := enc.Occ.Slices(int32(si), Item(it))
			if len(got) != len(want) {
				t.Fatalf("Occ.Slices(%d,%d) = %v, want %v", si, it, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Occ.Slices(%d,%d) = %v, want %v", si, it, got, want)
				}
			}
		}
	}
}

func TestCoincFilterInfrequent(t *testing.T) {
	enc, err := EncodeCoincidenceDB(testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	removed := enc.FilterInfrequent(2)
	if removed != 2 { // B and C dropped
		t.Errorf("removed = %d, want 2", removed)
	}
	for si := range enc.Seqs {
		if len(enc.Durations[si]) != len(enc.Seqs[si].Slices) {
			t.Fatalf("durations misaligned after filter for seq %d", si)
		}
		for _, sl := range enc.Seqs[si].Slices {
			if len(sl.Items) == 0 {
				t.Fatal("empty slice survived")
			}
		}
	}
	checkOccIndex(t, enc)
}

func TestTables(t *testing.T) {
	et := NewEndpointTable()
	e1 := endpoint.Endpoint{Symbol: "X", Occ: 1, Kind: endpoint.Start}
	id1 := et.Intern(e1)
	if got := et.Intern(e1); got != id1 {
		t.Error("Intern not idempotent")
	}
	if got, ok := et.Lookup(e1); !ok || got != id1 {
		t.Error("Lookup failed")
	}
	if _, ok := et.Lookup(endpoint.Endpoint{Symbol: "Y", Occ: 1}); ok {
		t.Error("Lookup invented an entry")
	}
	if et.Endpoint(id1) != e1 {
		t.Error("Endpoint reverse lookup failed")
	}

	st := NewSymbolTable()
	a := st.Intern("A")
	if st.Intern("A") != a || st.Symbol(a) != "A" || st.Len() != 1 {
		t.Error("symbol table basic ops failed")
	}
	if _, ok := st.Lookup("Z"); ok {
		t.Error("symbol Lookup invented an entry")
	}
}

func TestLocBefore(t *testing.T) {
	a := Loc{Slice: 1, Idx: 2}
	b := Loc{Slice: 1, Idx: 3}
	c := Loc{Slice: 2, Idx: 0}
	if !a.Before(b) || !b.Before(c) || !a.Before(c) {
		t.Error("Before ordering wrong")
	}
	if a.Before(a) || b.Before(a) {
		t.Error("Before not strict")
	}
}

func TestInitialProjection(t *testing.T) {
	p := InitialProjection(3)
	if len(p) != 3 {
		t.Fatalf("len = %d", len(p))
	}
	for i, pe := range p {
		if pe.Seq != int32(i) || pe.Slice != -1 || pe.Idx != -1 {
			t.Errorf("entry %d = %+v", i, pe)
		}
	}
}

// TestUniqueItemInvariant: in endpoint databases every item occurs at
// most once per sequence — the property the fast projection relies on.
func TestUniqueItemInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		db := &interval.Database{}
		for s := 0; s < 5; s++ {
			seq := interval.Sequence{ID: "r"}
			for i := 0; i < rng.Intn(10); i++ {
				start := rng.Int63n(20)
				seq.Intervals = append(seq.Intervals, interval.Interval{
					Symbol: string(rune('A' + rng.Intn(3))),
					Start:  start,
					End:    start + rng.Int63n(10),
				})
			}
			db.Sequences = append(db.Sequences, seq)
		}
		enc, err := EncodeEndpointDB(db)
		if err != nil {
			t.Fatal(err)
		}
		for si, seq := range enc.Seqs {
			seen := make(map[Item]bool)
			for _, sl := range seq.Slices {
				for j, it := range sl.Items {
					if j > 0 && sl.Items[j-1] >= it {
						t.Fatalf("slice items not strictly ascending in seq %d", si)
					}
					if seen[it] {
						t.Fatalf("item %v occurs twice in seq %d", enc.Table.Endpoint(it), si)
					}
					seen[it] = true
				}
			}
		}
	}
}
