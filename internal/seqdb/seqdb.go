// Package seqdb provides the integer-encoded sequence databases and the
// pseudo-projection machinery shared by the projection-based miners.
//
// Both representations mined by P-TPMiner reduce to the same shape: a
// database of sequences of slices, where each slice is a sorted set of
// integer items (occurrence-indexed endpoints for the temporal view,
// symbol ids for the coincidence view). Mining proceeds by PrefixSpan-
// style pseudo-projection: a projected database is just a list of
// (sequence, position) pairs into the one immutable encoded database —
// no sequence data is ever copied.
package seqdb

import (
	"fmt"
	"sort"

	"tpminer/internal/coincidence"
	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
)

// Item is an integer-encoded slice member. Item ids also define the
// canonical in-slice order used for I-extensions.
type Item int32

// Slice is one time point of an encoded sequence: its items in ascending
// id order.
type Slice struct {
	Time  interval.Time
	Items []Item
}

// Sequence is an encoded sequence of slices.
type Sequence struct {
	Slices []Slice
}

// NumItems returns the total item count of the sequence.
func (s *Sequence) NumItems() int {
	n := 0
	for i := range s.Slices {
		n += len(s.Slices[i].Items)
	}
	return n
}

// Loc addresses one item inside a sequence.
type Loc struct {
	Slice int32 // slice index
	Idx   int32 // item index within the slice
}

// Before reports whether l strictly precedes m in sequence order.
func (l Loc) Before(m Loc) bool {
	if l.Slice != m.Slice {
		return l.Slice < m.Slice
	}
	return l.Idx < m.Idx
}

// ProjPos is one entry of a projected database: the position in sequence
// Seq at which the current prefix's last item matched. The initial
// projection uses Slice = -1 ("before the first slice").
type ProjPos struct {
	Seq int32
	Loc
}

// Projection is a pseudo-projected database: one position per supporting
// sequence, ordered by sequence index.
type Projection []ProjPos

// InitialProjection returns the projection representing the empty prefix
// over n sequences.
func InitialProjection(n int) Projection {
	out := make(Projection, n)
	for i := range out {
		out[i] = ProjPos{Seq: int32(i), Loc: Loc{Slice: -1, Idx: -1}}
	}
	return out
}

// EndpointTable maps occurrence-indexed endpoints to dense item ids.
// Ids are assigned in first-encounter order over the database, which
// makes encoding deterministic for a given input.
type EndpointTable struct {
	ids map[endpoint.Endpoint]Item
	eps []endpoint.Endpoint
}

// NewEndpointTable returns an empty table.
func NewEndpointTable() *EndpointTable {
	return &EndpointTable{ids: make(map[endpoint.Endpoint]Item)}
}

// Intern returns the id for e, assigning the next free id on first use.
func (t *EndpointTable) Intern(e endpoint.Endpoint) Item {
	if id, ok := t.ids[e]; ok {
		return id
	}
	id := Item(len(t.eps))
	t.ids[e] = id
	t.eps = append(t.eps, e)
	return id
}

// Lookup returns the id for e if it was interned.
func (t *EndpointTable) Lookup(e endpoint.Endpoint) (Item, bool) {
	id, ok := t.ids[e]
	return id, ok
}

// Endpoint returns the endpoint for an interned id.
func (t *EndpointTable) Endpoint(id Item) endpoint.Endpoint { return t.eps[id] }

// Len returns the number of interned endpoints.
func (t *EndpointTable) Len() int { return len(t.eps) }

// SymbolTable maps symbols to dense item ids, first-encounter order.
type SymbolTable struct {
	ids  map[string]Item
	syms []string
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]Item)}
}

// Intern returns the id for sym, assigning the next free id on first use.
func (t *SymbolTable) Intern(sym string) Item {
	if id, ok := t.ids[sym]; ok {
		return id
	}
	id := Item(len(t.syms))
	t.ids[sym] = id
	t.syms = append(t.syms, sym)
	return id
}

// Lookup returns the id for sym if it was interned.
func (t *SymbolTable) Lookup(sym string) (Item, bool) {
	id, ok := t.ids[sym]
	return id, ok
}

// Symbol returns the symbol for an interned id.
func (t *SymbolTable) Symbol(id Item) string { return t.syms[id] }

// Len returns the number of interned symbols.
func (t *SymbolTable) Len() int { return len(t.syms) }

// EndpointDB is an interval database encoded into endpoint representation
// with integer items. Because endpoints are occurrence-indexed, every
// item appears at most once per sequence; Pos exploits that with an exact
// per-sequence location index, and Pair links each item to the id of the
// other end of the same interval.
type EndpointDB struct {
	Seqs  []Sequence
	Table *EndpointTable
	// Pair[i] is the item id of the matching endpoint of item i, or -1
	// if the pair never occurs in the database (cannot happen for
	// databases built by EncodeEndpointDB, but can after filtering).
	Pair []Item
	// IsFinish[i] reports whether item i is a finish endpoint.
	IsFinish []bool
	// Pos[s] locates each item occurring in sequence s.
	Pos []map[Item]Loc
}

// EncodeEndpointDB encodes an interval database into endpoint
// representation. Input sequences are validated; the input is not
// modified.
func EncodeEndpointDB(db *interval.Database) (*EndpointDB, error) {
	out := &EndpointDB{
		Seqs:  make([]Sequence, len(db.Sequences)),
		Table: NewEndpointTable(),
		Pos:   make([]map[Item]Loc, len(db.Sequences)),
	}
	for si := range db.Sequences {
		slices, err := endpoint.Encode(db.Sequences[si])
		if err != nil {
			return nil, fmt.Errorf("seqdb: sequence %d: %w", si, err)
		}
		seq := Sequence{Slices: make([]Slice, len(slices))}
		pos := make(map[Item]Loc, 2*len(db.Sequences[si].Intervals))
		for ci, sl := range slices {
			items := make([]Item, len(sl.Points))
			for pi, p := range sl.Points {
				items[pi] = out.Table.Intern(p)
			}
			sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
			for ii, it := range items {
				pos[it] = Loc{Slice: int32(ci), Idx: int32(ii)}
			}
			seq.Slices[ci] = Slice{Time: sl.Time, Items: items}
		}
		out.Seqs[si] = seq
		out.Pos[si] = pos
	}
	out.buildPairIndex()
	return out, nil
}

func (db *EndpointDB) buildPairIndex() {
	n := db.Table.Len()
	db.Pair = make([]Item, n)
	db.IsFinish = make([]bool, n)
	for id := 0; id < n; id++ {
		e := db.Table.Endpoint(Item(id))
		db.IsFinish[id] = e.Kind == endpoint.Finish
		if pid, ok := db.Table.Lookup(e.Pair()); ok {
			db.Pair[id] = pid
		} else {
			db.Pair[id] = -1
		}
	}
}

// ItemSupports counts, per item id, the number of sequences containing
// the item. For endpoint databases this is exact (each item occurs at
// most once per sequence).
func (db *EndpointDB) ItemSupports() []int {
	sup := make([]int, db.Table.Len())
	for si := range db.Seqs {
		for it := range db.Pos[si] {
			sup[it]++
		}
	}
	return sup
}

// FilterInfrequent rebuilds the database dropping every item whose
// support is below minCount, together with slices that become empty.
// Start/finish pairs always have equal support, so pairs are dropped
// together automatically. It returns the number of item ids removed.
// This implements pruning P1 (global infrequent-endpoint pruning).
func (db *EndpointDB) FilterInfrequent(minCount int) int {
	sup := db.ItemSupports()
	keep := make([]bool, len(sup))
	removed := 0
	for i, s := range sup {
		keep[i] = s >= minCount
		if s > 0 && s < minCount {
			removed++ // only ids actually present count as removals
		}
	}
	if removed == 0 {
		return 0
	}
	for si := range db.Seqs {
		seq := &db.Seqs[si]
		pos := make(map[Item]Loc)
		outSlices := seq.Slices[:0]
		for _, sl := range seq.Slices {
			items := make([]Item, 0, len(sl.Items))
			for _, it := range sl.Items {
				if keep[it] {
					items = append(items, it)
				}
			}
			if len(items) == 0 {
				continue
			}
			ci := int32(len(outSlices))
			for ii, it := range items {
				pos[it] = Loc{Slice: ci, Idx: int32(ii)}
			}
			outSlices = append(outSlices, Slice{Time: sl.Time, Items: items})
		}
		seq.Slices = outSlices
		db.Pos[si] = pos
	}
	return removed
}

// CoincDB is an interval database encoded into coincidence representation
// with integer symbol items. Unlike EndpointDB, the same item may occur
// in many slices of one sequence.
type CoincDB struct {
	Seqs  []Sequence
	Table *SymbolTable
	// Durations[s][c] is the time extent of slice c of sequence s
	// (End - Start of the underlying segment), kept for reporting.
	Durations [][]interval.Time
}

// EncodeCoincidenceDB encodes an interval database into coincidence
// representation.
func EncodeCoincidenceDB(db *interval.Database) (*CoincDB, error) {
	out := &CoincDB{
		Seqs:      make([]Sequence, len(db.Sequences)),
		Table:     NewSymbolTable(),
		Durations: make([][]interval.Time, len(db.Sequences)),
	}
	for si := range db.Sequences {
		segs, err := coincidence.Transform(db.Sequences[si])
		if err != nil {
			return nil, fmt.Errorf("seqdb: sequence %d: %w", si, err)
		}
		seq := Sequence{Slices: make([]Slice, len(segs))}
		durs := make([]interval.Time, len(segs))
		for ci, c := range segs {
			items := make([]Item, len(c.Symbols))
			for pi, sym := range c.Symbols {
				items[pi] = out.Table.Intern(sym)
			}
			sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
			seq.Slices[ci] = Slice{Time: c.Start, Items: items}
			durs[ci] = c.End - c.Start
		}
		out.Seqs[si] = seq
		out.Durations[si] = durs
	}
	return out, nil
}

// ItemSupports counts, per symbol id, the number of sequences in which
// the symbol is alive in at least one segment.
func (db *CoincDB) ItemSupports() []int {
	sup := make([]int, db.Table.Len())
	seen := make([]int32, db.Table.Len())
	for i := range seen {
		seen[i] = -1
	}
	for si := range db.Seqs {
		for _, sl := range db.Seqs[si].Slices {
			for _, it := range sl.Items {
				if seen[it] != int32(si) {
					seen[it] = int32(si)
					sup[it]++
				}
			}
		}
	}
	return sup
}

// FilterInfrequent rebuilds the coincidence database dropping every
// symbol with support below minCount and slices that become empty.
// Returns the number of symbol ids removed.
func (db *CoincDB) FilterInfrequent(minCount int) int {
	sup := db.ItemSupports()
	keep := make([]bool, len(sup))
	removed := 0
	for i, s := range sup {
		keep[i] = s >= minCount
		if s > 0 && s < minCount {
			removed++ // only ids actually present count as removals
		}
	}
	if removed == 0 {
		return 0
	}
	for si := range db.Seqs {
		seq := &db.Seqs[si]
		outSlices := seq.Slices[:0]
		outDurs := db.Durations[si][:0]
		for ci, sl := range seq.Slices {
			items := make([]Item, 0, len(sl.Items))
			for _, it := range sl.Items {
				if keep[it] {
					items = append(items, it)
				}
			}
			if len(items) == 0 {
				continue
			}
			outSlices = append(outSlices, Slice{Time: sl.Time, Items: items})
			outDurs = append(outDurs, db.Durations[si][ci])
		}
		seq.Slices = outSlices
		db.Durations[si] = outDurs
	}
	return removed
}
