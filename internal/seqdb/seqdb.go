// Package seqdb provides the integer-encoded sequence databases and the
// pseudo-projection machinery shared by the projection-based miners.
//
// Both representations mined by P-TPMiner reduce to the same shape: a
// database of sequences of slices, where each slice is a sorted set of
// integer items (occurrence-indexed endpoints for the temporal view,
// symbol ids for the coincidence view). Mining proceeds by PrefixSpan-
// style pseudo-projection: a projected database is just a list of
// (sequence, position) pairs into the one immutable encoded database —
// no sequence data is ever copied.
package seqdb

import (
	"fmt"

	"tpminer/internal/coincidence"
	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
)

// Item is an integer-encoded slice member. Item ids also define the
// canonical in-slice order used for I-extensions.
type Item int32

// Slice is one time point of an encoded sequence: its items in ascending
// id order.
type Slice struct {
	Time  interval.Time
	Items []Item
}

// Sequence is an encoded sequence of slices.
type Sequence struct {
	Slices []Slice
}

// NumItems returns the total item count of the sequence.
func (s *Sequence) NumItems() int {
	n := 0
	for i := range s.Slices {
		n += len(s.Slices[i].Items)
	}
	return n
}

// Loc addresses one item inside a sequence.
type Loc struct {
	Slice int32 // slice index
	Idx   int32 // item index within the slice
}

// Before reports whether l strictly precedes m in sequence order.
func (l Loc) Before(m Loc) bool {
	if l.Slice != m.Slice {
		return l.Slice < m.Slice
	}
	return l.Idx < m.Idx
}

// ProjPos is one entry of a projected database: the position in sequence
// Seq at which the current prefix's last item matched. The initial
// projection uses Slice = -1 ("before the first slice").
type ProjPos struct {
	Seq int32
	Loc
}

// Projection is a pseudo-projected database: one position per supporting
// sequence, ordered by sequence index.
type Projection []ProjPos

// InitialProjection returns the projection representing the empty prefix
// over n sequences.
func InitialProjection(n int) Projection {
	out := make(Projection, n)
	for i := range out {
		out[i] = ProjPos{Seq: int32(i), Loc: Loc{Slice: -1, Idx: -1}}
	}
	return out
}

// EndpointTable maps occurrence-indexed endpoints to dense item ids.
// Ids are assigned in first-encounter order over the database, which
// makes encoding deterministic for a given input.
type EndpointTable struct {
	ids map[endpoint.Endpoint]Item
	eps []endpoint.Endpoint
}

// NewEndpointTable returns an empty table.
func NewEndpointTable() *EndpointTable {
	return &EndpointTable{ids: make(map[endpoint.Endpoint]Item)}
}

// Intern returns the id for e, assigning the next free id on first use.
func (t *EndpointTable) Intern(e endpoint.Endpoint) Item {
	if id, ok := t.ids[e]; ok {
		return id
	}
	id := Item(len(t.eps))
	t.ids[e] = id
	t.eps = append(t.eps, e)
	return id
}

// Lookup returns the id for e if it was interned.
func (t *EndpointTable) Lookup(e endpoint.Endpoint) (Item, bool) {
	id, ok := t.ids[e]
	return id, ok
}

// Endpoint returns the endpoint for an interned id.
func (t *EndpointTable) Endpoint(id Item) endpoint.Endpoint { return t.eps[id] }

// Len returns the number of interned endpoints.
func (t *EndpointTable) Len() int { return len(t.eps) }

// SymbolTable maps symbols to dense item ids, first-encounter order.
type SymbolTable struct {
	ids  map[string]Item
	syms []string
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]Item)}
}

// Intern returns the id for sym, assigning the next free id on first use.
func (t *SymbolTable) Intern(sym string) Item {
	if id, ok := t.ids[sym]; ok {
		return id
	}
	id := Item(len(t.syms))
	t.ids[sym] = id
	t.syms = append(t.syms, sym)
	return id
}

// Lookup returns the id for sym if it was interned.
func (t *SymbolTable) Lookup(sym string) (Item, bool) {
	id, ok := t.ids[sym]
	return id, ok
}

// Symbol returns the symbol for an interned id.
func (t *SymbolTable) Symbol(id Item) string { return t.syms[id] }

// Len returns the number of interned symbols.
func (t *SymbolTable) Len() int { return len(t.syms) }

// maxDenseEntries caps the size of the dense per-sequence indexes
// (sequences × item ids). Beyond it a degenerate database (say, millions
// of distinct symbols across thousands of sequences) would allocate
// multi-gigabyte index arrays; encoding fails with a clear error instead
// of inviting the OOM killer. 1<<27 Locs is one gigabyte, well above the
// paper-scale experiments (which need a few million entries).
const maxDenseEntries = 1 << 27

func checkDenseSize(nSeqs, width int) error {
	if nSeqs > 0 && width > 0 && nSeqs > maxDenseEntries/width {
		return fmt.Errorf("seqdb: dense index would need %d×%d entries (limit %d); reduce distinct symbols or sequences", nSeqs, width, maxDenseEntries)
	}
	return nil
}

// PosIndex is the dense item→location index of an EndpointDB: row s is a
// flat array indexed by item id whose entries locate that item in
// sequence s, with Slice == -1 marking items absent from the sequence.
// It replaces a per-sequence map so the projection inner loop is a
// single bounds-checked array load instead of a hash lookup.
type PosIndex struct {
	width int
	locs  []Loc
}

func newPosIndex(nSeqs, width int) PosIndex {
	locs := make([]Loc, nSeqs*width)
	if len(locs) > 0 {
		// Fill with the absent sentinel by copy-doubling: memmove beats
		// a scalar store loop on these multi-hundred-KB arrays.
		locs[0] = Loc{Slice: -1, Idx: -1}
		for n := 1; n < len(locs); n *= 2 {
			copy(locs[n:], locs[:n])
		}
	}
	return PosIndex{width: width, locs: locs}
}

// Width returns the row width (the item-id space of the index).
func (p *PosIndex) Width() int { return p.width }

// Row returns sequence s's location row, indexed by item id. Entries
// with Slice == -1 mark items absent from the sequence.
func (p *PosIndex) Row(s int32) []Loc {
	base := int(s) * p.width
	return p.locs[base : base+p.width : base+p.width]
}

// At returns the location of item it in sequence s; Slice == -1 means
// the item does not occur in the sequence.
func (p *PosIndex) At(s int32, it Item) Loc {
	return p.locs[int(s)*p.width+int(it)]
}

// EndpointDB is an interval database encoded into endpoint representation
// with integer items. Because endpoints are occurrence-indexed, every
// item appears at most once per sequence; Pos exploits that with an exact
// dense per-sequence location index, and Pair links each item to the id
// of the other end of the same interval.
type EndpointDB struct {
	Seqs  []Sequence
	Table *EndpointTable
	// Pair[i] is the item id of the matching endpoint of item i, or -1
	// if the pair never occurs in the database (cannot happen for
	// databases built by EncodeEndpointDB, but can after filtering).
	Pair []Item
	// IsFinish[i] reports whether item i is a finish endpoint.
	IsFinish []bool
	// Pos locates each item occurring in each sequence.
	Pos PosIndex
}

// sortItems sorts a slice's item set in place. Slices are tiny (most
// hold one or two items), so an insertion sort beats sort.Slice and
// avoids the closure allocation on the encode hot path.
func sortItems(items []Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j] < items[j-1]; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

// EncodeEndpointDB encodes an interval database into endpoint
// representation. Input sequences are validated; the input is not
// modified.
//
// Encoding runs on every mine request, so the item slices of each
// sequence are carved from a single backing array rather than allocated
// per slice.
func EncodeEndpointDB(db *interval.Database) (*EndpointDB, error) {
	out := &EndpointDB{
		Seqs:  make([]Sequence, len(db.Sequences)),
		Table: NewEndpointTable(),
	}
	var enc endpoint.Encoder
	for si := range db.Sequences {
		slices, err := enc.Encode(db.Sequences[si])
		if err != nil {
			return nil, fmt.Errorf("seqdb: sequence %d: %w", si, err)
		}
		total := 0
		for _, sl := range slices {
			total += len(sl.Points)
		}
		backing := make([]Item, total)
		seq := Sequence{Slices: make([]Slice, len(slices))}
		k := 0
		for ci, sl := range slices {
			items := backing[k : k+len(sl.Points) : k+len(sl.Points)]
			k += len(sl.Points)
			for pi, p := range sl.Points {
				items[pi] = out.Table.Intern(p)
			}
			sortItems(items)
			seq.Slices[ci] = Slice{Time: sl.Time, Items: items}
		}
		out.Seqs[si] = seq
	}
	if err := out.buildPosIndex(); err != nil {
		return nil, err
	}
	out.buildPairIndex()
	return out, nil
}

// buildPosIndex (re)builds the dense position index from the encoded
// slices. The id space must be fully interned (the index width is
// Table.Len()).
func (db *EndpointDB) buildPosIndex() error {
	width := db.Table.Len()
	if err := checkDenseSize(len(db.Seqs), width); err != nil {
		return err
	}
	db.Pos = newPosIndex(len(db.Seqs), width)
	for si := range db.Seqs {
		row := db.Pos.Row(int32(si))
		for ci := range db.Seqs[si].Slices {
			for ii, it := range db.Seqs[si].Slices[ci].Items {
				row[it] = Loc{Slice: int32(ci), Idx: int32(ii)}
			}
		}
	}
	return nil
}

func (db *EndpointDB) buildPairIndex() {
	n := db.Table.Len()
	db.Pair = make([]Item, n)
	db.IsFinish = make([]bool, n)
	for id := 0; id < n; id++ {
		e := db.Table.Endpoint(Item(id))
		db.IsFinish[id] = e.Kind == endpoint.Finish
		if pid, ok := db.Table.Lookup(e.Pair()); ok {
			db.Pair[id] = pid
		} else {
			db.Pair[id] = -1
		}
	}
}

// ItemSupports counts, per item id, the number of sequences containing
// the item. For endpoint databases this is exact (each item occurs at
// most once per sequence).
func (db *EndpointDB) ItemSupports() []int {
	sup := make([]int, db.Table.Len())
	for si := range db.Seqs {
		for ci := range db.Seqs[si].Slices {
			for _, it := range db.Seqs[si].Slices[ci].Items {
				sup[it]++
			}
		}
	}
	return sup
}

// FilterInfrequent rebuilds the database dropping every item whose
// support is below minCount, together with slices that become empty.
// Start/finish pairs always have equal support, so pairs are dropped
// together automatically. It returns the number of item ids removed.
// This implements pruning P1 (global infrequent-endpoint pruning).
func (db *EndpointDB) FilterInfrequent(minCount int) int {
	sup := db.ItemSupports()
	keep := make([]bool, len(sup))
	removed := 0
	for i, s := range sup {
		keep[i] = s >= minCount
		if s > 0 && s < minCount {
			removed++ // only ids actually present count as removals
		}
	}
	if removed == 0 {
		return 0
	}
	for si := range db.Seqs {
		seq := &db.Seqs[si]
		row := db.Pos.Row(int32(si))
		outSlices := seq.Slices[:0]
		for _, sl := range seq.Slices {
			// Filter in place: the database is being rebuilt, so the
			// original item slices are dead storage we can compact into.
			items := sl.Items[:0]
			for _, it := range sl.Items {
				if keep[it] {
					items = append(items, it)
				} else {
					row[it] = Loc{Slice: -1, Idx: -1}
				}
			}
			if len(items) == 0 {
				continue
			}
			ci := int32(len(outSlices))
			for ii, it := range items {
				row[it] = Loc{Slice: ci, Idx: int32(ii)}
			}
			outSlices = append(outSlices, Slice{Time: sl.Time, Items: items})
		}
		seq.Slices = outSlices
	}
	return removed
}

// OccIndex is the dense posting-list index of a CoincDB: for each
// sequence and symbol id, the ascending slice indices whose item sets
// contain the symbol, in CSR layout (one offsets row plus one postings
// array per sequence). Projection uses it to jump straight to the next
// slice containing a symbol instead of scanning every later slice.
type OccIndex struct {
	width  int
	starts [][]int32 // starts[s] has width+1 entries into posts[s]
	posts  [][]int32 // posts[s] holds ascending slice indices
}

// Width returns the symbol-id space of the index.
func (o *OccIndex) Width() int { return o.width }

// Slices returns the ascending slice indices of sequence s that contain
// item it. The returned slice aliases the index; callers must not
// modify it.
func (o *OccIndex) Slices(s int32, it Item) []int32 {
	st := o.starts[s]
	return o.posts[s][st[it]:st[it+1]]
}

// CoincDB is an interval database encoded into coincidence representation
// with integer symbol items. Unlike EndpointDB, the same item may occur
// in many slices of one sequence; Occ indexes those occurrences.
type CoincDB struct {
	Seqs  []Sequence
	Table *SymbolTable
	// Durations[s][c] is the time extent of slice c of sequence s
	// (End - Start of the underlying segment), kept for reporting.
	Durations [][]interval.Time
	// Occ locates the slices containing each symbol in each sequence.
	Occ OccIndex
}

// buildOccIndex (re)builds the posting-list index from the encoded
// slices. The symbol space must be fully interned.
func (db *CoincDB) buildOccIndex() error {
	width := db.Table.Len()
	// The offsets rows are (width+1) int32s per sequence — the same
	// sequences×ids shape as the endpoint index, bounded the same way.
	if err := checkDenseSize(len(db.Seqs), width+1); err != nil {
		return err
	}
	db.Occ = OccIndex{
		width:  width,
		starts: make([][]int32, len(db.Seqs)),
		posts:  make([][]int32, len(db.Seqs)),
	}
	for si := range db.Seqs {
		slices := db.Seqs[si].Slices
		starts := make([]int32, width+1)
		total := 0
		for ci := range slices {
			for _, it := range slices[ci].Items {
				starts[it+1]++
				total++
			}
		}
		for i := 1; i <= width; i++ {
			starts[i] += starts[i-1]
		}
		posts := make([]int32, total)
		// fill cursors: next write position per item; slices are visited
		// in ascending order so each posting list comes out sorted.
		next := make([]int32, width)
		copy(next, starts[:width])
		for ci := range slices {
			for _, it := range slices[ci].Items {
				posts[next[it]] = int32(ci)
				next[it]++
			}
		}
		db.Occ.starts[si] = starts
		db.Occ.posts[si] = posts
	}
	return nil
}

// EncodeCoincidenceDB encodes an interval database into coincidence
// representation.
func EncodeCoincidenceDB(db *interval.Database) (*CoincDB, error) {
	out := &CoincDB{
		Seqs:      make([]Sequence, len(db.Sequences)),
		Table:     NewSymbolTable(),
		Durations: make([][]interval.Time, len(db.Sequences)),
	}
	for si := range db.Sequences {
		segs, err := coincidence.Transform(db.Sequences[si])
		if err != nil {
			return nil, fmt.Errorf("seqdb: sequence %d: %w", si, err)
		}
		total := 0
		for _, c := range segs {
			total += len(c.Symbols)
		}
		backing := make([]Item, total)
		seq := Sequence{Slices: make([]Slice, len(segs))}
		durs := make([]interval.Time, len(segs))
		k := 0
		for ci, c := range segs {
			items := backing[k : k+len(c.Symbols) : k+len(c.Symbols)]
			k += len(c.Symbols)
			for pi, sym := range c.Symbols {
				items[pi] = out.Table.Intern(sym)
			}
			sortItems(items)
			seq.Slices[ci] = Slice{Time: c.Start, Items: items}
			durs[ci] = c.End - c.Start
		}
		out.Seqs[si] = seq
		out.Durations[si] = durs
	}
	if err := out.buildOccIndex(); err != nil {
		return nil, err
	}
	return out, nil
}

// ItemSupports counts, per symbol id, the number of sequences in which
// the symbol is alive in at least one segment.
func (db *CoincDB) ItemSupports() []int {
	sup := make([]int, db.Table.Len())
	seen := make([]int32, db.Table.Len())
	for i := range seen {
		seen[i] = -1
	}
	for si := range db.Seqs {
		for _, sl := range db.Seqs[si].Slices {
			for _, it := range sl.Items {
				if seen[it] != int32(si) {
					seen[it] = int32(si)
					sup[it]++
				}
			}
		}
	}
	return sup
}

// FilterInfrequent rebuilds the coincidence database dropping every
// symbol with support below minCount and slices that become empty.
// Returns the number of symbol ids removed.
func (db *CoincDB) FilterInfrequent(minCount int) int {
	sup := db.ItemSupports()
	keep := make([]bool, len(sup))
	removed := 0
	for i, s := range sup {
		keep[i] = s >= minCount
		if s > 0 && s < minCount {
			removed++ // only ids actually present count as removals
		}
	}
	if removed == 0 {
		return 0
	}
	for si := range db.Seqs {
		seq := &db.Seqs[si]
		outSlices := seq.Slices[:0]
		outDurs := db.Durations[si][:0]
		for ci, sl := range seq.Slices {
			// In-place compaction, same as the endpoint filter: writes
			// trail reads within each slice's own backing segment.
			items := sl.Items[:0]
			for _, it := range sl.Items {
				if keep[it] {
					items = append(items, it)
				}
			}
			if len(items) == 0 {
				continue
			}
			outSlices = append(outSlices, Slice{Time: sl.Time, Items: items})
			outDurs = append(outDurs, db.Durations[si][ci])
		}
		seq.Slices = outSlices
		db.Durations[si] = outDurs
	}
	// Slice indices shifted; rebuild the posting lists. The width cannot
	// have grown, so the size check cannot fail.
	if err := db.buildOccIndex(); err != nil {
		panic(err)
	}
	return removed
}
