// Package remote implements shard.Worker over HTTP: a worker role that
// caches pushed shard databases and mines them on request, a client that
// speaks to it with per-call timeouts and transient-error retry, a
// registry that tracks worker health, and an exact failover path that
// re-mines an unreachable worker's shard on an in-process LocalWorker.
//
// Exactness argument: the unit of distribution is the shard database,
// pushed verbatim (content-addressed by dataset, version, and shard
// index) before any mining request touches it. A worker therefore
// computes exactly what a LocalWorker over the same sub-database would
// compute, and the coordinator's merge — which is already proven
// byte-identical to serial mining for local workers — cannot tell the
// difference. Failover re-runs the same request on a LocalWorker over
// the same sub-database, so a mid-mine worker loss changes latency, not
// results.
package remote

import (
	"errors"
	"fmt"
	"net/url"
	"time"

	"tpminer/internal/resilience"
)

// RPC operation names, used in errors, metrics labels, and fault
// injection schedules.
const (
	OpMine  = "mine"
	OpCount = "count"
	OpPush  = "push"
	OpProbe = "probe"
)

// ShardKey content-addresses one shard of one dataset version. Store
// versions are monotone, so a key names immutable bytes: a worker that
// has (dataset, version, shard) cached never needs a re-push.
type ShardKey struct {
	Dataset string `json:"dataset"`
	Version uint64 `json:"version"`
	Shard   int    `json:"shard"`
}

func (k ShardKey) String() string {
	return fmt.Sprintf("%s@v%d/%d", k.Dataset, k.Version, k.Shard)
}

// path is the worker-side resource path for the shard payload.
func (k ShardKey) path() string {
	return fmt.Sprintf("/v1/worker/shards/%s/%d/%d", url.PathEscape(k.Dataset), k.Version, k.Shard)
}

// RPCError wraps a failed worker RPC with enough context to diagnose it
// (operation, worker address, HTTP status and error code when the worker
// answered at all) and to classify it: Unavailable reports whether the
// failure indicts the worker rather than the request.
type RPCError struct {
	Op     string // mine, count, push, probe
	Worker string // base URL
	Status int    // HTTP status, 0 when no response arrived
	Code   string // worker error-envelope code, "" when none
	Err    error

	// permanent marks failures the retry policy must not retry (4xx,
	// unmarshalable requests); resilience.Classify sees it via Is.
	permanent bool
}

// Is classifies permanent RPC failures for resilience.Classify without
// polluting the error chain or message.
func (e *RPCError) Is(target error) bool {
	return e.permanent && target == resilience.ErrPermanent
}

func (e *RPCError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("remote: %s on %s: HTTP %d (%s): %v", e.Op, e.Worker, e.Status, e.Code, e.Err)
	}
	return fmt.Sprintf("remote: %s on %s: %v", e.Op, e.Worker, e.Err)
}

func (e *RPCError) Unwrap() error { return e.Err }

// Unavailable reports whether the failure means the worker (or the
// network to it) is unusable — no response, or a 5xx — as opposed to the
// request itself being rejected (4xx). Unavailable failures are the ones
// failover may re-mine locally: the same request on a local worker would
// not reproduce the error.
func (e *RPCError) Unavailable() bool {
	if e.permanent {
		return false
	}
	return e.Status == 0 || e.Status >= 500 || (e.Status == 404 && e.Code == codeShardNotLoaded)
}

// IsUnavailable reports whether err (at any wrap depth) is an RPC
// failure that indicts the worker, the trigger condition for failover.
func IsUnavailable(err error) bool {
	var re *RPCError
	return errors.As(err, &re) && re.Unavailable()
}

// Metrics receives client-side instrumentation events. Implementations
// must be safe for concurrent use; a nil Metrics disables them (see
// nopMetrics).
type Metrics interface {
	// RPC records one completed worker call (after retries).
	RPC(op string, d time.Duration, err error)
	// Bytes records wire bytes moved for one call; dir is "sent" or
	// "received".
	Bytes(op, dir string, n int64)
	// Retry records one retry of a transient RPC failure.
	Retry(op string)
	// Failover records one shard re-mined on the local fallback.
	Failover()
	// WorkerUp reports the registry's current healthy/total counts.
	WorkerUp(healthy, total int)
	// ShardPush records one completed shard push of n compressed bytes.
	ShardPush(n int64)
}

// nopMetrics is the nil-object Metrics.
type nopMetrics struct{}

func (nopMetrics) RPC(string, time.Duration, error) {}
func (nopMetrics) Bytes(string, string, int64)      {}
func (nopMetrics) Retry(string)                     {}
func (nopMetrics) Failover()                        {}
func (nopMetrics) WorkerUp(int, int)                {}
func (nopMetrics) ShardPush(int64)                  {}

// metricsOrNop never returns nil, so call sites skip the nil checks.
func metricsOrNop(m Metrics) Metrics {
	if m == nil {
		return nopMetrics{}
	}
	return m
}
