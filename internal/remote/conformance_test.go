package remote

import (
	"net/http/httptest"
	"testing"
	"time"

	"tpminer/internal/interval"
	"tpminer/internal/resilience"
	"tpminer/internal/shard"
	"tpminer/internal/shard/workertest"
)

// fastRetry retries instantly so failure-path tests don't sleep.
var fastRetry = resilience.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}

// newLoopbackWorker spins up a WorkerServer over HTTP and returns a
// client for the given shard database.
func newLoopbackWorker(t *testing.T, db *interval.Database) *RemoteWorker {
	t.Helper()
	ws := NewWorkerServer(WorkerConfig{})
	ts := httptest.NewServer(ws.Handler())
	t.Cleanup(ts.Close)
	data := NewShardData(ShardKey{Dataset: "conf", Version: 1, Shard: 0}, db)
	return NewRemoteWorker(ts.URL, data, ClientOptions{Retry: fastRetry})
}

// TestRemoteWorkerConformance runs the shared Worker contract suite
// against the HTTP transport end to end (push, mine, count over a real
// loopback server).
func TestRemoteWorkerConformance(t *testing.T) {
	workertest.Run(t, workertest.Factory{
		New: func(t *testing.T, db *interval.Database) shard.Worker {
			return newLoopbackWorker(t, db)
		},
	})
}

// TestInstrumentedWorkerConformance proves the metrics decorator is
// semantically transparent.
func TestInstrumentedWorkerConformance(t *testing.T) {
	workertest.Run(t, workertest.Factory{
		New: func(t *testing.T, db *interval.Database) shard.Worker {
			return Instrument(shard.NewLocalWorker(db), nil)
		},
	})
}

// TestFailoverWorkerConformance proves the failover wrapper is exact
// even when the primary is permanently unreachable: every call lands on
// the local fallback and the contract holds unchanged.
func TestFailoverWorkerConformance(t *testing.T) {
	workertest.Run(t, workertest.Factory{
		New: func(t *testing.T, db *interval.Database) shard.Worker {
			dead := NewRemoteWorker("http://127.0.0.1:1", // reserved port: connection refused
				NewShardData(ShardKey{Dataset: "conf", Version: 1, Shard: 0}, db),
				ClientOptions{Retry: fastRetry})
			return &Failover{Primary: dead, Fallback: shard.NewLocalWorker(db)}
		},
	})
}
