package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"tpminer/internal/obs"
)

// Registry defaults.
const (
	DefaultProbeInterval = 2 * time.Second
	DefaultProbeTimeout  = time.Second
)

// RegistryConfig configures worker membership tracking.
type RegistryConfig struct {
	// ProbeInterval is the health-probe cadence. 0 means
	// DefaultProbeInterval; negative disables the probe loop (tests
	// drive ProbeNow directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// HTTPClient issues probes. nil means http.DefaultClient.
	HTTPClient *http.Client
	// Logger may be nil (logging disabled).
	Logger *slog.Logger
	// Metrics receives WorkerUp updates; nil disables them.
	Metrics Metrics
}

// WorkerStatus is one worker's membership state, served by the shards
// debug endpoint and the readiness body.
type WorkerStatus struct {
	Addr      string `json:"addr"`
	Healthy   bool   `json:"healthy"`
	LastError string `json:"last_error,omitempty"`
}

// Registry tracks which configured workers are usable. Workers start
// healthy (optimistically — a dead one fails its first RPC, fails over,
// and is demoted), are marked unhealthy on failed probes or failed
// RPCs, and are re-admitted when a probe succeeds again.
type Registry struct {
	cfg    RegistryConfig
	logger *slog.Logger
	met    Metrics
	addrs  []string

	mu      sync.Mutex
	healthy map[string]bool
	lastErr map[string]string

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRegistry creates a registry over the configured worker addresses
// and starts its probe loop (unless the interval is negative). Close
// must be called to stop the loop.
func NewRegistry(addrs []string, cfg RegistryConfig) *Registry {
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	r := &Registry{
		cfg:     cfg,
		logger:  cfg.Logger,
		met:     metricsOrNop(cfg.Metrics),
		addrs:   append([]string(nil), addrs...),
		healthy: make(map[string]bool, len(addrs)),
		lastErr: make(map[string]string, len(addrs)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, a := range r.addrs {
		r.healthy[a] = true
	}
	r.met.WorkerUp(len(r.addrs), len(r.addrs))
	if cfg.ProbeInterval > 0 {
		go r.probeLoop()
	} else {
		close(r.done)
	}
	return r
}

// Close stops the probe loop and waits for it to exit. Safe to call
// more than once.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Registry) probeLoop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.ProbeNow(context.Background())
		}
	}
}

// ProbeNow probes every worker once, concurrently, and updates
// membership: a 200 from /v1/worker/healthz re-admits, anything else
// demotes. Exported so tests (and future admin endpoints) can force a
// membership refresh without waiting out the probe interval.
func (r *Registry) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, addr := range r.addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			err := r.probe(ctx, addr)
			r.setHealth(addr, err)
		}(addr)
	}
	wg.Wait()
}

func (r *Registry) probe(ctx context.Context, addr string) error {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, addr+"/v1/worker/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe: HTTP %d", resp.StatusCode)
	}
	return nil
}

// setHealth applies one observation and logs transitions.
func (r *Registry) setHealth(addr string, err error) {
	r.mu.Lock()
	was := r.healthy[addr]
	now := err == nil
	r.healthy[addr] = now
	if err != nil {
		r.lastErr[addr] = err.Error()
	} else {
		r.lastErr[addr] = ""
	}
	healthy, total := r.countsLocked()
	r.mu.Unlock()
	if was != now {
		if now {
			r.logger.Info("worker re-admitted", "worker", addr)
		} else {
			r.logger.Warn("worker marked unhealthy", "worker", addr, "err", err)
		}
	}
	r.met.WorkerUp(healthy, total)
}

func (r *Registry) countsLocked() (healthyN, total int) {
	for _, h := range r.healthy {
		if h {
			healthyN++
		}
	}
	return healthyN, len(r.addrs)
}

// MarkUnhealthy demotes a worker after a failed RPC, without waiting
// for the next probe; the probe loop re-admits it when it recovers.
func (r *Registry) MarkUnhealthy(addr string, err error) {
	if err == nil {
		err = errors.New("marked unhealthy")
	}
	r.setHealth(addr, err)
}

// Healthy returns the currently usable workers in configuration order
// (stable, so shard assignment is deterministic for a given membership).
func (r *Registry) Healthy() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.addrs))
	for _, a := range r.addrs {
		if r.healthy[a] {
			out = append(out, a)
		}
	}
	return out
}

// Snapshot returns every worker's state in configuration order.
func (r *Registry) Snapshot() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerStatus, len(r.addrs))
	for i, a := range r.addrs {
		out[i] = WorkerStatus{Addr: a, Healthy: r.healthy[a], LastError: r.lastErr[a]}
	}
	return out
}
