package remote

import (
	"log/slog"

	"tpminer/internal/interval"
	"tpminer/internal/obs"
	"tpminer/internal/shard"
)

// PoolConfig configures a worker pool.
type PoolConfig struct {
	// Client configures the per-worker RPC clients. Its Tracker and
	// Metrics are overridden by the pool's own.
	Client ClientOptions
	// Registry configures health probing. Its Metrics/Logger default to
	// the pool's.
	Registry RegistryConfig
	// Logger may be nil (logging disabled).
	Logger *slog.Logger
	// Metrics receives all remote instrumentation; nil disables it.
	Metrics Metrics
}

// Pool owns the client side of a distributed deployment: the registry
// of configured workers, the shared push tracker (so each worker
// receives each shard version exactly once), and the construction of
// registry-aware coordinators for individual mine requests.
type Pool struct {
	reg     *Registry
	copt    ClientOptions
	met     Metrics
	logger  *slog.Logger
	tracker *PushTracker
}

// NewPool creates a pool over the configured worker addresses and
// starts health probing. Close must be called to stop it.
func NewPool(addrs []string, cfg PoolConfig) *Pool {
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	met := metricsOrNop(cfg.Metrics)
	tracker := NewPushTracker()
	copt := cfg.Client
	copt.Metrics = met
	copt.Tracker = tracker
	rcfg := cfg.Registry
	if rcfg.Logger == nil {
		rcfg.Logger = cfg.Logger
	}
	if rcfg.Metrics == nil {
		rcfg.Metrics = met
	}
	if rcfg.HTTPClient == nil {
		rcfg.HTTPClient = copt.HTTPClient
	}
	return &Pool{
		reg:     NewRegistry(addrs, rcfg),
		copt:    copt.withDefaults(),
		met:     met,
		logger:  cfg.Logger,
		tracker: tracker,
	}
}

// Close stops the registry's probe loop.
func (p *Pool) Close() { p.reg.Close() }

// Registry exposes the pool's membership tracker.
func (p *Pool) Registry() *Registry { return p.reg }

// PoolStatus summarizes membership for readiness bodies.
type PoolStatus struct {
	Healthy int            `json:"healthy"`
	Total   int            `json:"total"`
	Workers []WorkerStatus `json:"workers"`
}

// Status returns the current membership snapshot.
func (p *Pool) Status() PoolStatus {
	ws := p.reg.Snapshot()
	st := PoolStatus{Total: len(ws), Workers: ws}
	for _, w := range ws {
		if w.Healthy {
			st.Healthy++
		}
	}
	return st
}

// ShardPlacement is one shard's assignment for the debug endpoint:
// which worker would mine it right now, and whether that worker already
// holds the shard's current version.
type ShardPlacement struct {
	Worker string `json:"worker"`
	Pushed bool   `json:"pushed"`
}

// assign maps shard i onto the healthy worker list. Deterministic for a
// given membership, so repeated requests reuse pushed shards instead of
// re-spraying them.
func assign(healthy []string, i int) string {
	if len(healthy) == 0 {
		return "local"
	}
	return healthy[i%len(healthy)]
}

// Placements reports, per shard, the worker the next mine would use and
// its push state.
func (p *Pool) Placements(dataset string, version uint64, numShards int) []ShardPlacement {
	healthy := p.reg.Healthy()
	out := make([]ShardPlacement, numShards)
	for i := range out {
		addr := assign(healthy, i)
		out[i].Worker = addr
		if addr != "local" {
			out[i].Pushed = p.tracker.Pushed(addr, ShardKey{Dataset: dataset, Version: version, Shard: i})
		}
	}
	return out
}

// Coordinator builds a registry-aware scatter-gather coordinator for
// one mine: each shard is assigned a healthy remote worker (wrapped in
// metrics and exact local failover) or, when no workers are usable, its
// plain LocalWorker. db must be the immutable snapshot the partition
// was computed for.
func (p *Pool) Coordinator(dataset string, version uint64, db *interval.Database, part *shard.Partition) *shard.Coordinator {
	k := part.NumShards()
	healthy := p.reg.Healthy()
	workers := make([]shard.Worker, k)
	sizes := make([]int, k)
	for i := 0; i < k; i++ {
		sub := part.SubDatabase(db, i)
		sizes[i] = len(part.Seqs(i))
		local := shard.NewLocalWorker(sub)
		addr := assign(healthy, i)
		if addr == "local" {
			workers[i] = local
			continue
		}
		data := NewShardData(ShardKey{Dataset: dataset, Version: version, Shard: i}, sub)
		workers[i] = &Failover{
			Primary:  Instrument(NewRemoteWorker(addr, data, p.copt), p.met),
			Fallback: local,
			OnFailover: func(shardID int, err error) {
				p.met.Failover()
				p.reg.MarkUnhealthy(addr, err)
				p.logger.Warn("remote worker unavailable; re-mining shard locally",
					"worker", addr, "shard", shardID, "err", err)
			},
		}
	}
	return shard.NewWithWorkers(workers, sizes)
}
