package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/resilience"
	"tpminer/internal/shard"
	"tpminer/internal/shard/workertest"
)

// countingHandler wraps a worker handler and counts shard pushes.
type countingHandler struct {
	inner  http.Handler
	pushes atomic.Int64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/worker/shards/") {
		h.pushes.Add(1)
	}
	h.inner.ServeHTTP(w, r)
}

// TestShardPushedOncePerVersion: with a shared tracker, repeated mines
// of the same (dataset, version, shard) push exactly once; a version
// bump pushes exactly once more.
func TestShardPushedOncePerVersion(t *testing.T) {
	ws := NewWorkerServer(WorkerConfig{})
	ch := &countingHandler{inner: ws.Handler()}
	ts := httptest.NewServer(ch)
	defer ts.Close()

	db := workertest.DB()
	tracker := NewPushTracker()
	opt := ClientOptions{Retry: fastRetry, Tracker: tracker}
	req := &shard.MineShardRequest{Kind: shard.KindTemporal, Opt: core.Options{MinCount: 2, KeepOccurrences: true}}

	w1 := NewRemoteWorker(ts.URL, NewShardData(ShardKey{Dataset: "d", Version: 1, Shard: 0}, db), opt)
	for i := 0; i < 3; i++ {
		if _, err := w1.Mine(context.Background(), req); err != nil {
			t.Fatalf("mine v1 #%d: %v", i, err)
		}
	}
	if got := ch.pushes.Load(); got != 1 {
		t.Errorf("after 3 mines of one version: %d pushes, want 1", got)
	}

	w2 := NewRemoteWorker(ts.URL, NewShardData(ShardKey{Dataset: "d", Version: 2, Shard: 0}, db), opt)
	if _, err := w2.Mine(context.Background(), req); err != nil {
		t.Fatalf("mine v2: %v", err)
	}
	if got := ch.pushes.Load(); got != 2 {
		t.Errorf("after version bump: %d pushes, want 2", got)
	}
	if ws.Shards() != 1 {
		t.Errorf("worker caches %d shards, want 1 (old version evicted)", ws.Shards())
	}
}

// TestWorkerRestartRecovery: a worker that lost its cache (restart)
// answers shard_not_loaded; the client re-pushes and completes the same
// call without surfacing an error.
func TestWorkerRestartRecovery(t *testing.T) {
	ws := NewWorkerServer(WorkerConfig{})
	var handler atomic.Value
	handler.Store(ws.Handler())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer ts.Close()

	db := workertest.DB()
	w := NewRemoteWorker(ts.URL, NewShardData(ShardKey{Dataset: "d", Version: 1, Shard: 0}, db),
		ClientOptions{Retry: fastRetry})
	req := &shard.MineShardRequest{Kind: shard.KindTemporal, Opt: core.Options{MinCount: 2, KeepOccurrences: true}}
	if _, err := w.Mine(context.Background(), req); err != nil {
		t.Fatalf("mine #1: %v", err)
	}
	// "Restart" the worker: same address, empty cache.
	handler.Store(NewWorkerServer(WorkerConfig{}).Handler())
	if _, err := w.Mine(context.Background(), req); err != nil {
		t.Fatalf("mine after worker restart: %v", err)
	}
}

// TestRegistryTransitions: a probe failure demotes a worker, recovery
// re-admits it, and Healthy() keeps configuration order.
func TestRegistryTransitions(t *testing.T) {
	var broken atomic.Bool
	ws := NewWorkerServer(WorkerConfig{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		ws.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	reg := NewRegistry([]string{ts.URL}, RegistryConfig{ProbeInterval: -1})
	defer reg.Close()
	if got := reg.Healthy(); len(got) != 1 {
		t.Fatalf("initial healthy = %v, want 1 worker (optimistic start)", got)
	}

	broken.Store(true)
	reg.ProbeNow(context.Background())
	if got := reg.Healthy(); len(got) != 0 {
		t.Fatalf("after failed probe: healthy = %v, want none", got)
	}
	st := reg.Snapshot()
	if len(st) != 1 || st[0].Healthy || st[0].LastError == "" {
		t.Fatalf("snapshot after failure: %+v", st)
	}

	broken.Store(false)
	reg.ProbeNow(context.Background())
	if got := reg.Healthy(); len(got) != 1 {
		t.Fatalf("after recovery probe: healthy = %v, want re-admitted", got)
	}

	reg.MarkUnhealthy(ts.URL, errors.New("rpc failed"))
	if got := reg.Healthy(); len(got) != 0 {
		t.Fatalf("after MarkUnhealthy: healthy = %v, want none", got)
	}
}

// killableHandler hijacks and slams the TCP connection on mine requests
// while armed — the sharpest version of a worker dying mid-request.
type killableHandler struct {
	inner http.Handler
	kill  atomic.Bool
}

func (h *killableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.kill.Load() && strings.HasSuffix(r.URL.Path, "/mine") {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close()
		return
	}
	h.inner.ServeHTTP(w, r)
}

// TestFailoverMidMineExact: a worker that drops the connection on every
// mine attempt triggers failover, and the coordinator's merged result is
// byte-identical (patterns, supports, order, stats counters) to the
// all-local coordinator's.
func TestFailoverMidMineExact(t *testing.T) {
	db := workertest.DB()
	part := shard.New(db, 3, 1)
	if part.NumShards() < 2 {
		t.Fatalf("partition has %d shards; test needs >= 2", part.NumShards())
	}

	ws := NewWorkerServer(WorkerConfig{})
	kh := &killableHandler{inner: ws.Handler()}
	ts := httptest.NewServer(kh)
	defer ts.Close()
	kh.kill.Store(true)

	var failovers atomic.Int64
	pool := NewPool([]string{ts.URL}, PoolConfig{
		Client:   ClientOptions{Retry: fastRetry},
		Registry: RegistryConfig{ProbeInterval: -1},
	})
	defer pool.Close()
	co := pool.Coordinator("d", 1, db, part)
	// Count failovers through the wrapper hooks.
	for _, w := range co.Workers {
		if fo, ok := w.(*Failover); ok {
			prev := fo.OnFailover
			fo.OnFailover = func(shardID int, err error) {
				failovers.Add(1)
				if prev != nil {
					prev(shardID, err)
				}
			}
		}
	}

	opt := core.Options{MinCount: 3}
	got, gotStats, err := co.MineTemporal(context.Background(), opt)
	if err != nil {
		t.Fatalf("mine through failover: %v", err)
	}
	if failovers.Load() == 0 {
		t.Fatal("no failover fired; the kill switch did not engage")
	}

	ref := shard.NewLocal(db, part)
	want, wantStats, err := ref.MineTemporal(context.Background(), opt)
	if err != nil {
		t.Fatalf("local mine: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("failover result differs from local:\ngot:  %+v\nwant: %+v", got, want)
	}
	gotStats.Elapsed, wantStats.Elapsed = 0, 0
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("failover stats differ from local:\ngot:  %+v\nwant: %+v", gotStats, wantStats)
	}
	// The failed worker was demoted without waiting for a probe.
	if got := pool.Registry().Healthy(); len(got) != 0 {
		t.Errorf("failed worker still listed healthy: %v", got)
	}
}

// TestPoolCoordinatorEquivalence: a healthy 2-worker pool produces
// results identical to the all-local coordinator across kinds and
// top-k, and pushes each shard to exactly one worker.
func TestPoolCoordinatorEquivalence(t *testing.T) {
	db := workertest.DB()
	part := shard.New(db, 3, 1)

	var urls []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(NewWorkerServer(WorkerConfig{}).Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	pool := NewPool(urls, PoolConfig{
		Client:   ClientOptions{Retry: fastRetry},
		Registry: RegistryConfig{ProbeInterval: -1},
	})
	defer pool.Close()

	ctx := context.Background()
	for _, tc := range []struct {
		name string
		run  func(co *shard.Coordinator) (any, core.Stats, error)
	}{
		{"temporal", func(co *shard.Coordinator) (any, core.Stats, error) {
			rs, st, err := co.MineTemporal(ctx, core.Options{MinCount: 2})
			return rs, st, err
		}},
		{"coincidence", func(co *shard.Coordinator) (any, core.Stats, error) {
			rs, st, err := co.MineCoincidence(ctx, core.Options{MinCount: 2})
			return rs, st, err
		}},
		{"temporal-topk", func(co *shard.Coordinator) (any, core.Stats, error) {
			rs, st, err := co.MineTemporalTopK(ctx, 3, core.Options{MinCount: 1})
			return rs, st, err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, gotStats, err := tc.run(pool.Coordinator("d", 1, db, part))
			if err != nil {
				t.Fatalf("remote: %v", err)
			}
			want, wantStats, err := tc.run(shard.NewLocal(db, part))
			if err != nil {
				t.Fatalf("local: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("results differ:\nremote: %+v\nlocal:  %+v", got, want)
			}
			gotStats.Elapsed, wantStats.Elapsed = 0, 0
			if !reflect.DeepEqual(gotStats, wantStats) {
				t.Errorf("stats differ:\nremote: %+v\nlocal:  %+v", gotStats, wantStats)
			}
		})
	}

	// Placements reflect the deterministic assignment and push state.
	pl := pool.Placements("d", 1, part.NumShards())
	for i, p := range pl {
		if p.Worker != urls[i%len(urls)] {
			t.Errorf("shard %d assigned to %s, want %s", i, p.Worker, urls[i%len(urls)])
		}
		if !p.Pushed {
			t.Errorf("shard %d not marked pushed after mining", i)
		}
	}
}

// flakyHandler injects faults from a seeded resilience profile in front
// of a worker: an injected error kills the TCP connection (mine/count)
// or rejects with 503; injected latency delays the response.
type flakyHandler struct {
	inner http.Handler
	inj   resilience.Injector
}

// opForPath maps worker routes onto injector operations.
func opForPath(path string) resilience.Op {
	switch {
	case strings.HasSuffix(path, "/mine"):
		return resilience.Op("worker_mine")
	case strings.HasSuffix(path, "/count"):
		return resilience.Op("worker_count")
	default:
		return resilience.Op("worker_push")
	}
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f := h.inj.Fault(opForPath(r.URL.Path))
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Err != nil {
		if hj, ok := w.(http.Hijacker); ok && errors.Is(f.Err, syscall.ECONNRESET) {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		http.Error(w, f.Err.Error(), http.StatusServiceUnavailable)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// TestChaosFlakyWorkers: under a seeded fault schedule — connection
// resets, 503s, and latency spikes on every worker route — every mine
// either succeeds with exactly the local coordinator's result (retries
// and failover absorb the faults) or fails loudly. Exactness may never
// degrade silently.
func TestChaosFlakyWorkers(t *testing.T) {
	db := workertest.DB()
	part := shard.New(db, 3, 1)
	ref := shard.NewLocal(db, part)
	opt := core.Options{MinCount: 2}
	want, _, err := ref.MineTemporal(context.Background(), opt)
	if err != nil {
		t.Fatalf("baseline mine: %v", err)
	}

	const seed = 42
	profile := resilience.NewProfile(seed).
		Add(resilience.Op("worker_mine"), resilience.FaultRule{Prob: 0.3, Err: syscall.ECONNRESET}).
		Add(resilience.Op("worker_count"), resilience.FaultRule{Prob: 0.2, Err: syscall.EIO}).
		Add(resilience.Op("worker_push"), resilience.FaultRule{Prob: 0.2, Err: syscall.EIO}).
		Add(resilience.OpAll, resilience.FaultRule{Prob: 0.2, Delay: 2 * time.Millisecond})

	var urls []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(&flakyHandler{inner: NewWorkerServer(WorkerConfig{}).Handler(), inj: profile})
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	pool := NewPool(urls, PoolConfig{
		Client:   ClientOptions{Retry: fastRetry},
		Registry: RegistryConfig{ProbeInterval: -1},
	})
	defer pool.Close()

	for i := 0; i < 20; i++ {
		// Workers demoted by failovers get re-admitted between rounds,
		// like the probe loop would do in production.
		pool.Registry().ProbeNow(context.Background())
		got, _, err := pool.Coordinator("d", 1, db, part).MineTemporal(context.Background(), opt)
		if err != nil {
			// A loud, attributed failure is acceptable under chaos; a
			// wrong result is not. (seed=%d reproduces the schedule.)
			var se *shard.ShardError
			if !errors.As(err, &se) {
				t.Fatalf("round %d: error not attributed to a shard/worker (seed=%d): %v", i, seed, err)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: result differs from baseline under faults (seed=%d):\ngot:  %+v\nwant: %+v",
				i, seed, got, want)
		}
	}
}

// TestRPCErrorClassification pins the retry/failover dispatch surface.
func TestRPCErrorClassification(t *testing.T) {
	unreachable := &RPCError{Op: OpMine, Worker: "http://w", Err: errors.New("dial: connection refused")}
	if !IsUnavailable(unreachable) {
		t.Error("network error not classified unavailable")
	}
	if resilience.Classify(unreachable) != resilience.ClassTransient {
		t.Error("network error classified permanent")
	}
	badReq := &RPCError{Op: OpMine, Worker: "http://w", Status: 400, Err: errors.New("bad"), permanent: true}
	if IsUnavailable(badReq) {
		t.Error("400 classified unavailable; failover would mask a request bug")
	}
	if resilience.Classify(badReq) != resilience.ClassPermanent {
		t.Error("400 not classified permanent; retrying would be useless")
	}
	notLoaded := &RPCError{Op: OpMine, Worker: "http://w", Status: 404, Code: codeShardNotLoaded, Err: errors.New("missing")}
	if resilience.Classify(notLoaded) != resilience.ClassTransient {
		t.Error("shard_not_loaded not retryable; recovery after worker restart depends on it")
	}
}

// TestShardKeyPath pins the push path encoding, including escaping.
func TestShardKeyPath(t *testing.T) {
	k := ShardKey{Dataset: "a b/c", Version: 7, Shard: 2}
	want := "/v1/worker/shards/a%20b%2Fc/7/2"
	if got := k.path(); got != want {
		t.Errorf("path = %q, want %q", got, want)
	}
}
