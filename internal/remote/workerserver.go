package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"tpminer/internal/obs"
	"tpminer/internal/shard"
)

// Worker-server defaults.
const (
	// DefaultMaxCachedShards bounds the shard cache; past it the
	// least-recently-used entry is evicted (the coordinator will simply
	// re-push on the next request for it).
	DefaultMaxCachedShards = 256
	// DefaultMaxShardBytes bounds one shard's inflated payload.
	DefaultMaxShardBytes = 1 << 30
)

// WorkerConfig configures a WorkerServer.
type WorkerConfig struct {
	// Logger may be nil (logging disabled).
	Logger *slog.Logger
	// MaxCachedShards caps the shard cache. 0 means
	// DefaultMaxCachedShards.
	MaxCachedShards int
	// MaxShardBytes caps one pushed shard's inflated size. 0 means
	// DefaultMaxShardBytes.
	MaxShardBytes int64
	// MineTimeout is this worker's own ceiling on one mine or count
	// call, applied on top of the client's declared budget. 0 disables
	// it (the request context still bounds the work).
	MineTimeout time.Duration
	// Registry receives the worker's metrics and backs
	// GET /v1/worker/metrics. nil creates a private registry.
	Registry *obs.Registry
}

// cachedShard is one pushed shard: a ready-to-mine LocalWorker plus the
// bookkeeping the shard list and LRU eviction need.
type cachedShard struct {
	worker  *shard.LocalWorker
	seqs    int
	bytes   int64 // uncompressed payload size
	lastUse uint64
}

// WorkerServer is the worker role: it caches pushed shard databases and
// serves mine/count requests over them through ordinary LocalWorkers,
// so a remote mine computes exactly what the in-process path would.
type WorkerServer struct {
	cfg    WorkerConfig
	logger *slog.Logger
	reg    *obs.Registry

	mu     sync.Mutex
	shards map[ShardKey]*cachedShard
	clock  uint64 // LRU tick

	rpcs       *obs.CounterVec
	cachedN    *obs.Gauge
	cachedB    *obs.Gauge
	pushBytesC *obs.Counter
}

// NewWorkerServer creates an empty worker.
func NewWorkerServer(cfg WorkerConfig) *WorkerServer {
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	if cfg.MaxCachedShards <= 0 {
		cfg.MaxCachedShards = DefaultMaxCachedShards
	}
	if cfg.MaxShardBytes <= 0 {
		cfg.MaxShardBytes = DefaultMaxShardBytes
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &WorkerServer{
		cfg:    cfg,
		logger: cfg.Logger,
		reg:    reg,
		shards: make(map[ShardKey]*cachedShard),
		rpcs: reg.NewCounterVec("tpmd_worker_rpcs_total",
			"Worker RPCs served, by operation and outcome.", "op", "outcome"),
		cachedN: reg.NewGauge("tpmd_worker_shards_cached",
			"Shard databases currently cached on this worker."),
		cachedB: reg.NewGauge("tpmd_worker_shard_bytes",
			"Total uncompressed bytes of cached shard databases."),
		pushBytesC: reg.NewCounter("tpmd_worker_shard_push_bytes_total",
			"Total uncompressed bytes accepted through shard pushes."),
	}
}

// Handler returns the worker role's HTTP surface.
func (ws *WorkerServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/worker/healthz", ws.handleHealthz)
	mux.HandleFunc("GET /v1/worker/shards", ws.handleShardList)
	mux.HandleFunc("PUT /v1/worker/shards/{dataset}/{version}/{shard}", ws.handleShardPush)
	mux.HandleFunc("POST /v1/worker/mine", ws.handleMine)
	mux.HandleFunc("POST /v1/worker/count", ws.handleCount)
	mux.Handle("GET /v1/worker/metrics", ws.reg.Handler())
	return mux
}

// Shards returns the number of cached shard databases.
func (ws *WorkerServer) Shards() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return len(ws.shards)
}

// lookup fetches a cached shard and bumps its LRU tick.
func (ws *WorkerServer) lookup(key ShardKey) *shard.LocalWorker {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	cs, ok := ws.shards[key]
	if !ok {
		return nil
	}
	ws.clock++
	cs.lastUse = ws.clock
	return cs.worker
}

// store caches one pushed shard, evicting (a) other versions of the same
// (dataset, shard) — the store's versions are monotone, so an old
// version will never be requested again — and (b) the least-recently-
// used entries past the cache cap.
func (ws *WorkerServer) store(key ShardKey, cs *cachedShard) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for k := range ws.shards {
		if k.Dataset == key.Dataset && k.Shard == key.Shard && k.Version != key.Version {
			delete(ws.shards, k)
		}
	}
	ws.clock++
	cs.lastUse = ws.clock
	ws.shards[key] = cs
	for len(ws.shards) > ws.cfg.MaxCachedShards {
		var (
			oldest    ShardKey
			oldestUse = uint64(1<<64 - 1)
		)
		for k, c := range ws.shards {
			if k != key && c.lastUse < oldestUse {
				oldest, oldestUse = k, c.lastUse
			}
		}
		delete(ws.shards, oldest)
	}
	ws.updateGauges()
}

// updateGauges refreshes the cache gauges; callers hold ws.mu.
func (ws *WorkerServer) updateGauges() {
	var b int64
	for _, c := range ws.shards {
		b += c.bytes
	}
	ws.cachedN.Set(int64(len(ws.shards)))
	ws.cachedB.Set(b)
}

func (ws *WorkerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ws.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": ws.Shards()})
}

// shardInfo is one cached shard on the wire.
type shardInfo struct {
	Dataset   string `json:"dataset"`
	Version   uint64 `json:"version"`
	Shard     int    `json:"shard"`
	Sequences int    `json:"sequences"`
	Bytes     int64  `json:"bytes"`
}

func (ws *WorkerServer) handleShardList(w http.ResponseWriter, r *http.Request) {
	ws.mu.Lock()
	out := make([]shardInfo, 0, len(ws.shards))
	for k, c := range ws.shards {
		out = append(out, shardInfo{Dataset: k.Dataset, Version: k.Version, Shard: k.Shard,
			Sequences: c.seqs, Bytes: c.bytes})
	}
	ws.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		if out[i].Version != out[j].Version {
			return out[i].Version < out[j].Version
		}
		return out[i].Shard < out[j].Shard
	})
	ws.writeJSON(w, http.StatusOK, map[string]any{"shards": out})
}

func (ws *WorkerServer) handleShardPush(w http.ResponseWriter, r *http.Request) {
	key, err := pathShardKey(r)
	if err != nil {
		ws.rpcs.With(OpPush, "client_error").Inc()
		ws.writeErr(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	// Re-pushing cached content is a no-op: the key names immutable
	// bytes, so presence alone proves the payload.
	if ws.lookup(key) != nil {
		ws.rpcs.With(OpPush, "ok").Inc()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	db, rawBytes, err := decodeShardPayload(r.Body, r.Header.Get(shardDigestHeader), ws.cfg.MaxShardBytes)
	if err != nil {
		ws.rpcs.With(OpPush, "client_error").Inc()
		ws.writeErr(w, http.StatusBadRequest, codeBadPayload, err.Error())
		return
	}
	ws.store(key, &cachedShard{worker: shard.NewLocalWorker(db), seqs: len(db.Sequences), bytes: rawBytes})
	ws.pushBytesC.Add(uint64(rawBytes))
	ws.rpcs.With(OpPush, "ok").Inc()
	ws.logger.Info("shard cached", "key", key.String(), "sequences", len(db.Sequences), "bytes", rawBytes)
	w.WriteHeader(http.StatusNoContent)
}

// pathShardKey parses the shard-push path wildcards.
func pathShardKey(r *http.Request) (ShardKey, error) {
	ver, err := strconv.ParseUint(r.PathValue("version"), 10, 64)
	if err != nil {
		return ShardKey{}, fmt.Errorf("bad version %q", r.PathValue("version"))
	}
	sh, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || sh < 0 {
		return ShardKey{}, fmt.Errorf("bad shard index %q", r.PathValue("shard"))
	}
	name := r.PathValue("dataset")
	if name == "" {
		return ShardKey{}, errors.New("empty dataset name")
	}
	return ShardKey{Dataset: name, Version: ver, Shard: sh}, nil
}

func (ws *WorkerServer) handleMine(w http.ResponseWriter, r *http.Request) {
	var req mineWire
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		ws.rpcs.With(OpMine, "client_error").Inc()
		ws.writeErr(w, http.StatusBadRequest, codeBadRequest, "malformed mine request: "+err.Error())
		return
	}
	worker := ws.lookup(req.Key)
	if worker == nil {
		ws.rpcs.With(OpMine, "not_loaded").Inc()
		ws.writeErr(w, http.StatusNotFound, codeShardNotLoaded, "shard "+req.Key.String()+" not loaded; push it first")
		return
	}
	ctx, cancel := ws.workContext(r.Context(), req.TimeoutMillis)
	defer cancel()
	resp, err := worker.Mine(ctx, &shard.MineShardRequest{
		Shard: req.Shard, Kind: req.Kind, TopK: req.TopK, Opt: req.Opt,
	})
	if err != nil {
		ws.writeWorkErr(w, OpMine, err)
		return
	}
	ws.rpcs.With(OpMine, "ok").Inc()
	ws.writeJSON(w, http.StatusOK, mineRespWire{Temporal: resp.Temporal, Coinc: resp.Coinc, Stats: resp.Stats})
}

func (ws *WorkerServer) handleCount(w http.ResponseWriter, r *http.Request) {
	var req countWire
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		ws.rpcs.With(OpCount, "client_error").Inc()
		ws.writeErr(w, http.StatusBadRequest, codeBadRequest, "malformed count request: "+err.Error())
		return
	}
	worker := ws.lookup(req.Key)
	if worker == nil {
		ws.rpcs.With(OpCount, "not_loaded").Inc()
		ws.writeErr(w, http.StatusNotFound, codeShardNotLoaded, "shard "+req.Key.String()+" not loaded; push it first")
		return
	}
	ctx, cancel := ws.workContext(r.Context(), 0)
	defer cancel()
	resp, err := worker.Count(ctx, &shard.CountRequest{
		Shard: req.Shard, Kind: req.Kind, Temporal: req.Temporal, Coinc: req.Coinc,
		MaxSpan: req.MaxSpan, MaxGap: req.MaxGap,
	})
	if err != nil {
		ws.writeWorkErr(w, OpCount, err)
		return
	}
	ws.rpcs.With(OpCount, "ok").Inc()
	ws.writeJSON(w, http.StatusOK, countRespWire{Supports: resp.Supports})
}

// workContext bounds one mine/count by the client's declared budget and
// the worker's own ceiling, whichever is tighter. The request context is
// always part of the chain, so a dropped connection cancels the work.
func (ws *WorkerServer) workContext(ctx context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	d := ws.cfg.MineTimeout
	if timeoutMillis > 0 {
		if t := time.Duration(timeoutMillis) * time.Millisecond; d <= 0 || t < d {
			d = t
		}
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// writeWorkErr maps a mine/count failure onto the wire: deadline → 504
// (the client may retry elsewhere), cancellation → 503 (the client is
// gone; the status is for the log line), anything else → 400 (the
// request itself is bad — a local worker would reject it identically,
// so failover must not retry it).
func (ws *WorkerServer) writeWorkErr(w http.ResponseWriter, op string, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		ws.rpcs.With(op, "timeout").Inc()
		ws.writeErr(w, http.StatusGatewayTimeout, codeMineTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		ws.rpcs.With(op, "canceled").Inc()
		ws.writeErr(w, http.StatusServiceUnavailable, codeMineFailed, err.Error())
	default:
		ws.rpcs.With(op, "client_error").Inc()
		ws.writeErr(w, http.StatusBadRequest, codeMineFailed, err.Error())
	}
}

func (ws *WorkerServer) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		ws.logger.Warn("write response", "err", err)
	}
}

func (ws *WorkerServer) writeErr(w http.ResponseWriter, status int, code, msg string) {
	var e errWire
	e.Error.Code = code
	e.Error.Message = msg
	ws.writeJSON(w, status, e)
}
