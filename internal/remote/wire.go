package remote

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"tpminer/internal/core"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/persist"
	"tpminer/internal/shard"
)

// The wire protocol. Mine and count requests are JSON — patterns,
// supports, and stats are strings, ints, and bools, all of which
// round-trip encoding/json exactly, so a remote mine merges to the same
// bytes as a local one. Shard payloads are the WAL's varint database
// codec, gzipped: shard pushes dominate wire volume, and the binary
// codec is both far smaller than JSON and already round-trip-tested by
// the persistence suite.

// shardDigestHeader carries the hex SHA-256 of the *uncompressed* shard
// encoding on a push, so a worker detects corruption (or a codec
// mismatch) before caching bad bytes under a content address.
const shardDigestHeader = "X-Shard-Digest"

// mineWire is the body of POST /v1/worker/mine.
type mineWire struct {
	Key ShardKey `json:"key"`
	// Shard echoes MineShardRequest.Shard: the coordinator's shard index,
	// reproduced in the worker's responses and error attributions. It can
	// differ from Key.Shard only in hand-built requests; the client always
	// sends them equal.
	Shard int        `json:"shard"`
	Kind  shard.Kind `json:"kind"`
	TopK  int        `json:"topk,omitempty"`
	Opt   core.Options `json:"opt"`
	// TimeoutMillis is the client's remaining deadline budget; the worker
	// bounds its mine by it so an abandoned request cannot hold the shard
	// hostage even if the connection teardown is slow to propagate.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// mineRespWire is the body of a successful mine response.
type mineRespWire struct {
	Temporal []pattern.TemporalResult `json:"temporal,omitempty"`
	Coinc    []pattern.CoincResult    `json:"coinc,omitempty"`
	Stats    core.Stats               `json:"stats"`
}

// countWire is the body of POST /v1/worker/count.
type countWire struct {
	Key      ShardKey           `json:"key"`
	Shard    int                `json:"shard"`
	Kind     shard.Kind         `json:"kind"`
	Temporal []pattern.Temporal `json:"temporal,omitempty"`
	Coinc    []pattern.Coinc    `json:"coinc,omitempty"`
	MaxSpan  interval.Time      `json:"max_span,omitempty"`
	MaxGap   interval.Time      `json:"max_gap,omitempty"`
}

// countRespWire is the body of a successful count response.
type countRespWire struct {
	Supports []int `json:"supports"`
}

// errWire mirrors the main server's uniform error envelope.
type errWire struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Worker-side error codes the client dispatches on.
const (
	codeShardNotLoaded = "shard_not_loaded"
	codeBadRequest     = "invalid_request"
	codeBadPayload     = "invalid_shard_payload"
	codeMineFailed     = "mine_failed"
	codeMineTimeout    = "mine_timeout"
)

// ShardData is one shard's push payload, encoded lazily and exactly
// once: the coordinator builds a ShardData per (dataset, version, shard)
// and every worker client pushing that shard shares it.
type ShardData struct {
	Key ShardKey
	DB  *interval.Database

	once    sync.Once
	payload []byte // gzip(EncodeDatabase)
	digest  string // hex SHA-256 of the uncompressed encoding
	err     error
}

// NewShardData wraps one shard sub-database for pushing. db must be
// treated as immutable (the store's copy-on-write contract).
func NewShardData(key ShardKey, db *interval.Database) *ShardData {
	return &ShardData{Key: key, DB: db}
}

// Encode returns the compressed payload and the digest of its
// uncompressed form, building both on first call.
func (d *ShardData) Encode() (payload []byte, digest string, err error) {
	d.once.Do(func() {
		raw := persist.EncodeDatabase(nil, d.DB)
		sum := sha256.Sum256(raw)
		d.digest = hex.EncodeToString(sum[:])
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(raw); err != nil {
			d.err = fmt.Errorf("remote: compress shard %s: %w", d.Key, err)
			return
		}
		if err := zw.Close(); err != nil {
			d.err = fmt.Errorf("remote: compress shard %s: %w", d.Key, err)
			return
		}
		d.payload = buf.Bytes()
	})
	return d.payload, d.digest, d.err
}

// decodeShardPayload inflates and decodes one pushed shard body,
// verifying the declared digest. maxBytes bounds the inflated size so a
// hostile or corrupt payload cannot balloon worker memory.
func decodeShardPayload(r io.Reader, wantDigest string, maxBytes int64) (*interval.Database, int64, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, 0, fmt.Errorf("remote: shard payload is not gzip: %w", err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(io.LimitReader(zr, maxBytes+1))
	if err != nil {
		return nil, 0, fmt.Errorf("remote: inflate shard payload: %w", err)
	}
	if int64(len(raw)) > maxBytes {
		return nil, 0, fmt.Errorf("remote: shard payload exceeds %d bytes inflated", maxBytes)
	}
	if wantDigest != "" {
		sum := sha256.Sum256(raw)
		if got := hex.EncodeToString(sum[:]); got != wantDigest {
			return nil, 0, fmt.Errorf("remote: shard digest mismatch: got %s, want %s", got, wantDigest)
		}
	}
	db, err := persist.DecodeDatabase(raw)
	if err != nil {
		return nil, 0, err
	}
	return db, int64(len(raw)), nil
}
