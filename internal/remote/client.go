package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"tpminer/internal/resilience"
	"tpminer/internal/shard"
)

// Client defaults.
const (
	// DefaultPushTimeout bounds one shard push attempt.
	DefaultPushTimeout = 30 * time.Second
	// DefaultCountTimeout bounds one count attempt; counts scan the
	// shard once per pattern batch and finish fast relative to mining.
	DefaultCountTimeout = 2 * time.Minute
	// maxResponseBytes bounds a worker response the client will buffer.
	maxResponseBytes = 1 << 31
)

// ClientOptions configures RemoteWorker instances. The zero value is
// usable: default timeouts, the default retry policy, shared push state
// per worker instance only.
type ClientOptions struct {
	// HTTPClient issues the requests. nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retry governs transient-failure retries per RPC. Zero value =
	// resilience defaults (3 attempts, jittered backoff).
	Retry resilience.RetryPolicy
	// PushTimeout / CountTimeout / MineTimeout bound one attempt of the
	// respective call, layered under the caller's context. Zero selects
	// the default (for MineTimeout: no per-attempt bound — the mine
	// context's deadline governs).
	PushTimeout  time.Duration
	CountTimeout time.Duration
	MineTimeout  time.Duration
	// Metrics receives client instrumentation; nil disables it.
	Metrics Metrics
	// Tracker shares push state across workers and requests, so a shard
	// is re-pushed only on version change (or after the worker reports
	// it missing). nil creates a private tracker.
	Tracker *PushTracker
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.PushTimeout <= 0 {
		o.PushTimeout = DefaultPushTimeout
	}
	if o.CountTimeout <= 0 {
		o.CountTimeout = DefaultCountTimeout
	}
	o.Metrics = metricsOrNop(o.Metrics)
	if o.Tracker == nil {
		o.Tracker = NewPushTracker()
	}
	return o
}

// PushTracker remembers which worker holds which shard version, keyed
// (worker, dataset, shard) → version. Versions are monotone, so storing
// only the latest bounds the map at workers × datasets × shards.
type PushTracker struct {
	mu     sync.Mutex
	pushed map[pushKey]uint64
}

type pushKey struct {
	addr    string
	dataset string
	shard   int
}

// NewPushTracker creates an empty tracker.
func NewPushTracker() *PushTracker {
	return &PushTracker{pushed: make(map[pushKey]uint64)}
}

// Pushed reports whether addr is known to hold exactly k's version.
func (t *PushTracker) Pushed(addr string, k ShardKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.pushed[pushKey{addr, k.Dataset, k.Shard}]
	return ok && v == k.Version
}

func (t *PushTracker) mark(addr string, k ShardKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pushed[pushKey{addr, k.Dataset, k.Shard}] = k.Version
}

func (t *PushTracker) invalidate(addr string, k ShardKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.pushed, pushKey{addr, k.Dataset, k.Shard})
}

// RemoteWorker implements shard.Worker against one worker process over
// HTTP. Each call pushes the shard first if this worker is not known to
// hold it, then issues the RPC, retrying transient failures (network
// errors, 5xx, a worker that lost the shard) under the configured
// policy. Context cancellation is never retried.
type RemoteWorker struct {
	base string
	data *ShardData
	opt  ClientOptions
}

// NewRemoteWorker creates a client for the worker at base (e.g.
// "http://10.0.0.7:9090") mining the shard held by data.
func NewRemoteWorker(base string, data *ShardData, opt ClientOptions) *RemoteWorker {
	return &RemoteWorker{base: strings.TrimRight(base, "/"), data: data, opt: opt.withDefaults()}
}

// WorkerAddr names this worker in wrapped fan-out errors.
func (w *RemoteWorker) WorkerAddr() string { return w.base }

// Mine implements shard.Worker.
func (w *RemoteWorker) Mine(ctx context.Context, req *shard.MineShardRequest) (*shard.MineShardResponse, error) {
	wreq := mineWire{Key: w.data.Key, Shard: req.Shard, Kind: req.Kind, TopK: req.TopK, Opt: req.Opt}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		wreq.TimeoutMillis = ms
	}
	var resp mineRespWire
	if err := w.call(ctx, OpMine, w.opt.MineTimeout, "/v1/worker/mine", wreq, &resp); err != nil {
		return nil, err
	}
	return &shard.MineShardResponse{Temporal: resp.Temporal, Coinc: resp.Coinc, Stats: resp.Stats}, nil
}

// Count implements shard.Worker.
func (w *RemoteWorker) Count(ctx context.Context, req *shard.CountRequest) (*shard.CountResponse, error) {
	wreq := countWire{Key: w.data.Key, Shard: req.Shard, Kind: req.Kind,
		Temporal: req.Temporal, Coinc: req.Coinc, MaxSpan: req.MaxSpan, MaxGap: req.MaxGap}
	var resp countRespWire
	if err := w.call(ctx, OpCount, w.opt.CountTimeout, "/v1/worker/count", wreq, &resp); err != nil {
		return nil, err
	}
	return &shard.CountResponse{Supports: resp.Supports}, nil
}

// call runs one logical RPC: marshal once, then attempt (push if
// needed, POST, decode) under the retry policy. A canceled caller
// context aborts immediately — resilience classifies it permanent via
// ctxErr — and surfaces the context's own error.
func (w *RemoteWorker) call(ctx context.Context, op string, timeout time.Duration, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("remote: marshal %s request: %w", op, err)
	}
	err = w.opt.Retry.Do(func() error {
		if cerr := ctx.Err(); cerr != nil {
			return ctxErr{cerr}
		}
		if perr := w.ensurePushed(ctx); perr != nil {
			return perr
		}
		return w.post(ctx, op, timeout, path, body, out)
	}, func(_ error, _ int) {
		w.opt.Metrics.Retry(op)
	})
	if ce, ok := err.(ctxErr); ok {
		return ce.error
	}
	return err
}

// ctxErr marks a caller-context error permanent for the retry policy
// without changing what the caller unwraps.
type ctxErr struct{ error }

func (ctxErr) Is(target error) bool { return target == resilience.ErrPermanent }
func (e ctxErr) Unwrap() error      { return e.error }

// post issues one attempt of a JSON POST under the per-attempt timeout.
func (w *RemoteWorker) post(ctx context.Context, op string, timeout time.Duration, path string, body []byte, out any) error {
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return &RPCError{Op: op, Worker: w.base, Err: err, permanent: true}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opt.HTTPClient.Do(req)
	if err != nil {
		return &RPCError{Op: op, Worker: w.base, Err: err}
	}
	defer resp.Body.Close()
	w.opt.Metrics.Bytes(op, "sent", int64(len(body)))
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return &RPCError{Op: op, Worker: w.base, Err: fmt.Errorf("read response: %w", err)}
	}
	w.opt.Metrics.Bytes(op, "received", int64(len(data)))
	if resp.StatusCode != http.StatusOK {
		return w.statusError(op, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return &RPCError{Op: op, Worker: w.base, Err: fmt.Errorf("malformed response: %w", err)}
	}
	return nil
}

// statusError turns a non-200 worker response into a classified
// RPCError. A shard_not_loaded 404 invalidates the push state so the
// retry (or the next request) re-pushes; 5xx stays transient; any other
// 4xx is permanent — the request is at fault, not the worker.
func (w *RemoteWorker) statusError(op string, status int, data []byte) error {
	var ew errWire
	_ = json.Unmarshal(data, &ew) // a non-envelope body just leaves Code empty
	msg := ew.Error.Message
	if msg == "" {
		msg = http.StatusText(status)
	}
	rerr := &RPCError{Op: op, Worker: w.base, Status: status, Code: ew.Error.Code, Err: errors.New(msg)}
	if status == http.StatusNotFound && ew.Error.Code == codeShardNotLoaded {
		w.opt.Tracker.invalidate(w.base, w.data.Key)
		return rerr // transient: the retry re-pushes and re-asks
	}
	if status >= 400 && status < 500 {
		rerr.permanent = true
	}
	return rerr
}

// ensurePushed uploads the shard payload unless this worker is already
// known to hold this exact version.
func (w *RemoteWorker) ensurePushed(ctx context.Context) error {
	if w.opt.Tracker.Pushed(w.base, w.data.Key) {
		return nil
	}
	payload, digest, err := w.data.Encode()
	if err != nil {
		return &RPCError{Op: OpPush, Worker: w.base, Err: err, permanent: true}
	}
	pctx, cancel := context.WithTimeout(ctx, w.opt.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPut, w.base+w.data.Key.path(), bytes.NewReader(payload))
	if err != nil {
		return &RPCError{Op: OpPush, Worker: w.base, Err: err, permanent: true}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(shardDigestHeader, digest)
	resp, err := w.opt.HTTPClient.Do(req)
	if err != nil {
		return &RPCError{Op: OpPush, Worker: w.base, Err: err}
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	w.opt.Metrics.Bytes(OpPush, "sent", int64(len(payload)))
	if resp.StatusCode != http.StatusNoContent {
		return w.statusError(OpPush, resp.StatusCode, data)
	}
	w.opt.Metrics.ShardPush(int64(len(payload)))
	w.opt.Tracker.mark(w.base, w.data.Key)
	return nil
}
