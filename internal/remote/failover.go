package remote

import (
	"context"
	"time"

	"tpminer/internal/shard"
)

// Failover tries the primary (remote) worker and, when it proves
// unavailable, re-runs the identical request on the fallback — a
// LocalWorker over the very same shard sub-database. Because the
// request, the options, and the data are identical, the fallback's
// answer is the one the primary would have produced, so failover is
// invisible in the merged result: results stay byte-identical to
// all-local and to serial mining.
//
// Failover never fires when the caller's context is already done (the
// failure is then the caller's cancellation, not the worker's fault —
// and the fan-out cancels sibling shards on first error, so re-mining
// would waste work on a request that already failed) nor on permanent
// request errors, which the fallback would reproduce anyway.
type Failover struct {
	Primary  shard.Worker
	Fallback shard.Worker
	// OnFailover, if non-nil, runs before the fallback mines — the hook
	// for logging, metrics, and demoting the worker in the registry.
	OnFailover func(shardID int, err error)
}

// WorkerAddr names the primary; fan-out errors that survive failover
// come from the fallback path and are attributed by its own address.
func (f *Failover) WorkerAddr() string { return shard.WorkerAddr(f.Primary) }

func (f *Failover) shouldFailOver(ctx context.Context, err error) bool {
	return err != nil && ctx.Err() == nil && IsUnavailable(err)
}

// Mine implements shard.Worker.
func (f *Failover) Mine(ctx context.Context, req *shard.MineShardRequest) (*shard.MineShardResponse, error) {
	resp, err := f.Primary.Mine(ctx, req)
	if !f.shouldFailOver(ctx, err) {
		return resp, err
	}
	if f.OnFailover != nil {
		f.OnFailover(req.Shard, err)
	}
	return f.Fallback.Mine(ctx, req)
}

// Count implements shard.Worker.
func (f *Failover) Count(ctx context.Context, req *shard.CountRequest) (*shard.CountResponse, error) {
	resp, err := f.Primary.Count(ctx, req)
	if !f.shouldFailOver(ctx, err) {
		return resp, err
	}
	if f.OnFailover != nil {
		f.OnFailover(req.Shard, err)
	}
	return f.Fallback.Count(ctx, req)
}

// instrumented decorates a Worker with per-call metrics. It changes no
// semantics — the workertest conformance suite runs against it to pin
// that down.
type instrumented struct {
	w shard.Worker
	m Metrics
}

// Instrument wraps w so each Mine/Count records an RPC event on m.
func Instrument(w shard.Worker, m Metrics) shard.Worker {
	return &instrumented{w: w, m: metricsOrNop(m)}
}

// WorkerAddr passes the wrapped worker's address through.
func (iw *instrumented) WorkerAddr() string { return shard.WorkerAddr(iw.w) }

func (iw *instrumented) Mine(ctx context.Context, req *shard.MineShardRequest) (*shard.MineShardResponse, error) {
	t0 := time.Now()
	resp, err := iw.w.Mine(ctx, req)
	iw.m.RPC(OpMine, time.Since(t0), err)
	return resp, err
}

func (iw *instrumented) Count(ctx context.Context, req *shard.CountRequest) (*shard.CountResponse, error) {
	t0 := time.Now()
	resp, err := iw.w.Count(ctx, req)
	iw.m.RPC(OpCount, time.Since(t0), err)
	return resp, err
}
