package server

import (
	"fmt"
	"sync"

	"tpminer/internal/incremental"
	"tpminer/internal/interval"
	"tpminer/internal/shard"
)

// storeJournal is the durability hook on the store's mutation paths.
// Each method is called with the version the mutation is about to
// install, *before* the mutation becomes visible; an error vetoes the
// mutation (commit-before-visible write-ahead logging). internal/persist
// implements it; a nil journal keeps the store purely in-memory.
type storeJournal interface {
	LogPut(name string, version uint64, db *interval.Database) error
	LogAppend(name string, version uint64, add *interval.Database) error
	LogDelete(name string, version uint64) error
	LogJobPut(id string, version uint64, spec []byte) error
	LogJobDelete(id string, version uint64) error
	LogJobResult(id string, version uint64, result []byte) error
}

// journalError marks a failure in the durability layer (as opposed to
// client-attributable validation), so handlers map it to a 500.
type journalError struct{ err error }

func (e *journalError) Error() string { return e.err.Error() }
func (e *journalError) Unwrap() error { return e.err }

// datasetStore holds the server's named datasets with a monotonic
// version per dataset. Stored databases are immutable: PUT installs a
// fresh database, and append replaces the entry with a copy-on-write
// extension instead of mutating in place. Readers (summaries and mining
// snapshots) therefore share the stored pointer with no cloning and no
// lock held during the mine.
//
// Versions drive exact cache invalidation: every mutation (PUT, append,
// DELETE) draws from one store-wide counter, so a dataset deleted and
// re-created never repeats a version and a (name, version) pair
// identifies one immutable database state forever. With a journal
// attached, recovery restores the counter across restarts, preserving
// that invariant for cache keys and strong ETags.
type datasetStore struct {
	mu      sync.RWMutex
	entries map[string]*datasetEntry
	verSeq  uint64
	journal storeJournal // nil = in-memory only

	// shards/shardMinSeqs configure the mining partition kept on each
	// entry (see datasetEntry.part). Set once at server construction,
	// before any entry exists; zero values partition everything into a
	// single shard (unsharded mining).
	shards       int
	shardMinSeqs int

	// onPartition, when set, observes every freshly computed partition
	// (put, append, recovery load) — the hook behind the shard-skew
	// gauge. Called with the store lock held; must be cheap.
	onPartition func(p *shard.Partition)
}

// datasetEntry is one stored dataset. The summary is computed once at
// mutation time — incrementally on append — so list and GET never walk
// interval data under the read lock; symbols carries the distinct
// symbol set forward to make the summary update O(increment).
type datasetEntry struct {
	db      *interval.Database // immutable once stored
	version uint64
	summary DatasetSummary
	symbols map[string]struct{}

	// part is the dataset's mining partition, computed at mutation time
	// so shard IDs stay stable across mines: appends extend it in place
	// (new sequences fill the least-loaded shards) and only a load-skew
	// past the threshold or an effective-shard-count change triggers a
	// full repartition. Like db, immutable once stored.
	part *shard.Partition
}

func newDatasetStore() *datasetStore {
	return &datasetStore{entries: make(map[string]*datasetEntry)}
}

// buildEntry computes the stored form of a freshly installed database:
// its summary and distinct-symbol set, both in one O(db) pass, plus a
// fresh mining partition.
func (st *datasetStore) buildEntry(name string, db *interval.Database, version uint64) *datasetEntry {
	symbols := make(map[string]struct{})
	intervals := 0
	for i := range db.Sequences {
		seq := &db.Sequences[i]
		intervals += len(seq.Intervals)
		for _, iv := range seq.Intervals {
			symbols[iv.Symbol] = struct{}{}
		}
	}
	sum := DatasetSummary{
		Name:      name,
		Sequences: db.Len(),
		Intervals: intervals,
		Symbols:   len(symbols),
	}
	if sum.Sequences > 0 {
		sum.AvgSeqLen = float64(sum.Intervals) / float64(sum.Sequences)
	}
	return &datasetEntry{
		db:      db,
		version: version,
		summary: sum,
		symbols: symbols,
		part:    shard.New(db, st.shards, st.shardMinSeqs),
	}
}

// extendEntry derives the entry for old extended by add: the sequence
// slice headers are copied shallowly (the stored database is immutable,
// so the interval arrays are shared, never cloned — appends cost
// O(sequences + increment), not O(total intervals)), and the summary is
// updated incrementally from the increment alone. The partition extends
// with stable shard IDs unless the append skews it past the threshold.
func (st *datasetStore) extendEntry(old *datasetEntry, add *interval.Database, version uint64) *datasetEntry {
	grown := &interval.Database{
		Sequences: make([]interval.Sequence, 0, len(old.db.Sequences)+len(add.Sequences)),
	}
	grown.Sequences = append(grown.Sequences, old.db.Sequences...)
	grown.Sequences = append(grown.Sequences, add.Sequences...)

	symbols := make(map[string]struct{}, len(old.symbols))
	for sym := range old.symbols {
		symbols[sym] = struct{}{}
	}
	addIntervals := 0
	for i := range add.Sequences {
		addIntervals += len(add.Sequences[i].Intervals)
		for _, iv := range add.Sequences[i].Intervals {
			symbols[iv.Symbol] = struct{}{}
		}
	}
	sum := old.summary
	sum.Sequences += add.Len()
	sum.Intervals += addIntervals
	sum.Symbols = len(symbols)
	if sum.Sequences > 0 {
		sum.AvgSeqLen = float64(sum.Intervals) / float64(sum.Sequences)
	}
	part := old.part
	if part == nil {
		part = shard.New(grown, st.shards, st.shardMinSeqs)
	} else {
		part = part.Extend(grown, st.shards, st.shardMinSeqs, shard.DefaultSkewThreshold)
	}
	return &datasetEntry{db: grown, version: version, summary: sum, symbols: symbols, part: part}
}

// load seeds one recovered dataset without journaling it (it is already
// durable). Only used while wiring up a server, before traffic.
func (st *datasetStore) load(name string, db *interval.Database, version uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	entry := st.buildEntry(name, db, version)
	st.entries[name] = entry
	if version > st.verSeq {
		st.verSeq = version
	}
	if st.onPartition != nil {
		st.onPartition(entry.part)
	}
}

// setVersionFloor raises the store's version counter to at least seq,
// restoring monotonicity across restarts (deletes bump the counter too,
// so the recovered floor can exceed every surviving dataset's version).
func (st *datasetStore) setVersionFloor(seq uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seq > st.verSeq {
		st.verSeq = seq
	}
}

// put installs db under name, bumping the version. The caller hands
// over ownership: db must not be modified afterwards. With a journal
// attached the mutation commits to the WAL first; a journal error
// rejects the put and leaves the store untouched.
func (st *datasetStore) put(name string, db *interval.Database) (version uint64, existed bool, sum DatasetSummary, err error) {
	entry := st.buildEntry(name, db, 0)
	st.mu.Lock()
	defer st.mu.Unlock()
	ver := st.verSeq + 1
	if st.journal != nil {
		if err := st.journal.LogPut(name, ver, db); err != nil {
			return 0, false, DatasetSummary{}, &journalError{fmt.Errorf("persist put: %w", err)}
		}
	}
	_, existed = st.entries[name]
	st.verSeq = ver
	entry.version = ver
	st.entries[name] = entry
	if st.onPartition != nil {
		st.onPartition(entry.part)
	}
	return ver, existed, entry.summary, nil
}

// snapshot returns the named dataset's current database, its mining
// partition, and version. Database and partition are immutable and safe
// to read concurrently; callers must not modify them.
func (st *datasetStore) snapshot(name string) (*interval.Database, *shard.Partition, uint64, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	e, ok := st.entries[name]
	if !ok {
		return nil, nil, 0, false
	}
	return e.db, e.part, e.version, true
}

// stat returns the named dataset's precomputed summary and version.
func (st *datasetStore) stat(name string) (DatasetSummary, uint64, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	e, ok := st.entries[name]
	if !ok {
		return DatasetSummary{}, 0, false
	}
	return e.summary, e.version, true
}

// append extends the named dataset with add's sequences, copy-on-write:
// the increment is validated first (via the incremental package's
// encoding gate, so the server and the incremental miner accept exactly
// the same data), then a new database replaces the entry under a bumped
// version. A validation or journal error leaves the dataset untouched
// at its old version. found=false means no such dataset.
func (st *datasetStore) append(name string, add *interval.Database) (db *interval.Database, version uint64, sum DatasetSummary, found bool, err error) {
	if err := incremental.ValidateSequences(add.Sequences...); err != nil {
		return nil, 0, DatasetSummary{}, true, fmt.Errorf("append rejected: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[name]
	if !ok {
		return nil, 0, DatasetSummary{}, false, nil
	}
	ver := st.verSeq + 1
	if st.journal != nil {
		if err := st.journal.LogAppend(name, ver, add); err != nil {
			return nil, 0, DatasetSummary{}, true, &journalError{fmt.Errorf("persist append: %w", err)}
		}
	}
	entry := st.extendEntry(e, add, ver)
	st.verSeq = ver
	st.entries[name] = entry
	if st.onPartition != nil {
		st.onPartition(entry.part)
	}
	return entry.db, ver, entry.summary, true, nil
}

// delete removes the named dataset. The version counter still advances
// so a later re-creation cannot resurrect stale cache keys; the journal
// records the bump so that holds across restarts too. The returned
// version (the delete's own) lets callers notify watchers of the
// mutation.
func (st *datasetStore) delete(name string) (version uint64, found bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[name]; !ok {
		return 0, false, nil
	}
	ver := st.verSeq + 1
	if st.journal != nil {
		if err := st.journal.LogDelete(name, ver); err != nil {
			return 0, true, &journalError{fmt.Errorf("persist delete: %w", err)}
		}
	}
	st.verSeq = ver
	delete(st.entries, name)
	return ver, true, nil
}

// journalJobPut durably records a job spec (commit-before-visible: the
// jobs manager only installs the job if this succeeds). Job records draw
// versions from the same store-wide counter as dataset mutations — the
// persist layer's replay-skip invariant (records at or below the
// snapshot version are skipped on recovery) only holds if every
// journaled record's version is unique and monotone across the store.
// With no journal attached jobs are memory-only and this is a no-op.
func (st *datasetStore) journalJobPut(id string, spec []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return nil
	}
	ver := st.verSeq + 1
	if err := st.journal.LogJobPut(id, ver, spec); err != nil {
		return &journalError{fmt.Errorf("persist job put: %w", err)}
	}
	st.verSeq = ver
	return nil
}

// journalJobDelete durably records a job deletion.
func (st *datasetStore) journalJobDelete(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return nil
	}
	ver := st.verSeq + 1
	if err := st.journal.LogJobDelete(id, ver); err != nil {
		return &journalError{fmt.Errorf("persist job delete: %w", err)}
	}
	st.verSeq = ver
	return nil
}

// journalJobResult durably records a job's latest result so it can be
// served immediately after a restart. Callers treat failures as
// best-effort: a degraded journal must not stop the live stream.
func (st *datasetStore) journalJobResult(id string, result []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return nil
	}
	ver := st.verSeq + 1
	if err := st.journal.LogJobResult(id, ver, result); err != nil {
		return &journalError{fmt.Errorf("persist job result: %w", err)}
	}
	st.verSeq = ver
	return nil
}

// list returns the precomputed summary of every dataset; no interval
// data is touched under the lock.
func (st *datasetStore) list() []DatasetSummary {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]DatasetSummary, 0, len(st.entries))
	for _, e := range st.entries {
		out = append(out, e.summary)
	}
	return out
}
