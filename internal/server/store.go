package server

import (
	"fmt"
	"sync"

	"tpminer/internal/incremental"
	"tpminer/internal/interval"
)

// datasetStore holds the server's named datasets with a monotonic
// version per dataset. Stored databases are immutable: PUT installs a
// fresh database, and append replaces the entry with a copy-on-write
// extension instead of mutating in place. Readers (summaries and mining
// snapshots) therefore share the stored pointer with no cloning and no
// lock held during the mine — the previous design cloned the whole
// database on every mine request to defend against in-place appends.
//
// Versions drive exact cache invalidation: every mutation (PUT, append,
// DELETE) draws from one store-wide counter, so a dataset deleted and
// re-created never repeats a version and a (name, version) pair
// identifies one immutable database state forever.
type datasetStore struct {
	mu      sync.RWMutex
	entries map[string]*datasetEntry
	verSeq  uint64
}

type datasetEntry struct {
	db      *interval.Database // immutable once stored
	version uint64
}

func newDatasetStore() *datasetStore {
	return &datasetStore{entries: make(map[string]*datasetEntry)}
}

// put installs db under name, bumping the version. The caller hands over
// ownership: db must not be modified afterwards.
func (st *datasetStore) put(name string, db *interval.Database) (version uint64, existed bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, existed = st.entries[name]
	st.verSeq++
	st.entries[name] = &datasetEntry{db: db, version: st.verSeq}
	return st.verSeq, existed
}

// snapshot returns the named dataset's current database and version.
// The database is immutable and safe to read concurrently; callers must
// not modify it.
func (st *datasetStore) snapshot(name string) (*interval.Database, uint64, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	e, ok := st.entries[name]
	if !ok {
		return nil, 0, false
	}
	return e.db, e.version, true
}

// append extends the named dataset with add's sequences, copy-on-write:
// the increment is validated first (via the incremental package's
// encoding gate, so the server and the incremental miner accept exactly
// the same data), then a new database replaces the entry under a bumped
// version. A validation error leaves the dataset untouched at its old
// version. found=false means no such dataset.
func (st *datasetStore) append(name string, add *interval.Database) (db *interval.Database, version uint64, found bool, err error) {
	if err := incremental.ValidateSequences(add.Sequences...); err != nil {
		return nil, 0, true, fmt.Errorf("append rejected: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[name]
	if !ok {
		return nil, 0, false, nil
	}
	grown := e.db.Clone()
	grown.Sequences = append(grown.Sequences, add.Sequences...)
	st.verSeq++
	st.entries[name] = &datasetEntry{db: grown, version: st.verSeq}
	return grown, st.verSeq, true, nil
}

// delete removes the named dataset. The version counter still advances
// so a later re-creation cannot resurrect stale cache keys.
func (st *datasetStore) delete(name string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[name]; !ok {
		return false
	}
	st.verSeq++
	delete(st.entries, name)
	return true
}

// list returns a summary of every dataset.
func (st *datasetStore) list() []DatasetSummary {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]DatasetSummary, 0, len(st.entries))
	for name, e := range st.entries {
		out = append(out, summarize(name, e.db))
	}
	return out
}
