package server

import (
	"fmt"
	"testing"

	"tpminer/internal/interval"
)

// bigDB builds a database with seqs sequences of ivs intervals each.
func bigDB(seqs, ivs int) *interval.Database {
	db := &interval.Database{Sequences: make([]interval.Sequence, seqs)}
	for s := 0; s < seqs; s++ {
		seq := interval.Sequence{
			ID:        fmt.Sprintf("s%d", s),
			Intervals: make([]interval.Interval, ivs),
		}
		for i := 0; i < ivs; i++ {
			seq.Intervals[i] = interval.Interval{
				Symbol: fmt.Sprintf("S%d", i%4),
				Start:  int64(i * 2),
				End:    int64(i*2 + 3),
			}
		}
		db.Sequences[s] = seq
	}
	return db
}

// incrementFor returns a small, valid increment whose sequence IDs
// don't collide with bigDB's (round is salted in).
func incrementFor(round int) *interval.Database {
	return &interval.Database{Sequences: []interval.Sequence{{
		ID: fmt.Sprintf("inc%d", round),
		Intervals: []interval.Interval{
			{Symbol: "S0", Start: 0, End: 2},
			{Symbol: "S1", Start: 1, End: 3},
		},
	}}}
}

// TestAppendSharesBackingArrays proves append is a shallow copy of the
// sequence headers: the interval arrays of pre-existing sequences are
// the same backing arrays before and after, not clones.
func TestAppendSharesBackingArrays(t *testing.T) {
	st := newDatasetStore()
	base := bigDB(50, 20)
	if _, _, _, err := st.put("d", base); err != nil {
		t.Fatal(err)
	}
	before, _, _, _ := st.snapshot("d")

	grown, _, _, found, err := st.append("d", incrementFor(0))
	if err != nil || !found {
		t.Fatalf("append: found=%v err=%v", found, err)
	}
	if len(grown.Sequences) != len(before.Sequences)+1 {
		t.Fatalf("grown has %d sequences, want %d", len(grown.Sequences), len(before.Sequences)+1)
	}
	for i := range before.Sequences {
		a, b := before.Sequences[i].Intervals, grown.Sequences[i].Intervals
		if len(a) == 0 {
			continue
		}
		if &a[0] != &b[0] {
			t.Fatalf("sequence %d intervals were cloned on append; want shared backing array", i)
		}
	}
}

// TestAppendCostIndependentOfDatasetSize is the scaling assertion in
// test form: the allocation bill for one append must not grow with the
// number of intervals already stored. A deep clone of a 200×500 dataset
// would allocate ~100k intervals (several MB); the shallow path copies
// only sequence headers.
func TestAppendCostIndependentOfDatasetSize(t *testing.T) {
	costOf := func(seqs, ivs int) float64 {
		st := newDatasetStore()
		if _, _, _, err := st.put("d", bigDB(seqs, ivs)); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			// Each run grows the dataset by one 2-interval sequence; the
			// sequence-header copy grows a little, interval copying would
			// grow by seqs*ivs.
			if _, _, _, _, err := st.append("d", incrementFor(0)); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := costOf(4, 4)     // 16 intervals
	large := costOf(200, 500) // 100 000 intervals
	// Allow generous headroom for map/slice growth noise; a deep clone
	// would be thousands of times over.
	if large > small*10+100 {
		t.Errorf("append allocations scale with dataset size: %v allocs on 16-interval base vs %v on 100k-interval base", small, large)
	}
}

// BenchmarkDatasetStoreAppend measures one append against bases of very
// different sizes. With copy-on-write sequence headers the per-op cost
// tracks the header count, never the stored interval count — compare
// size=10x10 with size=200x500 in the output.
func BenchmarkDatasetStoreAppend(b *testing.B) {
	for _, sz := range []struct{ seqs, ivs int }{
		{10, 10},
		{100, 100},
		{200, 500},
	} {
		b.Run(fmt.Sprintf("base=%dx%d", sz.seqs, sz.ivs), func(b *testing.B) {
			st := newDatasetStore()
			if _, _, _, err := st.put("d", bigDB(sz.seqs, sz.ivs)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, _, err := st.append("d", incrementFor(i)); err != nil {
					b.Fatal(err)
				}
				if i%1000 == 999 {
					// Re-seed occasionally so the header slice doesn't grow
					// unboundedly and distort the base-size comparison.
					b.StopTimer()
					st = newDatasetStore()
					if _, _, _, err := st.put("d", bigDB(sz.seqs, sz.ivs)); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}
