package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/obs"
)

// serverMetrics is the server's instrumentation surface, all registered
// on one obs.Registry served at GET /v1/metrics. Four groups:
//
//   - tpmd_http_*: per-route request counters and latency histograms
//     recorded by the middleware for every request — labelled by route
//     pattern and API version (v1 vs legacy alias) — plus in-flight and
//     backpressure (429) counters.
//   - tpmd_cache_*: the mine-result cache — hits, misses, coalesced
//     (single-flight) waiters, evictions, and resident bytes.
//   - tpmd_mine_*: mining-job telemetry — runs by type and outcome,
//     truncations by cause, deadline aborts, and the job-duration
//     histogram that also drives the 429 Retry-After hint.
//   - tpmd_miner_*: the search's own counters aggregated across runs —
//     nodes, candidate scans, the paper's P1–P4 prunings, and the
//     work-stealing scheduler's spawn/steal/queue-depth numbers.
//   - tpmd_persist_*: the durability subsystem — WAL size and appended
//     records, fsyncs, snapshot count/duration, and the boot-time
//     recovery outcome (duration, records replayed, torn-tail
//     truncations). All zero when the server runs without persistence.
//   - tpmd_blob_*: the storage backend beneath persistence — operations,
//     payload bytes, and errors by backend kind (file, mem) and
//     operation (put, get, append_write, sync, ...). All zero when the
//     server runs without persistence.
//   - tpmd_resilience_*: the fault-handling layer — persistence retries
//     by operation, circuit-breaker state/trips, recovery probes by
//     outcome, requests shed by deadline-aware admission, and total
//     seconds spent in read-only degraded mode.
//   - tpmd_shard_*: sharded mining — fan-outs issued, per-shard mine
//     duration, the most recent partition's load-skew ratio, and
//     patterns merged / support-completed at the coordinator. All zero
//     when datasets hold a single shard.
//   - tpmd_remote_*: the distributed deployment — worker RPCs by
//     operation and outcome with latency, wire bytes by direction,
//     retries, local failovers, registry health (healthy vs configured
//     workers), and shard pushes with their compressed bytes. All zero
//     when the server runs without -workers.
//   - tpmd_job_* / tpmd_sse_*: continuous mining — resident job count,
//     runs by outcome and their duration, delta events published, live
//     SSE subscribers, events fanned out to them, and slow consumers
//     dropped.
//   - tpmd_ingest_*: streaming ingestion — events accepted, batches
//     flushed into versioned appends, and events rejected (buffer
//     overflow while the store was unavailable, or dropped at
//     shutdown).
type serverMetrics struct {
	reqTotal  *obs.CounterVec // route, api, class
	reqDur    *obs.HistogramVec
	reqBytes  *obs.CounterVec
	inFlight  *obs.Gauge
	throttled *obs.Counter

	cache *cacheMetrics

	mineRuns      *obs.CounterVec // type, outcome
	mineTruncated *obs.CounterVec // cause
	mineDeadline  *obs.Counter
	mineDur       *obs.Histogram

	minerNodes    *obs.Counter
	minerScans    *obs.Counter
	minerEmitted  *obs.Counter
	minerPruned   *obs.CounterVec // technique: p1..p4
	schedSpawned  *obs.Counter
	schedSteals   *obs.Counter
	schedMaxQueue *obs.Gauge

	persist    *persistMetrics
	resilience *resilienceMetrics
	shard      *shardMetrics
	remote     *remoteMetrics
	jobs       *jobsMetrics

	ingestEvents   *obs.Counter
	ingestBatches  *obs.Counter
	ingestRejected *obs.Counter
}

// jobsMetrics adapts the obs registry to the jobs.Metrics interface;
// the manager calls it from run loops and the publish path, so every
// method is a handful of atomic updates.
type jobsMetrics struct {
	count      *obs.Gauge
	runs       *obs.CounterVec // outcome
	runDur     *obs.Histogram
	events     *obs.Counter
	sseSubs    *obs.Gauge
	sseSent    *obs.Counter
	sseDropped *obs.Counter
}

func (m *jobsMetrics) JobCount(n int) { m.count.Set(int64(n)) }
func (m *jobsMetrics) RunDone(outcome string, d time.Duration) {
	m.runs.With(outcome).Inc()
	m.runDur.Observe(d.Seconds())
}
func (m *jobsMetrics) EventPublished(subscribers int) {
	m.events.Inc()
	m.sseSent.Add(uint64(subscribers))
}
func (m *jobsMetrics) SubscriberChange(delta int) {
	if delta >= 0 {
		for i := 0; i < delta; i++ {
			m.sseSubs.Inc()
		}
		return
	}
	for i := 0; i < -delta; i++ {
		m.sseSubs.Dec()
	}
}
func (m *jobsMetrics) SubscriberDropped() { m.sseDropped.Inc() }

// shardMetrics adapts the obs registry to the shard.Metrics interface;
// the coordinator calls it once per fan-out / shard completion / merge,
// so every method is a handful of atomic updates.
type shardMetrics struct {
	fanouts  *obs.Counter
	shardDur *obs.HistogramVec // shard
	skew     *obs.FloatGauge
	merged   *obs.Counter
	counted  *obs.Counter
}

func (m *shardMetrics) FanOut(shards int) { m.fanouts.Inc() }
func (m *shardMetrics) ShardDone(shard int, d time.Duration) {
	m.shardDur.With(strconv.Itoa(shard)).Observe(d.Seconds())
}
func (m *shardMetrics) Merged(patterns, counted int) {
	m.merged.Add(uint64(patterns))
	m.counted.Add(uint64(counted))
}

// remoteMetrics adapts the obs registry to the remote.Metrics interface;
// the worker-pool client calls it per RPC, retry, and failover. All
// zero when the server runs without -workers.
type remoteMetrics struct {
	rpcs        *obs.CounterVec // op, outcome
	rpcDur      *obs.HistogramVec
	bytes       *obs.CounterVec // op, dir
	retries     *obs.CounterVec // op
	failovers   *obs.Counter
	workerUp    *obs.Gauge
	workerTotal *obs.Gauge
	pushes      *obs.Counter
	pushBytes   *obs.Counter
}

func (m *remoteMetrics) RPC(op string, d time.Duration, err error) {
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	m.rpcs.With(op, outcome).Inc()
	m.rpcDur.With(op).Observe(d.Seconds())
}
func (m *remoteMetrics) Bytes(op, dir string, n int64) { m.bytes.With(op, dir).Add(uint64(n)) }
func (m *remoteMetrics) Retry(op string)               { m.retries.With(op).Inc() }
func (m *remoteMetrics) Failover()                     { m.failovers.Inc() }
func (m *remoteMetrics) WorkerUp(healthy, total int) {
	m.workerUp.Set(int64(healthy))
	m.workerTotal.Set(int64(total))
}
func (m *remoteMetrics) ShardPush(n int64) {
	m.pushes.Inc()
	m.pushBytes.Add(uint64(n))
}

// resilienceMetrics covers the fault-handling layer: retrying persistence
// I/O, the circuit breaker guarding it, and the admission controller.
type resilienceMetrics struct {
	retries         *obs.CounterVec // op
	breakerState    *obs.Gauge      // 0 closed, 1 open, 2 half-open
	breakerTrips    *obs.Counter
	probes          *obs.CounterVec // outcome: ok, fail
	shed            *obs.Counter
	degradedSeconds *obs.FloatCounter
}

// persistMetrics adapts the obs registry to the persist.Metrics
// interface; internal/persist calls it from the WAL hot path, so every
// method is one atomic update.
type persistMetrics struct {
	walBytes    *obs.Gauge
	records     *obs.Counter
	fsyncs      *obs.Counter
	snapshots   *obs.Counter
	snapDur     *obs.Histogram
	recovDur    *obs.Histogram
	replayed    *obs.Gauge
	truncations *obs.Counter
	retries     *obs.CounterVec // shared with resilienceMetrics.retries
	blobOps     *obs.CounterVec // backend, op
	blobBytes   *obs.CounterVec // backend, op
	blobErrs    *obs.CounterVec // backend, op
}

func (m *persistMetrics) WALBytes(n int64) { m.walBytes.Set(n) }
func (m *persistMetrics) RecordAppended()  { m.records.Inc() }
func (m *persistMetrics) FsyncDone()       { m.fsyncs.Inc() }
func (m *persistMetrics) SnapshotDone(d time.Duration) {
	m.snapshots.Inc()
	m.snapDur.Observe(d.Seconds())
}
func (m *persistMetrics) RecoveryDone(d time.Duration, recordsReplayed, truncations int) {
	m.recovDur.Observe(d.Seconds())
	m.replayed.Set(int64(recordsReplayed))
	m.truncations.Add(uint64(truncations))
}
func (m *persistMetrics) RetryDone(op string) { m.retries.With(op).Inc() }
func (m *persistMetrics) BlobOp(backend, op string, n int, err error) {
	m.blobOps.With(backend, op).Inc()
	if n > 0 {
		m.blobBytes.With(backend, op).Add(uint64(n))
	}
	if err != nil {
		m.blobErrs.With(backend, op).Inc()
	}
}

// cacheMetrics adapts the obs registry to the cache.Metrics interface.
type cacheMetrics struct {
	hits         *obs.Counter
	misses       *obs.Counter
	coalesced    *obs.Counter
	evictions    *obs.Counter
	resident     *obs.Gauge
	degradedHits *obs.Counter
}

func (m *cacheMetrics) Hit()             { m.hits.Inc() }
func (m *cacheMetrics) Miss()            { m.misses.Inc() }
func (m *cacheMetrics) Coalesced()       { m.coalesced.Inc() }
func (m *cacheMetrics) Evicted()         { m.evictions.Inc() }
func (m *cacheMetrics) Resident(b int64) { m.resident.Set(b) }
func (m *cacheMetrics) DegradedHit()     { m.degradedHits.Inc() }

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		reqTotal: reg.NewCounterVec("tpmd_http_requests_total",
			"HTTP requests served, by route, API version, and status class.", "route", "api", "class"),
		reqDur: reg.NewHistogramVec("tpmd_http_request_duration_seconds",
			"HTTP request latency by route and API version.", nil, "route", "api"),
		reqBytes: reg.NewCounterVec("tpmd_http_response_bytes_total",
			"Response body bytes written, by route and API version.", "route", "api"),
		inFlight: reg.NewGauge("tpmd_http_requests_in_flight",
			"Requests currently being handled."),
		throttled: reg.NewCounter("tpmd_http_throttled_total",
			"Requests rejected with 429 because every mining slot was busy."),

		cache: &cacheMetrics{
			hits: reg.NewCounter("tpmd_cache_hits_total",
				"Mine/rules requests served from the result cache."),
			misses: reg.NewCounter("tpmd_cache_misses_total",
				"Mine/rules requests that ran the miner (cache miss)."),
			coalesced: reg.NewCounter("tpmd_cache_coalesced_total",
				"Mine/rules requests that shared a concurrent identical run via single-flight."),
			evictions: reg.NewCounter("tpmd_cache_evictions_total",
				"Result-cache entries evicted to stay within the byte budget."),
			resident: reg.NewGauge("tpmd_cache_resident_bytes",
				"Approximate bytes of mine/rules results currently cached."),
			degradedHits: reg.NewCounter("tpmd_cache_degraded_hits_total",
				"Cache hits served while persistence was degraded (read-only mode)."),
		},

		mineRuns: reg.NewCounterVec("tpmd_mine_runs_total",
			"Mining jobs by pattern type and outcome (ok, truncated, deadline, canceled, invalid).",
			"type", "outcome"),
		mineTruncated: reg.NewCounterVec("tpmd_mine_truncated_total",
			"Mining jobs cut short by a soft budget, by cause.", "cause"),
		mineDeadline: reg.NewCounter("tpmd_mine_deadline_aborts_total",
			"Mining jobs aborted by the hard deadline (504s)."),
		mineDur: reg.NewHistogram("tpmd_mine_duration_seconds",
			"Mining job wall time; the recent shape of this histogram drives the 429 Retry-After hint.", nil),

		minerNodes: reg.NewCounter("tpmd_miner_nodes_total",
			"Search-tree nodes explored across all mining runs."),
		minerScans: reg.NewCounter("tpmd_miner_candidate_scans_total",
			"Projected-sequence scans performed while counting extension candidates."),
		minerEmitted: reg.NewCounter("tpmd_miner_patterns_emitted_total",
			"Patterns emitted by the search before normalization/merging."),
		minerPruned: reg.NewCounterVec("tpmd_miner_pruned_total",
			"Search space cut by the paper's pruning techniques: p1 items removed, p2 pairs, p3 postfixes, p4 undersized projections.",
			"technique"),
		schedSpawned: reg.NewCounter("tpmd_miner_sched_jobs_spawned_total",
			"Subtree jobs offered to the work-stealing queue by parallel runs."),
		schedSteals: reg.NewCounter("tpmd_miner_sched_steals_total",
			"Subtree jobs executed by a worker other than their spawner."),
		schedMaxQueue: reg.NewGauge("tpmd_miner_sched_max_queue_depth",
			"High-water mark of the work-stealing queue across all runs."),

		persist: &persistMetrics{
			walBytes: reg.NewGauge("tpmd_persist_wal_bytes",
				"Size of the live write-ahead-log segment."),
			records: reg.NewCounter("tpmd_persist_wal_records_total",
				"Mutation records committed to the write-ahead log."),
			fsyncs: reg.NewCounter("tpmd_persist_fsyncs_total",
				"fsync calls issued on the write-ahead log."),
			snapshots: reg.NewCounter("tpmd_persist_snapshots_total",
				"Snapshots cut (compaction and shutdown)."),
			snapDur: reg.NewHistogram("tpmd_persist_snapshot_duration_seconds",
				"Wall time to write one snapshot.", nil),
			recovDur: reg.NewHistogram("tpmd_persist_recovery_duration_seconds",
				"Wall time of boot-time recovery (snapshot load + WAL replay).", nil),
			replayed: reg.NewGauge("tpmd_persist_recovery_records_replayed",
				"WAL records replayed on top of the snapshot at the last boot."),
			truncations: reg.NewCounter("tpmd_persist_torn_tail_truncations_total",
				"WAL logs cut short at a torn or corrupt frame during recovery."),
			blobOps: reg.NewCounterVec("tpmd_blob_ops_total",
				"Blob-store operations issued by persistence, by backend kind and operation.", "backend", "op"),
			blobBytes: reg.NewCounterVec("tpmd_blob_bytes_total",
				"Payload bytes moved through the blob store, by backend kind and operation.", "backend", "op"),
			blobErrs: reg.NewCounterVec("tpmd_blob_errors_total",
				"Blob-store operations that returned an error, by backend kind and operation.", "backend", "op"),
		},

		resilience: &resilienceMetrics{
			retries: reg.NewCounterVec("tpmd_resilience_retries_total",
				"Persistence I/O retries after a transient failure, by operation.", "op"),
			breakerState: reg.NewGauge("tpmd_resilience_breaker_state",
				"Persistence circuit-breaker state: 0 closed (healthy), 1 open (degraded), 2 half-open (probing)."),
			breakerTrips: reg.NewCounter("tpmd_resilience_breaker_trips_total",
				"Times the persistence circuit breaker tripped open, entering read-only degraded mode."),
			probes: reg.NewCounterVec("tpmd_resilience_probes_total",
				"Background recovery probes while degraded, by outcome (ok, fail).", "outcome"),
			shed: reg.NewCounter("tpmd_resilience_shed_total",
				"Mine/rules requests shed by deadline-aware admission: their deadline would expire before a slot could free up."),
			degradedSeconds: reg.NewFloatCounter("tpmd_resilience_degraded_seconds_total",
				"Total seconds spent in read-only degraded mode (breaker open or probing)."),
		},

		shard: &shardMetrics{
			fanouts: reg.NewCounter("tpmd_shard_fanout_total",
				"Mine/rules requests fanned out across dataset shards."),
			shardDur: reg.NewHistogramVec("tpmd_shard_mine_duration_seconds",
				"Per-shard mining wall time within a fan-out, by shard index.", nil, "shard"),
			skew: reg.NewFloatGauge("tpmd_shard_skew_ratio",
				"Max/min shard interval-load ratio of the most recently (re)computed partition."),
			merged: reg.NewCounter("tpmd_shard_merged_patterns_total",
				"Patterns produced by coordinator merges of per-shard results."),
			counted: reg.NewCounter("tpmd_shard_counted_patterns_total",
				"Patterns whose support was completed via a per-shard Count round because some shard missed them locally."),
		},
		remote: &remoteMetrics{
			rpcs: reg.NewCounterVec("tpmd_remote_rpcs_total",
				"Remote worker RPCs completed (after retries), by operation and outcome.", "op", "outcome"),
			rpcDur: reg.NewHistogramVec("tpmd_remote_rpc_duration_seconds",
				"Remote worker RPC wall time (including retries within one call), by operation.", nil, "op"),
			bytes: reg.NewCounterVec("tpmd_remote_bytes_total",
				"Wire bytes moved to/from remote workers, by operation and direction.", "op", "dir"),
			retries: reg.NewCounterVec("tpmd_remote_retries_total",
				"Remote RPC attempts retried after a transient failure, by operation.", "op"),
			failovers: reg.NewCounter("tpmd_remote_failovers_total",
				"Shards re-mined on the in-process fallback after their remote worker became unavailable."),
			workerUp: reg.NewGauge("tpmd_remote_worker_up",
				"Remote workers currently considered healthy by the registry."),
			workerTotal: reg.NewGauge("tpmd_remote_worker_total",
				"Remote workers configured via -workers."),
			pushes: reg.NewCounter("tpmd_remote_shard_pushes_total",
				"Shard payloads pushed to remote workers (one per worker x dataset version x shard)."),
			pushBytes: reg.NewCounter("tpmd_remote_shard_push_bytes_total",
				"Compressed shard payload bytes pushed to remote workers."),
		},
		jobs: &jobsMetrics{
			count: reg.NewGauge("tpmd_job_count",
				"Continuous-mining jobs currently resident."),
			runs: reg.NewCounterVec("tpmd_job_runs_total",
				"Continuous-mining job runs, by outcome (ok, noop, error).", "outcome"),
			runDur: reg.NewHistogram("tpmd_job_run_duration_seconds",
				"Wall time of one continuous-mining job run (mine + diff + publish).", nil),
			events: reg.NewCounter("tpmd_job_events_published_total",
				"Delta/result events published by job runs."),
			sseSubs: reg.NewGauge("tpmd_sse_subscribers",
				"SSE subscribers currently connected across all jobs."),
			sseSent: reg.NewCounter("tpmd_sse_events_sent_total",
				"Events enqueued to SSE subscribers (one per event per subscriber)."),
			sseDropped: reg.NewCounter("tpmd_sse_dropped_total",
				"SSE subscribers disconnected for not draining their event queue."),
		},

		ingestEvents: reg.NewCounter("tpmd_ingest_events_total",
			"Event intervals flushed into versioned dataset appends by streaming ingestion."),
		ingestBatches: reg.NewCounter("tpmd_ingest_batches_total",
			"Ingest batches flushed (by count, by age, or at shutdown)."),
		ingestRejected: reg.NewCounter("tpmd_ingest_rejected_total",
			"Buffered ingest events dropped because the store stayed unavailable or the server shut down."),
	}
	// internal/persist reports retries through the persist.Metrics
	// interface, but the series lives in the resilience family.
	m.persist.retries = m.resilience.retries
	return m
}

// recordMinerStats folds one finished run's search counters into the
// cumulative miner metrics.
func (m *serverMetrics) recordMinerStats(st core.Stats) {
	m.minerNodes.Add(uint64(st.Nodes))
	m.minerScans.Add(uint64(st.CandidateScans))
	m.minerEmitted.Add(uint64(st.Emitted))
	m.minerPruned.With("p1").Add(uint64(st.ItemsRemoved))
	m.minerPruned.With("p2").Add(uint64(st.PairPruned))
	m.minerPruned.With("p3").Add(uint64(st.PostfixPruned))
	m.minerPruned.With("p4").Add(uint64(st.SizePruned))
	m.schedSpawned.Add(uint64(st.JobsSpawned))
	m.schedSteals.Add(uint64(st.StealsTaken))
	m.schedMaxQueue.SetMax(st.MaxQueueDepth)
}

// apiLabel reports which API surface served the request: "v1" for the
// versioned routes, "legacy" for the deprecated unversioned aliases.
func apiLabel(r *http.Request) string {
	if isV1(r) {
		return "v1"
	}
	return "legacy"
}

// routeLabel maps a request path onto its route pattern so metric
// cardinality stays bounded no matter what dataset names clients send.
// The /v1 prefix is stripped — the API version is its own label — so a
// route's time series stay comparable across versions.
func routeLabel(r *http.Request) string {
	p := strings.TrimPrefix(r.URL.Path, "/v1")
	switch p {
	case "/healthz", "/readyz", "/metrics", "/datasets", "/routes", "/jobs":
		return p
	}
	if rest, ok := strings.CutPrefix(p, "/datasets/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch suffix := rest[i:]; suffix {
			case "/mine", "/rules", "/append", "/events", "/shards":
				return "/datasets/{name}" + suffix
			}
			return "other"
		}
		return "/datasets/{name}"
	}
	if rest, ok := strings.CutPrefix(p, "/jobs/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch suffix := rest[i:]; suffix {
			case "/result", "/events":
				return "/jobs/{id}" + suffix
			}
			return "other"
		}
		return "/jobs/{id}"
	}
	return "other"
}

// statusClass buckets a status code into "2xx".."5xx" for the low-
// cardinality class label.
func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// statusWriter records the status code and body bytes a handler wrote,
// so the middleware can label metrics and logs after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so SSE handlers can stream
// through the metrics middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
