package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tpminer/internal/api"
	"tpminer/internal/cache"
	"tpminer/internal/jobs"
)

// This file is the server side of continuous mining: the /v1/jobs
// resource handlers, the SSE delta stream, and the two adapters that
// plug the jobs manager into the server — jobRunner (mining through the
// cached/sharded mine path, so a job run and a batch request with the
// same spec share cache entries and produce identical patterns) and
// jobJournal (durability through the store's journal, so jobs and their
// latest results survive restarts).

// jobRunner implements jobs.Runner on the server's mine path.
type jobRunner struct{ s *Server }

func (jr jobRunner) RunJob(ctx context.Context, spec api.JobSpec) (jobs.RunOutput, error) {
	s := jr.s
	db, part, ver, ok := s.store.snapshot(spec.Dataset)
	if !ok {
		return jobs.RunOutput{}, jobs.ErrDatasetMissing
	}
	mode := spec.Mine.ResolvedMode()
	// Identical key to a batch mine with this spec: a job run right after
	// a client's own mine (or vice versa) is a cache hit, not a re-mine.
	key := cache.Key{Dataset: spec.Dataset, Version: ver, Options: spec.Mine.ResultOptions()}
	wdb, wpart := s.windowed(db, part, spec.Mine.Window)
	tgt := mineTarget{db: wdb, part: wpart, name: spec.Dataset, ver: ver, whole: wdb == db}
	compute := func() (any, int64, bool, error) {
		resp, complete, err := s.runMine(ctx, tgt, mode, spec.Mine)
		if err != nil {
			return nil, 0, false, err
		}
		return resp, approxJSONSize(resp), complete, nil
	}
	var (
		v   any
		err error
	)
	if s.results != nil {
		v, _, err = s.results.Do(ctx, key, compute)
	} else {
		v, _, _, err = compute()
	}
	if err != nil {
		return jobs.RunOutput{}, err
	}
	resp := v.(*MineResponse)
	out := jobs.RunOutput{Version: ver, Patterns: make([]jobs.Pattern, 0, len(resp.Patterns))}
	for _, mp := range resp.Patterns {
		body, merr := json.Marshal(mp)
		if merr != nil { // unreachable: patterns are plain data
			return jobs.RunOutput{}, merr
		}
		out.Patterns = append(out.Patterns, jobs.Pattern{
			Key:     minedPatternKey(mp),
			Support: mp.Support,
			Body:    body,
		})
	}
	return out, nil
}

// minedPatternKey is the stable identity of a mined pattern across
// runs: its rendering plus relation summary — everything but the
// support, whose changes the deltas track.
func minedPatternKey(p MinedPattern) string {
	if p.Relations == "" {
		return p.Pattern
	}
	return p.Pattern + "\x1f" + p.Relations
}

// jobJournal implements jobs.Journal on the dataset store's journal,
// drawing versions from the store-wide counter (see journalJobPut).
type jobJournal struct{ s *Server }

func (jj jobJournal) JobPut(id string, spec []byte) error { return jj.s.store.journalJobPut(id, spec) }
func (jj jobJournal) JobDelete(id string) error           { return jj.s.store.journalJobDelete(id) }
func (jj jobJournal) JobResult(id string, result []byte) error {
	return jj.s.store.journalJobResult(id, result)
}

// --------------------------------------------------------- job handlers

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if !s.requireContentType(w, r, "application/json") {
		return
	}
	var spec api.JobSpec
	if err := s.decodeJSONBody(r, &spec); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	st, err := s.jobMgr.Create(spec)
	if err != nil {
		s.writeJobError(w, r, spec.ID, err)
		return
	}
	s.logger.Info("job created", "request_id", requestID(r), "job", st.ID,
		"dataset", spec.Dataset)
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	s.writeJSON(w, http.StatusCreated, st)
}

// writeJobError maps a jobs-manager error to a response.
func (s *Server) writeJobError(w http.ResponseWriter, r *http.Request, id string, err error) {
	var fe *api.FieldError
	var je *journalError
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("job %q not found", id))
	case errors.Is(err, jobs.ErrExists):
		s.writeError(w, r, http.StatusConflict, fmt.Errorf("job %q already exists", id))
	case errors.Is(err, jobs.ErrClosed):
		s.writeError(w, r, http.StatusServiceUnavailable, errors.New("server is shutting down"))
	case errors.As(err, &fe):
		s.writeError(w, r, http.StatusBadRequest, err)
	case errors.As(err, &je):
		s.writeStoreError(w, r, err)
	default:
		s.writeError(w, r, http.StatusBadRequest, err)
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.jobMgr.List())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.jobMgr.Get(id)
	if err != nil {
		s.writeJobError(w, r, id, err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.jobMgr.Delete(id); err != nil {
		s.writeJobError(w, r, id, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJobResult serves the latest run's full pattern set, with the
// same strong-ETag/304 machinery as batch mining: the tag pins (job,
// run), and a run is immutable once published.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, ok, err := s.jobMgr.Result(id)
	if err != nil {
		s.writeJobError(w, r, id, err)
		return
	}
	if !ok {
		s.writeError(w, r, http.StatusNotFound,
			fmt.Errorf("job %q has not completed a run yet", id))
		return
	}
	etag := resultETag(cache.Key{Dataset: "job/" + id, Version: res.RunSeq, Options: "job-result"})
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("ETag", etag)
	s.writeJSON(w, http.StatusOK, res)
}

// handleJobEvents streams a job's deltas as Server-Sent Events. Each
// event's id is the run sequence, so a dropped client resumes exactly by
// sending Last-Event-ID: the replay ring fills small gaps, and larger
// ones (a restart, a slow consumer far behind) get one full "result"
// snapshot to rebase on. Heartbeat comments keep idle connections alive
// through proxies; a subscriber that cannot drain its queue is
// disconnected (its channel closes) rather than allowed to stall the
// job.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError,
			errors.New("streaming unsupported by this connection"))
		return
	}
	var lastEventID *uint64
	if h := r.Header.Get("Last-Event-ID"); h != "" {
		v, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("malformed Last-Event-ID %q", h))
			return
		}
		lastEventID = &v
	}
	sub, backlog, err := s.jobMgr.Subscribe(id, lastEventID)
	if err != nil {
		s.writeJobError(w, r, id, err)
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	for _, ev := range backlog {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	flusher.Flush()

	heartbeat := time.NewTicker(s.cfg.SSEHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			// Client went away; Subscribe's Close (deferred) unregisters.
			return
		case ev, open := <-sub.C:
			if !open {
				// Dropped as a slow consumer, or the job was deleted / the
				// server is closing. Ending the response makes the client
				// reconnect with Last-Event-ID and resume (or get the 404).
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			// Drain whatever else is queued before flushing once.
			for {
				select {
				case ev, open := <-sub.C:
					if !open {
						flusher.Flush()
						return
					}
					if err := writeSSE(w, ev); err != nil {
						return
					}
					continue
				default:
				}
				break
			}
			flusher.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE frames one event in text/event-stream format. Payloads are
// single-line JSON, so no data-field splitting is needed.
func writeSSE(w interface{ Write([]byte) (int, error) }, ev jobs.Event) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
	return err
}
