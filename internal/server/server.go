// Package server exposes the miner as an HTTP service: named in-memory
// datasets with upload/append endpoints and a mining endpoint per
// pattern type. It is the integration surface a downstream system would
// deploy (cmd/tpmd wraps it); everything is stdlib net/http.
//
// API (JSON in/out unless noted):
//
//	GET    /healthz                      liveness
//	GET    /datasets                     list datasets with summaries
//	PUT    /datasets/{name}              create/replace; body is csv,
//	                                     lines, or json per Content-Type
//	POST   /datasets/{name}/append       append sequences (same formats)
//	GET    /datasets/{name}              dataset summary
//	DELETE /datasets/{name}              remove
//	POST   /datasets/{name}/mine         body: MineRequest; returns
//	                                     patterns with supports
//	POST   /datasets/{name}/rules        body: RulesRequest; returns
//	                                     temporal association rules
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"

	"tpminer/internal/core"
	"tpminer/internal/dataio"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/rules"
)

// maxBodyBytes caps uploads and requests (64 MiB).
const maxBodyBytes = 64 << 20

// Server is the HTTP mining service. Create with New, mount via
// Handler.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*interval.Database
	logger   *log.Logger
}

// New creates an empty server. logger may be nil (logging disabled).
func New(logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{
		datasets: make(map[string]*interval.Database),
		logger:   logger,
	}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /datasets", s.handleList)
	mux.HandleFunc("PUT /datasets/{name}", s.handlePut)
	mux.HandleFunc("GET /datasets/{name}", s.handleGet)
	mux.HandleFunc("DELETE /datasets/{name}", s.handleDelete)
	mux.HandleFunc("POST /datasets/{name}/append", s.handleAppend)
	mux.HandleFunc("POST /datasets/{name}/mine", s.handleMine)
	mux.HandleFunc("POST /datasets/{name}/rules", s.handleRules)
	return mux
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Printf("server: encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// DatasetSummary is the wire form of GET /datasets and
// GET /datasets/{name}.
type DatasetSummary struct {
	Name      string  `json:"name"`
	Sequences int     `json:"sequences"`
	Intervals int     `json:"intervals"`
	Symbols   int     `json:"symbols"`
	AvgSeqLen float64 `json:"avg_seq_len"`
}

func summarize(name string, db *interval.Database) DatasetSummary {
	st := db.Summarize()
	return DatasetSummary{
		Name:      name,
		Sequences: st.Sequences,
		Intervals: st.Intervals,
		Symbols:   st.Symbols,
		AvgSeqLen: st.AvgSeqLen,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]DatasetSummary, 0, len(s.datasets))
	for name, db := range s.datasets {
		out = append(out, summarize(name, db))
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	s.writeJSON(w, http.StatusOK, out)
}

// readDatasetBody parses an uploaded dataset according to Content-Type:
// text/csv, application/json, or text/plain (line format; the default).
func readDatasetBody(r *http.Request) (*interval.Database, error) {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case "text/csv":
		return dataio.ReadCSV(body)
	case "application/json":
		return dataio.ReadJSON(body)
	case "", "text/plain":
		return dataio.ReadLines(body)
	default:
		return nil, fmt.Errorf("unsupported Content-Type %q (want text/csv, application/json, or text/plain)", ct)
	}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	db, err := readDatasetBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	_, existed := s.datasets[name]
	s.datasets[name] = db
	s.mu.Unlock()
	s.logger.Printf("server: put dataset %q (%d sequences)", name, db.Len())
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	s.writeJSON(w, status, summarize(name, db))
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	add, err := readDatasetBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	db, ok := s.datasets[name]
	if ok {
		db.Sequences = append(db.Sequences, add.Sequences...)
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	s.writeJSON(w, http.StatusOK, summarize(name, db))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	db, ok := s.datasets[name]
	s.mu.RUnlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	s.writeJSON(w, http.StatusOK, summarize(name, db))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.datasets[name]
	delete(s.datasets, name)
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// MineRequest is the body of POST /datasets/{name}/mine.
type MineRequest struct {
	// Type is "temporal" (default) or "coincidence".
	Type string `json:"type,omitempty"`
	// MinSupport in (0,1], or MinCount >= 1 (one required).
	MinSupport float64 `json:"min_support,omitempty"`
	MinCount   int     `json:"min_count,omitempty"`
	// Optional constraints and modes.
	MaxIntervals       int    `json:"max_intervals,omitempty"`
	MaxElements        int    `json:"max_elements,omitempty"`
	MaxItemsPerElement int    `json:"max_items_per_element,omitempty"`
	MaxSpan            int64  `json:"max_span,omitempty"`
	MaxGap             int64  `json:"max_gap,omitempty"`
	TopK               int    `json:"top_k,omitempty"`
	Filter             string `json:"filter,omitempty"` // "", "closed", "maximal"
}

func (req MineRequest) options() core.Options {
	return core.Options{
		MinSupport:         req.MinSupport,
		MinCount:           req.MinCount,
		MaxIntervals:       req.MaxIntervals,
		MaxElements:        req.MaxElements,
		MaxItemsPerElement: req.MaxItemsPerElement,
		MaxSpan:            req.MaxSpan,
		MaxGap:             req.MaxGap,
	}
}

// MinedPattern is one result row of the mine endpoint.
type MinedPattern struct {
	Support   int    `json:"support"`
	Pattern   string `json:"pattern"`
	Relations string `json:"relations,omitempty"`
}

// MineResponse is the body returned by the mine endpoint.
type MineResponse struct {
	Dataset  string         `json:"dataset"`
	Type     string         `json:"type"`
	Count    int            `json:"count"`
	Patterns []MinedPattern `json:"patterns"`
	Stats    MineStats      `json:"stats"`
}

// MineStats is the wire form of the search counters.
type MineStats struct {
	Sequences      int    `json:"sequences"`
	MinCount       int    `json:"min_count"`
	Nodes          int64  `json:"nodes"`
	CandidateScans int64  `json:"candidate_scans"`
	ElapsedMillis  string `json:"elapsed"`
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req MineRequest
	if err := decodeJSONBody(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	db, ok := s.snapshot(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}

	ptype := req.Type
	if ptype == "" {
		ptype = "temporal"
	}
	switch req.Filter {
	case "", "closed", "maximal":
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown filter %q", req.Filter))
		return
	}

	resp := MineResponse{Dataset: name, Type: ptype}
	switch ptype {
	case "temporal":
		var (
			rs  []pattern.TemporalResult
			st  core.Stats
			err error
		)
		if req.TopK > 0 {
			rs, st, err = core.MineTemporalTopK(db, req.TopK, req.options())
		} else {
			rs, st, err = core.MineTemporal(db, req.options())
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		switch req.Filter {
		case "closed":
			rs = core.FilterClosed(rs)
		case "maximal":
			rs = core.FilterMaximal(rs)
		}
		for _, pr := range rs {
			resp.Patterns = append(resp.Patterns, MinedPattern{
				Support:   pr.Support,
				Pattern:   pr.Pattern.String(),
				Relations: pr.Pattern.RelationSummary(),
			})
		}
		resp.Stats = wireStats(st)
	case "coincidence":
		var (
			rs  []pattern.CoincResult
			st  core.Stats
			err error
		)
		if req.TopK > 0 {
			rs, st, err = core.MineCoincidenceTopK(db, req.TopK, req.options())
		} else {
			rs, st, err = core.MineCoincidence(db, req.options())
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		switch req.Filter {
		case "closed":
			rs = core.FilterClosedCoinc(rs)
		case "maximal":
			rs = core.FilterMaximalCoinc(rs)
		}
		for _, pr := range rs {
			resp.Patterns = append(resp.Patterns, MinedPattern{
				Support: pr.Support,
				Pattern: pr.Pattern.String(),
			})
		}
		resp.Stats = wireStats(st)
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown type %q", ptype))
		return
	}
	resp.Count = len(resp.Patterns)
	s.writeJSON(w, http.StatusOK, resp)
}

// RulesRequest is the body of POST /datasets/{name}/rules: mine
// temporal patterns, then derive association rules.
type RulesRequest struct {
	MinSupport    float64 `json:"min_support,omitempty"`
	MinCount      int     `json:"min_count,omitempty"`
	MaxIntervals  int     `json:"max_intervals,omitempty"`
	MinConfidence float64 `json:"min_confidence,omitempty"`
	MinLift       float64 `json:"min_lift,omitempty"`
}

// WireRule is one derived rule on the wire.
type WireRule struct {
	Antecedent string  `json:"antecedent"`
	Full       string  `json:"full"`
	Relations  string  `json:"relations"`
	Support    int     `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req RulesRequest
	if err := decodeJSONBody(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	db, ok := s.snapshot(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	opt := core.Options{
		MinSupport:   req.MinSupport,
		MinCount:     req.MinCount,
		MaxIntervals: req.MaxIntervals,
	}
	rs, _, err := core.MineTemporal(db, opt)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	derived, err := rules.Derive(rs, db, rules.Options{
		MinConfidence: req.MinConfidence,
		MinLift:       req.MinLift,
	})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]WireRule, len(derived))
	for i, ru := range derived {
		out[i] = WireRule{
			Antecedent: ru.Antecedent.String(),
			Full:       ru.Full.String(),
			Relations:  ru.Full.RelationSummary(),
			Support:    ru.Support,
			Confidence: ru.Confidence,
			Lift:       ru.Lift,
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// snapshot returns a deep copy of the named dataset so mining runs
// without holding the lock (appends may proceed concurrently).
func (s *Server) snapshot(name string) (*interval.Database, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	db, ok := s.datasets[name]
	if !ok {
		return nil, false
	}
	return db.Clone(), true
}

// decodeJSONBody parses a JSON request body, tolerating an empty body
// (all-default request).
func decodeJSONBody(r *http.Request, v any) error {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body = defaults
		}
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

func wireStats(st core.Stats) MineStats {
	return MineStats{
		Sequences:      st.Sequences,
		MinCount:       st.MinCount,
		Nodes:          st.Nodes,
		CandidateScans: st.CandidateScans,
		ElapsedMillis:  st.Elapsed.String(),
	}
}
