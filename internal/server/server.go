// Package server exposes the miner as an HTTP service: named in-memory
// datasets with upload/append endpoints and a mining endpoint per
// pattern type. It is the integration surface a downstream system would
// deploy (cmd/tpmd wraps it); everything is stdlib net/http.
//
// API (JSON in/out unless noted):
//
//	GET    /healthz                      liveness
//	GET    /datasets                     list datasets with summaries
//	PUT    /datasets/{name}              create/replace; body is csv,
//	                                     lines, or json per Content-Type
//	POST   /datasets/{name}/append       append sequences (same formats)
//	GET    /datasets/{name}              dataset summary
//	DELETE /datasets/{name}              remove
//	POST   /datasets/{name}/mine         body: MineRequest; returns
//	                                     patterns with supports
//	POST   /datasets/{name}/rules        body: RulesRequest; returns
//	                                     temporal association rules
//	GET    /metrics                      Prometheus text exposition
//
// # Operational hardening
//
// Every request carries a request ID (client-supplied X-Request-ID or
// generated), echoed in the response header, error bodies, and logs. A
// panic anywhere below the middleware becomes a structured 500 instead
// of a dropped connection. Mining work is bounded three ways: a
// semaphore caps concurrent mining jobs (excess requests get 429 with
// Retry-After), every job runs under a context deadline (server ceiling,
// optionally lowered per request via timeout_ms) and aborts with 504,
// and requests may trade completeness for latency with time_budget_ms /
// max_patterns, which return partial results flagged truncated.
// Oversized bodies are rejected with 413. Request fields are validated
// up front: negative budgets, limits, or worker counts are rejected with
// 400 before a mining slot is claimed.
//
// # Observability
//
// The server logs structured records via log/slog (one "request" record
// per request with route, status, duration, and request ID) and exposes
// a Prometheus registry at GET /metrics: per-route request counters and
// latency histograms, in-flight and backpressure gauges, mining-run
// outcomes, and the miner's own node/scan/P1–P4-pruning/work-stealing
// counters. The Retry-After hint on 429 responses is derived from the
// observed mine-duration histogram. See internal/server/metrics.go for
// the metric inventory.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tpminer/internal/core"
	"tpminer/internal/dataio"
	"tpminer/internal/interval"
	"tpminer/internal/obs"
	"tpminer/internal/pattern"
	"tpminer/internal/rules"
)

// Defaults for Config zero values.
const (
	// DefaultMaxBodyBytes caps uploads and requests (64 MiB).
	DefaultMaxBodyBytes = 64 << 20
	// DefaultMaxMineDuration is the server-side ceiling on one mining
	// job.
	DefaultMaxMineDuration = 60 * time.Second
)

// Config bounds the server's resource usage. The zero value selects
// sensible defaults.
type Config struct {
	// MaxConcurrentMines caps mining/rules jobs running at once; excess
	// requests are rejected with 429 Too Many Requests and a
	// Retry-After header. 0 means GOMAXPROCS.
	MaxConcurrentMines int

	// MaxMineDuration is the hard server-side deadline for one mining
	// job. Requests may lower (never raise) it via timeout_ms. A job
	// that hits the deadline is aborted with 504. 0 means
	// DefaultMaxMineDuration.
	MaxMineDuration time.Duration

	// MaxBodyBytes caps request bodies; larger bodies are rejected with
	// 413. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// MaxParallel is the ceiling on per-request mining parallelism:
	// requests may ask for worker goroutines via the mine request's
	// "parallel" field, capped at this value — like timeout_ms, a
	// request can spend less than the ceiling, never more. 0 means
	// GOMAXPROCS.
	MaxParallel int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentMines <= 0 {
		c.MaxConcurrentMines = runtime.GOMAXPROCS(0)
	}
	if c.MaxMineDuration <= 0 {
		c.MaxMineDuration = DefaultMaxMineDuration
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server is the HTTP mining service. Create with New or NewWithConfig,
// mount via Handler.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*interval.Database
	logger   *slog.Logger
	cfg      Config

	// reg and met are the server's metrics registry (served at
	// GET /metrics) and the typed handles into it.
	reg *obs.Registry
	met *serverMetrics

	// mineSem bounds concurrent mining jobs; acquisition is
	// non-blocking so overload turns into fast 429s instead of a queue.
	mineSem chan struct{}
	// reqSeq numbers generated request IDs.
	reqSeq atomic.Uint64

	// testMineHook, when set by a test, runs inside the mine handler
	// after the semaphore slot is claimed — the hook point for failure
	// injection (panics mid-job).
	testMineHook func()
}

// New creates an empty server with default resource bounds. logger may
// be nil (logging disabled).
func New(logger *slog.Logger) *Server {
	return NewWithConfig(logger, Config{})
}

// NewWithConfig creates an empty server with explicit resource bounds.
// logger may be nil (logging disabled).
func NewWithConfig(logger *slog.Logger, cfg Config) *Server {
	if logger == nil {
		logger = obs.Discard()
	}
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	return &Server{
		datasets: make(map[string]*interval.Database),
		logger:   logger,
		cfg:      cfg,
		reg:      reg,
		met:      newServerMetrics(reg),
		mineSem:  make(chan struct{}, cfg.MaxConcurrentMines),
	}
}

// Registry returns the server's metrics registry, the same one Handler
// serves at GET /metrics. Embedders may register their own metrics on
// it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the route table wrapped in the request-ID and
// panic-recovery middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /datasets", s.handleList)
	mux.HandleFunc("PUT /datasets/{name}", s.handlePut)
	mux.HandleFunc("GET /datasets/{name}", s.handleGet)
	mux.HandleFunc("DELETE /datasets/{name}", s.handleDelete)
	mux.HandleFunc("POST /datasets/{name}/append", s.handleAppend)
	mux.HandleFunc("POST /datasets/{name}/mine", s.handleMine)
	mux.HandleFunc("POST /datasets/{name}/rules", s.handleRules)
	return s.middleware(mux)
}

// ctxKey keys middleware values in the request context.
type ctxKey int

const requestIDKey ctxKey = iota

// requestID returns the request's ID, or "" outside the middleware.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// middleware assigns every request an ID (honoring a client-supplied
// X-Request-ID), converts handler panics into structured 500s, and
// records the per-request metrics and the structured access log. The ID
// is set on the response header before the handler runs, so even error
// and panic responses carry it.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.met.inFlight.Inc()
		defer func() {
			if p := recover(); p != nil {
				s.logger.Error("panic recovered",
					"request_id", id, "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				// If the handler already started the response this
				// write is a no-op on the status; the log above is the
				// record either way.
				s.writeJSON(sw, http.StatusInternalServerError,
					errorBody{Error: "internal server error", RequestID: id})
			}
			s.met.inFlight.Dec()
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			route := routeLabel(r)
			dur := time.Since(start)
			s.met.reqTotal.With(route, statusClass(status)).Inc()
			s.met.reqDur.With(route).Observe(dur.Seconds())
			s.met.reqBytes.With(route).Add(uint64(sw.bytes))
			if status == http.StatusTooManyRequests {
				s.met.throttled.Inc()
			}
			s.logger.Info("request",
				"request_id", id, "method", r.Method, "route", route,
				"path", r.URL.Path, "status", status,
				"duration_ms", dur.Milliseconds(), "bytes", sw.bytes)
		}()
		next.ServeHTTP(sw, r)
	})
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Error("encode response failed", "error", err)
	}
}

// writeError sends the structured error envelope. A body-size overflow
// (http.MaxBytesError anywhere in the chain) overrides the caller's
// status with 413 so clients can tell "too large" from "malformed".
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
		err = fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
	}
	id := requestID(r)
	if status >= 500 || status == http.StatusTooManyRequests {
		s.logger.Warn("request failed",
			"request_id", id, "method", r.Method, "path", r.URL.Path,
			"status", status, "error", err.Error())
	}
	s.writeJSON(w, status, errorBody{Error: err.Error(), RequestID: id})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// DatasetSummary is the wire form of GET /datasets and
// GET /datasets/{name}.
type DatasetSummary struct {
	Name      string  `json:"name"`
	Sequences int     `json:"sequences"`
	Intervals int     `json:"intervals"`
	Symbols   int     `json:"symbols"`
	AvgSeqLen float64 `json:"avg_seq_len"`
}

func summarize(name string, db *interval.Database) DatasetSummary {
	st := db.Summarize()
	return DatasetSummary{
		Name:      name,
		Sequences: st.Sequences,
		Intervals: st.Intervals,
		Symbols:   st.Symbols,
		AvgSeqLen: st.AvgSeqLen,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]DatasetSummary, 0, len(s.datasets))
	for name, db := range s.datasets {
		out = append(out, summarize(name, db))
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	s.writeJSON(w, http.StatusOK, out)
}

// readDatasetBody parses an uploaded dataset according to Content-Type:
// text/csv, application/json, or text/plain (line format; the default).
func (s *Server) readDatasetBody(r *http.Request) (*interval.Database, error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case "text/csv":
		return dataio.ReadCSV(body)
	case "application/json":
		return dataio.ReadJSON(body)
	case "", "text/plain":
		return dataio.ReadLines(body)
	default:
		return nil, fmt.Errorf("unsupported Content-Type %q (want text/csv, application/json, or text/plain)", ct)
	}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	db, err := s.readDatasetBody(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	_, existed := s.datasets[name]
	s.datasets[name] = db
	s.mu.Unlock()
	s.logger.Info("dataset stored",
		"request_id", requestID(r), "dataset", name, "sequences", db.Len())
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	s.writeJSON(w, status, summarize(name, db))
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	add, err := s.readDatasetBody(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	db, ok := s.datasets[name]
	if ok {
		db.Sequences = append(db.Sequences, add.Sequences...)
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	s.writeJSON(w, http.StatusOK, summarize(name, db))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	db, ok := s.datasets[name]
	s.mu.RUnlock()
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	s.writeJSON(w, http.StatusOK, summarize(name, db))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.datasets[name]
	delete(s.datasets, name)
	s.mu.Unlock()
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// acquireMineSlot claims a slot from the mining semaphore without
// blocking. On overload it writes the 429 backpressure response and
// returns false. The caller must invoke the release func when done.
func (s *Server) acquireMineSlot(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	select {
	case s.mineSem <- struct{}{}:
		return func() { <-s.mineSem }, true
	default:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeError(w, r, http.StatusTooManyRequests,
			fmt.Errorf("all %d mining slots busy; retry later", cap(s.mineSem)))
		return nil, false
	}
}

// Bounds on the derived Retry-After hint: at least one second (clients
// should never hot-loop), at most thirty (mining slots churn within the
// 60s default deadline; suggesting more than half a minute just parks
// well-behaved clients).
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 30
)

// retryAfterSeconds derives the 429 Retry-After hint from the observed
// mine-duration histogram: the median job duration is how long a busy
// slot typically takes to free up. With no completed jobs yet it falls
// back to the floor, and it never suggests more than the server's own
// deadline — a slot is guaranteed free by then.
func (s *Server) retryAfterSeconds() int {
	secs := int(math.Ceil(s.met.mineDur.Quantile(0.5)))
	if secs < minRetryAfterSeconds {
		secs = minRetryAfterSeconds
	}
	if max := int(s.cfg.MaxMineDuration / time.Second); max >= minRetryAfterSeconds && secs > max {
		secs = max
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

// mineContext derives the mining context for one job: the request
// context (cancelled when the client disconnects) bounded by the server
// ceiling, lowered further by a per-request timeout_ms if given.
func (s *Server) mineContext(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	d := s.cfg.MaxMineDuration
	if timeoutMillis > 0 {
		if req := time.Duration(timeoutMillis) * time.Millisecond; req < d {
			d = req
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// writeMineError maps a mining error to a response: context deadline →
// 504, client gone → nothing to send (logged), anything else → 400.
func (s *Server) writeMineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, r, http.StatusGatewayTimeout,
			errors.New("mining exceeded its deadline; lower min support, add constraints, or raise timeout_ms"))
	case errors.Is(err, context.Canceled):
		// The client went away; there is nobody to respond to.
		s.logger.Info("mine abandoned by client",
			"request_id", requestID(r), "method", r.Method, "path", r.URL.Path)
	default:
		s.writeError(w, r, http.StatusBadRequest, err)
	}
}

// MineRequest is the body of POST /datasets/{name}/mine.
type MineRequest struct {
	// Type is "temporal" (default) or "coincidence".
	Type string `json:"type,omitempty"`
	// MinSupport in (0,1], or MinCount >= 1 (one required).
	MinSupport float64 `json:"min_support,omitempty"`
	MinCount   int     `json:"min_count,omitempty"`
	// Optional constraints and modes.
	MaxIntervals       int    `json:"max_intervals,omitempty"`
	MaxElements        int    `json:"max_elements,omitempty"`
	MaxItemsPerElement int    `json:"max_items_per_element,omitempty"`
	MaxSpan            int64  `json:"max_span,omitempty"`
	MaxGap             int64  `json:"max_gap,omitempty"`
	TopK               int    `json:"top_k,omitempty"`
	Filter             string `json:"filter,omitempty"` // "", "closed", "maximal"
	// Resource bounds. TimeoutMillis lowers the server's hard deadline
	// for this job (it can never raise it); hitting it aborts with 504.
	// TimeBudgetMillis and MaxPatterns are soft budgets: the miner
	// stops early and returns what it found, flagged in stats.
	TimeoutMillis    int64 `json:"timeout_ms,omitempty"`
	TimeBudgetMillis int64 `json:"time_budget_ms,omitempty"`
	MaxPatterns      int   `json:"max_patterns,omitempty"`
	// Parallel requests worker goroutines for the search, capped at the
	// server's MaxParallel ceiling. Absent or 0 mines serially.
	Parallel int `json:"parallel,omitempty"`
}

// validate rejects malformed requests up front — before a mining slot
// is claimed — so garbage input can never occupy a slot or flow into
// core.Options unchecked (a negative TimeBudgetMillis used to do exactly
// that). Each violation names the offending JSON field.
func (req MineRequest) validate() error {
	if req.MinSupport < 0 || req.MinSupport > 1 {
		return fmt.Errorf("min_support %v outside [0,1]", req.MinSupport)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"min_count", int64(req.MinCount)},
		{"max_intervals", int64(req.MaxIntervals)},
		{"max_elements", int64(req.MaxElements)},
		{"max_items_per_element", int64(req.MaxItemsPerElement)},
		{"max_span", req.MaxSpan},
		{"max_gap", req.MaxGap},
		{"top_k", int64(req.TopK)},
		{"timeout_ms", req.TimeoutMillis},
		{"time_budget_ms", req.TimeBudgetMillis},
		{"max_patterns", int64(req.MaxPatterns)},
		{"parallel", int64(req.Parallel)},
	} {
		if f.v < 0 {
			return fmt.Errorf("%s must not be negative, got %d", f.name, f.v)
		}
	}
	return nil
}

// options converts the request to miner options, capping the requested
// parallelism at the server ceiling.
func (req MineRequest) options(maxParallel int) core.Options {
	par := req.Parallel
	if par > maxParallel {
		par = maxParallel
	}
	return core.Options{
		Parallel:           par,
		MinSupport:         req.MinSupport,
		MinCount:           req.MinCount,
		MaxIntervals:       req.MaxIntervals,
		MaxElements:        req.MaxElements,
		MaxItemsPerElement: req.MaxItemsPerElement,
		MaxSpan:            req.MaxSpan,
		MaxGap:             req.MaxGap,
		MaxPatterns:        req.MaxPatterns,
		TimeBudget:         time.Duration(req.TimeBudgetMillis) * time.Millisecond,
	}
}

// MinedPattern is one result row of the mine endpoint.
type MinedPattern struct {
	Support   int    `json:"support"`
	Pattern   string `json:"pattern"`
	Relations string `json:"relations,omitempty"`
}

// MineResponse is the body returned by the mine endpoint.
type MineResponse struct {
	Dataset  string         `json:"dataset"`
	Type     string         `json:"type"`
	Count    int            `json:"count"`
	Patterns []MinedPattern `json:"patterns"`
	Stats    MineStats      `json:"stats"`
}

// MineStats is the wire form of the search counters: the full pruning
// breakdown (P1 items_removed, P2 pair_pruned, P3 postfix_pruned, P4
// size_pruned) and, on parallel runs, the work-stealing scheduler's
// counters.
type MineStats struct {
	Sequences      int   `json:"sequences"`
	MinCount       int   `json:"min_count"`
	Nodes          int64 `json:"nodes"`
	Emitted        int64 `json:"emitted"`
	CandidateScans int64 `json:"candidate_scans"`
	ItemsRemoved   int   `json:"items_removed"`  // P1
	PairPruned     int64 `json:"pair_pruned"`    // P2
	PostfixPruned  int64 `json:"postfix_pruned"` // P3
	SizePruned     int64 `json:"size_pruned"`    // P4
	// Scheduler counters, present only on parallel runs.
	JobsSpawned   int64 `json:"jobs_spawned,omitempty"`
	StealsTaken   int64 `json:"steals_taken,omitempty"`
	MaxQueueDepth int64 `json:"max_queue_depth,omitempty"`
	// ElapsedMillis is the run's wall time in integer milliseconds.
	ElapsedMillis int64 `json:"elapsed_ms"`
	// Elapsed is the same duration as a Go duration string.
	//
	// Deprecated: the legacy "elapsed" key predates elapsed_ms and held
	// a duration string under a name that suggested a millisecond
	// integer. It is kept for wire compatibility; new clients should
	// read elapsed_ms. It will be dropped in a future API version.
	Elapsed string `json:"elapsed"`
	// Truncated marks a run cut short by a soft budget; TruncatedBy is
	// "max_patterns" or "time_budget".
	Truncated   bool   `json:"truncated,omitempty"`
	TruncatedBy string `json:"truncated_by,omitempty"`
}

// recordMineRun folds one finished mining job into the metrics: its
// outcome (by pattern type), truncation cause, duration, and the
// search's own counters. Called for every job that ran, successful or
// not.
func (s *Server) recordMineRun(ptype string, st core.Stats, dur time.Duration, err error) {
	outcome := "ok"
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		outcome = "deadline"
		s.met.mineDeadline.Inc()
	case errors.Is(err, context.Canceled):
		outcome = "canceled"
	case err != nil:
		outcome = "invalid"
	case st.Truncated:
		outcome = "truncated"
	}
	s.met.mineRuns.With(ptype, outcome).Inc()
	if st.Truncated && st.TruncatedBy != "" {
		s.met.mineTruncated.With(st.TruncatedBy).Inc()
	}
	s.met.mineDur.Observe(dur.Seconds())
	s.met.recordMinerStats(st)
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req MineRequest
	if err := s.decodeJSONBody(r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if err := req.validate(); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	db, ok := s.snapshot(name)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}

	ptype := req.Type
	if ptype == "" {
		ptype = "temporal"
	}
	switch ptype {
	case "temporal", "coincidence":
	default:
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("unknown type %q", ptype))
		return
	}
	switch req.Filter {
	case "", "closed", "maximal":
	default:
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("unknown filter %q", req.Filter))
		return
	}

	release, ok := s.acquireMineSlot(w, r)
	if !ok {
		return
	}
	defer release()
	if s.testMineHook != nil {
		s.testMineHook()
	}
	ctx, cancel := s.mineContext(r, req.TimeoutMillis)
	defer cancel()

	mineStart := time.Now()
	resp := MineResponse{Dataset: name, Type: ptype}
	switch ptype {
	case "temporal":
		var (
			rs  []pattern.TemporalResult
			st  core.Stats
			err error
		)
		if req.TopK > 0 {
			rs, st, err = core.MineTemporalTopKCtx(ctx, db, req.TopK, req.options(s.cfg.MaxParallel))
		} else {
			rs, st, err = core.MineTemporalCtx(ctx, db, req.options(s.cfg.MaxParallel))
		}
		if err == nil {
			switch req.Filter {
			case "closed":
				rs, err = core.FilterClosedCtx(ctx, rs)
			case "maximal":
				rs, err = core.FilterMaximalCtx(ctx, rs)
			}
		}
		s.recordMineRun(ptype, st, time.Since(mineStart), err)
		if err != nil {
			s.writeMineError(w, r, err)
			return
		}
		for _, pr := range rs {
			resp.Patterns = append(resp.Patterns, MinedPattern{
				Support:   pr.Support,
				Pattern:   pr.Pattern.String(),
				Relations: pr.Pattern.RelationSummary(),
			})
		}
		resp.Stats = wireStats(st)
	case "coincidence":
		var (
			rs  []pattern.CoincResult
			st  core.Stats
			err error
		)
		if req.TopK > 0 {
			rs, st, err = core.MineCoincidenceTopKCtx(ctx, db, req.TopK, req.options(s.cfg.MaxParallel))
		} else {
			rs, st, err = core.MineCoincidenceCtx(ctx, db, req.options(s.cfg.MaxParallel))
		}
		if err == nil {
			switch req.Filter {
			case "closed":
				rs, err = core.FilterClosedCoincCtx(ctx, rs)
			case "maximal":
				rs, err = core.FilterMaximalCoincCtx(ctx, rs)
			}
		}
		s.recordMineRun(ptype, st, time.Since(mineStart), err)
		if err != nil {
			s.writeMineError(w, r, err)
			return
		}
		for _, pr := range rs {
			resp.Patterns = append(resp.Patterns, MinedPattern{
				Support: pr.Support,
				Pattern: pr.Pattern.String(),
			})
		}
		resp.Stats = wireStats(st)
	}
	resp.Count = len(resp.Patterns)
	s.writeJSON(w, http.StatusOK, resp)
}

// RulesRequest is the body of POST /datasets/{name}/rules: mine
// temporal patterns, then derive association rules.
type RulesRequest struct {
	MinSupport    float64 `json:"min_support,omitempty"`
	MinCount      int     `json:"min_count,omitempty"`
	MaxIntervals  int     `json:"max_intervals,omitempty"`
	MinConfidence float64 `json:"min_confidence,omitempty"`
	MinLift       float64 `json:"min_lift,omitempty"`
	// TimeoutMillis lowers the server's hard mining deadline for this
	// job; see MineRequest.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// validate rejects malformed rules requests with the offending field
// named; see MineRequest.validate.
func (req RulesRequest) validate() error {
	if req.MinSupport < 0 || req.MinSupport > 1 {
		return fmt.Errorf("min_support %v outside [0,1]", req.MinSupport)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"min_count", float64(req.MinCount)},
		{"max_intervals", float64(req.MaxIntervals)},
		{"min_confidence", req.MinConfidence},
		{"min_lift", req.MinLift},
		{"timeout_ms", float64(req.TimeoutMillis)},
	} {
		if f.v < 0 {
			return fmt.Errorf("%s must not be negative, got %v", f.name, f.v)
		}
	}
	return nil
}

// WireRule is one derived rule on the wire.
type WireRule struct {
	Antecedent string  `json:"antecedent"`
	Full       string  `json:"full"`
	Relations  string  `json:"relations"`
	Support    int     `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req RulesRequest
	if err := s.decodeJSONBody(r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if err := req.validate(); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	db, ok := s.snapshot(name)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}

	release, ok := s.acquireMineSlot(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.mineContext(r, req.TimeoutMillis)
	defer cancel()

	opt := core.Options{
		MinSupport:   req.MinSupport,
		MinCount:     req.MinCount,
		MaxIntervals: req.MaxIntervals,
	}
	mineStart := time.Now()
	rs, st, err := core.MineTemporalCtx(ctx, db, opt)
	s.recordMineRun("rules", st, time.Since(mineStart), err)
	if err != nil {
		s.writeMineError(w, r, err)
		return
	}
	derived, err := rules.Derive(rs, db, rules.Options{
		MinConfidence: req.MinConfidence,
		MinLift:       req.MinLift,
	})
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	out := make([]WireRule, len(derived))
	for i, ru := range derived {
		out[i] = WireRule{
			Antecedent: ru.Antecedent.String(),
			Full:       ru.Full.String(),
			Relations:  ru.Full.RelationSummary(),
			Support:    ru.Support,
			Confidence: ru.Confidence,
			Lift:       ru.Lift,
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// snapshot returns a deep copy of the named dataset so mining runs
// without holding the lock (appends may proceed concurrently).
func (s *Server) snapshot(name string) (*interval.Database, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	db, ok := s.datasets[name]
	if !ok {
		return nil, false
	}
	return db.Clone(), true
}

// decodeJSONBody parses a JSON request body, tolerating an empty body
// (all-default request).
func (s *Server) decodeJSONBody(r *http.Request, v any) error {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body = defaults
		}
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

func wireStats(st core.Stats) MineStats {
	return MineStats{
		Sequences:      st.Sequences,
		MinCount:       st.MinCount,
		Nodes:          st.Nodes,
		Emitted:        st.Emitted,
		CandidateScans: st.CandidateScans,
		ItemsRemoved:   st.ItemsRemoved,
		PairPruned:     st.PairPruned,
		PostfixPruned:  st.PostfixPruned,
		SizePruned:     st.SizePruned,
		JobsSpawned:    st.JobsSpawned,
		StealsTaken:    st.StealsTaken,
		MaxQueueDepth:  st.MaxQueueDepth,
		ElapsedMillis:  st.Elapsed.Milliseconds(),
		Elapsed:        st.Elapsed.String(),
		Truncated:      st.Truncated,
		TruncatedBy:    st.TruncatedBy,
	}
}
