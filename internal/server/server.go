// Package server exposes the miner as an HTTP service: named in-memory
// datasets with upload/append endpoints and a mining endpoint per
// pattern type. It is the integration surface a downstream system would
// deploy (cmd/tpmd wraps it); everything is stdlib net/http.
//
// # API (v1)
//
// All routes are mounted under /v1; pre-existing routes keep
// unversioned paths as deprecated aliases (they behave identically,
// carry a "Deprecation: true" header and a Link to their /v1
// successor, and keep the legacy "elapsed" stats field that /v1
// drops), while routes added after the v1 cut are v1-only. The table
// below is also served machine-readably at GET /v1/routes. JSON
// in/out unless noted:
//
//	GET    /v1/healthz                      liveness (200 even when degraded)
//	GET    /v1/readyz                       readiness (503 while degraded)
//	GET    /v1/metrics                      Prometheus text exposition
//	GET    /v1/routes                       this table, machine-readable
//	GET    /v1/datasets                     list datasets with summaries
//	PUT    /v1/datasets/{name}              create/replace; body is csv,
//	                                        lines, or json per Content-Type
//	GET    /v1/datasets/{name}              dataset summary (ETag, 304)
//	DELETE /v1/datasets/{name}              remove
//	POST   /v1/datasets/{name}/append       append sequences (same formats)
//	POST   /v1/datasets/{name}/events       NDJSON event stream; batched
//	                                        into versioned appends; 202 ack
//	POST   /v1/datasets/{name}/mine         body: MineSpec (mode temporal|
//	                                        coincidence|rules, optional
//	                                        window); patterns or rules with
//	                                        supports (ETag, 304)
//	POST   /v1/datasets/{name}/rules        deprecated alias for mine with
//	                                        mode "rules"
//	POST   /v1/jobs                         create a continuous mining job
//	GET    /v1/jobs                         list jobs
//	GET    /v1/jobs/{id}                    job status
//	DELETE /v1/jobs/{id}                    delete job (journaled)
//	GET    /v1/jobs/{id}/result             latest stored result (ETag, 304)
//	GET    /v1/jobs/{id}/events             SSE delta stream (Last-Event-ID
//	                                        resume, heartbeats)
//
// Errors use one JSON envelope on every route and status:
// {"error":{"code","message","field"},"request_id":"..."} — code is a
// stable machine-readable class, field names the offending request field
// on validation errors.
//
// # Result caching and request coalescing
//
// Mining is deterministic for a fixed (dataset, options) pair, so
// complete mine/rules results are memoized in a byte-budgeted LRU
// (internal/cache) keyed by (dataset name, dataset version, canonical
// options). Every dataset mutation (PUT, append, DELETE) bumps the
// dataset's version, which changes the key — invalidation is exact, not
// TTL-guessed. Concurrent identical requests collapse into a single
// miner run via a single-flight group; the one result fans out to every
// waiter. Responses expose how they were served: a "cache" field
// (hit|miss|coalesced) plus an X-Cache header, and a strong ETag derived
// from (dataset, version, options) that clients may return via
// If-None-Match for a 304 without any mining. Truncated results and
// failed runs are never cached and carry no ETag.
//
// # Operational hardening
//
// Every request carries a request ID (client-supplied X-Request-ID or
// generated), echoed in the response header, error bodies, and logs. A
// panic anywhere below the middleware becomes a structured 500 instead
// of a dropped connection. Mining work is bounded three ways: a
// semaphore caps concurrent mining jobs with deadline-aware admission
// (a request parks only while a slot could still free up before its
// deadline and is shed with 429 + Retry-After otherwise), every job
// runs under a context deadline (server ceiling, optionally lowered per
// request via timeout_ms) and aborts with 504, and requests may trade
// completeness for latency with time_budget_ms / max_patterns, which
// return partial results flagged truncated. Oversized bodies are
// rejected with 413. Request fields are validated up front: negative
// budgets, limits, or worker counts are rejected with 400 before a
// mining slot is claimed.
//
// # Graceful degradation
//
// With persistence enabled, journal I/O runs behind a circuit breaker
// (internal/resilience): repeated persistence failures trip it open and
// the server degrades to read-only — mutations fail fast with 503,
// stable code "degraded", and a Retry-After hint, while reads, cached
// results, and fresh mines over resident datasets keep serving. A
// background prober periodically asks the store to prove itself again
// (persist.Store.Probe); the first success closes the breaker and
// restores read-write automatically. GET /v1/healthz stays 200
// throughout (the process is alive; restarting would not help) while
// GET /v1/readyz turns 503 so load balancers can steer writes away.
//
// # Observability
//
// The server logs structured records via log/slog (one "request" record
// per request with route, status, duration, and request ID) and exposes
// a Prometheus registry at GET /v1/metrics: per-route request counters
// and latency histograms (labelled by API version), in-flight and
// backpressure gauges, cache hit/miss/coalesced/eviction counters with a
// resident-bytes gauge, mining-run outcomes, and the miner's own
// node/scan/P1–P4-pruning/work-stealing counters. The Retry-After hint
// on 429 responses is derived from the observed mine-duration histogram.
// See internal/server/metrics.go for the metric inventory.
//
// # Sharded mining
//
// Each stored dataset carries a size-balanced partition of its
// sequences into disjoint shards (internal/shard), computed at mutation
// time so shard IDs stay stable across mines. When a dataset holds at
// least two shards, mine and rules requests fan out through the
// scatter-gather coordinator: every shard runs the dense-index miner at
// a relaxed partition-aware support bound, and the coordinator merges
// per-shard supports exactly, so results — and therefore cache keys,
// ETags, and response bytes — are identical to serial mining. The
// -shards / -shard-min-seqs flags on cmd/tpmd (Config.Shards /
// Config.ShardMinSeqs here) size the partition; tpmd_shard_* metrics
// expose fan-outs, per-shard durations, and partition skew.
//
// # Streaming and continuous jobs
//
// POST /v1/datasets/{name}/events ingests NDJSON event lines, batching
// them into ordinary versioned appends (flush on count or age —
// Config.IngestFlushCount / Config.IngestFlushAge), so cache
// invalidation, ETags, persistence, and sharding all see ingest as
// appends. A job (internal/jobs) watches a dataset and re-mines it
// through the same cached, sharded, single-flighted path as the mine
// endpoint whenever the version moves, publishing the delta between
// consecutive results over SSE at GET /v1/jobs/{id}/events; clients
// resume with Last-Event-ID and cumulative delta application is
// byte-identical to a fresh batch mine. Jobs and their latest results
// journal through the same store (and circuit breaker) as datasets,
// surviving restarts. See DESIGN.md "Continuous mining".
package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tpminer/internal/api"
	"tpminer/internal/cache"
	"tpminer/internal/core"
	"tpminer/internal/dataio"
	"tpminer/internal/interval"
	"tpminer/internal/jobs"
	"tpminer/internal/obs"
	"tpminer/internal/pattern"
	"tpminer/internal/persist"
	"tpminer/internal/remote"
	"tpminer/internal/rules"
	"tpminer/internal/shard"
)

// Defaults for Config zero values.
const (
	// DefaultMaxBodyBytes caps uploads and requests (64 MiB).
	DefaultMaxBodyBytes = 64 << 20
	// DefaultMaxMineDuration is the server-side ceiling on one mining
	// job.
	DefaultMaxMineDuration = 60 * time.Second
	// DefaultCacheBudgetBytes is the default resident-byte budget of the
	// mine-result cache (128 MiB).
	DefaultCacheBudgetBytes = 128 << 20
	// DefaultShardMinSeqs is the minimum average sequences per shard: a
	// dataset is only split while every shard would keep at least this
	// many sequences, so tiny datasets never pay fan-out overhead.
	DefaultShardMinSeqs = 16
	// DefaultIngestFlushCount is how many buffered ingest events force a
	// versioned append.
	DefaultIngestFlushCount = 512
	// DefaultIngestFlushAge is how long a partial ingest batch may sit
	// buffered before it is flushed anyway.
	DefaultIngestFlushAge = 200 * time.Millisecond
	// DefaultSSEHeartbeat is the idle-comment cadence on job event
	// streams, keeping intermediaries from timing out quiet connections.
	DefaultSSEHeartbeat = 15 * time.Second
)

// Config bounds the server's resource usage. The zero value selects
// sensible defaults.
type Config struct {
	// MaxConcurrentMines caps mining/rules jobs running at once; excess
	// requests are rejected with 429 Too Many Requests and a
	// Retry-After header. 0 means GOMAXPROCS.
	MaxConcurrentMines int

	// MaxMineDuration is the hard server-side deadline for one mining
	// job. Requests may lower (never raise) it via timeout_ms. A job
	// that hits the deadline is aborted with 504. 0 means
	// DefaultMaxMineDuration.
	MaxMineDuration time.Duration

	// MaxBodyBytes caps request bodies; larger bodies are rejected with
	// 413. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// MaxParallel is the ceiling on per-request mining parallelism:
	// requests may ask for worker goroutines via the mine request's
	// "parallel" field, capped at this value — like timeout_ms, a
	// request can spend less than the ceiling, never more. 0 means
	// GOMAXPROCS.
	MaxParallel int

	// CacheBudgetBytes caps the resident bytes of memoized mine/rules
	// results. 0 means DefaultCacheBudgetBytes; a negative value
	// disables result caching and single-flight deduplication entirely.
	CacheBudgetBytes int64

	// Persist, when non-nil, makes datasets durable: the server seeds
	// its store from the recovered state (restoring the version counter
	// so cache keys and ETags never repeat across restarts) and commits
	// every mutation to the write-ahead log before making it visible.
	// The caller owns the store's lifecycle (open it before the server,
	// Close it after shutdown to flush and cut a final snapshot).
	Persist *persist.Store

	// BreakerFailureThreshold is the weighted failure score at which the
	// persistence circuit breaker trips into read-only degraded mode
	// (permanent failures such as ENOSPC count double). 0 means
	// resilience.DefaultBreakerThreshold. Only meaningful with Persist.
	BreakerFailureThreshold int

	// RecoveryProbeInterval is how often, while degraded, the background
	// prober asks the persist store to prove it can write again; the
	// first success restores read-write automatically. 0 means 1s.
	RecoveryProbeInterval time.Duration

	// Shards is the target number of mining shards per dataset. Datasets
	// holding at least two shards route mine/rules requests through the
	// scatter-gather coordinator (internal/shard); results, cache keys,
	// and ETags are identical to unsharded mining. 0 means GOMAXPROCS;
	// 1 disables sharding.
	Shards int

	// ShardMinSeqs floors the average sequences per shard, capping the
	// effective shard count on small datasets. 0 means
	// DefaultShardMinSeqs.
	ShardMinSeqs int

	// IngestFlushCount is the batch size of the streaming ingest route:
	// buffered events become a versioned append once this many are
	// pending. 0 means DefaultIngestFlushCount.
	IngestFlushCount int

	// IngestFlushAge bounds how long a partial ingest batch may wait for
	// more events before it is appended anyway. 0 means
	// DefaultIngestFlushAge.
	IngestFlushAge time.Duration

	// JobDebounce is the default quiet period a continuous-mining job
	// waits after a dataset change before re-mining (jobs may set their
	// own debounce_ms). 0 means jobs.DefaultDebounce.
	JobDebounce time.Duration

	// SSESubscriberQueue is the per-subscriber event queue capacity on
	// job streams; a subscriber that falls this far behind is dropped and
	// must resume via Last-Event-ID. 0 means jobs.DefaultQueueSize.
	SSESubscriberQueue int

	// SSEHeartbeat is the idle-comment cadence on job event streams. 0
	// means DefaultSSEHeartbeat.
	SSEHeartbeat time.Duration

	// Workers lists remote worker base URLs ("http://host:9090"). When
	// set, whole-dataset mines of multi-shard datasets scatter their
	// shards across these processes (with exact local failover); empty
	// keeps all mining in-process.
	Workers []string

	// WorkerProbeInterval is the worker health-probe cadence. 0 means
	// remote.DefaultProbeInterval; negative disables background probing
	// (workers are still demoted on failed RPCs).
	WorkerProbeInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentMines <= 0 {
		c.MaxConcurrentMines = runtime.GOMAXPROCS(0)
	}
	if c.MaxMineDuration <= 0 {
		c.MaxMineDuration = DefaultMaxMineDuration
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = runtime.GOMAXPROCS(0)
	}
	if c.CacheBudgetBytes == 0 {
		c.CacheBudgetBytes = DefaultCacheBudgetBytes
	}
	if c.RecoveryProbeInterval <= 0 {
		c.RecoveryProbeInterval = time.Second
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.ShardMinSeqs <= 0 {
		c.ShardMinSeqs = DefaultShardMinSeqs
	}
	if c.IngestFlushCount <= 0 {
		c.IngestFlushCount = DefaultIngestFlushCount
	}
	if c.IngestFlushAge <= 0 {
		c.IngestFlushAge = DefaultIngestFlushAge
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = DefaultSSEHeartbeat
	}
	return c
}

// Server is the HTTP mining service. Create with New or NewWithConfig,
// mount via Handler.
type Server struct {
	store  *datasetStore
	logger *slog.Logger
	cfg    Config

	// results memoizes complete mine/rules responses and coalesces
	// concurrent identical requests. nil when disabled by config.
	results *cache.Cache

	// reg and met are the server's metrics registry (served at
	// GET /v1/metrics) and the typed handles into it.
	reg *obs.Registry
	met *serverMetrics

	// journal wraps the persist store's journal with the circuit
	// breaker and background recovery probe. nil without persistence.
	journal *resilientJournal

	// jobMgr owns the continuous-mining jobs (/v1/jobs); it mines
	// through the server's cached path and journals through the store.
	jobMgr *jobs.Manager

	// ingest buffers streaming NDJSON events per dataset and flushes
	// them as versioned appends (by count or by age).
	ingest *ingestPool

	// pool owns the remote worker fleet (registry, push tracker, health
	// probes) when cfg.Workers is set. nil means all-local mining.
	pool *remote.Pool

	// mineSem bounds concurrent mining jobs. Admission is deadline-
	// aware: a request parks only while a slot could still free up
	// before its deadline, and is shed with 429 otherwise.
	mineSem chan struct{}
	// reqSeq numbers generated request IDs.
	reqSeq atomic.Uint64

	// testMineHook, when set by a test, runs inside the mine compute
	// after the semaphore slot is claimed — the hook point for failure
	// injection (panics mid-job) and for holding a mine open.
	testMineHook func()
}

// New creates an empty server with default resource bounds. logger may
// be nil (logging disabled).
func New(logger *slog.Logger) *Server {
	return NewWithConfig(logger, Config{})
}

// NewWithConfig creates an empty server with explicit resource bounds.
// logger may be nil (logging disabled).
func NewWithConfig(logger *slog.Logger, cfg Config) *Server {
	if logger == nil {
		logger = obs.Discard()
	}
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	met := newServerMetrics(reg)
	s := &Server{
		store:   newDatasetStore(),
		logger:  logger,
		cfg:     cfg,
		reg:     reg,
		met:     met,
		mineSem: make(chan struct{}, cfg.MaxConcurrentMines),
	}
	// Shard config must land before persistence seeding so recovered
	// datasets are partitioned on load.
	s.store.shards = cfg.Shards
	s.store.shardMinSeqs = cfg.ShardMinSeqs
	s.store.onPartition = func(p *shard.Partition) {
		if p != nil {
			met.shard.skew.Set(p.Skew())
		}
	}
	if cfg.CacheBudgetBytes > 0 {
		s.results = cache.New(cfg.CacheBudgetBytes, met.cache)
	}
	if cfg.Persist != nil {
		// Seed before attaching the journal: recovered datasets are
		// already durable and must not be re-logged.
		state, verSeq := cfg.Persist.Recovered()
		for name, ds := range state {
			s.store.load(name, ds.DB, ds.Version)
		}
		s.store.setVersionFloor(verSeq)
		s.journal = newResilientJournal(cfg.Persist, cfg.BreakerFailureThreshold,
			cfg.RecoveryProbeInterval, met.resilience, logger)
		s.store.journal = s.journal
		cfg.Persist.SetMetrics(met.persist)
		if s.results != nil {
			s.results.SetDegraded(s.journal.degraded)
		}
	}
	if len(cfg.Workers) > 0 {
		s.pool = remote.NewPool(cfg.Workers, remote.PoolConfig{
			Registry: remote.RegistryConfig{ProbeInterval: cfg.WorkerProbeInterval},
			Logger:   logger,
			Metrics:  met.remote,
		})
	}
	s.ingest = &ingestPool{s: s, batchers: make(map[string]*ingestBatcher)}
	jm, err := jobs.New(jobs.Config{
		Runner:    jobRunner{s},
		Journal:   jobJournal{s},
		Logger:    logger,
		Metrics:   met.jobs,
		Debounce:  cfg.JobDebounce,
		QueueSize: cfg.SSESubscriberQueue,
	})
	if err != nil { // unreachable: runner and journal are always set
		panic("server: jobs manager: " + err.Error())
	}
	s.jobMgr = jm
	if cfg.Persist != nil {
		// Restore journaled jobs after datasets, so the catch-up run each
		// restored job arms can see its dataset.
		recovered := cfg.Persist.RecoveredJobs()
		stored := make([]jobs.StoredJob, 0, len(recovered))
		for id, js := range recovered {
			stored = append(stored, jobs.StoredJob{ID: id, Spec: js.Spec, Result: js.Result})
		}
		s.jobMgr.Restore(stored)
	}
	return s
}

// Close stops the server's background work: pending ingest batches are
// flushed (acknowledged events must not vanish on a graceful shutdown),
// every job run loop stops and its subscribers disconnect, and the
// recovery prober exits. It does not close the persist store — the
// caller owns that lifecycle. Safe to call more than once.
func (s *Server) Close() {
	if s.ingest != nil {
		s.ingest.close()
	}
	if s.jobMgr != nil {
		s.jobMgr.Close()
	}
	if s.journal != nil {
		s.journal.close()
	}
	if s.pool != nil {
		s.pool.Close()
	}
}

// degraded reports whether persistence is currently unavailable and the
// server is refusing mutations (read-only degraded mode).
func (s *Server) degraded() bool {
	return s.journal != nil && s.journal.degraded()
}

// Registry returns the server's metrics registry, the same one Handler
// serves at GET /v1/metrics. Embedders may register their own metrics
// on it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// RouteInfo describes one route of the HTTP surface. The route table is
// the single source of truth: the mux is built from it, GET /v1/routes
// serves it verbatim as the machine-readable API contract, and the
// README route-contract test asserts against that endpoint.
type RouteInfo struct {
	Method  string `json:"method"`
	Pattern string `json:"pattern"` // path under /v1
	Summary string `json:"summary"`
	// V1Only marks routes served only under /v1, with no legacy
	// unversioned alias (everything added after the /v1 cut).
	V1Only bool `json:"v1_only,omitempty"`
	// Deprecated marks a route kept for compatibility; Successor names
	// where new clients should go instead.
	Deprecated bool   `json:"deprecated,omitempty"`
	Successor  string `json:"successor,omitempty"`
}

var routeTable = []RouteInfo{
	{Method: "GET", Pattern: "/healthz", Summary: "liveness probe (200 even while degraded)"},
	{Method: "GET", Pattern: "/readyz", Summary: "readiness probe (503 while persistence is degraded)"},
	{Method: "GET", Pattern: "/metrics", Summary: "Prometheus text exposition"},
	{Method: "GET", Pattern: "/routes", Summary: "this machine-readable route table", V1Only: true},
	{Method: "GET", Pattern: "/datasets", Summary: "list datasets with summaries"},
	{Method: "PUT", Pattern: "/datasets/{name}", Summary: "create or replace a dataset (csv, lines, or json body)"},
	{Method: "GET", Pattern: "/datasets/{name}", Summary: "dataset summary (ETag, 304)"},
	{Method: "DELETE", Pattern: "/datasets/{name}", Summary: "delete a dataset"},
	{Method: "POST", Pattern: "/datasets/{name}/append", Summary: "append sequences (same body formats as PUT)"},
	{Method: "POST", Pattern: "/datasets/{name}/events", Summary: "stream NDJSON event intervals; batched into versioned appends", V1Only: true},
	{Method: "GET", Pattern: "/datasets/{name}/shards", Summary: "shard layout: per-shard load, skew, assigned worker, push state", V1Only: true},
	{Method: "POST", Pattern: "/datasets/{name}/mine", Summary: "mine patterns; mode temporal, coincidence, or rules (ETag, 304)"},
	{Method: "POST", Pattern: "/datasets/{name}/rules", Summary: "mine association rules", Deprecated: true, Successor: "POST /v1/datasets/{name}/mine"},
	{Method: "POST", Pattern: "/jobs", Summary: "create a continuous-mining job", V1Only: true},
	{Method: "GET", Pattern: "/jobs", Summary: "list jobs", V1Only: true},
	{Method: "GET", Pattern: "/jobs/{id}", Summary: "job status", V1Only: true},
	{Method: "DELETE", Pattern: "/jobs/{id}", Summary: "delete a job", V1Only: true},
	{Method: "GET", Pattern: "/jobs/{id}/result", Summary: "latest job result (ETag, 304)", V1Only: true},
	{Method: "GET", Pattern: "/jobs/{id}/events", Summary: "job delta stream (Server-Sent Events, Last-Event-ID resume)", V1Only: true},
}

// Routes returns the canonical route list as "METHOD /v1/path" strings,
// one per served route. Tooling walks it.
func Routes() []string {
	out := make([]string, len(routeTable))
	for i, rt := range routeTable {
		out[i] = rt.Method + " /v1" + rt.Pattern
	}
	return out
}

// RouteTable returns a copy of the route metadata behind GET /v1/routes.
func RouteTable() []RouteInfo {
	out := make([]RouteInfo, len(routeTable))
	copy(out, routeTable)
	return out
}

// handleRoutes serves the machine-readable API contract.
func (s *Server) handleRoutes(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"routes": routeTable})
}

// Handler returns the route table — every route under /v1 plus (for
// pre-/v1 routes) its legacy unversioned alias — wrapped in the
// request-ID and panic-recovery middleware.
func (s *Server) Handler() http.Handler {
	handlers := map[string]http.HandlerFunc{
		"GET /healthz":                 s.handleHealthz,
		"GET /readyz":                  s.handleReadyz,
		"GET /metrics":                 s.reg.Handler().ServeHTTP,
		"GET /routes":                  s.handleRoutes,
		"GET /datasets":                s.handleList,
		"PUT /datasets/{name}":         s.handlePut,
		"GET /datasets/{name}":         s.handleGet,
		"DELETE /datasets/{name}":      s.handleDelete,
		"POST /datasets/{name}/append": s.handleAppend,
		"POST /datasets/{name}/events": s.handleIngest,
		"GET /datasets/{name}/shards":  s.handleShards,
		"POST /datasets/{name}/mine":   s.handleMine,
		"POST /datasets/{name}/rules":  s.handleRules,
		"POST /jobs":                   s.handleJobCreate,
		"GET /jobs":                    s.handleJobList,
		"GET /jobs/{id}":               s.handleJobGet,
		"DELETE /jobs/{id}":            s.handleJobDelete,
		"GET /jobs/{id}/result":        s.handleJobResult,
		"GET /jobs/{id}/events":        s.handleJobEvents,
	}
	mux := http.NewServeMux()
	for _, rt := range routeTable {
		key := rt.Method + " " + rt.Pattern
		h, ok := handlers[key]
		if !ok {
			panic("server: route without handler: " + key)
		}
		v1h := h
		if rt.Deprecated {
			v1h = deprecatedRoute(h, rt.Successor)
		}
		mux.HandleFunc(rt.Method+" /v1"+rt.Pattern, v1h)
		if !rt.V1Only {
			mux.HandleFunc(key, deprecated(h))
		}
	}
	return s.middleware(mux)
}

// deprecated wraps a handler for a legacy unversioned alias: identical
// behaviour plus a Deprecation header and a Link to the /v1 successor.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+r.URL.Path+`>; rel="successor-version"`)
		h(w, r)
	}
}

// deprecatedRoute wraps a route that is deprecated even on /v1 (the
// rules route, superseded by mode=rules on the mine route): identical
// behaviour plus the Deprecation header and a Link to the successor.
func deprecatedRoute(h http.HandlerFunc, successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		if successor != "" {
			if i := strings.IndexByte(successor, ' '); i >= 0 {
				w.Header().Set("Link", "<"+successor[i+1:]+`>; rel="successor-version"`)
			}
		}
		h(w, r)
	}
}

// isV1 reports whether the request came in through a /v1 route (as
// opposed to a legacy alias).
func isV1(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v1/") }

// ctxKey keys middleware values in the request context.
type ctxKey int

const requestIDKey ctxKey = iota

// requestID returns the request's ID, or "" outside the middleware.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// middleware assigns every request an ID (honoring a client-supplied
// X-Request-ID), converts handler panics into structured 500s, and
// records the per-request metrics and the structured access log. The ID
// is set on the response header before the handler runs, so even error
// and panic responses carry it.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.met.inFlight.Inc()
		defer func() {
			if p := recover(); p != nil {
				s.logger.Error("panic recovered",
					"request_id", id, "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				// If the handler already started the response this
				// write is a no-op on the status; the log above is the
				// record either way.
				s.writeJSON(sw, http.StatusInternalServerError, ErrorEnvelope{
					Error:     ErrorDetail{Code: "internal", Message: "internal server error"},
					RequestID: id,
				})
			}
			s.met.inFlight.Dec()
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			route := routeLabel(r)
			api := apiLabel(r)
			dur := time.Since(start)
			s.met.reqTotal.With(route, api, statusClass(status)).Inc()
			s.met.reqDur.With(route, api).Observe(dur.Seconds())
			s.met.reqBytes.With(route, api).Add(uint64(sw.bytes))
			if status == http.StatusTooManyRequests {
				s.met.throttled.Inc()
			}
			s.logger.Info("request",
				"request_id", id, "method", r.Method, "route", route, "api", api,
				"path", r.URL.Path, "status", status,
				"duration_ms", dur.Milliseconds(), "bytes", sw.bytes)
		}()
		next.ServeHTTP(sw, r)
	})
}

// ErrorDetail is the error object of the uniform JSON error envelope.
type ErrorDetail struct {
	// Code is a stable, machine-readable error class: invalid_request,
	// not_found, payload_too_large, rate_limited, deadline_exceeded, or
	// internal.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Field names the offending JSON request field on validation errors.
	Field string `json:"field,omitempty"`
}

// ErrorEnvelope is the body of every non-2xx JSON response, on every
// route and API version.
type ErrorEnvelope struct {
	Error     ErrorDetail `json:"error"`
	RequestID string      `json:"request_id,omitempty"`
}

// codeForStatus maps a response status to the envelope's error code.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusUnsupportedMediaType:
		return "unsupported_media_type"
	case http.StatusConflict:
		return "conflict"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	case http.StatusServiceUnavailable:
		return "degraded"
	default:
		if status >= 500 {
			return "internal"
		}
		return "invalid_request"
	}
}

// fieldError is an error attributable to one JSON request field; the
// error envelope surfaces the name in error.field.
type fieldError struct {
	field string
	msg   string
}

func (e *fieldError) Error() string { return e.msg }

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Error("encode response failed", "error", err)
	}
}

// writeError sends the structured error envelope. A body-size overflow
// (http.MaxBytesError anywhere in the chain) overrides the caller's
// status with 413 so clients can tell "too large" from "malformed".
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
		err = fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
	}
	s.writeErrorCode(w, r, status, codeForStatus(status), err)
}

// writeErrorCode is writeError with an explicit envelope code, for the
// few statuses whose code is not a pure function of the status (500
// splits into internal vs persist_unavailable).
func (s *Server) writeErrorCode(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	field := ""
	var fe *fieldError
	var afe *api.FieldError
	switch {
	case errors.As(err, &fe):
		field = fe.field
	case errors.As(err, &afe):
		field = afe.Field
	}
	id := requestID(r)
	if status >= 500 || status == http.StatusTooManyRequests {
		s.logger.Warn("request failed",
			"request_id", id, "method", r.Method, "path", r.URL.Path,
			"status", status, "code", code, "error", err.Error())
	}
	s.writeJSON(w, status, ErrorEnvelope{
		Error:     ErrorDetail{Code: code, Message: err.Error(), Field: field},
		RequestID: id,
	})
}

// writeStoreError maps a failed store mutation to a response:
//
//   - breaker open → 503, stable code "degraded", Retry-After derived
//     from the recovery-probe cadence — the client should retry, later,
//     here;
//   - any other journal failure → 500, stable code "persist_unavailable"
//     — the mutation was vetoed to protect durability;
//   - anything else → plain 500 "internal".
func (s *Server) writeStoreError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, errDegraded) {
		w.Header().Set("Retry-After", strconv.Itoa(s.degradedRetryAfterSeconds()))
		s.writeErrorCode(w, r, http.StatusServiceUnavailable, "degraded",
			errors.New("persistence degraded: mutations are temporarily rejected while the store recovers; reads and mining remain available"))
		return
	}
	var je *journalError
	if errors.As(err, &je) {
		s.writeErrorCode(w, r, http.StatusInternalServerError, "persist_unavailable", err)
		return
	}
	s.writeError(w, r, http.StatusInternalServerError, err)
}

// degradedRetryAfterSeconds derives the 503 Retry-After hint while
// degraded: recovery needs one probe cycle (RecoveryProbeInterval) plus
// roughly one snapshot write to succeed, clamped to the same bounds as
// the 429 hint.
func (s *Server) degradedRetryAfterSeconds() int {
	est := s.cfg.RecoveryProbeInterval.Seconds() + s.met.persist.snapDur.Quantile(0.5)
	secs := int(math.Ceil(est))
	if secs < minRetryAfterSeconds {
		secs = minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

// mode names the server's current write capability for health bodies.
func (s *Server) mode() string {
	if s.degraded() {
		return "read_only"
	}
	return "read_write"
}

// handleHealthz is liveness: 200 as long as the process serves HTTP,
// even while degraded — restarting the process would not help, so
// orchestrators must not kill it over disk trouble. The body carries the
// current mode for humans and dashboards.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": s.mode()})
}

// handleReadyz is readiness: 503 while persistence is degraded so load
// balancers can steer mutation traffic away (reads still work; the
// Retry-After hint says when to re-check), 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ready", "mode": "read_write"}
	if s.pool != nil {
		// Worker health is informational: mining fails over to local
		// computation, so a thin (or empty) pool never flips readiness.
		body["workers"] = s.pool.Status()
	}
	if s.degraded() {
		w.Header().Set("Retry-After", strconv.Itoa(s.degradedRetryAfterSeconds()))
		body["status"], body["mode"] = "degraded", "read_only"
		s.writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	s.writeJSON(w, http.StatusOK, body)
}

// DatasetSummary is the wire form of GET /v1/datasets and
// GET /v1/datasets/{name}.
type DatasetSummary struct {
	Name      string  `json:"name"`
	Sequences int     `json:"sequences"`
	Intervals int     `json:"intervals"`
	Symbols   int     `json:"symbols"`
	AvgSeqLen float64 `json:"avg_seq_len"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	out := s.store.list()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	s.writeJSON(w, http.StatusOK, out)
}

// ShardInfo is one shard's row in the GET /v1/datasets/{name}/shards
// debug view: its slice of the partition and, under a worker pool, the
// worker the next mine would send it to and whether that worker already
// holds this dataset version's payload.
type ShardInfo struct {
	ID        int    `json:"id"`
	Sequences int    `json:"sequences"`
	Load      int64  `json:"load"`
	Worker    string `json:"worker"`
	Pushed    bool   `json:"pushed,omitempty"`
}

// ShardLayout is the wire form of GET /v1/datasets/{name}/shards.
type ShardLayout struct {
	Dataset string      `json:"dataset"`
	Version uint64      `json:"version"`
	Skew    float64     `json:"skew"`
	Shards  []ShardInfo `json:"shards"`
	// Workers reports pool membership; absent without -workers.
	Workers *remote.PoolStatus `json:"workers,omitempty"`
}

// handleShards serves the partition layout of one dataset — the
// operator's view for answering "why is this mine slow / which machine
// owns shard 3 / has the new version been pushed yet".
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	_, part, ver, ok := s.store.snapshot(name)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	out := ShardLayout{Dataset: name, Version: ver}
	if part != nil {
		out.Skew = part.Skew()
		var placements []remote.ShardPlacement
		if s.pool != nil && part.NumShards() >= 2 {
			// Single-shard datasets mine serially and never fan out, so
			// their one shard is always "local" regardless of the pool.
			placements = s.pool.Placements(name, ver, part.NumShards())
		}
		for i := 0; i < part.NumShards(); i++ {
			si := ShardInfo{ID: i, Sequences: len(part.Seqs(i)), Load: part.Load(i), Worker: "local"}
			if placements != nil {
				si.Worker = placements[i].Worker
				si.Pushed = placements[i].Pushed
			}
			out.Shards = append(out.Shards, si)
		}
	}
	if s.pool != nil {
		st := s.pool.Status()
		out.Workers = &st
	}
	s.writeJSON(w, http.StatusOK, out)
}

// mediaTypeError marks an unsupported Content-Type, mapped to 415 with
// the stable "unsupported_media_type" code — distinct from a malformed
// body (400), and detected before the body is read.
type mediaTypeError struct{ msg string }

func (e *mediaTypeError) Error() string { return e.msg }

// contentType extracts the request's media type, stripping parameters.
func contentType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct)
}

// requireContentType enforces an endpoint's media type before any of the
// body is read, rejecting mismatches with 415 and the uniform error
// envelope. An absent Content-Type is accepted — the decoder applies the
// endpoint's default.
func (s *Server) requireContentType(w http.ResponseWriter, r *http.Request, want ...string) bool {
	ct := contentType(r)
	if ct == "" {
		return true
	}
	for _, m := range want {
		if strings.EqualFold(ct, m) {
			return true
		}
	}
	s.writeError(w, r, http.StatusUnsupportedMediaType,
		&mediaTypeError{fmt.Sprintf("unsupported Content-Type %q (want %s)", ct, strings.Join(want, " or "))})
	return false
}

// readDatasetBody parses an uploaded dataset according to Content-Type:
// text/csv, application/json, or text/plain (line format; the default).
func (s *Server) readDatasetBody(r *http.Request) (*interval.Database, error) {
	ct := contentType(r)
	switch ct {
	case "text/csv", "application/json", "", "text/plain":
	default:
		// Reject before reading any of the body.
		return nil, &mediaTypeError{fmt.Sprintf(
			"unsupported Content-Type %q (want text/csv, application/json, or text/plain)", ct)}
	}
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	switch ct {
	case "text/csv":
		return dataio.ReadCSV(body)
	case "application/json":
		return dataio.ReadJSON(body)
	default:
		return dataio.ReadLines(body)
	}
}

// writeBodyError maps a failed body parse: unsupported media type → 415,
// anything else (malformed payload, overflow) → 400/413 via writeError.
func (s *Server) writeBodyError(w http.ResponseWriter, r *http.Request, err error) {
	var mte *mediaTypeError
	if errors.As(err, &mte) {
		s.writeError(w, r, http.StatusUnsupportedMediaType, err)
		return
	}
	s.writeError(w, r, http.StatusBadRequest, err)
}

// invalidateResults eagerly drops cached results for a mutated dataset.
// Correctness does not depend on it — mutations bump the version, which
// changes every future cache key — but dropping unreachable entries
// returns their bytes to the budget immediately.
func (s *Server) invalidateResults(name string) {
	if s.results != nil {
		s.results.InvalidateDataset(name)
	}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	db, err := s.readDatasetBody(r)
	if err != nil {
		s.writeBodyError(w, r, err)
		return
	}
	ver, existed, sum, err := s.store.put(name, db)
	if err != nil {
		s.writeStoreError(w, r, err)
		return
	}
	s.invalidateResults(name)
	s.jobMgr.Notify(name, ver)
	s.logger.Info("dataset stored",
		"request_id", requestID(r), "dataset", name, "sequences", db.Len(),
		"version", ver)
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	w.Header().Set("ETag", datasetETag(name, ver))
	s.writeJSON(w, status, sum)
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	add, err := s.readDatasetBody(r)
	if err != nil {
		s.writeBodyError(w, r, err)
		return
	}
	_, ver, sum, found, err := s.store.append(name, add)
	switch {
	case err != nil:
		// Validation failures are the client's fault; journal failures
		// are ours.
		var je *journalError
		if errors.As(err, &je) {
			s.writeStoreError(w, r, err)
		} else {
			s.writeError(w, r, http.StatusBadRequest, err)
		}
		return
	case !found:
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	s.invalidateResults(name)
	s.jobMgr.Notify(name, ver)
	w.Header().Set("ETag", datasetETag(name, ver))
	s.writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sum, ver, ok := s.store.stat(name)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	etag := datasetETag(name, ver)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("ETag", etag)
	s.writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ver, ok, err := s.store.delete(name)
	if err != nil {
		s.writeStoreError(w, r, err)
		return
	}
	s.invalidateResults(name)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	s.jobMgr.Notify(name, ver)
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------- etags

// resultETag derives the strong ETag of a memoizable result: a digest
// of the dataset name, its version, and the canonical result options.
// Identical ETags guarantee byte-identical complete results, because
// mining is deterministic for a fixed (database, options) pair.
func resultETag(k cache.Key) string {
	h := sha256.New()
	// sha256 writes never fail; discard explicitly for the error linter.
	_, _ = io.WriteString(h, k.Dataset)
	_, _ = h.Write([]byte{0})
	var vb [8]byte
	binary.BigEndian.PutUint64(vb[:], k.Version)
	_, _ = h.Write(vb[:])
	_, _ = io.WriteString(h, k.Options)
	sum := h.Sum(nil)
	return `"` + hex.EncodeToString(sum[:12]) + `"`
}

// datasetETag is the strong ETag of a dataset summary at one version.
func datasetETag(name string, version uint64) string {
	return resultETag(cache.Key{Dataset: name, Version: version, Options: "dataset"})
}

// etagMatches implements If-None-Match comparison against one strong
// ETag: a comma-separated candidate list, "*" wildcard, and W/ prefixes
// (weak comparison degrades to the same bytes for our strong tags).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// ----------------------------------------------------------- mine slots

// errMineBusy signals that every mining slot was occupied for as long
// as this request could afford to wait; the handler maps it to 429 with
// a Retry-After hint.
var errMineBusy = errors.New("all mining slots busy")

// acquireMineSlot claims a slot from the mining semaphore with
// deadline-aware admission: a free slot is taken immediately; otherwise
// the request parks only as long as a slot could still free up in time
// (parkBudget), and is shed with errMineBusy when that budget is zero or
// runs out — no point queueing work whose deadline will expire before it
// can start. ctx is the job context from mineContext, so a parked
// request unblocks when its deadline passes or (with caching disabled)
// its client disconnects. The caller must invoke release when done.
func (s *Server) acquireMineSlot(ctx context.Context, timeoutMillis int64) (release func(), err error) {
	select {
	case s.mineSem <- struct{}{}:
		return func() { <-s.mineSem }, nil
	default:
	}
	wait := s.parkBudget(timeoutMillis)
	if wait <= 0 {
		s.met.resilience.shed.Inc()
		return nil, errMineBusy
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case s.mineSem <- struct{}{}:
		return func() { <-s.mineSem }, nil
	case <-timer.C:
		s.met.resilience.shed.Inc()
		return nil, errMineBusy
	case <-ctx.Done():
		// The job deadline expiring while still queued is a shed (429,
		// retryable), not a mining timeout (504): no work was started.
		// A disconnecting client propagates as Canceled.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.met.resilience.shed.Inc()
			return nil, errMineBusy
		}
		return nil, ctx.Err()
	}
}

// parkBudget is how long a request may wait for a mining slot before it
// should be shed: its effective deadline minus the median job duration —
// once less than a typical job's runtime remains, getting a slot no
// longer helps, the job would only burn a slot and 504 anyway.
func (s *Server) parkBudget(timeoutMillis int64) time.Duration {
	d := s.cfg.MaxMineDuration
	if timeoutMillis > 0 {
		if req := time.Duration(timeoutMillis) * time.Millisecond; req < d {
			d = req
		}
	}
	median := time.Duration(s.met.mineDur.Quantile(0.5) * float64(time.Second))
	return d - median
}

// writeBusy sends the 429 backpressure response.
func (s *Server) writeBusy(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.writeError(w, r, http.StatusTooManyRequests,
		fmt.Errorf("all %d mining slots busy; retry later", cap(s.mineSem)))
}

// Bounds on the derived Retry-After hint: at least one second (clients
// should never hot-loop), at most thirty (mining slots churn within the
// 60s default deadline; suggesting more than half a minute just parks
// well-behaved clients).
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 30
)

// retryAfterSeconds derives the 429 Retry-After hint from the observed
// mine-duration histogram: the median job duration is how long a busy
// slot typically takes to free up. With no completed jobs yet it falls
// back to the floor, and it never suggests more than the server's own
// deadline — a slot is guaranteed free by then.
func (s *Server) retryAfterSeconds() int {
	secs := int(math.Ceil(s.met.mineDur.Quantile(0.5)))
	if secs < minRetryAfterSeconds {
		secs = minRetryAfterSeconds
	}
	if max := int(s.cfg.MaxMineDuration / time.Second); max >= minRetryAfterSeconds && secs > max {
		secs = max
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

// mineContext derives the mining context for one job, bounded by the
// server ceiling and lowered further by a per-request timeout_ms if
// given. base is the requester's context — an HTTP request's or a
// continuous job's. With result caching enabled the context is detached
// from the requester's cancellation: the run's result may fan out to
// coalesced waiters and into the cache, so one disconnecting client
// must not abort work others are (or will be) waiting on. The deadline
// still applies either way.
func (s *Server) mineContext(base context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	if s.results != nil {
		base = context.WithoutCancel(base)
	}
	d := s.cfg.MaxMineDuration
	if timeoutMillis > 0 {
		if req := time.Duration(timeoutMillis) * time.Millisecond; req < d {
			d = req
		}
	}
	return context.WithTimeout(base, d)
}

// writeMineError maps a mining error to a response: context deadline →
// 504, client gone → nothing to send (logged), anything else → 400.
func (s *Server) writeMineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, r, http.StatusGatewayTimeout,
			errors.New("mining exceeded its deadline; lower min support, add constraints, or raise timeout_ms"))
	case errors.Is(err, context.Canceled):
		// The client went away; there is nobody to respond to.
		s.logger.Info("mine abandoned by client",
			"request_id", requestID(r), "method", r.Method, "path", r.URL.Path)
	default:
		s.writeError(w, r, http.StatusBadRequest, err)
	}
}

// writeComputeError maps the result of a cached/coalesced compute to a
// response, covering the sentinels the cache layer can add on top of
// plain mining errors.
func (s *Server) writeComputeError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, errMineBusy):
		s.writeBusy(w, r)
	case errors.Is(err, cache.ErrComputeAborted):
		s.writeError(w, r, http.StatusInternalServerError,
			errors.New("mining aborted; see server logs"))
	default:
		s.writeMineError(w, r, err)
	}
}

// ----------------------------------------------------------- wire types

// The request shapes of the mine family live in internal/api, shared
// with the jobs subsystem; these aliases keep the server's exported
// surface intact. MineRequest and RulesRequest are the same struct now —
// one unified shape with an explicit "mode" field ("temporal",
// "coincidence", or "rules"); the rules route is a deprecated alias for
// mode=rules, and the legacy "type" field is accepted with a Deprecation
// response header.
type (
	MiningOptions = api.MiningOptions
	MineSpec      = api.MineSpec
	MineRequest   = api.MineSpec
	RulesRequest  = api.MineSpec
)

// MinedPattern is one result row of the mine endpoint.
type MinedPattern struct {
	Support   int    `json:"support"`
	Pattern   string `json:"pattern"`
	Relations string `json:"relations,omitempty"`
}

// MineResponse is the body returned by the mine endpoint.
type MineResponse struct {
	Dataset  string         `json:"dataset"`
	Type     string         `json:"type"`
	Count    int            `json:"count"`
	Patterns []MinedPattern `json:"patterns"`
	Stats    MineStats      `json:"stats"`
	// Cache says how this response was served: "hit" (from cache),
	// "miss" (this request ran the miner), or "coalesced" (an identical
	// concurrent request ran it; this one shared the result). Empty when
	// caching is disabled.
	Cache string `json:"cache,omitempty"`
}

// MineStats is the wire form of the search counters: the full pruning
// breakdown (P1 items_removed, P2 pair_pruned, P3 postfix_pruned, P4
// size_pruned) and, on parallel runs, the work-stealing scheduler's
// counters.
type MineStats struct {
	Sequences      int   `json:"sequences"`
	MinCount       int   `json:"min_count"`
	Nodes          int64 `json:"nodes"`
	Emitted        int64 `json:"emitted"`
	CandidateScans int64 `json:"candidate_scans"`
	ItemsRemoved   int   `json:"items_removed"`  // P1
	PairPruned     int64 `json:"pair_pruned"`    // P2
	PostfixPruned  int64 `json:"postfix_pruned"` // P3
	SizePruned     int64 `json:"size_pruned"`    // P4
	// Scheduler counters, present only on parallel runs.
	JobsSpawned   int64 `json:"jobs_spawned,omitempty"`
	StealsTaken   int64 `json:"steals_taken,omitempty"`
	MaxQueueDepth int64 `json:"max_queue_depth,omitempty"`
	// ElapsedMillis is the run's wall time in integer milliseconds.
	ElapsedMillis int64 `json:"elapsed_ms"`
	// Elapsed is the same duration as a Go duration string.
	//
	// Deprecated: the legacy "elapsed" key predates elapsed_ms and held
	// a duration string under a name that suggested a millisecond
	// integer. It is emitted only on the legacy unversioned routes; /v1
	// responses omit it. Read elapsed_ms instead.
	Elapsed string `json:"elapsed,omitempty"`
	// Truncated marks a run cut short by a soft budget; TruncatedBy is
	// "max_patterns" or "time_budget".
	Truncated   bool   `json:"truncated,omitempty"`
	TruncatedBy string `json:"truncated_by,omitempty"`
}

// recordMineRun folds one finished mining job into the metrics: its
// outcome (by pattern type), truncation cause, duration, and the
// search's own counters. Called for every job that ran, successful or
// not.
func (s *Server) recordMineRun(ptype string, st core.Stats, dur time.Duration, err error) {
	outcome := "ok"
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		outcome = "deadline"
		s.met.mineDeadline.Inc()
	case errors.Is(err, context.Canceled):
		outcome = "canceled"
	case err != nil:
		outcome = "invalid"
	case st.Truncated:
		outcome = "truncated"
	}
	s.met.mineRuns.With(ptype, outcome).Inc()
	if st.Truncated && st.TruncatedBy != "" {
		s.met.mineTruncated.With(st.TruncatedBy).Inc()
	}
	s.met.mineDur.Observe(dur.Seconds())
	s.met.recordMinerStats(st)
}

// approxJSONSize sizes a response for the cache budget by encoding it
// once.
func approxJSONSize(v any) int64 {
	b, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	return int64(len(b))
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	s.serveMineFamily(w, r, false)
}

// handleRules is the deprecated rules route: the same unified handler
// with the mode defaulted (and pinned) to "rules", so old clients keep
// working while new ones post mode=rules to the mine route.
func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	s.serveMineFamily(w, r, true)
}

// serveMineFamily is the one handler behind the whole mine family:
// batch temporal, coincidence, and rules mining, whole-dataset or
// windowed, cached and coalesced identically. rulesRoute marks requests
// that came in via the legacy rules route, whose bodies default to
// rules mode and may not select any other.
func (s *Server) serveMineFamily(w http.ResponseWriter, r *http.Request, rulesRoute bool) {
	if !s.requireContentType(w, r, "application/json") {
		return
	}
	name := r.PathValue("name")
	var spec MineSpec
	if err := s.decodeJSONBody(r, &spec); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if rulesRoute {
		if spec.Mode == "" && spec.Type == "" {
			spec.Mode = api.ModeRules
		} else if spec.ResolvedMode() != api.ModeRules {
			s.writeError(w, r, http.StatusBadRequest, &fieldError{"mode", fmt.Sprintf(
				"mode %q posted to the rules route; use POST /v1/datasets/{name}/mine", spec.ResolvedMode())})
			return
		}
	}
	if err := spec.Validate(); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if spec.LegacyShape() {
		// The old "type" field still works, but mode supersedes it.
		w.Header().Set("Deprecation", "true")
	}
	mode := spec.ResolvedMode()
	db, part, ver, ok := s.store.snapshot(name)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}

	key := cache.Key{Dataset: name, Version: ver, Options: spec.ResultOptions()}
	etag := resultETag(key)
	// A matching If-None-Match short-circuits before any mining: the
	// version in the ETag proves the dataset has not changed, and
	// complete results are deterministic.
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	wdb, wpart := s.windowed(db, part, spec.Window)
	tgt := mineTarget{db: wdb, part: wpart, name: name, ver: ver, whole: wdb == db}
	compute := func() (any, int64, bool, error) {
		if mode == api.ModeRules {
			out, err := s.runRules(r.Context(), tgt, spec)
			if err != nil {
				return nil, 0, false, err
			}
			return out, approxJSONSize(out), true, nil
		}
		resp, complete, err := s.runMine(r.Context(), tgt, mode, spec)
		if err != nil {
			return nil, 0, false, err
		}
		return resp, approxJSONSize(resp), complete, nil
	}
	var (
		v       any
		outcome cache.Outcome
		err     error
	)
	if s.results != nil {
		v, outcome, err = s.results.Do(r.Context(), key, compute)
	} else {
		v, _, _, err = compute()
	}
	if err != nil {
		s.writeComputeError(w, r, err)
		return
	}
	if outcome != "" {
		w.Header().Set("X-Cache", string(outcome))
	}

	if mode == api.ModeRules {
		w.Header().Set("ETag", etag)
		s.writeJSON(w, http.StatusOK, v.([]WireRule))
		return
	}
	resp := *(v.(*MineResponse)) // shallow copy; per-request fields below
	resp.Cache = string(outcome)
	if isV1(r) {
		resp.Stats.Elapsed = "" // dropped from /v1 responses
	}
	if !resp.Stats.Truncated {
		w.Header().Set("ETag", etag)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// windowed applies a window spec to a dataset snapshot, returning the
// (sub)database to mine and a partition for it. Whole-dataset requests
// reuse the stored partition; windowed ones partition the slice fresh —
// windows are bounded, so this is O(window), not O(dataset).
func (s *Server) windowed(db *interval.Database, part *shard.Partition, win api.WindowSpec) (*interval.Database, *shard.Partition) {
	if !win.Windowed() {
		return db, part
	}
	sub := windowDatabase(db, win)
	if sub == db {
		return db, part
	}
	return sub, shard.New(sub, s.store.shards, s.store.shardMinSeqs)
}

// windowDatabase slices the window out of db. Sequence slice headers are
// shared, never copied — stored databases are immutable. A sliding
// window is the newest Count sequences; a tumbling window is the newest
// complete block of Count sequences (empty until the first block fills).
func windowDatabase(db *interval.Database, win api.WindowSpec) *interval.Database {
	n := len(db.Sequences)
	switch win.Kind {
	case api.WindowSliding:
		if n <= win.Count {
			return db
		}
		return &interval.Database{Sequences: db.Sequences[n-win.Count:]}
	case api.WindowTumbling:
		blocks := n / win.Count
		if blocks == 0 {
			return &interval.Database{}
		}
		start := (blocks - 1) * win.Count
		return &interval.Database{Sequences: db.Sequences[start : start+win.Count]}
	}
	return db
}

// mineTarget identifies what one mine runs over: the (possibly
// windowed) database and partition, plus the dataset coordinates that
// make the snapshot content-addressable for remote workers. whole is
// true only when db is the dataset's full stored snapshot — windowed
// sub-databases are not addressable by (name, version) alone and always
// mine locally.
type mineTarget struct {
	db    *interval.Database
	part  *shard.Partition
	name  string
	ver   uint64
	whole bool
}

// mineCoordinator returns the scatter-gather coordinator for the
// target when its partition holds at least two shards, nil otherwise
// (serial mining). With a worker pool and a whole-dataset target the
// shards go to remote workers (each wrapped in exact local failover);
// either way the coordinator's merge reproduces the serial miner's
// results exactly, so routing through it never changes a response,
// cache entry, or ETag.
func (s *Server) mineCoordinator(t mineTarget) *shard.Coordinator {
	if t.part == nil || t.part.NumShards() < 2 {
		return nil
	}
	var co *shard.Coordinator
	if s.pool != nil && t.whole {
		co = s.pool.Coordinator(t.name, t.ver, t.db, t.part)
	} else {
		co = shard.NewLocal(t.db, t.part)
	}
	co.Met = s.met.shard
	return co
}

// runMine executes one mining job end to end: claim a slot (errMineBusy
// when saturated), mine under the job context, record metrics. base is
// the requester's context (HTTP request or continuous job). complete
// reports whether the result is the full deterministic answer for
// (dataset version, options) — truncated runs are not, and must never
// be cached or carry an ETag.
func (s *Server) runMine(base context.Context, tgt mineTarget, ptype string, req MineSpec) (resp *MineResponse, complete bool, err error) {
	ctx, cancel := s.mineContext(base, req.TimeoutMillis)
	defer cancel()
	release, err := s.acquireMineSlot(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, false, err
	}
	defer release()
	if s.testMineHook != nil {
		s.testMineHook()
	}

	mineStart := time.Now()
	resp = &MineResponse{Dataset: tgt.name, Type: ptype}
	db := tgt.db
	co := s.mineCoordinator(tgt)
	var st core.Stats
	switch ptype {
	case "temporal":
		var rs []pattern.TemporalResult
		switch {
		case co != nil && req.TopK > 0:
			rs, st, err = co.MineTemporalTopK(ctx, req.TopK, req.Options(s.cfg.MaxParallel))
		case co != nil:
			rs, st, err = co.MineTemporal(ctx, req.Options(s.cfg.MaxParallel))
		case req.TopK > 0:
			rs, st, err = core.MineTemporalTopKCtx(ctx, db, req.TopK, req.Options(s.cfg.MaxParallel))
		default:
			rs, st, err = core.MineTemporalCtx(ctx, db, req.Options(s.cfg.MaxParallel))
		}
		if err == nil {
			switch req.Filter {
			case "closed":
				rs, err = core.FilterClosedCtx(ctx, rs)
			case "maximal":
				rs, err = core.FilterMaximalCtx(ctx, rs)
			}
		}
		for _, pr := range rs {
			resp.Patterns = append(resp.Patterns, MinedPattern{
				Support:   pr.Support,
				Pattern:   pr.Pattern.String(),
				Relations: pr.Pattern.RelationSummary(),
			})
		}
	case "coincidence":
		var rs []pattern.CoincResult
		switch {
		case co != nil && req.TopK > 0:
			rs, st, err = co.MineCoincidenceTopK(ctx, req.TopK, req.Options(s.cfg.MaxParallel))
		case co != nil:
			rs, st, err = co.MineCoincidence(ctx, req.Options(s.cfg.MaxParallel))
		case req.TopK > 0:
			rs, st, err = core.MineCoincidenceTopKCtx(ctx, db, req.TopK, req.Options(s.cfg.MaxParallel))
		default:
			rs, st, err = core.MineCoincidenceCtx(ctx, db, req.Options(s.cfg.MaxParallel))
		}
		if err == nil {
			switch req.Filter {
			case "closed":
				rs, err = core.FilterClosedCoincCtx(ctx, rs)
			case "maximal":
				rs, err = core.FilterMaximalCoincCtx(ctx, rs)
			}
		}
		for _, pr := range rs {
			resp.Patterns = append(resp.Patterns, MinedPattern{
				Support: pr.Support,
				Pattern: pr.Pattern.String(),
			})
		}
	}
	s.recordMineRun(ptype, st, time.Since(mineStart), err)
	if err != nil {
		return nil, false, err
	}
	resp.Count = len(resp.Patterns)
	resp.Stats = wireStats(st)
	return resp, !st.Truncated, nil
}

// WireRule is one derived rule on the wire.
type WireRule struct {
	Antecedent string  `json:"antecedent"`
	Full       string  `json:"full"`
	Relations  string  `json:"relations"`
	Support    int     `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

// runRules executes one rules job: mine temporal patterns under a slot
// and the job context, then derive scored rules.
func (s *Server) runRules(base context.Context, tgt mineTarget, req MineSpec) ([]WireRule, error) {
	ctx, cancel := s.mineContext(base, req.TimeoutMillis)
	defer cancel()
	release, err := s.acquireMineSlot(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, err
	}
	defer release()

	opt := core.Options{
		MinSupport:   req.MinSupport,
		MinCount:     req.MinCount,
		MaxIntervals: req.MaxIntervals,
	}
	mineStart := time.Now()
	var (
		rs []pattern.TemporalResult
		st core.Stats
	)
	if co := s.mineCoordinator(tgt); co != nil {
		rs, st, err = co.MineTemporal(ctx, opt)
	} else {
		rs, st, err = core.MineTemporalCtx(ctx, tgt.db, opt)
	}
	s.recordMineRun("rules", st, time.Since(mineStart), err)
	if err != nil {
		return nil, err
	}
	derived, err := rules.Derive(rs, tgt.db, rules.Options{
		MinConfidence: req.MinConfidence,
		MinLift:       req.MinLift,
	})
	if err != nil {
		return nil, err
	}
	out := make([]WireRule, len(derived))
	for i, ru := range derived {
		out[i] = WireRule{
			Antecedent: ru.Antecedent.String(),
			Full:       ru.Full.String(),
			Relations:  ru.Full.RelationSummary(),
			Support:    ru.Support,
			Confidence: ru.Confidence,
			Lift:       ru.Lift,
		}
	}
	return out, nil
}

// decodeJSONBody parses a JSON request body, tolerating an empty body
// (all-default request).
func (s *Server) decodeJSONBody(r *http.Request, v any) error {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body = defaults
		}
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

func wireStats(st core.Stats) MineStats {
	return MineStats{
		Sequences:      st.Sequences,
		MinCount:       st.MinCount,
		Nodes:          st.Nodes,
		Emitted:        st.Emitted,
		CandidateScans: st.CandidateScans,
		ItemsRemoved:   st.ItemsRemoved,
		PairPruned:     st.PairPruned,
		PostfixPruned:  st.PostfixPruned,
		SizePruned:     st.SizePruned,
		JobsSpawned:    st.JobsSpawned,
		StealsTaken:    st.StealsTaken,
		MaxQueueDepth:  st.MaxQueueDepth,
		ElapsedMillis:  st.Elapsed.Milliseconds(),
		Elapsed:        st.Elapsed.String(),
		Truncated:      st.Truncated,
		TruncatedBy:    st.TruncatedBy,
	}
}
