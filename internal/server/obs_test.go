package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMineRequestValidation: every numeric field that used to flow into
// the miner unchecked is now rejected with 400 naming the field.
func TestMineRequestValidation(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/v", "text/csv", csvBody)

	cases := []struct {
		name string
		body string
	}{
		{"min_support", `{"min_support":-0.1}`},
		{"min_support", `{"min_support":1.5}`},
		{"min_count", `{"min_count":-1}`},
		{"max_intervals", `{"min_count":2,"max_intervals":-2}`},
		{"max_elements", `{"min_count":2,"max_elements":-1}`},
		{"max_items_per_element", `{"min_count":2,"max_items_per_element":-3}`},
		{"max_span", `{"min_count":2,"max_span":-5}`},
		{"max_gap", `{"min_count":2,"max_gap":-5}`},
		{"top_k", `{"min_count":2,"top_k":-1}`},
		{"timeout_ms", `{"min_count":2,"timeout_ms":-100}`},
		{"time_budget_ms", `{"min_count":2,"time_budget_ms":-1}`},
		{"max_patterns", `{"min_count":2,"max_patterns":-7}`},
		{"parallel", `{"min_count":2,"parallel":-4}`},
	}
	for _, c := range cases {
		resp, body := do(t, "POST", ts.URL+"/datasets/v/mine", "application/json", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d %q, want 400", c.name, resp.StatusCode, body)
			continue
		}
		if !strings.Contains(body, c.name) {
			t.Errorf("%s: error %q does not name the field", c.name, body)
		}
	}

	// A well-formed request still mines.
	resp, body := do(t, "POST", ts.URL+"/datasets/v/mine", "application/json",
		`{"min_count":2,"timeout_ms":5000,"max_patterns":100,"parallel":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid request: %d %q", resp.StatusCode, body)
	}
}

// TestRulesRequestValidation: the rules endpoint applies the same
// negative-field screening.
func TestRulesRequestValidation(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/v", "text/csv", csvBody)

	for _, c := range []struct{ name, body string }{
		{"min_support", `{"min_support":2}`},
		{"min_count", `{"min_count":-1}`},
		{"max_intervals", `{"min_count":2,"max_intervals":-1}`},
		{"min_confidence", `{"min_count":2,"min_confidence":-0.5}`},
		{"min_lift", `{"min_count":2,"min_lift":-1}`},
		{"timeout_ms", `{"min_count":2,"timeout_ms":-1}`},
	} {
		resp, body := do(t, "POST", ts.URL+"/datasets/v/rules", "application/json", c.body)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, c.name) {
			t.Errorf("%s: %d %q, want 400 naming the field", c.name, resp.StatusCode, body)
		}
	}
	resp, body := do(t, "POST", ts.URL+"/datasets/v/rules", "application/json", `{"min_count":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid rules request: %d %q", resp.StatusCode, body)
	}
}

// TestMinePanicReleasesSlot: a handler that dies after claiming the only
// mining slot must still release it — otherwise one crash starves every
// future mine into permanent 429 — and must not leak goroutines.
func TestMinePanicReleasesSlot(t *testing.T) {
	s, ts := newHardenedServer(t, Config{MaxConcurrentMines: 1})
	// Install the failure hook before any request so no goroutine races
	// the write; only the first mine trips it.
	var calls atomic.Int64
	s.testMineHook = func() {
		if calls.Add(1) == 1 {
			panic("injected mine failure")
		}
	}
	do(t, "PUT", ts.URL+"/datasets/p", "text/csv", csvBody)
	baseline := runtime.NumGoroutine()

	resp, _ := do(t, "POST", ts.URL+"/datasets/p/mine", "application/json", `{"min_count":2}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking mine: %d, want 500", resp.StatusCode)
	}

	// Every subsequent mine must get the slot back, not a 429.
	for i := 0; i < 4; i++ {
		resp, body := do(t, "POST", ts.URL+"/datasets/p/mine", "application/json", `{"min_count":2}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mine %d after panic: %d %q, want 200", i, resp.StatusCode, body)
		}
	}

	// Goroutine count settles back to (near) baseline once idle HTTP
	// connections are dropped; a stuck semaphore waiter would not.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// parseMetrics decodes Prometheus text exposition into sample-name
// (including label set) → value. It fails the test on any line that is
// neither a comment nor a "name{labels} value" sample.
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndpoint: /metrics parses, carries the expected families
// after traffic, and no counter ever goes backwards between scrapes.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/m", "text/csv", csvBody)
	do(t, "POST", ts.URL+"/datasets/m/mine", "application/json", `{"min_count":2}`)

	resp, body := do(t, "GET", ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want text exposition 0.0.4", ct)
	}
	first := parseMetrics(t, body)

	for _, want := range []string{
		`tpmd_http_requests_total{route="/datasets/{name}/mine",api="legacy",class="2xx"}`,
		`tpmd_http_request_duration_seconds_bucket{route="/datasets/{name}/mine",api="legacy",le="+Inf"}`,
		`tpmd_cache_misses_total`,
		`tpmd_cache_resident_bytes`,
		`tpmd_mine_runs_total{type="temporal",outcome="ok"}`,
		`tpmd_mine_duration_seconds_count`,
		`tpmd_miner_nodes_total`,
		`tpmd_miner_pruned_total{technique="p1"}`,
		`tpmd_http_requests_in_flight`,
		`tpmd_cache_degraded_hits_total`,
		`tpmd_resilience_breaker_state`,
		`tpmd_resilience_breaker_trips_total`,
		`tpmd_resilience_shed_total`,
		`tpmd_resilience_degraded_seconds_total`,
	} {
		if _, ok := first[want]; !ok {
			t.Errorf("metrics missing sample %s", want)
		}
	}

	// More traffic, including an error path, then rescrape: cumulative
	// series must be monotone.
	do(t, "POST", ts.URL+"/datasets/m/mine", "application/json", `{"min_count":2}`)
	do(t, "POST", ts.URL+"/datasets/m/mine", "application/json", `{"min_count":-1}`)
	do(t, "POST", ts.URL+"/datasets/m/rules", "application/json", `{"min_count":2}`)
	_, body2 := do(t, "GET", ts.URL+"/metrics", "", "")
	second := parseMetrics(t, body2)

	for name, v1 := range first {
		if name == "tpmd_http_requests_in_flight" {
			continue // a gauge; everything else exposed is cumulative
		}
		v2, ok := second[name]
		if !ok {
			t.Errorf("series %s disappeared between scrapes", name)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s regressed: %v -> %v", name, v1, v2)
		}
	}
	if second[`tpmd_http_requests_total{route="/datasets/{name}/mine",api="legacy",class="4xx"}`] < 1 {
		t.Error("invalid mine request not counted as 4xx")
	}
	if second[`tpmd_mine_runs_total{type="rules",outcome="ok"}`] < 1 {
		t.Error("rules run not recorded in tpmd_mine_runs_total")
	}
}

// TestRetryAfterDerived: the 429 Retry-After hint is an integer number
// of seconds within [1, 30], derived from the mine-duration histogram.
func TestRetryAfterDerived(t *testing.T) {
	s, ts := newHardenedServer(t, Config{MaxConcurrentMines: 1})
	do(t, "PUT", ts.URL+"/datasets/r", "text/csv", csvBody)
	// Seed the duration histogram with real (fast) mines.
	for i := 0; i < 3; i++ {
		do(t, "POST", ts.URL+"/datasets/r/mine", "application/json", `{"min_count":2}`)
	}

	s.mineSem <- struct{}{} // occupy the only slot
	// Different options from the seeding mines, so this cannot be served
	// from the result cache and must contend for the slot; the tight
	// timeout_ms makes deadline-aware admission shed it immediately.
	resp, _ := do(t, "POST", ts.URL+"/datasets/r/mine", "application/json", `{"min_count":1,"timeout_ms":1}`)
	<-s.mineSem
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("busy mine: %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if ra < minRetryAfterSeconds || ra > maxRetryAfterSeconds {
		t.Errorf("Retry-After = %d outside [%d, %d]", ra, minRetryAfterSeconds, maxRetryAfterSeconds)
	}
	// Sub-second mines must hint the floor, not round down to zero.
	if ra != 1 {
		t.Errorf("Retry-After = %d after millisecond mines, want the 1s floor", ra)
	}
}

// TestElapsedMillisWireFormat: stats carry the machine-readable
// elapsed_ms integer alongside the legacy "elapsed" duration string.
func TestElapsedMillisWireFormat(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/e", "text/csv", csvBody)
	resp, body := do(t, "POST", ts.URL+"/datasets/e/mine", "application/json", `{"min_count":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: %d %q", resp.StatusCode, body)
	}
	var mr struct {
		Stats map[string]json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &mr); err != nil {
		t.Fatal(err)
	}
	rawMs, ok := mr.Stats["elapsed_ms"]
	if !ok {
		t.Fatal("stats missing elapsed_ms")
	}
	var ms int64
	if err := json.Unmarshal(rawMs, &ms); err != nil || ms < 0 {
		t.Errorf("elapsed_ms %s is not a non-negative integer (err=%v)", rawMs, err)
	}
	rawLegacy, ok := mr.Stats["elapsed"]
	if !ok {
		t.Fatal("stats missing legacy elapsed field")
	}
	var legacy string
	if err := json.Unmarshal(rawLegacy, &legacy); err != nil || legacy == "" {
		t.Errorf("legacy elapsed %s is not a duration string (err=%v)", rawLegacy, err)
	}
	if _, err := time.ParseDuration(legacy); err != nil {
		t.Errorf("legacy elapsed %q does not parse as a duration: %v", legacy, err)
	}
}
